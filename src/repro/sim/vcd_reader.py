"""Minimal VCD reader.

Parses the subset of IEEE-1364 VCD that :mod:`repro.sim.vcd` writes
(single-bit wires, ``0/1/x`` values, one scope) back into per-net
transition lists — primarily so the test suite can prove the export is
lossless, and so externally produced single-bit VCD traces can be
compared against simulation runs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TextIO

from repro.cells.base import LogicValue
from repro.errors import ConfigurationError

_TIMESCALE_RE = re.compile(
    r"\$timescale\s+([0-9.]+)\s*(fs|ps|ns|us|s)\s*\$end"
)
_VAR_RE = re.compile(
    r"\$var\s+wire\s+1\s+(\S+)\s+(\S+)\s+\$end"
)
_UNIT_SECONDS = {"fs": 1e-15, "ps": 1e-12, "ns": 1e-9,
                 "us": 1e-6, "s": 1.0}


@dataclass
class VCDDump:
    """A parsed single-bit VCD file.

    Attributes:
        timescale: Seconds per tick.
        transitions: Net name -> list of (time_seconds, value).
    """

    timescale: float
    transitions: dict[str, list[tuple[float, LogicValue]]] = \
        field(default_factory=dict)

    def nets(self) -> list[str]:
        return sorted(self.transitions)

    def value_at(self, net: str, t: float) -> LogicValue:
        """Net value at time ``t`` (None before the first record)."""
        if net not in self.transitions:
            raise ConfigurationError(f"net {net!r} not in dump")
        value: LogicValue = None
        for time, v in self.transitions[net]:
            if time > t:
                break
            value = v
        return value


def _parse_value(ch: str) -> LogicValue:
    if ch == "0":
        return 0
    if ch == "1":
        return 1
    if ch in ("x", "X", "z", "Z"):
        return None
    raise ConfigurationError(f"unsupported VCD value {ch!r}")


def read_vcd(stream: TextIO) -> VCDDump:
    """Parse a VCD stream.

    Raises:
        ConfigurationError: malformed header or value lines.
    """
    text = stream.read()
    m = _TIMESCALE_RE.search(text)
    if not m:
        raise ConfigurationError("missing $timescale")
    timescale = float(m.group(1)) * _UNIT_SECONDS[m.group(2)]

    id_to_net: dict[str, str] = {}
    for ident, net in _VAR_RE.findall(text):
        id_to_net[ident] = net
    if not id_to_net:
        raise ConfigurationError("no $var declarations found")

    try:
        body = text.split("$enddefinitions $end", 1)[1]
    except IndexError:
        raise ConfigurationError("missing $enddefinitions") from None

    dump = VCDDump(timescale=timescale)
    for net in id_to_net.values():
        dump.transitions[net] = []
    t = 0.0
    in_dumpvars = False
    for raw in body.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line == "$dumpvars":
            in_dumpvars = True
            continue
        if line == "$end":
            in_dumpvars = False
            continue
        if line.startswith("#"):
            t = int(line[1:]) * timescale
            continue
        ch, ident = line[0], line[1:]
        if ident not in id_to_net:
            raise ConfigurationError(
                f"value change for undeclared identifier {ident!r}"
            )
        value = _parse_value(ch)
        net = id_to_net[ident]
        when = 0.0 if in_dumpvars else t
        dump.transitions[net].append((when, value))
    return dump
