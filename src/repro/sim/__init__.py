"""Event-driven, supply-aware digital simulator.

This is the reproduction's stand-in for the paper's ELDO runs: a
gate-level event simulator whose per-event delays come from the
alpha-power cell models and — crucially — from the *instantaneous*
voltage of the supply net each cell is connected to.  Supply nets carry
arbitrary waveforms (:mod:`repro.sim.waveform`), so a sensor inverter
powered by a drooping ``VDD-n`` slows down mid-simulation exactly as the
paper's Fig. 2/3 traces show.

Modules:

* :mod:`repro.sim.waveform` — piecewise-linear/analytic voltage and
  current waveforms;
* :mod:`repro.sim.events` — the time-ordered event queue;
* :mod:`repro.sim.netlist` — nets, supply nets, instances, validation;
* :mod:`repro.sim.engine` — the simulation kernel;
* :mod:`repro.sim.trace` — transition recording and queries;
* :mod:`repro.sim.stimulus` — clock/pulse stimulus helpers.
"""

from repro.sim.waveform import (
    Waveform,
    ConstantWaveform,
    PiecewiseLinearWaveform,
    SumWaveform,
    DampedSineWaveform,
    StepWaveform,
)
from repro.sim.events import Event, EventQueue
from repro.sim.netlist import Net, SupplyNet, Instance, Netlist
from repro.sim.engine import SimulationEngine
from repro.sim.trace import Trace
from repro.sim.stimulus import clock_edges, schedule_clock, schedule_pulse

__all__ = [
    "Waveform",
    "ConstantWaveform",
    "PiecewiseLinearWaveform",
    "SumWaveform",
    "DampedSineWaveform",
    "StepWaveform",
    "Event",
    "EventQueue",
    "Net",
    "SupplyNet",
    "Instance",
    "Netlist",
    "SimulationEngine",
    "Trace",
    "clock_edges",
    "schedule_clock",
    "schedule_pulse",
]
