"""Time-ordered event queue for the simulation kernel.

Events are net-value transitions scheduled at absolute times.  The queue
supports *inertial cancellation*: when a gate re-evaluates before its
previously scheduled output transition has fired (a glitch shorter than
the gate delay), the stale event is invalidated in place rather than
removed from the heap — the standard lazy-deletion trick that keeps
scheduling O(log n).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.cells.base import LogicValue
from repro.errors import SimulationError


@dataclass
class Event:
    """A scheduled net transition.

    Attributes:
        time: Absolute simulation time, seconds.
        seq: Tie-breaker preserving scheduling order at equal times.
        net: Name of the net that transitions.
        value: The new logic value.
        cause: Optional debug string (instance/pin that produced it).
        cancelled: Lazy-deletion flag; cancelled events are skipped.
    """

    time: float
    seq: int
    net: str
    value: LogicValue
    cause: str = ""
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True

    def sort_key(self) -> tuple[float, int]:
        return (self.time, self.seq)


class EventQueue:
    """Min-heap of :class:`Event` ordered by (time, seq)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the most recently popped event."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for _, _, ev in self._heap if not ev.cancelled)

    def schedule(self, time: float, net: str, value: LogicValue,
                 cause: str = "") -> Event:
        """Schedule a transition; times must not precede current time.

        Raises:
            SimulationError: when scheduling into the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        ev = Event(time=time, seq=next(self._counter), net=net,
                   value=value, cause=cause)
        heapq.heappush(self._heap, (time, ev.seq, ev))
        return ev

    def pop(self) -> Event | None:
        """Pop the earliest non-cancelled event, or None when empty."""
        while self._heap:
            _, _, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            return ev
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest pending event, or None."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def clear(self) -> None:
        self._heap.clear()
        self._now = 0.0
