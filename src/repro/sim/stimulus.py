"""Stimulus helpers: clocks, pulses and value sequences.

These wrap :meth:`SimulationEngine.schedule_stimulus` with the shapes
the experiments use — periodic clocks for the control system, single
pulses for the sensor's P input, and arbitrary timed sequences for FSM
driving.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cells.base import LogicValue
from repro.errors import ConfigurationError
from repro.sim.engine import SimulationEngine


def clock_edges(period: float, *, start: float = 0.0, n_cycles: int = 1,
                duty: float = 0.5) -> list[tuple[float, LogicValue]]:
    """Generate (time, value) pairs for a periodic clock.

    The clock rises at ``start + k*period`` and falls ``duty*period``
    later, for ``k`` in ``0..n_cycles-1``.

    Raises:
        ConfigurationError: for non-positive period or duty outside (0,1).
    """
    if period <= 0:
        raise ConfigurationError("period must be positive")
    if not 0.0 < duty < 1.0:
        raise ConfigurationError("duty must be in (0, 1)")
    if n_cycles < 0:
        raise ConfigurationError("n_cycles must be non-negative")
    edges: list[tuple[float, LogicValue]] = []
    for k in range(n_cycles):
        t_rise = start + k * period
        edges.append((t_rise, 1))
        edges.append((t_rise + duty * period, 0))
    return edges


def schedule_clock(engine: SimulationEngine, net: str, period: float, *,
                   start: float = 0.0, n_cycles: int = 1,
                   duty: float = 0.5) -> None:
    """Schedule a periodic clock on a net."""
    for t, v in clock_edges(period, start=start, n_cycles=n_cycles,
                            duty=duty):
        engine.schedule_stimulus(net, v, t)


def schedule_pulse(engine: SimulationEngine, net: str, *, t_rise: float,
                   width: float, polarity: int = 1) -> None:
    """Schedule a single pulse: to ``polarity`` at ``t_rise``, back
    ``width`` later.

    Raises:
        ConfigurationError: for non-positive width or invalid polarity.
    """
    if width <= 0:
        raise ConfigurationError("width must be positive")
    if polarity not in (0, 1):
        raise ConfigurationError("polarity must be 0 or 1")
    engine.schedule_stimulus(net, polarity, t_rise)
    engine.schedule_stimulus(net, 1 - polarity, t_rise + width)


def schedule_sequence(engine: SimulationEngine, net: str,
                      seq: Iterable[tuple[float, LogicValue]]) -> None:
    """Schedule an arbitrary timed value sequence on a net."""
    for t, v in seq:
        engine.schedule_stimulus(net, v, t)


def schedule_word(engine: SimulationEngine, nets: Sequence[str],
                  bits: Sequence[LogicValue], time: float) -> None:
    """Drive a bus: ``nets[i]`` gets ``bits[i]`` at ``time``.

    Raises:
        ConfigurationError: on length mismatch.
    """
    if len(nets) != len(bits):
        raise ConfigurationError(
            f"bus width mismatch: {len(nets)} nets vs {len(bits)} bits"
        )
    for net, bit in zip(nets, bits):
        engine.schedule_stimulus(net, bit, time)
