"""The event-driven simulation kernel.

Semantics:

* nets hold three-state values; every committed transition is recorded
  in a :class:`~repro.sim.trace.Trace`;
* combinational cells re-evaluate when any input changes and schedule
  their output after a delay computed from the cell model, the net's
  capacitive load, and the *instantaneous* voltage of the instance's
  supply rails (``vdd(t) - gnd(t)``) — the mechanism by which power
  supply noise becomes observable timing behaviour;
* output scheduling is inertial: a re-evaluation that contradicts a
  still-pending output transition cancels it (glitches shorter than the
  gate delay are swallowed);
* D flip-flops sample on the rising edge of their ``CP`` pin using the
  metastability model of :class:`~repro.cells.sequential.DFlipFlop`;
  every sampling event is logged with its outcome, margin and
  resolution time (the data behind the paper's Fig. 2);
* a D-input change landing inside the hold window after a clock edge
  corrupts the just-taken sample to ``UNKNOWN``.
"""

from __future__ import annotations

import math

from repro.cells.base import (
    Cell,
    HIGH,
    LOW,
    LogicValue,
    PinDirection,
    UNKNOWN,
)
from repro.cells.sequential import DFlipFlop
from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.netlist import Instance, Netlist
from repro.sim.trace import SampleRecord, Trace


class SimulationEngine:
    """Runs one netlist.  Create a fresh engine per simulation.

    Args:
        netlist: The (validated) netlist to simulate.
        max_events: Hard cap on processed events; exceeded means a
            runaway oscillation and raises :class:`SimulationError`.
    """

    def __init__(self, netlist: Netlist, *, max_events: int = 2_000_000
                 ) -> None:
        netlist.validate()
        self.netlist = netlist
        # Nets belong to the (reusable) netlist but their runtime state
        # belongs to one engine: reset it so a fresh engine never sees a
        # previous run's values or timestamps.
        for net in netlist.nets.values():
            net.value = UNKNOWN
            net.previous_value = UNKNOWN
            net.last_change = float("-inf")
        self.queue = EventQueue()
        self.trace = Trace()
        self.max_events = max_events
        self._processed = 0
        #: pending inertial event per net (single-driver nets)
        self._pending: dict[str, Event] = {}
        #: nets held at a fixed value (Verilog-style force)
        self._forced: dict[str, LogicValue] = {}
        #: switching energy per driving instance, joules
        self.energy_by_instance: dict[str, float] = {}
        #: last rising clock-edge time per sequential instance
        self._last_clock_edge: dict[str, float] = {}
        #: last sample per sequential instance (for hold corruption)
        self._last_sample: dict[str, SampleRecord] = {}

    # -- stimulus -------------------------------------------------------

    def schedule_stimulus(self, net: str, value: LogicValue,
                          time: float) -> Event:
        """Schedule an external transition on an input net."""
        if net not in self.netlist.nets:
            raise SimulationError(f"unknown net {net!r}")
        return self.queue.schedule(time, net, value, cause="stimulus")

    def force_net(self, net: str, value: LogicValue) -> None:
        """Hold a net at a value; driver events are discarded.

        The fault-injection mechanism (stuck-at faults, test-mode
        overrides), equivalent to Verilog's ``force``.  Applies from
        now until :meth:`release_net`.
        """
        if net not in self.netlist.nets:
            raise SimulationError(f"unknown net {net!r}")
        self._forced[net] = value
        n = self.netlist.nets[net]
        if n.value != value:
            pending = self._pending.pop(net, None)
            if pending is not None:
                pending.cancel()
            n.previous_value = n.value
            n.value = value
            n.last_change = max(self.queue.now, 0.0)
            self.trace.record(net, n.last_change, value)
            for ref in self.netlist.sinks_of(net):
                inst = ref.instance
                if inst.cell.is_sequential:
                    continue  # sequential state follows at clock edges
                self._update_combinational(
                    inst, ref.pin_name,
                    Event(time=n.last_change, seq=-1, net=net,
                          value=value),
                )

    def release_net(self, net: str) -> None:
        """Remove a force; the net follows its driver again from the
        next driver event."""
        self._forced.pop(net, None)

    def set_initial(self, net: str, value: LogicValue) -> None:
        """Set a net's value at t=0 without generating fanout activity.

        Used to establish the PREPARE-phase preconditions; the value is
        recorded in the trace so queries see it.
        """
        n = self.netlist.nets.get(net)
        if n is None:
            raise SimulationError(f"unknown net {net!r}")
        n.previous_value = n.value
        n.value = value
        n.last_change = 0.0
        self.trace.record(net, 0.0, value)

    def settle(self, *, time: float = 0.0, max_iters: int = 10_000
               ) -> int:
        """Zero-delay combinational settling at initialization time.

        Repeatedly evaluates every combinational cell from the current
        net values and applies the outputs immediately, until a fixpoint
        is reached — the standard way to establish consistent internal
        node values from the externally set inputs before the first
        stimulus.  Sequential outputs are untouched.  Settled values are
        recorded in the trace at ``time`` but keep ``last_change`` at
        -inf so flip-flops treat them as ancient (full setup margin).

        Returns:
            The number of settling passes performed.

        Raises:
            SimulationError: if no fixpoint is reached in ``max_iters``
                passes (a combinational loop).
        """
        iters = 0
        changed = True
        while changed:
            iters += 1
            if iters > max_iters:
                raise SimulationError(
                    f"settle did not converge in {max_iters} passes; "
                    "combinational loop?"
                )
            changed = False
            for inst in self.netlist.iter_instances():
                if inst.cell.is_sequential:
                    continue
                outputs = inst.cell.evaluate(self._input_values(inst))
                for pin, val in outputs.items():
                    if inst.net_of(pin) in self._forced:
                        continue
                    net = self.netlist.nets[inst.net_of(pin)]
                    if net.value != val:
                        net.value = val
                        net.previous_value = val
                        net.last_change = float("-inf")
                        self.trace.record(net.name, time, val)
                        changed = True
        return iters

    # -- main loop ------------------------------------------------------

    def run(self, until: float = math.inf) -> float:
        """Process events up to and including time ``until``.

        Returns the time of the last processed event (or ``until`` if
        the queue drained earlier).

        Raises:
            SimulationError: when ``max_events`` is exceeded.
        """
        last_time = self.queue.now
        while True:
            t_next = self.queue.peek_time()
            if t_next is None or t_next > until:
                break
            event = self.queue.pop()
            if event is None:  # pragma: no cover - guarded by peek
                break
            self._processed += 1
            if self._processed > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "probable oscillation"
                )
            self._apply(event)
            last_time = event.time
        return last_time

    # -- event application ----------------------------------------------

    def _apply(self, event: Event) -> None:
        net = self.netlist.nets[event.net]
        if self._pending.get(event.net) is event:
            del self._pending[event.net]
        if event.net in self._forced:
            return  # net is held; the driver event is discarded
        if net.value == event.value:
            return  # no transition
        net.previous_value = net.value
        net.value = event.value
        net.last_change = event.time
        self.trace.record(event.net, event.time, event.value)
        self._account_energy(event)
        for ref in self.netlist.sinks_of(event.net):
            inst = ref.instance
            if inst.cell.is_sequential:
                self._update_sequential(inst, ref.pin_name, event)
            else:
                self._update_combinational(inst, ref.pin_name, event)

    def _account_energy(self, event: Event) -> None:
        """Charge ``1/2 * C * V^2`` to the driving cell per transition.

        The standard dynamic-energy model: each committed output
        transition (dis)charges the net's total capacitance (fanout
        pins + explicit cap + the driver's intrinsic cap) through the
        driver, at the driver's instantaneous supply.  External
        stimulus transitions draw from off-netlist sources and are not
        charged.
        """
        driver = self.netlist.driver_of(event.net)
        if driver is None:
            return
        inst = driver.instance
        v = self.netlist.supply_of(inst, event.time)
        cap = (self.netlist.load_of(event.net)
               + inst.cell.model.intrinsic_cap)
        energy = 0.5 * cap * v * v
        self.energy_by_instance[inst.name] = \
            self.energy_by_instance.get(inst.name, 0.0) + energy

    @property
    def total_energy(self) -> float:
        """Total switching energy charged so far, joules."""
        return sum(self.energy_by_instance.values())

    def _input_values(self, inst: Instance) -> dict[str, LogicValue]:
        return {
            pin.name: self.netlist.nets[inst.net_of(pin.name)].value
            for pin in inst.cell.input_pins
        }

    def _update_combinational(self, inst: Instance, changed_pin: str,
                              event: Event) -> None:
        outputs = inst.cell.evaluate(self._input_values(inst))
        supply = self.netlist.supply_of(inst, event.time)
        for out_pin, target in outputs.items():
            out_net = inst.net_of(out_pin)
            load = self.netlist.load_of(out_net)
            delay = inst.cell.propagation_delay(
                changed_pin, out_pin, supply, load
            )
            self._schedule_output(
                out_net, target, event.time, delay,
                cause=f"{inst.name}.{out_pin}",
            )

    def _schedule_output(self, out_net: str, target: LogicValue,
                         now: float, delay: float, *, cause: str) -> None:
        pending = self._pending.get(out_net)
        projected = (pending.value if pending is not None
                     else self.netlist.nets[out_net].value)
        if target == projected:
            return
        if pending is not None:
            pending.cancel()
            del self._pending[out_net]
        if math.isinf(delay):
            # Supply collapsed below threshold: the gate never resolves.
            return
        if self.netlist.nets[out_net].value == target:
            return  # cancellation restored the steady state
        ev = self.queue.schedule(now + delay, out_net, target, cause=cause)
        self._pending[out_net] = ev

    def _update_sequential(self, inst: Instance, changed_pin: str,
                           event: Event) -> None:
        cell = inst.cell
        if not isinstance(cell, DFlipFlop):
            raise SimulationError(
                f"unsupported sequential cell {type(cell).__name__}"
            )
        pin = cell.pin(changed_pin)
        if pin.is_clock:
            clock_net = self.netlist.nets[inst.net_of(changed_pin)]
            rising = event.value == HIGH and clock_net.previous_value == LOW
            if not rising:
                return
            d_net = self.netlist.nets[inst.net_of("D")]
            self._sample_ff(inst, cell, event.time, d_net)
        elif changed_pin == "D":
            self._check_hold(inst, cell, event.time)

    def _sample_ff(self, inst: Instance, cell: DFlipFlop, t_clk: float,
                   d_net) -> None:
        supply = self.netlist.supply_of(inst, t_clk)
        if d_net.last_change == float("-inf"):
            new_value = old_value = d_net.value
            arrival = t_clk - 1.0  # effectively "long ago"
        else:
            new_value = d_net.value
            old_value = d_net.previous_value
            arrival = d_net.last_change
        result = cell.sample(
            new_value=new_value,
            old_value=old_value,
            data_arrival=arrival,
            clock_edge=t_clk,
            supply_v=supply,
        )
        record = SampleRecord(
            time=t_clk,
            instance=inst.name,
            outcome=result.outcome.value,
            value=result.value,
            clk_to_q=result.clk_to_q,
            setup_margin=result.setup_margin,
        )
        self.trace.record_sample(record)
        self._last_clock_edge[inst.name] = t_clk
        self._last_sample[inst.name] = record
        q_net = inst.net_of("Q")
        self._schedule_output(
            q_net, result.value, t_clk, result.clk_to_q,
            cause=f"{inst.name}.Q",
        )

    def _check_hold(self, inst: Instance, cell: DFlipFlop,
                    t_data: float) -> None:
        t_clk = self._last_clock_edge.get(inst.name)
        if t_clk is None:
            return
        supply = self.netlist.supply_of(inst, t_data)
        scale = (cell.model.voltage_factor(supply)
                 / cell.model.voltage_factor(cell.tech.vdd_nominal))
        if math.isinf(scale):
            return
        if 0.0 <= t_data - t_clk < cell.hold_time * scale:
            # Data moved inside the hold window: the sample is corrupt.
            q_net = inst.net_of("Q")
            self._schedule_output(
                q_net, UNKNOWN, t_data, cell.clk_to_q * scale,
                cause=f"{inst.name}.Q(hold-violation)",
            )
            prev = self._last_sample.get(inst.name)
            if prev is not None:
                self.trace.record_sample(SampleRecord(
                    time=t_data,
                    instance=inst.name,
                    outcome="hold_corrupted",
                    value=UNKNOWN,
                    clk_to_q=cell.clk_to_q * scale,
                    setup_margin=-(t_data - t_clk),
                ))

    # -- bookkeeping ------------------------------------------------------

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def now(self) -> float:
        return self.queue.now
