"""VCD (Value Change Dump) export of simulation traces.

Writes IEEE-1364-style VCD so captured runs open in standard waveform
viewers (GTKWave etc.).  Three-state values map to ``0``/``1``/``x``;
the timescale defaults to 1 fs so picosecond-resolution edges stay
exact as integer ticks.
"""

from __future__ import annotations

import string
from typing import Sequence, TextIO

from repro.cells.base import LogicValue
from repro.errors import ConfigurationError
from repro.sim.trace import Trace

_ID_ALPHABET = string.printable[:-6].replace(" ", "")[:94]


def _identifier(index: int) -> str:
    """Compact VCD identifier codes: base-94 printable strings."""
    chars = []
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, len(_ID_ALPHABET))
        chars.append(_ID_ALPHABET[rem])
    return "".join(reversed(chars))


def _value_char(v: LogicValue) -> str:
    if v is None:
        return "x"
    return "1" if v else "0"


def write_vcd(trace: Trace, out: TextIO, *,
              nets: Sequence[str] | None = None,
              timescale: float = 1e-15,
              module: str = "repro",
              date: str = "reproduction run") -> int:
    """Serialize a trace to VCD.

    Args:
        trace: The recorded simulation trace.
        out: Writable text stream.
        nets: Nets to dump; defaults to every recorded net.
        timescale: Seconds per VCD tick (default 1 fs).
        module: Scope name in the VCD hierarchy.
        date: Free-form ``$date`` text.

    Returns:
        The number of value changes written.

    Raises:
        ConfigurationError: unknown net names or a non-positive
            timescale.
    """
    if timescale <= 0:
        raise ConfigurationError("timescale must be positive")
    available = set(trace.nets())
    selected = list(nets) if nets is not None else trace.nets()
    unknown = [n for n in selected if n not in available]
    if unknown:
        raise ConfigurationError(
            f"nets not present in trace: {unknown[:5]}"
        )
    if not selected:
        raise ConfigurationError("no nets to dump")

    unit = {1e-15: "1 fs", 1e-12: "1 ps", 1e-9: "1 ns"}.get(
        timescale, f"{timescale:g} s"
    )
    ids = {net: _identifier(i) for i, net in enumerate(selected)}

    out.write(f"$date {date} $end\n")
    out.write("$version repro PSN-thermometer reproduction $end\n")
    out.write(f"$timescale {unit} $end\n")
    out.write(f"$scope module {module} $end\n")
    for net in selected:
        out.write(f"$var wire 1 {ids[net]} {net} $end\n")
    out.write("$upscope $end\n$enddefinitions $end\n")

    # Merge all transitions into one time-ordered stream.  Events at
    # t = -inf (settled initial values) surface in $dumpvars at t=0.
    events: list[tuple[float, str, LogicValue]] = []
    initials: dict[str, LogicValue] = {}
    for net in selected:
        for t, v in trace.transitions(net):
            if t <= 0.0:
                initials[net] = v
            else:
                events.append((t, net, v))
    events.sort(key=lambda e: e[0])

    out.write("$dumpvars\n")
    for net in selected:
        out.write(f"{_value_char(initials.get(net))}{ids[net]}\n")
    out.write("$end\n")

    written = len(initials)
    last_tick = None
    for t, net, v in events:
        tick = int(round(t / timescale))
        if tick != last_tick:
            out.write(f"#{tick}\n")
            last_tick = tick
        out.write(f"{_value_char(v)}{ids[net]}\n")
        written += 1
    return written
