"""Nets, supply nets, cell instances and the netlist container.

The structural model mirrors what the paper's sensor needs:

* **signal nets** carry logic values and accumulate load capacitance
  from the input pins they fan out to plus any *explicit* capacitor —
  the sensor's programmable ``C`` at the delay-sense node is exactly an
  explicit net capacitance;
* **supply nets** carry voltage waveforms; every instance names the
  supply net powering it, so the noisy ``VDD-n`` rail and the nominal
  control-logic rail coexist in one netlist (paper Fig. 6's central
  trick: sensor inverters on the noisy rail, everything else nominal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.cells.base import Cell, LogicValue, PinDirection, UNKNOWN
from repro.errors import NetlistError
from repro.sim.waveform import ConstantWaveform, Waveform


@dataclass
class Net:
    """A signal net.

    Attributes:
        name: Unique net name.
        extra_cap: Explicit capacitance attached to the net, farads
            (the sensor's load ``C``).
        value: Current logic value (engine-owned at run time).
        last_change: Time of the most recent transition, seconds.
        previous_value: Value held before the most recent transition.
    """

    name: str
    extra_cap: float = 0.0
    value: LogicValue = UNKNOWN
    last_change: float = float("-inf")
    previous_value: LogicValue = UNKNOWN

    def __post_init__(self) -> None:
        if self.extra_cap < 0:
            raise NetlistError(f"net {self.name}: extra_cap must be >= 0")


@dataclass
class SupplyNet:
    """A power/ground rail carrying a voltage waveform.

    Attributes:
        name: Unique rail name (e.g. ``"VDDN"``, ``"VDD"``, ``"GNDN"``).
        waveform: Voltage vs. time; a plain float is wrapped in a
            :class:`ConstantWaveform`.
        is_ground: True for ground-reference rails; the effective supply
            of an instance is ``vdd(t) - gnd(t)`` and ground *bounce* on
            ``GND-n`` raises the rail above 0 V.
    """

    name: str
    waveform: Waveform
    is_ground: bool = False

    def voltage(self, t: float) -> float:
        return self.waveform(t)


@dataclass
class Instance:
    """A placed cell with its pin-to-net connections.

    Attributes:
        name: Unique instance name.
        cell: The library cell (owns logic + timing).
        connections: Pin name -> net name.
        vdd: Name of the supply rail powering this instance.
        gnd: Name of the ground rail referencing this instance.
    """

    name: str
    cell: Cell
    connections: dict[str, str]
    vdd: str
    gnd: str

    def net_of(self, pin: str) -> str:
        try:
            return self.connections[pin]
        except KeyError:
            raise NetlistError(
                f"instance {self.name}: pin {pin!r} is not connected"
            ) from None


@dataclass
class _PinRef:
    """(instance, pin) endpoint attached to a net."""

    instance: Instance
    pin_name: str

    @property
    def pin(self):
        return self.instance.cell.pin(self.pin_name)


class Netlist:
    """A flat gate-level netlist with supply binding and validation."""

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self.nets: dict[str, Net] = {}
        self.supplies: dict[str, SupplyNet] = {}
        self.instances: dict[str, Instance] = {}
        self._sinks: dict[str, list[_PinRef]] = {}
        self._driver: dict[str, _PinRef] = {}
        self._external_inputs: set[str] = set()

    # -- construction ---------------------------------------------------

    def add_net(self, name: str, *, extra_cap: float = 0.0) -> Net:
        """Create a signal net.

        Raises:
            NetlistError: on duplicate name (against nets or supplies).
        """
        self._check_fresh_name(name)
        net = Net(name=name, extra_cap=extra_cap)
        self.nets[name] = net
        self._sinks[name] = []
        return net

    def add_supply(self, name: str, waveform: Waveform | float, *,
                   is_ground: bool = False) -> SupplyNet:
        """Create a supply rail; floats become constant waveforms."""
        self._check_fresh_name(name)
        if isinstance(waveform, (int, float)):
            waveform = ConstantWaveform(float(waveform))
        rail = SupplyNet(name=name, waveform=waveform, is_ground=is_ground)
        self.supplies[name] = rail
        return rail

    def set_supply_waveform(self, name: str,
                            waveform: Waveform | float) -> None:
        """Rebind a rail's waveform (e.g. a new noise trace per run)."""
        if name not in self.supplies:
            raise NetlistError(f"unknown supply rail {name!r}")
        if isinstance(waveform, (int, float)):
            waveform = ConstantWaveform(float(waveform))
        self.supplies[name].waveform = waveform

    def add_instance(self, name: str, cell: Cell,
                     connections: dict[str, str], *,
                     vdd: str, gnd: str) -> Instance:
        """Place a cell and wire its pins.

        Every cell pin must be mapped to an existing net; output pins
        claim exclusive drivership of their net.

        Raises:
            NetlistError: duplicate instance, unknown net/rail,
                unconnected pin, or multiply-driven net.
        """
        if name in self.instances:
            raise NetlistError(f"duplicate instance name {name!r}")
        if vdd not in self.supplies or gnd not in self.supplies:
            raise NetlistError(
                f"instance {name}: unknown supply {vdd!r} or {gnd!r}"
            )
        for pin_name in cell.pins:
            if pin_name not in connections:
                raise NetlistError(
                    f"instance {name}: pin {pin_name!r} left unconnected"
                )
        for pin_name, net_name in connections.items():
            pin = cell.pin(pin_name)  # validates pin name
            if net_name not in self.nets:
                raise NetlistError(
                    f"instance {name}: pin {pin_name!r} wired to unknown "
                    f"net {net_name!r}"
                )
            del pin
        inst = Instance(name=name, cell=cell,
                        connections=dict(connections), vdd=vdd, gnd=gnd)
        for pin_name, net_name in connections.items():
            ref = _PinRef(instance=inst, pin_name=pin_name)
            if ref.pin.direction is PinDirection.OUTPUT:
                if net_name in self._driver:
                    other = self._driver[net_name]
                    raise NetlistError(
                        f"net {net_name!r} driven by both "
                        f"{other.instance.name}.{other.pin_name} and "
                        f"{name}.{pin_name}"
                    )
                if net_name in self._external_inputs:
                    raise NetlistError(
                        f"net {net_name!r} is an external input and cannot "
                        f"also be driven by {name}.{pin_name}"
                    )
                self._driver[net_name] = ref
            else:
                self._sinks[net_name].append(ref)
        self.instances[name] = inst
        return inst

    def mark_external_input(self, net_name: str) -> None:
        """Declare a net as externally driven (stimulus only)."""
        if net_name not in self.nets:
            raise NetlistError(f"unknown net {net_name!r}")
        if net_name in self._driver:
            ref = self._driver[net_name]
            raise NetlistError(
                f"net {net_name!r} already driven by "
                f"{ref.instance.name}.{ref.pin_name}"
            )
        self._external_inputs.add(net_name)

    def _check_fresh_name(self, name: str) -> None:
        if name in self.nets or name in self.supplies:
            raise NetlistError(f"duplicate net/supply name {name!r}")

    # -- queries ----------------------------------------------------------

    def sinks_of(self, net_name: str) -> list[_PinRef]:
        """Input-pin endpoints fanned out from a net."""
        if net_name not in self.nets:
            raise NetlistError(f"unknown net {net_name!r}")
        return list(self._sinks[net_name])

    def driver_of(self, net_name: str) -> _PinRef | None:
        """The output pin driving a net, or None for inputs/floaters."""
        return self._driver.get(net_name)

    def is_external_input(self, net_name: str) -> bool:
        return net_name in self._external_inputs

    def load_of(self, net_name: str) -> float:
        """Total capacitive load on a net, farads.

        Sum of fanout input-pin capacitances plus the explicit net
        capacitor.  This is the ``C_load`` handed to the driving cell's
        delay model (the driver's own intrinsic cap lives inside the
        cell model).
        """
        net = self.nets.get(net_name)
        if net is None:
            raise NetlistError(f"unknown net {net_name!r}")
        return net.extra_cap + sum(
            ref.pin.cap for ref in self._sinks[net_name]
        )

    def supply_of(self, inst: Instance, t: float) -> float:
        """Effective supply (vdd - gnd) seen by an instance at time t."""
        vdd = self.supplies[inst.vdd].voltage(t)
        gnd = self.supplies[inst.gnd].voltage(t)
        return vdd - gnd

    def validate(self) -> None:
        """Structural sanity check of the whole netlist.

        Ensures every instance input is driven (by a gate or declared
        external input).  Floating *outputs* are allowed (observation
        points may be unconnected).

        Raises:
            NetlistError: describing the first violation found.
        """
        for net_name, sinks in self._sinks.items():
            if not sinks:
                continue
            if net_name in self._driver:
                continue
            if net_name in self._external_inputs:
                continue
            consumer = sinks[0]
            raise NetlistError(
                f"net {net_name!r} feeds "
                f"{consumer.instance.name}.{consumer.pin_name} but has no "
                f"driver and is not a declared external input"
            )

    def stats(self) -> dict[str, int]:
        """Cell-count accounting (used by the overhead bench)."""
        counts: dict[str, int] = {}
        for inst in self.instances.values():
            key = type(inst.cell).__name__
            counts[key] = counts.get(key, 0) + 1
        counts["#nets"] = len(self.nets)
        counts["#instances"] = len(self.instances)
        return counts

    def iter_instances(self) -> Iterable[Instance]:
        return self.instances.values()
