"""Transition recording and post-simulation queries.

The trace is the reproduction's waveform viewer: every net transition is
recorded as ``(time, value)``, queryable by time, and exportable as a
text table for the figure benches (which print the same signal
sequences the paper's ELDO plots show).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Sequence

from repro.cells.base import LogicValue, UNKNOWN
from repro.errors import SimulationError


@dataclass(frozen=True)
class SampleRecord:
    """One flip-flop sampling event captured during simulation.

    Attributes:
        time: Clock-edge time, seconds.
        instance: Flip-flop instance name.
        outcome: Name of the :class:`~repro.cells.sequential.SampleOutcome`.
        value: Captured value.
        clk_to_q: Resolution delay of this event, seconds.
        setup_margin: Setup margin, seconds.
    """

    time: float
    instance: str
    outcome: str
    value: LogicValue
    clk_to_q: float
    setup_margin: float


class Trace:
    """Per-net transition history."""

    def __init__(self) -> None:
        self._times: dict[str, list[float]] = {}
        self._values: dict[str, list[LogicValue]] = {}
        self.samples: list[SampleRecord] = []

    def record(self, net: str, time: float, value: LogicValue) -> None:
        """Append one transition (times must be non-decreasing per net)."""
        times = self._times.setdefault(net, [])
        values = self._values.setdefault(net, [])
        if times and time < times[-1]:
            raise SimulationError(
                f"trace for {net!r}: non-monotonic time {time} < {times[-1]}"
            )
        times.append(time)
        values.append(value)

    def record_sample(self, rec: SampleRecord) -> None:
        self.samples.append(rec)

    # -- queries --------------------------------------------------------

    def nets(self) -> list[str]:
        return sorted(self._times)

    def transitions(self, net: str) -> list[tuple[float, LogicValue]]:
        """All recorded transitions of a net, in time order."""
        times = self._times.get(net, [])
        values = self._values.get(net, [])
        return list(zip(times, values))

    def value_at(self, net: str, t: float) -> LogicValue:
        """Net value at time ``t`` (UNKNOWN before the first record)."""
        times = self._times.get(net)
        if not times:
            return UNKNOWN
        i = bisect.bisect_right(times, t) - 1
        if i < 0:
            return UNKNOWN
        return self._values[net][i]

    def last_transition_at_or_before(
            self, net: str, t: float) -> tuple[float, LogicValue] | None:
        """Most recent (time, value) record at or before ``t``."""
        times = self._times.get(net)
        if not times:
            return None
        i = bisect.bisect_right(times, t) - 1
        if i < 0:
            return None
        return times[i], self._values[net][i]

    def edges(self, net: str, *, rising: bool | None = None
              ) -> list[float]:
        """Times of value edges on a net.

        Args:
            net: Net name.
            rising: True for 0->1 edges only, False for 1->0 only,
                None for both.
        """
        out: list[float] = []
        prev: LogicValue = UNKNOWN
        for t, v in self.transitions(net):
            if prev == 0 and v == 1 and rising in (None, True):
                out.append(t)
            elif prev == 1 and v == 0 and rising in (None, False):
                out.append(t)
            prev = v
        return out

    def samples_for(self, instance: str) -> list[SampleRecord]:
        """All sampling records of one flip-flop instance."""
        return [s for s in self.samples if s.instance == instance]

    # -- rendering ------------------------------------------------------

    @staticmethod
    def _fmt_value(v: LogicValue) -> str:
        return "X" if v is UNKNOWN else str(v)

    def format_table(self, nets: Sequence[str], *,
                     time_unit: float = 1e-12,
                     unit_label: str = "ps") -> str:
        """ASCII table of the merged transitions of selected nets.

        One row per event time at which any selected net changes; the
        output reads like the signal listings under the paper's figures.
        """
        event_times = sorted({
            t for net in nets for t, _ in self.transitions(net)
        })
        header = f"{'time [' + unit_label + ']':>14} " + " ".join(
            f"{net:>10}" for net in nets
        )
        lines = [header, "-" * len(header)]
        for t in event_times:
            row = f"{t / time_unit:>14.2f} " + " ".join(
                f"{self._fmt_value(self.value_at(net, t)):>10}"
                for net in nets
            )
            lines.append(row)
        return "\n".join(lines)
