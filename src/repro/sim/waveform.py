"""Voltage/current waveforms for supply nets and stimuli.

A waveform is anything callable as ``w(t) -> float`` (volts or amperes).
The concrete classes here cover what the PSN experiments need: constant
rails, piecewise-linear traces produced by the PDN solver, analytic
droop/resonance shapes, and sums of the above.  All are immutable and
cheap to evaluate at a single time point, which is the access pattern of
the event engine (one supply lookup per switching event).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError


@runtime_checkable
class Waveform(Protocol):
    """Anything evaluable at a time point."""

    def __call__(self, t: float) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class ConstantWaveform:
    """A flat rail: ``w(t) = value`` for all ``t``."""

    value: float

    def __call__(self, t: float) -> float:
        return self.value


@dataclass(frozen=True)
class StepWaveform:
    """A step: ``before`` until ``t_step``, ``after`` from then on.

    Models the simplest PSN event — an abrupt supply change between two
    measures, as in the paper's Fig. 3/Fig. 9 experiments where the two
    SENSE phases see 1.00 V and then 0.95 V / 0.90 V.
    """

    before: float
    after: float
    t_step: float

    def __call__(self, t: float) -> float:
        return self.before if t < self.t_step else self.after


class PiecewiseLinearWaveform:
    """Linear interpolation through ``(time, value)`` breakpoints.

    Outside the breakpoint range the waveform holds the first/last
    value.  Times must be strictly increasing.
    """

    def __init__(self, times: Sequence[float],
                 values: Sequence[float]) -> None:
        t = np.asarray(times, dtype=float)
        v = np.asarray(values, dtype=float)
        if t.size != v.size or t.size < 1:
            raise ConfigurationError(
                "times and values must be equal-length and non-empty"
            )
        if t.size > 1 and not np.all(np.diff(t) > 0):
            raise ConfigurationError("times must be strictly increasing")
        if not (np.all(np.isfinite(t)) and np.all(np.isfinite(v))):
            raise ConfigurationError("breakpoints must be finite")
        self._times = t
        self._values = v

    @property
    def times(self) -> np.ndarray:
        return self._times.copy()

    @property
    def values(self) -> np.ndarray:
        return self._values.copy()

    def __call__(self, t: float) -> float:
        times = self._times
        values = self._values
        if t <= times[0]:
            return float(values[0])
        if t >= times[-1]:
            return float(values[-1])
        i = bisect.bisect_right(times, t) - 1
        t0, t1 = times[i], times[i + 1]
        v0, v1 = values[i], values[i + 1]
        frac = (t - t0) / (t1 - t0)
        return float(v0 + frac * (v1 - v0))

    def sample(self, ts: Sequence[float]) -> np.ndarray:
        """Vectorized evaluation at many time points."""
        return np.interp(np.asarray(ts, dtype=float),
                         self._times, self._values)

    def min_over(self, t0: float, t1: float) -> float:
        """Minimum value on ``[t0, t1]`` (breakpoints + endpoints)."""
        return self._extreme_over(t0, t1, np.min)

    def max_over(self, t0: float, t1: float) -> float:
        """Maximum value on ``[t0, t1]`` (breakpoints + endpoints)."""
        return self._extreme_over(t0, t1, np.max)

    def _extreme_over(self, t0: float, t1: float, reducer) -> float:
        if t1 < t0:
            raise ConfigurationError("interval must have t1 >= t0")
        inner = self._times[(self._times > t0) & (self._times < t1)]
        candidates = np.concatenate(
            [[self(t0), self(t1)], self.sample(inner)]
        )
        return float(reducer(candidates))


@dataclass(frozen=True)
class DampedSineWaveform:
    """A decaying sinusoid riding on a base level.

    ``w(t) = base + amplitude * exp(-(t - t0)/decay) * sin(2*pi*freq*(t - t0))``
    for ``t >= t0``, else ``base``.  This is the canonical first-droop /
    package-resonance PSN shape (the mid-frequency resonance of an RLC
    power delivery network).
    """

    base: float
    amplitude: float
    freq: float
    decay: float
    t0: float = 0.0

    def __post_init__(self) -> None:
        if self.freq <= 0 or self.decay <= 0:
            raise ConfigurationError("freq and decay must be positive")

    def __call__(self, t: float) -> float:
        if t < self.t0:
            return self.base
        dt = t - self.t0
        return self.base + self.amplitude * math.exp(-dt / self.decay) \
            * math.sin(2.0 * math.pi * self.freq * dt)


class SumWaveform:
    """Pointwise sum of component waveforms (noise superposition)."""

    def __init__(self, components: Sequence[Waveform]) -> None:
        if not components:
            raise ConfigurationError("SumWaveform needs at least one part")
        self._components = tuple(components)

    @property
    def components(self) -> tuple[Waveform, ...]:
        return self._components

    def __call__(self, t: float) -> float:
        return sum(w(t) for w in self._components)


class ScaledWaveform:
    """``scale * w(t) + offset`` — e.g. flip the sign of ground bounce."""

    def __init__(self, inner: Waveform, *, scale: float = 1.0,
                 offset: float = 0.0) -> None:
        self._inner = inner
        self._scale = scale
        self._offset = offset

    def __call__(self, t: float) -> float:
        return self._scale * self._inner(t) + self._offset
