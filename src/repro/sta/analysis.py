"""Arrival propagation, slack and critical-path extraction."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, TimingViolationError
from repro.sim.netlist import Netlist
from repro.sta.delay_calc import DelayCalculator
from repro.sta.graph import TimingEdge, TimingGraph


@dataclass(frozen=True)
class PathSegment:
    """One hop of a reported timing path."""

    net: str
    instance: str
    input_pin: str
    output_pin: str
    delay: float
    cumulative: float


@dataclass(frozen=True)
class TimingReport:
    """Result of one STA run.

    Attributes:
        arrivals: Latest arrival per net, seconds.
        endpoint_slacks: Per-FF-D-net slack against the clock period
            (positive = met), seconds.  Empty when no period was given.
        critical_endpoint: The endpoint with the worst slack / largest
            arrival-plus-setup.
        critical_path: Launch-to-capture segments of the worst path.
        min_period: Smallest clock period closing timing, seconds.
        clock_period: The analyzed period (None for unconstrained runs).
    """

    arrivals: dict[str, float]
    endpoint_slacks: dict[str, float]
    critical_endpoint: str
    critical_path: tuple[PathSegment, ...]
    min_period: float
    clock_period: float | None

    @property
    def wns(self) -> float:
        """Worst negative slack (or worst slack if all positive).

        Raises:
            ConfigurationError: for unconstrained reports.
        """
        if not self.endpoint_slacks:
            raise ConfigurationError("report has no period constraint")
        return min(self.endpoint_slacks.values())

    def require_closure(self) -> None:
        """Raise when any endpoint violates the period.

        Raises:
            TimingViolationError: listing the worst violator.
        """
        if self.endpoint_slacks and self.wns < 0:
            worst = min(self.endpoint_slacks,
                        key=self.endpoint_slacks.__getitem__)
            raise TimingViolationError(
                f"negative slack {self.endpoint_slacks[worst]:.3e}s at "
                f"{worst}"
            )


def analyze(netlist: Netlist, *, clock_period: float | None = None,
            calculator: DelayCalculator | None = None) -> TimingReport:
    """Run STA over a netlist.

    Args:
        netlist: The design to analyze.
        clock_period: Optional constraint for slack computation.
        calculator: Supply-aware delay calculator (default analytic at
            the rails' t=0 levels).

    Raises:
        ConfigurationError: when the netlist has no capture endpoints.
    """
    graph = TimingGraph.build(netlist, calculator)
    arrivals: dict[str, float] = dict(graph.launch_arrivals)
    worst_in_edge: dict[str, TimingEdge] = {}

    for net in graph.topo_order:
        for e in graph.edges_from.get(net, ()):
            src_arrival = arrivals.get(net)
            if src_arrival is None:
                continue  # unreachable net (e.g. floating input)
            candidate = src_arrival + e.delay
            if candidate > arrivals.get(e.to_net, float("-inf")):
                arrivals[e.to_net] = candidate
                worst_in_edge[e.to_net] = e

    if not graph.capture_setups:
        raise ConfigurationError(
            "netlist has no flip-flop capture endpoints to analyze"
        )

    def endpoint_cost(net: str) -> float:
        return arrivals.get(net, 0.0) + graph.capture_setups[net]

    critical_ep = max(graph.capture_setups, key=endpoint_cost)
    min_period = endpoint_cost(critical_ep)

    slacks: dict[str, float] = {}
    if clock_period is not None:
        if clock_period <= 0:
            raise ConfigurationError("clock_period must be positive")
        slacks = {
            net: clock_period - endpoint_cost(net)
            for net in graph.capture_setups
        }

    # Backtrack the critical path from the endpoint to its launch.
    segments: list[PathSegment] = []
    net = critical_ep
    while net in worst_in_edge:
        e = worst_in_edge[net]
        segments.append(PathSegment(
            net=net,
            instance=e.instance,
            input_pin=e.input_pin,
            output_pin=e.output_pin,
            delay=e.delay,
            cumulative=arrivals[net],
        ))
        net = e.from_net
    segments.reverse()

    return TimingReport(
        arrivals=arrivals,
        endpoint_slacks=slacks,
        critical_endpoint=critical_ep,
        critical_path=tuple(segments),
        min_period=min_period,
        clock_period=clock_period,
    )


def critical_path(netlist: Netlist, *,
                  calculator: DelayCalculator | None = None
                  ) -> tuple[PathSegment, ...]:
    """Convenience: just the worst launch-to-capture path."""
    return analyze(netlist, calculator=calculator).critical_path


def min_clock_period(netlist: Netlist, *,
                     calculator: DelayCalculator | None = None) -> float:
    """Convenience: the smallest period that closes timing, seconds."""
    return analyze(netlist, calculator=calculator).min_period
