"""PSN-aware static timing analysis.

The authors' companion methodology (their ref [9], "Including Power
Supply Variations into Static Timing Analysis") folds supply levels
into STA delay calculation.  This package implements that flow over the
reproduction's netlists: per-instance supply-aware delay calculation
(analytic or NLDM-table driven), topological arrival propagation, slack
against a clock period, and critical-path extraction — used to
reproduce the paper's "critical path of the whole control system at
90nm is 1.22ns" claim.
"""

from repro.sta.graph import TimingGraph, TimingEdge
from repro.sta.delay_calc import DelayCalculator
from repro.sta.analysis import (
    TimingReport,
    PathSegment,
    analyze,
    critical_path,
    min_clock_period,
)

__all__ = [
    "TimingGraph",
    "TimingEdge",
    "DelayCalculator",
    "TimingReport",
    "PathSegment",
    "analyze",
    "critical_path",
    "min_clock_period",
]
