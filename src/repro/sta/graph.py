"""Timing graph construction from a netlist.

Nodes are nets; edges are cell timing arcs (one per input→output pin
pair of each combinational instance).  Sequential cells break the
graph: their Q nets are *launch* points (arrival = clock-to-Q) and
their D nets are *capture* endpoints (required = period − setup).
External input nets launch at t = 0.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.cells.base import PinDirection
from repro.cells.sequential import DFlipFlop
from repro.errors import NetlistError
from repro.sim.netlist import Instance, Netlist
from repro.sta.delay_calc import DelayCalculator


@dataclass(frozen=True)
class TimingEdge:
    """One timing arc: ``from_net`` through a cell to ``to_net``."""

    from_net: str
    to_net: str
    instance: str
    input_pin: str
    output_pin: str
    delay: float


@dataclass
class TimingGraph:
    """The levelized arc graph of one netlist.

    Attributes:
        netlist: Source netlist.
        edges_from: Outgoing arcs per net.
        edges_to: Incoming arcs per net.
        launch_arrivals: Initial arrival per launch net, seconds.
        capture_setups: Setup time per capture (FF D) net, seconds.
        capture_clk_to_q: Clock-to-Q used for launch FFs, seconds.
        topo_order: Nets in topological order.
    """

    netlist: Netlist
    edges_from: dict[str, list[TimingEdge]] = field(default_factory=dict)
    edges_to: dict[str, list[TimingEdge]] = field(default_factory=dict)
    launch_arrivals: dict[str, float] = field(default_factory=dict)
    capture_setups: dict[str, float] = field(default_factory=dict)
    #: Launch nets that are flip-flop Q outputs (same-clock launches);
    #: hold analysis seeds only from these — primary inputs are treated
    #: as unconstrained for min-delay checks, per standard STA practice.
    sequential_launch_nets: set[str] = field(default_factory=set)
    topo_order: list[str] = field(default_factory=list)

    @classmethod
    def build(cls, netlist: Netlist,
              calculator: DelayCalculator | None = None) -> "TimingGraph":
        """Construct the graph and compute every arc delay.

        Raises:
            NetlistError: on a combinational cycle.
        """
        calc = calculator if calculator is not None else \
            DelayCalculator(netlist)
        graph = cls(netlist=netlist)

        for inst in netlist.iter_instances():
            if inst.cell.is_sequential:
                graph._add_sequential(inst, calc)
            else:
                graph._add_combinational(inst, calc)
        for net in netlist.nets:
            if netlist.is_external_input(net):
                graph.launch_arrivals.setdefault(net, 0.0)
        graph._toposort()
        return graph

    def _add_combinational(self, inst: Instance,
                           calc: DelayCalculator) -> None:
        in_pins = [p for p in inst.cell.input_pins]
        out_pins = [p for p in inst.cell.output_pins]
        for ip in in_pins:
            for op in out_pins:
                edge = TimingEdge(
                    from_net=inst.net_of(ip.name),
                    to_net=inst.net_of(op.name),
                    instance=inst.name,
                    input_pin=ip.name,
                    output_pin=op.name,
                    delay=calc.arc_delay(inst, ip.name, op.name),
                )
                self.edges_from.setdefault(edge.from_net, []).append(edge)
                self.edges_to.setdefault(edge.to_net, []).append(edge)

    def _add_sequential(self, inst: Instance,
                        calc: DelayCalculator) -> None:
        cell = inst.cell
        if not isinstance(cell, DFlipFlop):
            raise NetlistError(
                f"STA supports DFlipFlop sequentials, got "
                f"{type(cell).__name__}"
            )
        supply = calc.supply_of(inst)
        scale = (cell.model.voltage_factor(supply)
                 / cell.model.voltage_factor(cell.tech.vdd_nominal))
        q_net = inst.net_of("Q")
        d_net = inst.net_of("D")
        launch = cell.clk_to_q * scale
        prev = self.launch_arrivals.get(q_net)
        self.launch_arrivals[q_net] = max(launch, prev or 0.0)
        self.sequential_launch_nets.add(q_net)
        setup = cell.setup_time * scale
        prev_setup = self.capture_setups.get(d_net)
        self.capture_setups[d_net] = max(setup, prev_setup or 0.0)

    def _toposort(self) -> None:
        """Kahn's algorithm over nets reachable through arcs."""
        indeg: dict[str, int] = {net: 0 for net in self.netlist.nets}
        for edges in self.edges_from.values():
            for e in edges:
                indeg[e.to_net] += 1
        queue = deque(net for net, d in indeg.items() if d == 0)
        order: list[str] = []
        while queue:
            net = queue.popleft()
            order.append(net)
            for e in self.edges_from.get(net, ()):
                indeg[e.to_net] -= 1
                if indeg[e.to_net] == 0:
                    queue.append(e.to_net)
        if len(order) != len(indeg):
            cyclic = sorted(net for net, d in indeg.items() if d > 0)
            raise NetlistError(
                f"combinational cycle through nets: {cyclic[:8]}"
            )
        self.topo_order = order

    @property
    def endpoint_nets(self) -> list[str]:
        """Capture endpoints (FF D nets), sorted."""
        return sorted(self.capture_setups)
