"""Supply-aware arc delay calculation.

Two modes:

* ``"analytic"`` — call the cell's alpha-power delay directly;
* ``"nldm"`` — interpolate characterized lookup tables (built lazily,
  one per cell class+strength), mirroring an industrial Liberty flow.

Either way the supply voltage entering the calculation is the
*instance's own rails* (``vdd(t0) - gnd(t0)``), optionally overridden
per instance — which is precisely how the authors' ref [9] folds power
supply variation into STA: a gate on a droopy rail region is timed at
its local voltage.
"""

from __future__ import annotations

from typing import Literal

from repro.cells.base import Cell
from repro.cells.characterize import NLDMTable, characterize_cell
from repro.errors import ConfigurationError
from repro.sim.netlist import Instance, Netlist

Mode = Literal["analytic", "nldm"]


class DelayCalculator:
    """Computes timing-arc delays for a netlist.

    Args:
        netlist: The netlist being analyzed.
        mode: ``"analytic"`` or ``"nldm"``.
        at_time: Instant at which supply rails are evaluated (static
            analysis samples the rails once), seconds.
        supply_overrides: Per-instance effective supply, volts —
            overrides the rail lookup (used for what-if/IR-drop STA).
    """

    def __init__(self, netlist: Netlist, *, mode: Mode = "analytic",
                 at_time: float = 0.0,
                 supply_overrides: dict[str, float] | None = None
                 ) -> None:
        if mode not in ("analytic", "nldm"):
            raise ConfigurationError(f"unknown mode {mode!r}")
        self.netlist = netlist
        self.mode = mode
        self.at_time = at_time
        self.supply_overrides = dict(supply_overrides or {})
        self._tables: dict[tuple, NLDMTable] = {}

    def supply_of(self, inst: Instance) -> float:
        """Effective supply used to time one instance."""
        if inst.name in self.supply_overrides:
            return self.supply_overrides[inst.name]
        return self.netlist.supply_of(inst, self.at_time)

    def _table_for(self, cell: Cell, input_pin: str,
                   output_pin: str) -> NLDMTable:
        key = (type(cell).__name__, cell.strength, input_pin, output_pin,
               getattr(cell, "internal_cap", None))
        if key not in self._tables:
            self._tables[key] = characterize_cell(
                cell, input_pin=input_pin, output_pin=output_pin,
            )
        return self._tables[key]

    def arc_delay(self, inst: Instance, input_pin: str,
                  output_pin: str) -> float:
        """Delay of one cell arc under the instance's supply and load."""
        out_net = inst.net_of(output_pin)
        load = self.netlist.load_of(out_net)
        supply = self.supply_of(inst)
        if self.mode == "analytic":
            return inst.cell.propagation_delay(
                input_pin, output_pin, supply, load
            )
        # Per-arc tables are characterized through propagation_delay,
        # so logical effort is already folded in.
        table = self._table_for(inst.cell, input_pin, output_pin)
        return table.lookup(supply, load)
