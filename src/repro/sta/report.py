"""Human-readable timing reports (PrimeTime-style text).

Formats the results of :func:`repro.sta.analysis.analyze` and
:func:`repro.sta.hold.analyze_hold` into the path tables timing
engineers expect: per-segment arc, incremental and cumulative delay,
then the endpoint summary with slack.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sta.analysis import TimingReport
from repro.sta.hold import HoldReport
from repro.units import to_ps


def _rule(width: int = 64) -> str:
    return "-" * width


def format_setup_report(report: TimingReport, *,
                        max_endpoints: int = 10) -> str:
    """Render a max-delay (setup) report.

    Args:
        report: The analysis result.
        max_endpoints: How many worst endpoints to list.

    Raises:
        ConfigurationError: non-positive endpoint count.
    """
    if max_endpoints < 1:
        raise ConfigurationError("max_endpoints must be positive")
    lines: list[str] = []
    lines.append("Setup (max-delay) report")
    lines.append(_rule())
    lines.append(f"critical endpoint : {report.critical_endpoint}")
    lines.append(f"min clock period  : {to_ps(report.min_period):.1f} ps")
    if report.clock_period is not None:
        lines.append(
            f"constraint        : {to_ps(report.clock_period):.1f} ps "
            f"(WNS {to_ps(report.wns):+.1f} ps)"
        )
    lines.append("")
    lines.append("critical path (launch -> capture):")
    lines.append(f"{'instance':<24}{'arc':<10}{'incr [ps]':>10}"
                 f"{'path [ps]':>11}")
    lines.append(_rule(55))
    for seg in report.critical_path:
        lines.append(
            f"{seg.instance:<24}{seg.input_pin + '->' + seg.output_pin:<10}"
            f"{to_ps(seg.delay):>10.1f}{to_ps(seg.cumulative):>11.1f}"
        )
    if not report.critical_path:
        lines.append("(direct launch-to-capture, no combinational arcs)")
    if report.endpoint_slacks:
        lines.append("")
        lines.append(f"worst {max_endpoints} endpoints by slack:")
        lines.append(f"{'endpoint':<32}{'slack [ps]':>12}")
        lines.append(_rule(44))
        ranked = sorted(report.endpoint_slacks.items(),
                        key=lambda kv: kv[1])
        for net, slack in ranked[:max_endpoints]:
            marker = "  (VIOLATED)" if slack < 0 else ""
            lines.append(f"{net:<32}{to_ps(slack):>12.1f}{marker}")
    return "\n".join(lines)


def format_hold_report(report: HoldReport, *,
                       max_endpoints: int = 10) -> str:
    """Render a min-delay (hold) report."""
    if max_endpoints < 1:
        raise ConfigurationError("max_endpoints must be positive")
    lines: list[str] = []
    lines.append("Hold (min-delay) report")
    lines.append(_rule())
    lines.append(f"worst endpoint : {report.worst_endpoint}")
    lines.append(f"worst slack    : {to_ps(report.whs):+.1f} ps "
                 f"({'clean' if report.clean else 'VIOLATED'})")
    lines.append("")
    if report.shortest_path:
        lines.append("fastest path (launch -> capture):")
        lines.append(f"{'instance':<24}{'arc':<10}{'incr [ps]':>10}"
                     f"{'path [ps]':>11}")
        lines.append(_rule(55))
        for seg in report.shortest_path:
            lines.append(
                f"{seg.instance:<24}"
                f"{seg.input_pin + '->' + seg.output_pin:<10}"
                f"{to_ps(seg.delay):>10.1f}"
                f"{to_ps(seg.cumulative):>11.1f}"
            )
    else:
        lines.append("fastest path: direct FF-to-FF (clk-to-Q only)")
    lines.append("")
    lines.append(f"worst {max_endpoints} endpoints by hold slack:")
    lines.append(f"{'endpoint':<32}{'slack [ps]':>12}")
    lines.append(_rule(44))
    ranked = sorted(report.hold_slacks.items(), key=lambda kv: kv[1])
    for net, slack in ranked[:max_endpoints]:
        marker = "  (VIOLATED)" if slack < 0 else ""
        lines.append(f"{net:<32}{to_ps(slack):>12.1f}{marker}")
    return "\n".join(lines)
