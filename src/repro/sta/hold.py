"""Hold (min-delay) analysis.

The max-delay pass in :mod:`repro.sta.analysis` answers "can the clock
be this fast?"; the hold pass answers "does fast data race through and
corrupt the *same-edge* capture?" — the failure the event engine models
as hold corruption.  For each capture FF the earliest possible data
arrival (launch clock-to-Q plus the *shortest* combinational path) must
exceed the FF's hold time:

    hold_slack = min_arrival - t_hold        (>= 0 required)

Useful in this reproduction both as a completeness feature of the STA
substrate and as a real check on the control netlist (short FSM
feedback paths are classic hold risks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.sequential import DFlipFlop
from repro.errors import ConfigurationError
from repro.sim.netlist import Netlist
from repro.sta.analysis import PathSegment
from repro.sta.delay_calc import DelayCalculator
from repro.sta.graph import TimingEdge, TimingGraph


@dataclass(frozen=True)
class HoldReport:
    """Result of one hold-analysis run.

    Attributes:
        min_arrivals: Earliest arrival per net, seconds.
        hold_slacks: Per-FF-D-net hold slack (positive = safe), s.
        worst_endpoint: The endpoint with the smallest slack.
        shortest_path: Launch-to-capture segments of the worst (i.e.
            fastest) path.
    """

    min_arrivals: dict[str, float]
    hold_slacks: dict[str, float]
    worst_endpoint: str
    shortest_path: tuple[PathSegment, ...]

    @property
    def whs(self) -> float:
        """Worst hold slack."""
        return min(self.hold_slacks.values())

    @property
    def clean(self) -> bool:
        return self.whs >= 0.0


def _hold_times(netlist: Netlist,
                calc: DelayCalculator) -> dict[str, float]:
    """Per-capture-net hold requirement (supply-scaled)."""
    out: dict[str, float] = {}
    for inst in netlist.iter_instances():
        if not isinstance(inst.cell, DFlipFlop):
            continue
        cell = inst.cell
        supply = calc.supply_of(inst)
        scale = (cell.model.voltage_factor(supply)
                 / cell.model.voltage_factor(cell.tech.vdd_nominal))
        d_net = inst.net_of("D")
        req = cell.hold_time * scale
        out[d_net] = max(out.get(d_net, 0.0), req)
    return out


def analyze_hold(netlist: Netlist, *,
                 calculator: DelayCalculator | None = None
                 ) -> HoldReport:
    """Run min-delay propagation and hold checks.

    Raises:
        ConfigurationError: when the netlist has no capture endpoints.
    """
    calc = calculator if calculator is not None else \
        DelayCalculator(netlist)
    graph = TimingGraph.build(netlist, calc)
    if not graph.capture_setups:
        raise ConfigurationError(
            "netlist has no flip-flop capture endpoints to analyze"
        )
    holds = _hold_times(netlist, calc)

    # Seed only from clocked launches: a primary input changing at the
    # clock edge is an input-constraint question, not a same-edge race.
    arrivals: dict[str, float] = {
        net: t for net, t in graph.launch_arrivals.items()
        if net in graph.sequential_launch_nets
    }
    best_in_edge: dict[str, TimingEdge] = {}
    for net in graph.topo_order:
        for e in graph.edges_from.get(net, ()):
            src = arrivals.get(net)
            if src is None:
                continue
            candidate = src + e.delay
            if candidate < arrivals.get(e.to_net, float("inf")):
                arrivals[e.to_net] = candidate
                best_in_edge[e.to_net] = e

    # Endpoints never reached from a clocked launch are unconstrained
    # (fed by primary inputs only) and are excluded from the checks.
    slacks = {
        net: arrivals[net] - holds.get(net, 0.0)
        for net in graph.capture_setups
        if net in arrivals
    }
    if not slacks:
        raise ConfigurationError(
            "no hold-constrained endpoints (every capture FF is fed "
            "directly from primary inputs)"
        )
    worst = min(slacks, key=slacks.__getitem__)

    segments: list[PathSegment] = []
    net = worst
    while net in best_in_edge:
        e = best_in_edge[net]
        segments.append(PathSegment(
            net=net,
            instance=e.instance,
            input_pin=e.input_pin,
            output_pin=e.output_pin,
            delay=e.delay,
            cumulative=arrivals[net],
        ))
        net = e.from_net
    segments.reverse()
    return HoldReport(
        min_arrivals=arrivals,
        hold_slacks=slacks,
        worst_endpoint=worst,
        shortest_path=tuple(segments),
    )
