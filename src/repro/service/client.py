"""Clients for the job server: a blocking socket client for the CLI
and an asyncio client for load generation.

Both speak the JSONL protocol of :mod:`repro.service.protocol` and are
stdlib-only.  The blocking :class:`ServiceClient` is what ``repro
submit`` uses — connect, pipeline requests, collect each id's single
terminal response.  The async :class:`AsyncServiceClient` is the
building block of the chaos drill's load generator
(:mod:`repro.service.chaos`) and the service benchmark.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
from typing import Iterable

from repro.errors import ProtocolError, ServiceError
from repro.service.protocol import encode_request, parse_response


def parse_address(address: str) -> tuple[str, "str | int | None"]:
    """``unix:/path`` -> ("unix", path); ``host:port`` -> (host, port)."""
    if address.startswith("unix:"):
        return "unix", address[len("unix:"):]
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ProtocolError(
            f"address {address!r} is neither 'unix:<path>' nor "
            f"'<host>:<port>'"
        )
    return host or "127.0.0.1", int(port)


class ServiceClient:
    """Blocking JSONL client (context manager).

    Args:
        address: ``unix:<path>`` or ``<host>:<port>``.
        timeout: Socket timeout, seconds, for connect and each read.
    """

    _ids = itertools.count(1)

    def __init__(self, address: str, *, timeout: float = 30.0) -> None:
        self.address = address
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None

    def connect(self) -> "ServiceClient":
        kind, where = parse_address(self.address)
        try:
            if kind == "unix":
                sock = socket.socket(socket.AF_UNIX,
                                     socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(str(where))
            else:
                sock = socket.create_connection(
                    (kind, int(where)), timeout=self.timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to {self.address}: {exc}"
            ) from exc
        self._sock = sock
        self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    def _require_open(self):
        if self._file is None:
            raise ServiceError("client is not connected")
        return self._file

    def request(self, kind: str, *, params: dict | None = None,
                tenant: str = "default",
                deadline_s: float | None = None,
                id: str | None = None) -> dict:
        """Send one request and block for its terminal response."""
        rid = id or f"c{next(self._ids)}"
        fh = self._require_open()
        fh.write(encode_request(rid, kind, tenant=tenant,
                                params=params or {},
                                deadline_s=deadline_s).encode())
        fh.flush()
        while True:
            line = fh.readline()
            if not line:
                raise ServiceError(
                    "connection closed before a terminal response"
                )
            response = parse_response(line)
            if response.get("id") == rid:
                return response

    def submit_many(self, requests: Iterable[dict]) -> dict[str, dict]:
        """Pipeline many requests; returns ``{id: response}``.

        Each ``request`` dict holds ``kind`` plus optional ``id`` /
        ``tenant`` / ``params`` / ``deadline_s``.  Every request sent
        on this connection gets exactly one terminal response here —
        including ones the server sheds.
        """
        fh = self._require_open()
        ids = []
        for req in requests:
            rid = req.get("id") or f"c{next(self._ids)}"
            ids.append(rid)
            fh.write(encode_request(
                rid, req["kind"], tenant=req.get("tenant", "default"),
                params=req.get("params") or {},
                deadline_s=req.get("deadline_s"),
            ).encode())
        fh.flush()
        out: dict[str, dict] = {}
        want = set(ids)
        while want:
            line = fh.readline()
            if not line:
                raise ServiceError(
                    f"connection closed with {len(want)} responses "
                    f"outstanding"
                )
            response = parse_response(line)
            rid = response.get("id")
            if rid in want:
                want.discard(rid)
            out[rid] = response
        return out


class AsyncServiceClient:
    """Asyncio JSONL client: one connection, pipelined requests."""

    def __init__(self, address: str) -> None:
        self.address = address
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "AsyncServiceClient":
        kind, where = parse_address(self.address)
        if kind == "unix":
            self._reader, self._writer = \
                await asyncio.open_unix_connection(str(where))
        else:
            self._reader, self._writer = \
                await asyncio.open_connection(kind, int(where))
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def send(self, rid: str, kind: str, *,
                   tenant: str = "default",
                   params: dict | None = None,
                   deadline_s: float | None = None) -> None:
        if self._writer is None:
            raise ServiceError("client is not connected")
        self._writer.write(encode_request(
            rid, kind, tenant=tenant, params=params or {},
            deadline_s=deadline_s,
        ).encode())
        await self._writer.drain()

    async def read_response(self) -> dict | None:
        """Next response line, or ``None`` at EOF."""
        if self._reader is None:
            raise ServiceError("client is not connected")
        line = await self._reader.readline()
        if not line:
            return None
        return parse_response(line)
