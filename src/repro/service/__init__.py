"""Sensing as a service: the fault-tolerant asyncio job server.

The serving stack over the measurement backends — many concurrent
clients, a sharded virtual-die fleet, and an explicit robustness
surface: bounded admission queues (the telemetry overflow policies),
per-tenant token buckets, per-request deadlines with cooperative
cancellation, per-shard circuit breakers, bounded retries with the
resilient runtime's deterministic backoff, and graceful degradation
through the result cache and reduced-resolution decodes.  See
:mod:`repro.service.server` for the full dataflow.
"""

from repro.service.admission import AdmissionQueue, TokenBucket
from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.chaos import LoadReport, build_load, run_load
from repro.service.client import AsyncServiceClient, ServiceClient, \
    parse_address
from repro.service.fleet import Fleet, FleetConfig, die_sample, \
    execute_job
from repro.service.protocol import (
    QUALITIES,
    REQUEST_KINDS,
    SERVICE_PROTOCOL,
    Request,
    encode_request,
    make_response,
    parse_request,
    parse_response,
)
from repro.service.server import JobServer

__all__ = [
    "AdmissionQueue",
    "AsyncServiceClient",
    "BreakerState",
    "CircuitBreaker",
    "Fleet",
    "FleetConfig",
    "JobServer",
    "LoadReport",
    "QUALITIES",
    "REQUEST_KINDS",
    "Request",
    "SERVICE_PROTOCOL",
    "ServiceClient",
    "TokenBucket",
    "build_load",
    "die_sample",
    "encode_request",
    "execute_job",
    "make_response",
    "parse_address",
    "parse_request",
    "parse_response",
    "run_load",
]
