"""The fault-tolerant asyncio job server (sensing as a service).

Many concurrent clients speak the JSONL protocol
(:mod:`repro.service.protocol`) over TCP or a unix socket; the server
routes their requests through the pluggable backend layer across a
sharded virtual-die fleet.  The robustness surface is the point — the
dataflow for every request is::

    tenant token bucket ──rejected──▶ REJECTED (TenantQuotaError)
        │ admitted
    shard admission queue (drop_oldest | block | error)
        │ queued                       └─▶ REJECTED (AdmissionRejectedError)
    deadline / breaker gate ──▶ ResultCache ──▶ DegradedArray ──▶ REJECTED
        │ execute (inline thread or shard process pool)
    bounded retries + backoff ──crash──▶ pool rebuild, attempt charged
        │ ok                  └─exhausted─▶ cache / degraded / error
    terminal response (quality: full | cached | degraded | rejected)

Guarantees the chaos drill asserts:

* every request receives **exactly one** terminal response (the
  ``Job.responded`` latch), whatever faults fire mid-flight;
* the server never crashes on poison requests, slow backends or
  killed workers — those surface as structured responses and counter
  increments;
* all shed paths are *explicit*: an evicted, over-quota or
  breaker-refused request gets a REJECTED reply naming the
  :class:`~repro.errors.ServiceError` subtype that shed it.

Deadlines are cooperative: the shard loop stops *awaiting* work at the
deadline (``asyncio.wait_for`` cancels the waiter); an inline worker
thread or pool process finishes its kernel batch in the background and
the result is discarded.  Retry backoff reuses the resilient runtime's
deterministic :class:`~repro.runtime.resilient.RetryPolicy` schedule.
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.backends import SensorBackend, resolve_backend
from repro.backends.faults import InjectedFaultError
from repro.core.calibration import paper_design
from repro.core.degraded import DegradedArray
from repro.errors import (
    AdmissionRejectedError,
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    ProtocolError,
    ReproError,
    ServiceError,
    TenantQuotaError,
)
from repro.runtime.cache import ResultCache, design_fingerprint, \
    resolve_cache, stable_hash, task_key
from repro.runtime.resilient import RetryPolicy
from repro.runtime.shm import SharedArrayPool, shm_counters, shm_enabled
from repro.service.admission import AdmissionQueue, TokenBucket
from repro.service.breaker import CircuitBreaker
from repro.service.fleet import Fleet, FleetConfig, execute_job
from repro.service.protocol import (
    Request,
    encode_response,
    make_response,
    parse_request,
)

#: Request kinds that can fall back to a reduced-resolution nominal
#: decode when the full path is unavailable.
DEGRADABLE_KINDS = ("measure", "characterize")

#: Kinds whose results are pure functions of the request (cacheable).
CACHEABLE_KINDS = ("measure", "characterize", "s_curve", "yield",
                   "window")


class _Connection:
    """One client socket: serialized writes, monotonic ids."""

    _ids = itertools.count(1)

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.id = next(self._ids)
        self.writer = writer
        self.lock = asyncio.Lock()
        self.open = True

    async def send(self, obj: dict) -> bool:
        """Write one response line; False when the peer is gone."""
        if not self.open:
            return False
        try:
            async with self.lock:
                self.writer.write(encode_response(obj))
                await self.writer.drain()
            return True
        except (ConnectionError, RuntimeError, OSError):
            self.open = False
            return False


@dataclass
class Job:
    """One admitted request in flight."""

    request: Request
    conn: _Connection
    shard: int
    payload: dict
    cache_key: str | None
    admitted_at: float
    deadline: float | None
    responded: bool = field(default=False)
    attempts: int = 0


class _Shard:
    """One shard: queue + breaker + its execution engine."""

    def __init__(self, index: int, *, queue: AdmissionQueue,
                 breaker: CircuitBreaker,
                 backend: SensorBackend | None,
                 pool_workers: int) -> None:
        self.index = index
        self.queue = queue
        self.breaker = breaker
        self.backend = backend          # inline mode
        self.pool_workers = pool_workers
        self.pool: ProcessPoolExecutor | None = None
        self.task: asyncio.Task | None = None
        self.pool_rebuilds = 0
        self.executed = 0

    def ensure_pool(self) -> ProcessPoolExecutor:
        if self.pool is None:
            self.pool = ProcessPoolExecutor(
                max_workers=self.pool_workers
            )
        return self.pool

    def rebuild_pool(self) -> None:
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
        self.pool = ProcessPoolExecutor(max_workers=self.pool_workers)
        self.pool_rebuilds += 1

    def close(self) -> None:
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
            self.pool = None


def _retryable(exc: BaseException) -> bool:
    """Transient failures retry; deterministic request bugs do not.

    Injected backend faults and worker crashes are weather; a
    :class:`~repro.errors.ReproError` other than those is the request
    (or driver capability) being wrong — retrying replays the same
    failure, so it surfaces immediately.
    """
    if isinstance(exc, (InjectedFaultError, BrokenProcessPool)):
        return True
    if isinstance(exc, ReproError):
        return False
    return isinstance(exc, Exception)


class JobServer:
    """Sensing-as-a-service over a sharded virtual-die fleet.

    Args:
        config: Fleet shape/seed (dies, shards, mismatch sigmas).
        backend: Measurement driver — a registry spec (``"kernel"``,
            ``"sim"``), a ready instance (shared by every shard), or a
            zero-arg factory (one instance per shard; how chaos drills
            install :class:`~repro.backends.FaultInjectingBackend`).
        executor: ``"inline"`` (worker threads; the default) or
            ``"pool"`` (one process pool per shard — survives worker
            SIGKILL via rebuild + retry; requires ``backend`` to be a
            spec string so pool workers can resolve their own driver).
        pool_workers: Processes per shard pool.
        queue_depth / queue_policy: Admission bound per shard and its
            overflow policy (``drop_oldest`` / ``block`` / ``error``).
        tenant_rate / tenant_burst: Token-bucket rate limit per
            tenant, requests/s and burst (``None``: unlimited).
        breaker_threshold / breaker_cooldown_s: Per-shard circuit
            breaker tuning.
        retry_policy: Backoff schedule for transient failures
            (default: 2 retries, 10 ms exponential base).
        cache: :class:`~repro.runtime.cache.ResultCache`, a directory
            path, or ``None`` (no caching, no cached fallbacks).
        default_deadline_s: Deadline applied to requests that name
            none (``None``: no implicit deadline).
        degrade_margin_s: When the remaining budget at execution time
            is below this, skip the full path and answer from
            cache/degraded immediately ("deadline is near").
        coalesce: Max compatible ``measure`` requests batched into a
            single backend call (1 disables coalescing).
        shm_min_levels: Pool mode only — a (possibly coalesced)
            ``measure`` level list at least this long is broadcast to
            the shard pool through shared memory
            (:mod:`repro.runtime.shm`) instead of riding the pickled
            payload; retries and rebuilt pools re-attach the same
            block.  Honors the ``$REPRO_SHM`` kill switch.
    """

    def __init__(self, *, config: FleetConfig | None = None,
                 backend: "SensorBackend | str | Callable[[], SensorBackend]" = "kernel",
                 executor: str = "inline",
                 pool_workers: int = 2,
                 queue_depth: int = 32,
                 queue_policy: str = "block",
                 tenant_rate: float | None = None,
                 tenant_burst: float | None = None,
                 breaker_threshold: int = 5,
                 breaker_cooldown_s: float = 0.5,
                 retry_policy: RetryPolicy | None = None,
                 cache: "ResultCache | str | None" = None,
                 default_deadline_s: float | None = None,
                 degrade_margin_s: float = 0.0,
                 coalesce: int = 8,
                 shm_min_levels: int = 64,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if executor not in ("inline", "pool"):
            raise ConfigurationError(
                f"executor must be 'inline' or 'pool', got {executor!r}"
            )
        if executor == "pool" and not isinstance(backend, str):
            raise ConfigurationError(
                "executor='pool' needs a backend spec string (pool "
                "workers resolve their own driver instance)"
            )
        if coalesce < 1:
            raise ConfigurationError("coalesce must be at least 1")
        if shm_min_levels < 1:
            raise ConfigurationError("shm_min_levels must be at least 1")
        if (tenant_rate is None) != (tenant_burst is None) \
                and tenant_burst is None:
            tenant_burst = tenant_rate
        self.config = config or FleetConfig()
        self.fleet = Fleet(self.config)
        self.executor = executor
        self.backend_arg = backend
        self.retry_policy = retry_policy or RetryPolicy(
            retries=2, backoff_base=0.01
        )
        self.cache = resolve_cache(cache)
        self.default_deadline_s = default_deadline_s
        self.degrade_margin_s = float(degrade_margin_s)
        self.coalesce = int(coalesce)
        self.shm_min_levels = int(shm_min_levels)
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self._clock = clock
        self._design = paper_design()
        self._buckets: dict[str, TokenBucket] = {}
        self._rr = itertools.count()
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[_Connection] = set()
        self._running = False
        self.shards = [
            _Shard(
                i,
                queue=AdmissionQueue(queue_depth, policy=queue_policy),
                breaker=CircuitBreaker(breaker_threshold,
                                       breaker_cooldown_s,
                                       clock=clock),
                backend=(None if executor == "pool"
                         else self._make_backend(backend)),
                pool_workers=pool_workers,
            )
            for i in range(self.config.n_shards)
        ]
        ref = self.shards[0].backend if executor == "inline" \
            else resolve_backend(backend)
        self._fingerprint = stable_hash((
            design_fingerprint(self._design, backend=ref),
            self.config,
        ))
        # Terminal-response bookkeeping (the chaos-drill invariants).
        self.counters: dict[str, int] = {
            "requests": 0, "responses": 0, "dropped_connections": 0,
            "protocol_errors": 0,
            "full": 0, "cached": 0, "degraded": 0, "rejected": 0,
            "errors": 0, "retries": 0, "crashes": 0, "deadline": 0,
            "shm_levels": 0,
        }

    def _make_backend(self, backend) -> SensorBackend:
        if callable(backend) and not isinstance(backend, SensorBackend):
            bk = backend()
        else:
            bk = resolve_backend(backend)
        bk.configure(self._design)
        return bk

    # -- degraded fallback -------------------------------------------------

    @functools.cached_property
    def _degraded_array(self) -> DegradedArray:
        """Nominal reduced-resolution array: every even stage masked.

        Half the rungs answer — twice the uncertainty, a fraction of
        the work, and no dependence on the (possibly broken) backend.
        """
        masked = tuple(range(2, self._design.n_bits + 1, 2))
        return DegradedArray(self._design, masked_bits=masked)

    def _degrade(self, job: Job) -> dict | None:
        """Reduced-resolution nominal answer, or None if not degradable."""
        if job.request.kind not in DEGRADABLE_KINDS:
            return None
        arr = self._degraded_array
        params = job.payload.get("params", {})
        code = int(params.get("code", 3))
        if job.request.kind == "measure":
            levels = params.get("levels")
            if levels is None:
                levels = [params.get("level")]
            measures = []
            for level in [float(v) for v in levels]:
                d = arr.measure(code, vdd_n=level)
                measures.append({"word": d.word, "lo": d.decoded.lo,
                                 "hi": d.decoded.hi})
            return {
                "code": code, "levels": [float(v) for v in levels],
                "measures": measures,
                "resolution": arr.n_bits,
                "full_resolution": self._design.n_bits,
            }
        # characterize: the surviving rungs of the nominal ladder.
        return {
            "die": params.get("die"),
            "code": code,
            "thresholds": list(arr.supply_thresholds(code)),
            "bits": list(arr.surviving_bits),
            "resolution": arr.n_bits,
            "full_resolution": self._design.n_bits,
            "per_die": False,
        }

    # -- terminal responses ------------------------------------------------

    async def _respond(self, job: Job, *, status: str,
                       quality: str | None = None,
                       result: dict | None = None,
                       error: BaseException | None = None) -> None:
        """The single exit: every job passes here exactly once."""
        if job.responded:
            return
        job.responded = True
        now = self._clock()
        obj = make_response(
            job.request.id, status=status, quality=quality,
            result=result, error=error, shard=job.shard,
            attempts=job.attempts or None,
            queued_ms=(now - job.admitted_at) * 1e3,
            service_ms=0.0,
        )
        self.counters["responses"] += 1
        if quality in ("full", "cached", "degraded", "rejected"):
            self.counters[quality] += 1
        if status == "error":
            self.counters["errors"] += 1
        if not await job.conn.send(obj):
            self.counters["dropped_connections"] += 1

    async def _reject(self, job: Job, error: ServiceError) -> None:
        await self._respond(job, status="rejected", quality="rejected",
                            error=error)

    async def _fallback(self, job: Job,
                        error: BaseException) -> None:
        """Cache → degraded → the error itself, in that order."""
        if self.cache is not None and job.cache_key is not None:
            hit, value = self.cache.get(job.cache_key)
            if hit:
                await self._respond(job, status="ok", quality="cached",
                                    result=value)
                return
        degraded = await asyncio.to_thread(self._degrade, job)
        if degraded is not None:
            await self._respond(job, status="ok", quality="degraded",
                                result=degraded)
            return
        if isinstance(error, ServiceError):
            await self._reject(job, error)
        else:
            await self._respond(job, status="error", error=error)

    # -- admission ---------------------------------------------------------

    def _bucket(self, tenant: str) -> TokenBucket | None:
        if self.tenant_rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.tenant_rate,
                                 self.tenant_burst or self.tenant_rate,
                                 clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def _route(self, request: Request) -> int:
        die = request.params.get("die")
        if die is not None:
            return self.fleet.shard_of(int(die))
        return next(self._rr) % self.config.n_shards

    def _job_for(self, request: Request, conn: _Connection) -> Job:
        shard = self._route(request)
        payload: dict[str, Any] = {
            "kind": request.kind,
            "params": dict(request.params),
            "fleet": dataclasses.asdict(self.config),
        }
        if self.executor == "pool":
            payload["backend"] = self.backend_arg
        chaos = payload["params"].pop("chaos", None)
        if chaos:
            payload["chaos"] = chaos
        cache_key = None
        if request.kind in CACHEABLE_KINDS and chaos is None:
            cache_key = task_key(
                "service", request.tenant, request.kind,
                payload["params"], self._fingerprint,
            )
        deadline_s = request.deadline_s or self.default_deadline_s
        now = self._clock()
        return Job(
            request=request, conn=conn, shard=shard, payload=payload,
            cache_key=cache_key, admitted_at=now,
            deadline=(now + deadline_s) if deadline_s else None,
        )

    async def _admit(self, request: Request, conn: _Connection) -> None:
        self.counters["requests"] += 1
        if request.kind == "ping":
            job = Job(request=request, conn=conn, shard=-1, payload={},
                      cache_key=None, admitted_at=self._clock(),
                      deadline=None)
            await self._respond(job, status="ok", quality="full",
                                result={"pong": True})
            return
        bucket = self._bucket(request.tenant)
        if bucket is not None and not bucket.try_take():
            job = Job(request=request, conn=conn, shard=-1, payload={},
                      cache_key=None, admitted_at=self._clock(),
                      deadline=None)
            await self._reject(job, TenantQuotaError(
                f"tenant {request.tenant!r} over its "
                f"{self.tenant_rate:g}/s rate (burst "
                f"{self.tenant_burst or self.tenant_rate:g})"
            ))
            return
        try:
            job = self._job_for(request, conn)
        except ReproError as exc:
            stub = Job(request=request, conn=conn, shard=-1, payload={},
                       cache_key=None, admitted_at=self._clock(),
                       deadline=None)
            await self._respond(stub, status="error", error=exc)
            return
        shard = self.shards[job.shard]
        try:
            evicted = await shard.queue.put(job)
        except AdmissionRejectedError as exc:
            await self._reject(job, exc)
            return
        if evicted is not None:
            await self._reject(evicted, AdmissionRejectedError(
                f"shed from shard {job.shard}: queue full "
                f"(drop_oldest admitted a fresher request)"
            ))

    # -- execution ---------------------------------------------------------

    def _remaining(self, deadline: float | None) -> float | None:
        if deadline is None:
            return None
        return deadline - self._clock()

    async def _run_once(self, shard: _Shard, payload: dict,
                        timeout: float | None) -> dict:
        loop = asyncio.get_running_loop()
        if self.executor == "pool":
            fut = loop.run_in_executor(shard.ensure_pool(),
                                       execute_job, payload)
        else:
            fut = asyncio.to_thread(execute_job, payload,
                                    shard.backend)
        shard.executed += 1
        return await asyncio.wait_for(fut, timeout=timeout)

    async def _execute(self, shard: _Shard, jobs: list[Job],
                       payload: dict, deadline: float | None) -> dict:
        """Retry loop: transient failures back off on the resilient
        runtime's deterministic schedule, bounded by the deadline.

        Raises the final failure (DeadlineExceededError, the last
        transient error, or a deterministic request error).
        """
        attempt = 0
        while True:
            attempt += 1
            for job in jobs:
                job.attempts = attempt
            remaining = self._remaining(deadline)
            if remaining is not None and remaining <= 0:
                raise DeadlineExceededError(
                    f"deadline passed before attempt {attempt} could "
                    f"start (shard {shard.index})"
                )
            try:
                return await self._run_once(shard, payload, remaining)
            except (asyncio.TimeoutError, TimeoutError):
                self.counters["deadline"] += 1
                raise DeadlineExceededError(
                    f"deadline expired mid-execution on shard "
                    f"{shard.index} (attempt {attempt}; worker "
                    f"abandoned cooperatively)"
                ) from None
            except BrokenProcessPool as exc:
                self.counters["crashes"] += 1
                shard.rebuild_pool()
                last: BaseException = exc
            except Exception as exc:
                if not _retryable(exc):
                    raise
                last = exc
            if attempt > self.retry_policy.retries:
                raise last
            delay = self.retry_policy.delay(shard.index, attempt)
            remaining = self._remaining(deadline)
            if remaining is not None and delay >= remaining:
                self.counters["deadline"] += 1
                raise DeadlineExceededError(
                    f"deadline would expire during the {delay * 1e3:.0f}"
                    f" ms backoff after attempt {attempt} "
                    f"(shard {shard.index})"
                ) from last
            self.counters["retries"] += 1
            await asyncio.sleep(delay)

    @staticmethod
    def _split_batch(jobs: list[Job], result: dict) -> list[dict]:
        """Distribute a coalesced measure result back to its jobs."""
        if len(jobs) == 1:
            return [result]
        out = []
        cursor = 0
        for job in jobs:
            n = len(job.payload["params"].get("levels") or [1])
            out.append({
                "code": result["code"],
                "levels": result["levels"][cursor:cursor + n],
                "measures": result["measures"][cursor:cursor + n],
                "coalesced": len(jobs),
            })
            cursor += n
        return out

    async def _serve_batch(self, shard: _Shard,
                           jobs: list[Job]) -> None:
        # Queue-expired jobs fall back before any work is spent.
        live: list[Job] = []
        for job in jobs:
            remaining = self._remaining(job.deadline)
            if remaining is not None \
                    and remaining <= self.degrade_margin_s:
                self.counters["deadline"] += 1
                await self._fallback(job, DeadlineExceededError(
                    f"deadline {'passed' if remaining <= 0 else 'near'}"
                    f" while queued on shard {shard.index}"
                ))
            else:
                live.append(job)
        if not live:
            return

        # Warm cache hits never consume breaker probes or backend work.
        pending: list[Job] = []
        for job in live:
            if self.cache is not None and job.cache_key is not None:
                hit, value = self.cache.get(job.cache_key)
                if hit:
                    await self._respond(job, status="ok",
                                        quality="cached", result=value)
                    continue
            pending.append(job)
        if not pending:
            return

        if not shard.breaker.allow():
            for job in pending:
                await self._fallback(job, CircuitOpenError(
                    f"shard {shard.index} circuit is "
                    f"{shard.breaker.state.value} "
                    f"(after {shard.breaker.opens} open(s))"
                ))
            return

        payload = pending[0].payload
        if len(pending) > 1:
            payload = dict(payload)
            payload["params"] = dict(payload["params"])
            merged: list[float] = []
            for job in pending:
                p = job.payload["params"]
                merged.extend(p.get("levels")
                              or [float(p.get("level"))])
            payload["params"]["levels"] = merged
            payload["params"].pop("level", None)
        deadlines = [j.deadline for j in pending
                     if j.deadline is not None]
        deadline = min(deadlines) if deadlines else None

        # Large (coalesced) level lists broadcast to the pool via
        # shared memory: the pickled payload carries a tiny handle and
        # every retry / rebuilt-pool attempt re-attaches the same
        # block.  The block outlives all attempts (unlinked in the
        # finally below), so a crashed worker can never strand it.
        shm_pool: SharedArrayPool | None = None
        levels = payload["params"].get("levels")
        if (self.executor == "pool" and levels is not None
                and len(levels) >= self.shm_min_levels
                and shm_enabled()):
            shm_pool = SharedArrayPool(
                {"levels": np.asarray(levels, dtype=float)}
            )
            shm_pool.__enter__()
            handle = shm_pool.handles["levels"]
            if handle.name is not None:
                payload = dict(payload)
                payload["params"] = dict(payload["params"])
                del payload["params"]["levels"]
                payload["levels_shm"] = handle
                shm_pool.charge_tasks(1 + self.retry_policy.retries)
                self.counters["shm_levels"] += 1
            else:  # allocation fell back inline: nothing to broadcast
                shm_pool.__exit__(None, None, None)
                shm_pool = None

        try:
            result = await self._execute(shard, pending, payload,
                                         deadline)
        except Exception as exc:
            # Infrastructure failures (injected faults, crashes,
            # deadlines) charge the breaker and earn the degradation
            # ladder; deterministic request errors (poison, bad
            # params, capability misses) mean the shard itself is
            # healthy — resolve any probe as a success and answer
            # with the error itself.
            transient = _retryable(exc) \
                or isinstance(exc, DeadlineExceededError)
            if transient:
                shard.breaker.record_failure()
            else:
                shard.breaker.record_success()
            for job in pending:
                if transient:
                    await self._fallback(job, exc)
                else:
                    await self._respond(job, status="error", error=exc)
            return
        finally:
            if shm_pool is not None:
                shm_pool.__exit__(None, None, None)
        shard.breaker.record_success()
        for job, body in zip(pending,
                             self._split_batch(pending, result)):
            if self.cache is not None and job.cache_key is not None:
                self.cache.put(job.cache_key, body)
            await self._respond(job, status="ok", quality="full",
                                result=body)

    def _coalescable(self, job: Job) -> bool:
        params = job.payload.get("params", {})
        return (job.request.kind == "measure"
                and "chaos" not in job.payload
                and (params.get("levels") or params.get("level"))
                is not None)

    async def _shard_loop(self, shard: _Shard) -> None:
        while True:
            job = await shard.queue.get()
            batch = [job]
            if self.coalesce > 1 and self._coalescable(job):
                code = job.payload["params"].get("code", 3)
                batch += shard.queue.drain_nowait(
                    self.coalesce - 1,
                    want=lambda j: (
                        self._coalescable(j)
                        and j.payload["params"].get("code", 3) == code
                    ),
                )
            try:
                await self._serve_batch(shard, batch)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # pragma: no cover - last resort
                for job in batch:
                    await self._respond(job, status="error", error=exc)

    # -- connections -------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode().strip()
                if not text:
                    continue
                try:
                    request = parse_request(text)
                except ProtocolError as exc:
                    self.counters["protocol_errors"] += 1
                    await conn.send(make_response(
                        None, status="error", error=exc,
                    ))
                    continue
                await self._admit(request, conn)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Shutdown while waiting for the next line: a normal end
            # of this connection, not an error to surface.
            pass
        finally:
            conn.open = False
            self._connections.discard(conn)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- lifecycle ---------------------------------------------------------

    async def start(self, *, unix_path: str | None = None,
                    host: str = "127.0.0.1",
                    port: int = 0) -> str:
        """Bind and start serving; returns the bound address
        (``unix:<path>`` or ``host:port``)."""
        if self._running:
            raise ConfigurationError("server already started")
        if unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle, path=unix_path)
            address = f"unix:{unix_path}"
        else:
            self._server = await asyncio.start_server(
                self._handle, host=host, port=port)
            bound = self._server.sockets[0].getsockname()
            address = f"{bound[0]}:{bound[1]}"
        for shard in self.shards:
            shard.task = asyncio.create_task(self._shard_loop(shard))
        self._running = True
        return address

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, answer queued jobs with
        explicit REJECTED replies, tear down pools."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections):
            conn.open = False
            try:
                conn.writer.close()
            except (ConnectionError, OSError):
                pass
        for shard in self.shards:
            if shard.task is not None:
                shard.task.cancel()
        for shard in self.shards:
            if shard.task is not None:
                try:
                    await shard.task
                except (asyncio.CancelledError, Exception):
                    pass
                shard.task = None
            while len(shard.queue):
                job = await shard.queue.get()
                await self._reject(job, AdmissionRejectedError(
                    "server shutting down"
                ))
            shard.close()
        if self.cache is not None:
            # Persist this process's hit/miss deltas to the cache
            # root's cross-process stats log before exit, so a
            # post-mortem reader (``repro cache``, a campaign
            # manifest's service drill) sees the server's lifetime
            # counters even though the server process is gone.
            self.cache.flush_stats()
        self._running = False

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ConfigurationError("start() the server first")
        await self._server.serve_forever()

    def stats(self) -> dict:
        """Observable state: the service-layer counters registry."""
        return {
            "config": dataclasses.asdict(self.config),
            "executor": self.executor,
            "counters": dict(self.counters),
            "shards": [
                {
                    "index": s.index,
                    "queue": s.queue.counters(),
                    "breaker": s.breaker.counters(),
                    "executed": s.executed,
                    "pool_rebuilds": s.pool_rebuilds,
                }
                for s in self.shards
            ],
            "tenants": {
                name: {"granted": b.granted, "refused": b.refused}
                for name, b in sorted(self._buckets.items())
            },
            "cache": (self.cache.stats() if self.cache is not None
                      else None),
            "shm": shm_counters(),
        }
