"""Admission control: bounded queues and per-tenant token buckets.

The serving analogue of the telemetry layer's bounded rings: a shard's
inbox is an :class:`AdmissionQueue` of fixed depth whose overflow
behavior is the *same* explicit :class:`~repro.telemetry.ring.
OverflowPolicy` choice —

* ``drop_oldest`` — evict the stalest queued job to admit the fresh
  one; the evicted job gets an explicit REJECTED terminal response
  (freshest-wins, the telemetry semantics);
* ``block`` — the producer (one connection's reader coroutine) awaits
  free space, which stops reading that socket: TCP backpressure all
  the way to the client;
* ``error`` — a full queue refuses the new job outright
  (:class:`~repro.errors.AdmissionRejectedError` → REJECTED).

Counters mirror :class:`~repro.telemetry.ring.RingBuffer` (pushed /
popped / dropped / deferred / high-watermark) so dashboards read the
same story at both layers.

:class:`TokenBucket` is the per-tenant rate limiter in front of the
queues: ``rate`` tokens/s refill up to ``burst``; an empty bucket is a
:class:`~repro.errors.TenantQuotaError` REJECTED response, never a
silent drop.  The clock is injectable so tests are deterministic.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, Callable

from repro.errors import AdmissionRejectedError, ConfigurationError
from repro.telemetry.ring import OverflowPolicy


class AdmissionQueue:
    """Bounded FIFO of pending jobs with an explicit overflow policy.

    Single-consumer (the shard loop), many producers (connection
    handlers).  All methods must run on the event-loop thread.
    """

    def __init__(self, depth: int, *,
                 policy: OverflowPolicy | str =
                 OverflowPolicy.BLOCK) -> None:
        if depth < 1:
            raise ConfigurationError("queue depth must be at least 1")
        self.depth = int(depth)
        self.policy = OverflowPolicy.parse(policy)
        self._items: deque[Any] = deque()
        self._space = asyncio.Event()
        self._space.set()
        self._ready = asyncio.Event()
        self.pushed = 0
        self.popped = 0
        self.dropped = 0
        self.deferred = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def free(self) -> int:
        return self.depth - len(self._items)

    def _admit(self, job: Any) -> None:
        self._items.append(job)
        self.pushed += 1
        if len(self._items) > self.high_watermark:
            self.high_watermark = len(self._items)
        self._ready.set()
        if not self.free:
            self._space.clear()

    async def put(self, job: Any) -> Any | None:
        """Admit ``job`` per the policy.

        Returns the *evicted* job under ``drop_oldest`` (the caller
        owes it a REJECTED terminal response), else ``None``.

        Raises:
            AdmissionRejectedError: full queue under ``error``.
        """
        if self.free:
            self._admit(job)
            return None
        if self.policy is OverflowPolicy.ERROR:
            self.dropped += 1
            raise AdmissionRejectedError(
                f"admission queue full ({self.depth} deep, policy "
                f"'error')"
            )
        if self.policy is OverflowPolicy.DROP_OLDEST:
            evicted = self._items.popleft()
            self.dropped += 1
            self._admit(job)
            return evicted
        # block: backpressure the producer until the consumer drains.
        while not self.free:
            self.deferred += 1
            self._space.clear()
            await self._space.wait()
        self._admit(job)
        return None

    async def get(self) -> Any:
        """Pop the oldest job, waiting for one if the queue is empty."""
        while not self._items:
            self._ready.clear()
            await self._ready.wait()
        job = self._items.popleft()
        self.popped += 1
        self._space.set()
        return job

    def drain_nowait(self, n: int, *,
                     want: Callable[[Any], bool] | None = None
                     ) -> list[Any]:
        """Pop up to ``n`` more queued jobs without waiting.

        ``want`` filters from the queue head; draining stops at the
        first job it refuses (FIFO order is never reordered).  Used to
        coalesce compatible requests into one kernel batch call.
        """
        out: list[Any] = []
        while self._items and len(out) < n:
            head = self._items[0]
            if want is not None and not want(head):
                break
            out.append(self._items.popleft())
            self.popped += 1
        if out:
            self._space.set()
        return out

    def counters(self) -> dict[str, int]:
        return {
            "depth": self.depth,
            "queued": len(self._items),
            "pushed": self.pushed,
            "popped": self.popped,
            "dropped": self.dropped,
            "deferred": self.deferred,
            "high_watermark": self.high_watermark,
        }


class TokenBucket:
    """Per-tenant rate limiter: ``rate`` tokens/s, ``burst`` capacity.

    Args:
        rate: Sustained allowance, requests per second.
        burst: Bucket capacity (max tokens banked while idle).
        clock: Monotonic-seconds source (injectable for tests).
    """

    def __init__(self, rate: float, burst: float, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ConfigurationError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self.granted = 0
        self.refused = 0

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_take(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; False means over quota."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            self.granted += 1
            return True
        self.refused += 1
        return False
