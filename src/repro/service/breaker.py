"""Per-shard circuit breaker: open after N consecutive failures.

The classic three-state machine, tuned for the job server's shards:

* **closed** — requests flow; ``threshold`` *consecutive* failures
  (a success resets the streak) trip the breaker;
* **open** — requests are not executed (the shard answers from cache
  or a degraded decode instead); after ``cooldown_s`` the breaker
  half-opens;
* **half-open** — exactly **one** probe request may execute at a time
  (concurrent admissions racing the probe are refused until it
  resolves); a probe success closes the breaker, a failure re-opens it
  for another cooldown.

The clock is injectable so the state machine is unit-testable without
sleeping, and every transition is counted for the stats endpoint.
"""

from __future__ import annotations

import enum
import time
from typing import Callable

from repro.errors import ConfigurationError


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    Args:
        threshold: Consecutive failures that trip the breaker.
        cooldown_s: Open dwell before a half-open probe is allowed.
        clock: Monotonic-seconds source (injectable for tests).
    """

    def __init__(self, threshold: int = 5, cooldown_s: float = 1.0, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ConfigurationError("threshold must be at least 1")
        if cooldown_s <= 0:
            raise ConfigurationError("cooldown_s must be positive")
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._streak = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.opens = 0
        self.closes = 0
        self.probes = 0

    @property
    def state(self) -> BreakerState:
        """Current state, promoting OPEN to HALF_OPEN after cooldown."""
        if self._state is BreakerState.OPEN and \
                self._clock() - self._opened_at >= self.cooldown_s:
            self._state = BreakerState.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a request execute now?

        In HALF_OPEN only one caller gets True until its probe is
        resolved by :meth:`record_success` / :meth:`record_failure` —
        the admission race is decided here, atomically within the
        event loop.
        """
        state = self.state
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True
            self.probes += 1
            return True
        return False

    def record_success(self) -> None:
        self._streak = 0
        if self._state is not BreakerState.CLOSED:
            self.closes += 1
        self._state = BreakerState.CLOSED
        self._probe_inflight = False

    def record_failure(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            # The probe failed: back to a full cooldown.
            self._trip()
            return
        self._streak += 1
        if self._state is BreakerState.CLOSED and \
                self._streak >= self.threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._streak = 0
        self._probe_inflight = False
        self.opens += 1

    def counters(self) -> dict:
        return {
            "state": self.state.value,
            "opens": self.opens,
            "closes": self.closes,
            "probes": self.probes,
        }
