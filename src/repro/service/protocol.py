"""The JSONL request/response wire protocol of the job server.

One JSON object per line, both directions.  A request names a tenant,
a request ``kind`` and its parameters; every request eventually gets
**exactly one terminal response** carrying a ``quality`` tag:

=============  ============================================================
quality        meaning
=============  ============================================================
``full``       computed fresh through the shard's measurement backend
``cached``     served from the per-tenant :class:`~repro.runtime.cache.
               ResultCache` (breaker open, deadline near, or a warm hit)
``degraded``   reduced-resolution nominal decode via
               :class:`~repro.core.degraded.DegradedArray`
``rejected``   shed before execution (admission, quota, breaker, deadline)
=============  ============================================================

``status`` is ``ok`` (quality full/cached/degraded), ``rejected``
(quality rejected, with the :class:`~repro.errors.ServiceError` subtype
in ``error.type``), or ``error`` (the request itself was poison — its
execution raised; the exception type and message come back, never a
traceback over the wire).

Floats are serialized as plain JSON numbers; NaN thresholds (degraded-
mode masked bits) become ``null`` so the stream stays strict JSON.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ProtocolError

#: Protocol version tag, echoed in every hello and response envelope.
SERVICE_PROTOCOL = "service/v1"

#: Request kinds the dispatcher understands.
REQUEST_KINDS = ("ping", "measure", "characterize", "s_curve", "yield",
                 "window", "campaign_stage")

#: Terminal qualities.
QUALITIES = ("full", "cached", "degraded", "rejected")


def _json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats with None (strict JSON)."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


@dataclass(frozen=True)
class Request:
    """One parsed client request.

    Attributes:
        id: Client-chosen correlation id (echoed in the response).
        kind: One of :data:`REQUEST_KINDS`.
        tenant: Rate-limiting / cache-isolation principal.
        params: Kind-specific parameters (die, code, level, ...).
        deadline_s: Wall-clock budget from admission, seconds
            (``None``: the server default applies).
    """

    id: str
    kind: str
    tenant: str = "default"
    params: dict = field(default_factory=dict)
    deadline_s: float | None = None


def parse_request(line: str) -> Request:
    """Parse one JSONL request line.

    Raises:
        ProtocolError: malformed JSON, missing/unknown fields — the
            server answers these with an ``error`` response instead of
            dropping the connection.
    """
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed request line: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(obj).__name__}"
        )
    if "id" not in obj:
        raise ProtocolError("request missing 'id'")
    kind = obj.get("kind")
    if kind not in REQUEST_KINDS:
        raise ProtocolError(
            f"unknown request kind {kind!r}; expected one of "
            f"{', '.join(REQUEST_KINDS)}"
        )
    params = obj.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be a JSON object")
    deadline = obj.get("deadline_s")
    if deadline is not None:
        deadline = float(deadline)
        if deadline <= 0:
            raise ProtocolError("'deadline_s' must be positive")
    tenant = str(obj.get("tenant", "default"))
    return Request(id=str(obj["id"]), kind=str(kind), tenant=tenant,
                   params=params, deadline_s=deadline)


def encode_request(id: str, kind: str, *, tenant: str = "default",
                   params: dict | None = None,
                   deadline_s: float | None = None) -> str:
    """One request as a JSONL line (clients and the load generator)."""
    obj: dict[str, Any] = {"id": id, "kind": kind, "tenant": tenant}
    if params:
        obj["params"] = _json_safe(params)
    if deadline_s is not None:
        obj["deadline_s"] = deadline_s
    return json.dumps(obj, sort_keys=True) + "\n"


def make_response(request_id: str | None, *, status: str,
                  quality: str | None = None,
                  result: dict | None = None,
                  error: BaseException | None = None,
                  shard: int | None = None,
                  attempts: int | None = None,
                  queued_ms: float | None = None,
                  service_ms: float | None = None) -> dict:
    """Build a terminal response envelope (not yet serialized)."""
    obj: dict[str, Any] = {
        "proto": SERVICE_PROTOCOL,
        "id": request_id,
        "status": status,
    }
    if quality is not None:
        obj["quality"] = quality
    if result is not None:
        obj["result"] = _json_safe(result)
    if error is not None:
        obj["error"] = {
            "type": type(error).__name__,
            "message": str(error),
        }
    if shard is not None:
        obj["shard"] = shard
    if attempts is not None:
        obj["attempts"] = attempts
    if queued_ms is not None:
        obj["timing"] = {"queued_ms": round(queued_ms, 3),
                         "service_ms": round(service_ms or 0.0, 3)}
    return obj


def encode_response(obj: dict) -> bytes:
    """Serialize a response envelope as one JSONL line."""
    return (json.dumps(_json_safe(obj), sort_keys=True) + "\n").encode()


def parse_response(line: str | bytes) -> dict:
    """Parse one response line (client side)."""
    if isinstance(line, bytes):
        line = line.decode()
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed response line: {exc}") from None
    if not isinstance(obj, dict) or "status" not in obj:
        raise ProtocolError("response must be an object with 'status'")
    return obj
