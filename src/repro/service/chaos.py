"""Service-level chaos drills: seeded fault-laden load generation.

Extends the runtime chaos layer (:class:`~repro.runtime.chaos.
ChaosMonkey`) up to the serving stack: :func:`build_load` produces a
deterministic mixed workload where a seeded fraction of requests carry
chaos directives — kill the worker mid-job (pool executor only; the
:class:`~repro.runtime.chaos.KillOnceTask` marker idiom keeps the
retry alive), stall past the deadline, or poison the request outright.
:func:`run_load` drives it through real sockets and audits the
server's core promises:

* **exactly one** terminal response per request (no drops, no dupes);
* every response is a terminal quality (full / cached / degraded /
  rejected) or an explicit error — the server never goes dark;
* availability (non-error fraction) is measurable, so drills can
  assert graceful degradation instead of hoping for it.

Everything is deterministic given the monkey's seed; a drill is a
reproducible failure schedule, not a flaky test.
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.calibration import paper_design
from repro.errors import ConfigurationError
from repro.runtime.chaos import ChaosMonkey
from repro.service.client import AsyncServiceClient
from repro.service.fleet import FleetConfig

#: Default request-kind rotation of the mixed load (measure-heavy, the
#: serving hot path, with periodic heavier studies mixed in).
DEFAULT_MIX = ("measure", "measure", "measure", "characterize",
               "measure", "window", "measure", "s_curve")


def _params_for(kind: str, i: int, config: FleetConfig,
                vdd: float) -> dict:
    """Deterministic per-request parameters (no RNG: index-driven)."""
    if kind == "measure":
        # Sweep the decode span; irrational stride avoids aliasing the
        # ladder so cache hits come from repeats, not coincidence.
        frac = (i * 0.381966) % 1.0
        return {"level": round(vdd - 0.28 + 0.30 * frac, 6),
                "code": 3}
    if kind == "characterize":
        return {"die": i % config.n_dies, "code": 3}
    if kind == "window":
        return {"n_samples": 512, "seed": i, "code": 3}
    if kind == "s_curve":
        return {"bit": (i % 7) + 1, "n_per_level": 20, "seed": i,
                "code": 3}
    if kind == "yield":
        return {"n_dies": 4, "code": 3}
    return {}


def build_load(monkey: ChaosMonkey | int, n_requests: int, *,
               config: FleetConfig | None = None,
               mix: tuple[str, ...] = DEFAULT_MIX,
               kill_rate: float = 0.0,
               marker_dir: str | None = None,
               slow_rate: float = 0.0,
               slow_s: float = 0.2,
               poison_rate: float = 0.0,
               tenants: tuple[str, ...] = ("default",),
               deadline_s: float | None = None) -> list[dict]:
    """Build a deterministic fault-laden request list.

    Returns request dicts (``id`` / ``kind`` / ``tenant`` / ``params``
    / ``deadline_s``) for :func:`run_load` or
    :meth:`~repro.service.client.ServiceClient.submit_many`.  Chaos
    directives ride in ``params["chaos"]``.

    Args:
        monkey: The seeded fault schedule (or a seed for one).
        kill_rate: Fraction of requests whose worker SIGKILLs itself
            once (requires ``marker_dir``; **pool executor only** —
            an inline worker thread shares the server's process).
        slow_rate / slow_s: Fraction of requests stalled, and for how
            long (deadline pressure).
        poison_rate: Fraction of requests that are defective by
            construction (execution raises).
    """
    if isinstance(monkey, int):
        monkey = ChaosMonkey(monkey)
    if kill_rate > 0 and marker_dir is None:
        raise ConfigurationError(
            "kill_rate needs marker_dir for the armed-once markers"
        )
    config = config or FleetConfig()
    vdd = paper_design().tech.vdd_nominal
    requests: list[dict] = []
    for i in range(n_requests):
        kind = mix[i % len(mix)]
        params = _params_for(kind, i, config, vdd)
        chaos: dict = {}
        if kill_rate and monkey.should(kill_rate):
            chaos["kill_marker"] = str(
                Path(marker_dir) / f"kill-{i}.marker"
            )
        if slow_rate and monkey.should(slow_rate):
            chaos["sleep_s"] = slow_s
        if poison_rate and monkey.should(poison_rate):
            chaos["poison"] = True
        if chaos:
            params = dict(params, chaos=chaos)
        requests.append({
            "id": f"r{i}",
            "kind": kind,
            "tenant": tenants[i % len(tenants)],
            "params": params,
            "deadline_s": deadline_s,
        })
    return requests


@dataclass
class LoadReport:
    """What actually happened to a driven load."""

    n_sent: int = 0
    responses: dict = field(default_factory=dict)
    latencies: dict = field(default_factory=dict)
    duplicates: list = field(default_factory=list)
    closed_early: int = 0
    elapsed_s: float = 0.0

    @property
    def by_quality(self) -> Counter:
        return Counter(r.get("quality", "-")
                       for r in self.responses.values())

    @property
    def by_status(self) -> Counter:
        return Counter(r.get("status", "-")
                       for r in self.responses.values())

    @property
    def availability(self) -> float:
        """Fraction of requests answered ``ok`` (any quality)."""
        if not self.n_sent:
            return 0.0
        return self.by_status.get("ok", 0) / self.n_sent

    @property
    def throughput_rps(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return len(self.responses) / self.elapsed_s

    def latency_quantile(self, q: float) -> float:
        """Client-observed latency quantile, seconds."""
        values = sorted(self.latencies.values())
        if not values:
            return float("nan")
        pos = min(len(values) - 1, int(q * (len(values) - 1) + 0.5))
        return values[pos]

    def problems(self) -> list[str]:
        """Violations of the exactly-one-terminal-response contract.

        Empty list == the drill's invariants held.
        """
        problems = []
        if self.duplicates:
            problems.append(
                f"duplicate terminal responses for {self.duplicates}"
            )
        missing = self.n_sent - len(self.responses)
        if missing:
            problems.append(f"{missing} requests never answered")
        if self.closed_early:
            problems.append(
                f"{self.closed_early} connections closed early"
            )
        for rid, resp in self.responses.items():
            status = resp.get("status")
            if status not in ("ok", "rejected", "error"):
                problems.append(f"{rid}: non-terminal status {status!r}")
            elif status == "ok" and resp.get("quality") not in \
                    ("full", "cached", "degraded"):
                problems.append(
                    f"{rid}: ok with quality {resp.get('quality')!r}"
                )
        return problems


async def _drive_client(address: str, requests: list[dict],
                        depth: int, report: LoadReport) -> None:
    client = await AsyncServiceClient(address).connect()
    inflight: dict[str, float] = {}
    queue = list(requests)
    outstanding = len(queue)
    try:
        async def send_next() -> None:
            req = queue.pop(0)
            inflight[req["id"]] = time.monotonic()
            await client.send(
                req["id"], req["kind"],
                tenant=req.get("tenant", "default"),
                params=req.get("params") or {},
                deadline_s=req.get("deadline_s"),
            )

        while queue and len(inflight) < depth:
            await send_next()
        while outstanding:
            response = await client.read_response()
            if response is None:
                report.closed_early += 1
                return
            rid = response.get("id")
            now = time.monotonic()
            if rid in report.responses:
                report.duplicates.append(rid)
            report.responses[rid] = response
            started = inflight.pop(rid, None)
            if started is not None:
                report.latencies[rid] = now - started
            outstanding -= 1
            if queue:
                await send_next()
    finally:
        await client.close()


async def run_load(address: str, requests: list[dict], *,
                   n_clients: int = 4, depth: int = 1,
                   timeout_s: float = 120.0) -> LoadReport:
    """Drive ``requests`` at the server over ``n_clients`` sockets.

    ``depth`` is the per-client pipeline depth: 1 is a closed loop
    (honest per-request latency, the benchmark default); larger values
    burst requests to build queue pressure for admission-control
    drills.
    """
    if n_clients < 1 or depth < 1:
        raise ConfigurationError(
            "n_clients and depth must be at least 1"
        )
    report = LoadReport(n_sent=len(requests))
    lanes: list[list[dict]] = [[] for _ in range(n_clients)]
    for i, req in enumerate(requests):
        lanes[i % n_clients].append(req)
    started = time.monotonic()
    await asyncio.wait_for(
        asyncio.gather(*(
            _drive_client(address, lane, depth, report)
            for lane in lanes if lane
        )),
        timeout=timeout_s,
    )
    report.elapsed_s = time.monotonic() - started
    return report
