"""The simulated die fleet and the job-execution kernel.

A :class:`Fleet` is ``n_dies`` virtual dies — each a deterministic
:class:`~repro.devices.variation.VariationSample` drawn from the fleet
seed — hashed across ``n_shards`` shards.  Sharding is pure routing
(``die % n_shards``): a die's results are identical whichever process
computes them, which is what lets the server rebuild a crashed shard
pool and retry without changing any answer.

:func:`execute_job` is the single job-execution kernel, shaped for the
process-pool runtime: a **module-level function of one picklable dict**
(the same contract as :func:`~repro.runtime.resilient.resilient_map`
tasks).  The server calls it two ways:

* inline — ``execute_job(payload, backend=shard_backend)`` in a
  worker thread, so the shard's (possibly fault-injected) driver
  instance is used directly;
* pooled — ``execute_job(payload)`` inside a
  :class:`~concurrent.futures.ProcessPoolExecutor` worker, which
  resolves and configures its own driver from ``payload["backend"]``
  once per process.

Chaos directives ride inside ``payload["chaos"]`` using the marker-
file idiom of :class:`~repro.runtime.chaos.KillOnceTask`, so a killed
worker's retry completes instead of dying again.
"""

from __future__ import annotations

import functools
import math
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.calibration import paper_design
from repro.errors import BackendError, ConfigurationError
from repro.units import MV

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import SensorBackend
    from repro.devices.variation import VariationSample

#: Hard per-request size caps — one request must never monopolize a
#: shard; bigger studies belong in campaign sweeps, not the serving
#: path.
MAX_LEVELS = 256
MAX_YIELD_DIES = 64
MAX_SCURVE_TRIALS = 2000
MAX_WINDOW_SAMPLES = 50_000


@dataclass(frozen=True)
class FleetConfig:
    """The fleet's identity: folded into cache keys and responses.

    Attributes:
        n_dies: Virtual dies in the fleet.
        n_shards: Shards the dies are hashed across.
        seed: Drives every die's variation sample.
        sigma_vth_inter / sigma_vth_intra: Mismatch model, volts.
    """

    n_dies: int = 64
    n_shards: int = 4
    seed: int = 2009
    sigma_vth_inter: float = 15 * MV
    sigma_vth_intra: float = 6 * MV

    def __post_init__(self) -> None:
        if self.n_dies < 1 or self.n_shards < 1:
            raise ConfigurationError(
                "n_dies and n_shards must be at least 1"
            )
        if self.n_shards > self.n_dies:
            raise ConfigurationError(
                f"{self.n_shards} shards for {self.n_dies} dies; every "
                f"shard needs at least one die"
            )


class Fleet:
    """Deterministic die fleet with shard routing."""

    def __init__(self, config: FleetConfig) -> None:
        self.config = config

    def shard_of(self, die: int) -> int:
        """Shard owning ``die`` (also validates the id)."""
        if not 0 <= die < self.config.n_dies:
            raise ConfigurationError(
                f"die {die} outside fleet 0..{self.config.n_dies - 1}"
            )
        return die % self.config.n_shards

    def dies_in_shard(self, shard: int) -> tuple[int, ...]:
        return tuple(d for d in range(self.config.n_dies)
                     if d % self.config.n_shards == shard)

    def die_seed(self, die: int) -> int:
        """Decorrelated per-die seed (stable across processes)."""
        seq = np.random.SeedSequence([self.config.seed, die])
        return int(seq.generate_state(1)[0])


def die_sample(config: FleetConfig, die: int,
               n_instances: int) -> "VariationSample":
    """The die's variation sample (pure function of config + die)."""
    from repro.devices.variation import VariationModel

    model = VariationModel(
        sigma_vth_inter=config.sigma_vth_inter,
        sigma_vth_intra=config.sigma_vth_intra,
    )
    return model.sample_die(n_instances, seed=Fleet(config).die_seed(die))


# -- per-process state (pooled execution) --------------------------------------


@functools.lru_cache(maxsize=8)
def _pooled_backend(spec: str) -> "SensorBackend":
    """One configured driver per (process, spec) — pool workers reuse
    it across jobs exactly as a shard reuses its inline driver."""
    from repro.backends import resolve_backend

    backend = resolve_backend(spec)
    backend.configure(paper_design())
    return backend


@functools.lru_cache(maxsize=16)
def _nominal_ladder(code: int) -> tuple[float, ...]:
    """Nominal ascending VDD-n decode ladder for ``code`` (kernel
    tier; one solve per process, then O(1) decodes)."""
    from repro.kernels import threshold_grid

    design = paper_design()
    grid = threshold_grid(design, (code,), None)[:, 0]
    return tuple(float(v) for v in grid)


def _decode_level_word(word_bits: np.ndarray, code: int) -> dict:
    """Word bits -> response fragment with the decoded range (the
    scalar reference for :func:`_decode_word_batch`)."""
    from repro.analysis.thermometer import ThermometerWord, decode_word

    word = ThermometerWord(tuple(int(b) for b in word_bits))
    rng = decode_word(word, _nominal_ladder(code), strict=False)
    return {"word": word.to_string(), "lo": rng.lo, "hi": rng.hi}


def _decode_word_batch(words: np.ndarray, code: int) -> list[dict]:
    """Fused decode of a measure batch: one ladder gather for every
    row instead of a ``ThermometerWord`` round trip per row.  Word
    strings keep the raw (possibly bubbled) bits; the bounds match
    :func:`_decode_level_word` exactly (ones-count decode)."""
    from repro.kernels import decode_word_rows

    rows = np.asarray(words)
    _, lo, hi = decode_word_rows(_nominal_ladder(code), rows)
    return [
        {"word": "".join(str(int(b)) for b in row[::-1]),
         "lo": float(a), "hi": float(b)}
        for row, a, b in zip(np.atleast_2d(rows), lo, hi)
    ]


# -- chaos directives ----------------------------------------------------------


def _apply_chaos(chaos: dict | None) -> None:
    """Honor a payload's chaos directives (drills only).

    ``kill_marker``: SIGKILL this worker once (marker armed first so
    the retry survives — the :class:`~repro.runtime.chaos.KillOnceTask`
    idiom).  ``sleep_s``: stall (deadline pressure).  ``poison``: the
    request itself is defective — raise.
    """
    if not chaos:
        return
    marker = chaos.get("kill_marker")
    if marker:
        path = Path(marker)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            path.touch()
            os.kill(os.getpid(), signal.SIGKILL)
    sleep_s = chaos.get("sleep_s")
    if sleep_s:
        time.sleep(float(sleep_s))
    if chaos.get("poison"):
        raise ConfigurationError(
            "poison request: chaos directive demanded failure"
        )


# -- the job kernel ------------------------------------------------------------


def _require(params: dict, key: str, cap: int | None = None,
             default: Any = None) -> Any:
    value = params.get(key, default)
    if value is None:
        raise ConfigurationError(f"request params missing {key!r}")
    if cap is not None and int(value) > cap:
        raise ConfigurationError(
            f"param {key}={value} exceeds the serving cap {cap}"
        )
    return value


def execute_job(payload: dict,
                backend: "SensorBackend | None" = None) -> dict:
    """Execute one job payload; returns the JSON-safe result body.

    Pure given the payload (chaos directives aside): the same request
    through any healthy worker produces the same numbers, which is
    what makes retries and cache hits honest.

    Raises:
        ConfigurationError: malformed params or a poison request.
        BackendError: the driver cannot serve the op.
    """
    chaos = payload.get("chaos")
    _apply_chaos(chaos if isinstance(chaos, dict) else None)

    kind = payload["kind"]
    params = payload.get("params", {})
    if backend is None:
        backend = _pooled_backend(payload.get("backend", "kernel"))
    design = paper_design()

    if kind == "ping":
        return {"pong": True}

    if kind == "campaign_stage":
        return _run_campaign_stage(params)

    code = int(params.get("code", 3))
    if not 0 <= code <= 7:
        raise ConfigurationError(f"code {code} outside 0..7")
    fleet_cfg = payload.get("fleet") or {}
    config = FleetConfig(**fleet_cfg) if fleet_cfg else FleetConfig()

    if kind == "measure":
        shm_handle = payload.get("levels_shm")
        if shm_handle is not None:
            from repro.runtime.shm import resolve_handle

            levels = [float(v) for v in resolve_handle(shm_handle)]
        else:
            levels = params.get("levels")
            if levels is None:
                levels = [_require(params, "level")]
            levels = [float(v) for v in levels]
        if not levels or len(levels) > MAX_LEVELS:
            raise ConfigurationError(
                f"measure wants 1..{MAX_LEVELS} levels, got {len(levels)}"
            )
        words = backend.measure_batch(levels, code=code)
        return {
            "code": code,
            "levels": levels,
            "measures": _decode_word_batch(np.asarray(words), code),
        }

    if kind == "characterize":
        die = int(_require(params, "die"))
        Fleet(config).shard_of(die)  # validates the id
        sample = die_sample(config, die, design.n_bits)
        caps = backend.capabilities()
        if caps.lot_thresholds:
            table = backend.lot_thresholds([sample], code)
            thresholds = [float(v) for v in np.asarray(table)[0]]
        else:
            thresholds = [float(v)
                          for v in backend.bit_thresholds(code)]
        finite = [v for v in thresholds if math.isfinite(v)]
        return {
            "die": die,
            "code": code,
            "thresholds": thresholds,
            "n_masked": len(thresholds) - len(finite),
            "per_die": caps.lot_thresholds,
        }

    if kind == "s_curve":
        bit = int(_require(params, "bit"))
        if not 1 <= bit <= design.n_bits:
            raise ConfigurationError(
                f"bit {bit} outside 1..{design.n_bits}"
            )
        n_per_level = int(params.get("n_per_level", 50))
        if not 1 <= n_per_level <= MAX_SCURVE_TRIALS:
            raise ConfigurationError(
                f"n_per_level {n_per_level} outside "
                f"1..{MAX_SCURVE_TRIALS}"
            )
        levels, probs = backend.s_curve(
            bit, code=code,
            noise_rms=float(params.get("noise_rms", 0.01)),
            n_per_level=n_per_level,
            seed=int(params.get("seed", config.seed)),
            n_levels=int(params.get("n_levels", 9)),
        )
        return {"bit": bit, "code": code,
                "levels": list(levels), "probs": list(probs)}

    if kind == "yield":
        n_dies = int(params.get("n_dies", 8))
        if not 1 <= n_dies <= MAX_YIELD_DIES:
            raise ConfigurationError(
                f"n_dies {n_dies} outside 1..{MAX_YIELD_DIES} (bigger "
                f"studies belong in campaign sweeps)"
            )
        dies = params.get("dies")
        if dies is None:
            dies = list(range(min(n_dies, config.n_dies)))
        dies = [int(d) for d in dies][:MAX_YIELD_DIES]
        for d in dies:
            Fleet(config).shard_of(d)
        caps = backend.capabilities()
        if not caps.lot_thresholds:
            raise BackendError(
                f"backend {backend.id!r} does not characterize "
                f"mismatch lots; route 'yield' to a capable driver"
            )
        lot = [die_sample(config, d, design.n_bits) for d in dies]
        table = np.asarray(backend.lot_thresholds(lot, code))
        sigma = np.nanstd(table, axis=0)
        # Fused decode-quality stats: which dies keep an ascending
        # ladder, and how often a die would emit a bubbled word when
        # probed at the nominal inter-rung midpoints.
        from repro.kernels import decode_counts

        monotone = np.all(np.diff(table, axis=1) > 0, axis=1)
        ladder = np.asarray(_nominal_ladder(code))
        mids = 0.5 * (ladder[:-1] + ladder[1:])
        if mids.size:
            _, bubbled = decode_counts(mids[None, :], table[:, None, :])
            bubble_frac = float(np.mean(bubbled))
        else:
            bubble_frac = 0.0
        return {
            "code": code,
            "dies": dies,
            "threshold_sigma_mv": [float(s * 1e3) for s in sigma],
            "worst_sigma_mv": float(np.nanmax(sigma) * 1e3),
            "spread_mv": float(
                (np.nanmax(table) - np.nanmin(table)) * 1e3
            ),
            "monotone_frac": float(np.mean(monotone)),
            "bubble_frac": bubble_frac,
        }

    if kind == "window":
        from repro.telemetry import (
            TelemetryPipeline,
            array_source,
            synthetic_droop_trace,
        )

        n_samples = int(params.get("n_samples", 2000))
        if not 16 <= n_samples <= MAX_WINDOW_SAMPLES:
            raise ConfigurationError(
                f"n_samples {n_samples} outside 16.."
                f"{MAX_WINDOW_SAMPLES}"
            )
        seed = int(params.get("seed", config.seed))
        times, volts, _ = synthetic_droop_trace(
            n_samples=n_samples,
            dt=float(params.get("dt", 1e-9)),
            n_droops=int(params.get("n_droops", 2)),
            depth=float(params.get("depth", 0.15)),
            noise_rms=float(params.get("noise_mv", 5.0)) * 1e-3,
            seed=seed,
        )
        pipeline = TelemetryPipeline(design, code=code)
        site = str(params.get("site", "svc"))
        pipeline.ingest_all(array_source(site, times, volts))
        pipeline.flush()
        snap = pipeline.snapshot()["sites"][site]
        return {
            "code": code,
            "site": site,
            "n_samples": n_samples,
            "events": snap["events"]["count"],
            "max_depth_v": snap["events"]["max_depth_v"],
            "min_v": snap["stats"]["min"],
            "mean_v": snap["stats"]["mean"],
            "p99_v": snap["quantiles"]["0.99"],
        }

    raise ConfigurationError(f"unknown job kind {kind!r}")


def _run_campaign_stage(params: dict) -> dict:
    """Execute one campaign stage body server-side.

    The client (:func:`repro.campaign.scheduler.service_stage_runner`)
    ships the full spec mapping plus a stage id; skip/abort
    bookkeeping, stage-result memoization and check evaluation all
    stay client-side — only the stage *body* runs here, against the
    ``cache_root`` the client names, so a resumed campaign replays
    partial sweeps no matter which side originally computed them.

    The stage runs against the **spec's** backend, not whatever this
    server was launched with: a campaign's answers must not depend on
    which fleet happened to host it.  Stage failures surface as
    :class:`~repro.errors.StageExecutionError` and ride back in the
    response's error envelope.
    """
    from repro.backends import resolve_backend
    from repro.campaign.spec import spec_from_mapping
    from repro.campaign.stages import StageContext, execute_stage
    from repro.runtime.cache import ResultCache

    spec_raw = params.get("spec")
    if not isinstance(spec_raw, dict):
        raise ConfigurationError(
            "campaign_stage wants params.spec (a campaign/v1 mapping)"
        )
    spec = spec_from_mapping(spec_raw, source="<service>")
    stage_id = str(params.get("stage_id") or "")
    cache_root = params.get("cache_root")
    out_dir = params.get("out_dir")
    if not stage_id or not cache_root or not out_dir:
        raise ConfigurationError(
            "campaign_stage wants stage_id, cache_root and out_dir"
        )
    stage = spec.stage(stage_id)

    design = paper_design()
    tech = None
    if spec.corner is not None:
        from repro.devices.corners import corner_by_name

        tech = corner_by_name(spec.corner).apply(design.tech)
    cache = ResultCache(Path(cache_root))
    ctx = StageContext(
        spec=spec, design=design, tech=tech,
        backend=resolve_backend(spec.backend), cache=cache,
        out_dir=Path(out_dir),
    )
    try:
        payload, volatile = execute_stage(ctx, stage)
    finally:
        # The client reads lifetime cache counters from the shared
        # stats log; a server-side stage must leave its marks there.
        cache.flush_stats()
    return {"stage_id": stage_id, "payload": payload,
            "volatile": volatile}
