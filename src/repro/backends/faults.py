"""``FaultInjectingBackend`` — wrap any driver, inject seeded faults.

The chaos counterpart of :class:`~repro.backends.RecordingBackend`:
where the recorder transcribes every op transparently, this decorator
*perturbs* them — raising transient :class:`~repro.errors.BackendError`
failures, stalling ops past deadlines, or poisoning specific request
ops — while leaving the wrapped driver untouched.  Because it is a
:class:`~repro.backends.SensorBackend` itself, it slots in anywhere a
driver does: backend unit tests, characterization sweeps, and the
:mod:`repro.service` job server's shards all share one injection path
instead of each hand-rolling fault shims.

Every decision is drawn through a seeded
:class:`~repro.runtime.chaos.ChaosMonkey` (one
:meth:`~repro.runtime.chaos.ChaosMonkey.should` Bernoulli draw per
injectable op), so a chaos campaign replays its exact fault schedule
under the same seed — drills are reproducible, never flaky.

Identity is *not* transparent: an injected driver advertises its own
``id`` and folds the fault configuration into ``fingerprint()``, so
results measured under chaos can never alias clean cache entries.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Iterable, Sequence

import numpy as np

from repro.backends.base import (
    BackendCapabilities,
    BackendMeasure,
    SensorBackend,
)
from repro.errors import BackendError, ConfigurationError
from repro.runtime.chaos import ChaosMonkey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.calibration import SensorDesign
    from repro.core.sensor import SenseRail
    from repro.devices.technology import Technology
    from repro.devices.variation import VariationSample

#: Ops eligible for injection (``configure`` is never failed: a driver
#: that cannot even bind a design is a setup bug, not weather).
INJECTABLE_OPS = ("measure_batch", "bit_thresholds", "lot_thresholds",
                  "s_curve")


class InjectedFaultError(BackendError):
    """A fault injected by :class:`FaultInjectingBackend` fired.

    A distinct subtype so chaos drills can assert that a failure came
    from the injector (retryable weather) rather than from a real
    driver defect.
    """


class FaultInjectingBackend(SensorBackend):
    """Seeded fault-injecting decorator around any driver.

    Args:
        inner: The driver doing the actual measuring.
        monkey: The seeded decision source; a bare int seeds a fresh
            :class:`~repro.runtime.chaos.ChaosMonkey`.
        error_rate: Per-op probability of raising
            :class:`InjectedFaultError` *instead of* measuring.
        slow_rate: Per-op probability of sleeping ``slow_s`` *before*
            measuring (deadline pressure; the op still succeeds).
        slow_s: Stall duration, seconds.
        poison_ops: Op names that *always* raise (a poisoned surface,
            e.g. ``("s_curve",)``) — deterministic, not drawn.

    Counters (``injected_errors``, ``injected_stalls``) expose what
    actually fired, so tests can assert the drill did something.
    """

    id = "fault-injecting"

    def __init__(self, inner: SensorBackend,
                 monkey: "ChaosMonkey | int" = 1337, *,
                 error_rate: float = 0.0,
                 slow_rate: float = 0.0,
                 slow_s: float = 0.05,
                 poison_ops: Sequence[str] = ()) -> None:
        super().__init__()
        if not 0.0 <= error_rate <= 1.0 or not 0.0 <= slow_rate <= 1.0:
            raise ConfigurationError(
                "error_rate and slow_rate must be in [0, 1]"
            )
        if slow_s < 0:
            raise ConfigurationError("slow_s must be non-negative")
        unknown = set(poison_ops) - set(INJECTABLE_OPS)
        if unknown:
            raise ConfigurationError(
                f"poison_ops {sorted(unknown)} not in {INJECTABLE_OPS}"
            )
        self.inner = inner
        self.monkey = monkey if isinstance(monkey, ChaosMonkey) \
            else ChaosMonkey(monkey)
        self.error_rate = float(error_rate)
        self.slow_rate = float(slow_rate)
        self.slow_s = float(slow_s)
        self.poison_ops = tuple(poison_ops)
        self.injected_errors = 0
        self.injected_stalls = 0

    # -- identity (deliberately NOT transparent) ---------------------------

    def engine_version(self) -> tuple[str, ...]:
        return self.inner.engine_version() + (
            f"faults/seed={self.monkey.seed}",
            f"faults/error={self.error_rate!r}",
            f"faults/slow={self.slow_rate!r}",
            f"faults/poison={','.join(self.poison_ops)}",
        )

    def capabilities(self) -> BackendCapabilities:
        caps = self.inner.capabilities()
        return BackendCapabilities(
            backend=self.id,
            thresholds=caps.thresholds,
            lot_thresholds=caps.lot_thresholds,
            s_curve=caps.s_curve,
            deterministic=False,  # faults consume seeded draws
            replay=caps.replay,
        )

    # -- the injection gate ------------------------------------------------

    def _gate(self, op: str) -> None:
        """Fire at most one fault for this op, poison first."""
        if op in self.poison_ops:
            self.injected_errors += 1
            raise InjectedFaultError(
                f"injected poison: backend op {op!r} is poisoned"
            )
        if self.error_rate and self.monkey.should(self.error_rate):
            self.injected_errors += 1
            raise InjectedFaultError(
                f"injected fault: backend op {op!r} failed "
                f"(seed {self.monkey.seed})"
            )
        if self.slow_rate and self.monkey.should(self.slow_rate):
            self.injected_stalls += 1
            time.sleep(self.slow_s)

    # -- delegated ops -----------------------------------------------------

    def configure(self, design: "SensorDesign", *,
                  rail: "SenseRail | None" = None,
                  tech: "Technology | None" = None) -> None:
        super().configure(design, rail=rail, tech=tech)
        self.inner.configure(design, rail=self.rail, tech=tech)

    def measure(self, level: float, *, code: int) -> BackendMeasure:
        # Route through measure_batch (the base implementation) so a
        # scalar measure consumes exactly one injection draw.
        return super().measure(level, code=code)

    def measure_batch(self, levels: Sequence[float] | np.ndarray, *,
                      code: int) -> np.ndarray:
        self._gate("measure_batch")
        return self.inner.measure_batch(levels, code=code)

    def bit_thresholds(self, code: int, *,
                       bits: Iterable[int] | None = None
                       ) -> tuple[float, ...]:
        self._gate("bit_thresholds")
        return self.inner.bit_thresholds(code, bits=bits)

    def lot_thresholds(self, lot: Sequence["VariationSample"],
                       code: int) -> np.ndarray:
        self._gate("lot_thresholds")
        return self.inner.lot_thresholds(lot, code)

    def s_curve(self, bit: int, *, code: int, noise_rms: float,
                n_per_level: int,
                seed: Any,
                span_sigmas: float = 4.0, n_levels: int = 15
                ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        self._gate("s_curve")
        return self.inner.s_curve(
            bit, code=code, noise_rms=noise_rms,
            n_per_level=n_per_level, seed=seed,
            span_sigmas=span_sigmas, n_levels=n_levels,
        )
