"""The ``SensorBackend`` driver protocol.

The paper's INV+FF delay-line thermometer is one measurement
*interface* realized by many possible engines.  This module pins the
interface down so every engine is interchangeable behind it:

* :class:`~repro.backends.kernel.KernelBackend` — the vectorized
  analytic/Monte-Carlo kernel tier (fast; the default);
* :class:`~repro.backends.sim.SimBackend` — the event-driven
  :mod:`repro.sim` engine (slow; the oracle);
* :class:`~repro.backends.replay.ReplayBackend` — re-feeds a recorded
  trace bit-identically (the regression gate);
* :class:`~repro.backends.recording.RecordingBackend` — a decorator
  writing a versioned trace of any driver as it measures.

The driver contract (the one-interface/many-drivers idiom of
data-acquisition test infrastructure):

1. :meth:`~SensorBackend.configure` binds a calibrated design, rail
   and corner; measuring before configuring raises
   :class:`~repro.errors.BackendError`.
2. :meth:`~SensorBackend.measure` / :meth:`~SensorBackend.measure_batch`
   return thermometer words at static rail levels (VDD rail: the level
   is VDD-n; GND rail: the GND-n bounce), bit 1 first.
3. :meth:`~SensorBackend.bit_thresholds` returns per-bit failure
   thresholds in *measured-rail* terms (ascending VDD-n levels for the
   VDD rail; GND-n rise levels for the GND rail), NaN marking a bit
   the driver could not characterize (the degraded-mode mask).
4. :meth:`~SensorBackend.capabilities` advertises the optional
   surfaces (:meth:`~SensorBackend.lot_thresholds`,
   :meth:`~SensorBackend.s_curve`); entry points check before calling.
5. :meth:`~SensorBackend.fingerprint` is a stable hash of the driver
   id plus every engine version tag that can change its numbers — it
   is folded into :func:`~repro.runtime.cache.design_fingerprint` (and
   thus every ResultCache key) so artifacts produced by different
   drivers can never collide, and into trace headers so a recording
   names the numerics that produced it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.backends.trace import TRACE_SCHEMA
from repro.errors import BackendError
from repro.runtime.cache import stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.calibration import SensorDesign
    from repro.core.sensor import SenseRail
    from repro.devices.technology import Technology
    from repro.devices.variation import VariationSample

#: Version tag of the driver *protocol* itself; folded into every
#: backend fingerprint alongside the trace schema, so a protocol change
#: (new ops, changed semantics) invalidates cross-driver cache keys.
BACKEND_PROTOCOL = "backend/v1"


@dataclass(frozen=True)
class BackendCapabilities:
    """What a driver supports beyond the mandatory word measurement.

    Attributes:
        backend: Registry id of the driver.
        thresholds: :meth:`SensorBackend.bit_thresholds` implemented.
        lot_thresholds: :meth:`SensorBackend.lot_thresholds`
            implemented (mismatch-lot characterization).
        s_curve: :meth:`SensorBackend.s_curve` implemented (stochastic
            trip-probability sweeps).
        deterministic: Same request always returns the same result
            (all shipped drivers; a future hardware driver would say
            False and campaigns would stop asserting bit-identity).
        replay: The driver feeds recorded data rather than computing.
    """

    backend: str
    thresholds: bool = True
    lot_thresholds: bool = False
    s_curve: bool = False
    deterministic: bool = True
    replay: bool = False


@dataclass(frozen=True)
class BackendMeasure:
    """One static-level measurement through a driver.

    Attributes:
        level: Requested rail level, volts (VDD-n or GND-n bounce,
            per the configured rail).
        code: Delay code measured under.
        word: Per-stage pass bits, **bit 1 first** (the
            :class:`~repro.analysis.thermometer.ThermometerWord` bit
            order).
    """

    level: float
    code: int
    word: tuple[int, ...]


class SensorBackend(abc.ABC):
    """Abstract measurement driver (see module docstring).

    Concrete drivers set :attr:`id` (their registry name) and
    implement the engine hooks; the shared machinery here handles
    configuration state, capability gating and fingerprinting.
    """

    #: Registry id; class-level so ``fingerprint()`` works unconfigured.
    id: str = "abstract"

    def __init__(self) -> None:
        self._design: "SensorDesign | None" = None
        self._rail: "SenseRail | None" = None
        self._tech: "Technology | None" = None

    # -- configuration -----------------------------------------------------

    def configure(self, design: "SensorDesign", *,
                  rail: "SenseRail | None" = None,
                  tech: "Technology | None" = None) -> None:
        """Bind a calibrated design (and optionally rail/corner).

        Idempotent; drivers may be reconfigured mid-campaign (e.g. the
        per-cap probe designs of a Fig. 4 sweep).  ``rail=None`` keeps
        the previous rail (initially VDD).
        """
        from repro.core.sensor import SenseRail

        self._design = design
        self._rail = rail if rail is not None else (
            self._rail if self._rail is not None else SenseRail.VDD
        )
        self._tech = tech
        self._configured()

    def _configured(self) -> None:
        """Hook: invalidate driver state after a (re)configure."""

    @property
    def design(self) -> "SensorDesign":
        if self._design is None:
            raise BackendError(
                f"backend {self.id!r} measured before configure()"
            )
        return self._design

    @property
    def rail(self) -> "SenseRail":
        from repro.core.sensor import SenseRail

        return self._rail if self._rail is not None else SenseRail.VDD

    @property
    def tech(self) -> "Technology | None":
        return self._tech

    # -- identity ----------------------------------------------------------

    def engine_version(self) -> tuple[str, ...]:
        """Engine version tags that can change this driver's numbers.

        Concrete drivers extend this (kernel layout, numpy build, sim
        engine generation...); the base contributes the protocol and
        trace schema tags.
        """
        return (BACKEND_PROTOCOL, TRACE_SCHEMA)

    def fingerprint(self) -> str:
        """Stable hash naming this driver + engine generation.

        Folds the registry id and every :meth:`engine_version` tag.
        Folded into :func:`~repro.runtime.cache.design_fingerprint`
        (``backend=`` argument) so ResultCache artifacts from
        different drivers can never collide, and written into trace
        headers.
        """
        return stable_hash(("sensor-backend", self.id)
                           + self.engine_version())

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(backend=self.id)

    # -- mandatory measurement surface -------------------------------------

    def measure(self, level: float, *, code: int) -> BackendMeasure:
        """Thermometer word at one static rail level."""
        words = self.measure_batch([level], code=code)
        return BackendMeasure(
            level=float(level), code=int(code),
            word=tuple(int(b) for b in words[0]),
        )

    @abc.abstractmethod
    def measure_batch(self, levels: Sequence[float] | np.ndarray, *,
                      code: int) -> np.ndarray:
        """Words at many static rail levels.

        Returns:
            ``(n_levels, n_bits)`` uint8 words, bit 1 first.
        """

    # -- optional surfaces (capability-gated) ------------------------------

    def bit_thresholds(self, code: int, *,
                       bits: Iterable[int] | None = None
                       ) -> tuple[float, ...]:
        """Per-bit failure thresholds in measured-rail terms.

        NaN marks a bit the driver failed to characterize (degraded
        mode); callers mask such rungs exactly as
        :func:`~repro.core.characterization.characterize_array` does.
        """
        raise BackendError(
            f"backend {self.id!r} does not characterize thresholds"
        )

    def lot_thresholds(self, lot: Sequence["VariationSample"],
                       code: int) -> np.ndarray:
        """(dies x bits) *effective-supply* thresholds of a mismatch
        lot (the yield-study convention)."""
        raise BackendError(
            f"backend {self.id!r} does not characterize mismatch lots"
        )

    def s_curve(self, bit: int, *, code: int, noise_rms: float,
                n_per_level: int,
                seed: "int | np.random.SeedSequence",
                span_sigmas: float = 4.0, n_levels: int = 15
                ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """One stage's ``(levels, pass_probabilities)`` under rail
        noise (the tester-style S-curve sweep)."""
        raise BackendError(
            f"backend {self.id!r} does not sweep S-curves"
        )
