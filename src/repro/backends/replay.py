"""``ReplayBackend`` — re-feed a recorded trace, bit-identically.

The replay driver is a strict sequential cursor over a
:class:`~repro.backends.trace.Trace`: every call must match the next
recorded request **exactly** (op, code, levels bit-for-bit, bits, seed
token), and gets the recorded result back, floats untouched.  Any
divergence — reordered calls, a shifted level, a different seed —
raises :class:`~repro.errors.ReplayMismatchError` with the offending
record index, because a campaign that asks different questions than
the trace answered is not a valid regression replay.

This strictness is the point: replaying a committed golden trace
through the current analysis code proves two things at once — the
campaign still *requests* the same measurement sequence, and the
analysis still *derives* the same outputs from the same raw data.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.backends.base import BackendCapabilities, SensorBackend
from repro.backends.trace import (
    Trace,
    floats_equal,
    seed_token,
)
from repro.errors import ReplayMismatchError
from repro.runtime.cache import stable_hash


class ReplayBackend(SensorBackend):
    """Measurement driver fed by a recorded trace.

    Args:
        trace: A loaded :class:`Trace`, or a path to a ``.jsonl`` /
            ``.csv`` trace file.
    """

    id = "replay"

    def __init__(self, trace: "Trace | str | os.PathLike[str]") -> None:
        super().__init__()
        if not isinstance(trace, Trace):
            trace = Trace.load(trace)
        self.trace = trace
        self._cursor = 0

    # -- identity ----------------------------------------------------------

    def engine_version(self) -> tuple[str, ...]:
        # A replay's numbers come from the recorded engine, so its
        # identity folds the recording's fingerprint: replaying a sim
        # trace and a kernel trace are different instruments.
        return super().engine_version() + (
            f"recorded:{self.trace.header.backend}",
            self.trace.header.backend_fingerprint,
        )

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(backend=self.id, thresholds=True,
                                   lot_thresholds=True, s_curve=True,
                                   replay=True)

    # -- cursor ------------------------------------------------------------

    @property
    def position(self) -> int:
        """Index of the next record to serve."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """True once every recorded op has been replayed."""
        return self._cursor >= len(self.trace.records)

    def rewind(self) -> None:
        """Reset the cursor; the trace can be replayed again."""
        self._cursor = 0

    def _next(self, op: str) -> tuple[int, dict[str, Any]]:
        idx = self._cursor
        if idx >= len(self.trace.records):
            raise ReplayMismatchError(
                f"trace exhausted: campaign requested {op!r} but the "
                f"recording holds only {len(self.trace.records)} ops"
            )
        record = self.trace.records[idx]
        if record["op"] != op:
            raise ReplayMismatchError(
                f"record {idx}: campaign requested {op!r} but the "
                f"recording holds {record['op']!r}"
            )
        self._cursor = idx + 1
        return idx, record

    def _check(self, idx: int, record: Mapping[str, Any],
               key: str, requested: Any) -> None:
        recorded = record.get(key)
        if recorded != requested:
            raise ReplayMismatchError(
                f"record {idx} ({record['op']}): requested {key}="
                f"{requested!r} but the recording holds {recorded!r}"
            )

    # -- replayed ops ------------------------------------------------------

    def configure(self, design, *, rail=None, tech=None) -> None:
        super().configure(design, rail=rail, tech=tech)
        idx, record = self._next("configure")
        self._check(idx, record, "design", stable_hash(design))
        self._check(idx, record, "rail", self.rail.value)
        self._check(idx, record, "tech",
                    "" if tech is None else stable_hash(tech))

    def measure_batch(self, levels: Sequence[float] | np.ndarray, *,
                      code: int) -> np.ndarray:
        from repro.backends.trace import level_array

        v = level_array(levels)
        idx, record = self._next("measure_batch")
        self._check(idx, record, "code", int(code))
        recorded = record["levels"]
        if len(recorded) != v.size or not all(
                floats_equal(float(a), float(b))
                for a, b in zip(recorded, v)):
            raise ReplayMismatchError(
                f"record {idx} (measure_batch): requested levels "
                f"diverge from the recording"
            )
        return np.asarray(record["words"], dtype=np.uint8)

    def bit_thresholds(self, code: int, *,
                       bits: Iterable[int] | None = None
                       ) -> tuple[float, ...]:
        sel = tuple(range(1, self.design.n_bits + 1)) if bits is None \
            else tuple(int(b) for b in bits)
        idx, record = self._next("bit_thresholds")
        self._check(idx, record, "code", int(code))
        self._check(idx, record, "bits", sel)
        return tuple(float(v) for v in record["values"])

    def lot_thresholds(self, lot, code: int) -> np.ndarray:
        idx, record = self._next("lot_thresholds")
        self._check(idx, record, "code", int(code))
        self._check(idx, record, "lot", stable_hash(tuple(lot)))
        return np.asarray(record["table"], dtype=float)

    def s_curve(self, bit: int, *, code: int, noise_rms: float,
                n_per_level: int,
                seed: "int | np.random.SeedSequence",
                span_sigmas: float = 4.0, n_levels: int = 15
                ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        idx, record = self._next("s_curve")
        self._check(idx, record, "code", int(code))
        self._check(idx, record, "bits", (int(bit),))
        self._check(idx, record, "n_per_level", int(n_per_level))
        self._check(idx, record, "n_levels", int(n_levels))
        self._check(idx, record, "seed", seed_token(seed))
        for key, requested in (("noise_rms", noise_rms),
                               ("span_sigmas", span_sigmas)):
            if not floats_equal(float(record[key]), float(requested)):
                raise ReplayMismatchError(
                    f"record {idx} (s_curve): requested {key}="
                    f"{requested!r} but the recording holds "
                    f"{record[key]!r}"
                )
        return (tuple(float(v) for v in record["levels"]),
                tuple(float(p) for p in record["probs"]))
