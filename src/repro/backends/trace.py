"""Versioned measurement trace files — the record/replay substrate.

A *trace* is the full transcript of a measurement campaign as seen at
the :class:`~repro.backends.base.SensorBackend` seam: every
``configure``/``measure``/``measure_batch``/``bit_thresholds``/
``lot_thresholds``/``s_curve`` call, with its request arguments and its
results.  Committed to a repository, a trace is a bit-exact regression
gate: replay it through :class:`~repro.backends.replay.ReplayBackend`
and any drift — in the campaign code's request sequence or in what the
analysis derives from the recorded results — is caught.

Two on-disk encodings round-trip the same record stream losslessly:

* **JSONL** — one header object then one record object per line;
* **CSV** — a tidy ``record,op,code,key,value`` table (header rows use
  record index ``-1``), loadable by pandas/spreadsheets.

Floats are rendered with :meth:`float.hex` (exact, locale-independent,
``nan``/``inf`` included), so deserialize→replay reproduces every
recorded value **bit-for-bit** — the property
``tests/test_backends_trace.py`` drives with Hypothesis.

Schema versioning: every file carries :data:`TRACE_SCHEMA`
(``trace/v1``).  Readers reject unknown ``trace/v*`` tags loudly
(:class:`~repro.errors.TraceSchemaError`) instead of guessing — a
future schema may change what a record *means*, and replaying it under
old semantics would silently corrupt a regression gate.
"""

from __future__ import annotations

import csv
import io
import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import TraceError, TraceSchemaError

#: Schema tag of the trace files this module writes.  Bump on any
#: change to record meaning; readers refuse tags they don't know.
TRACE_SCHEMA = "trace/v1"

#: The ``trace/v*`` tags this reader understands.
_KNOWN_SCHEMAS = (TRACE_SCHEMA,)

#: Record fields holding one float (hex-encoded on disk).
_FLOAT_FIELDS = ("level", "noise_rms", "span_sigmas")
#: Record fields holding a flat float sequence.
_FLOAT_LIST_FIELDS = ("levels", "values", "probs")
#: Record fields holding a word (0/1 bit tuple, bit 1 first).
_WORD_FIELDS = ("word",)
#: Record fields holding a sequence of words.
_WORD_LIST_FIELDS = ("words",)
#: Record fields holding a nested float table (rows x lanes).
_FLOAT_TABLE_FIELDS = ("table",)
#: Record fields holding a flat int sequence.
_INT_LIST_FIELDS = ("bits",)
#: Record fields holding one int (beyond ``code``, which the CSV
#: encoding gives its own column).
_INT_FIELDS = ("n_per_level", "n_levels")


def float_token(x: float) -> str:
    """Exact, round-trippable text for one float (``float.hex``).

    ``nan``/``inf``/``-inf`` serialize as those literals —
    :func:`float.fromhex` parses all of them back, so masked-bit
    entries (NaN thresholds) survive the trip bit-for-bit.
    """
    return float(x).hex()


def parse_float_token(tok: str) -> float:
    """Inverse of :func:`float_token`."""
    try:
        return float.fromhex(tok)
    except ValueError as exc:
        raise TraceError(f"unparseable float token {tok!r}") from exc


def seed_token(seed: "int | np.random.SeedSequence") -> str:
    """Canonical text for a ladder seed (int or ``SeedSequence``).

    Recording stores the token so replay can verify the campaign asks
    for the *same* stochastic draws — the seed scheme itself
    (``MC_SEED_SCHEME``) lives in the trace header.
    """
    if isinstance(seed, np.random.SeedSequence):
        key = ",".join(str(int(k)) for k in seed.spawn_key)
        return f"ss:{seed.entropy}:{key}"
    return f"int:{int(seed)}"


def floats_equal(a: float, b: float) -> bool:
    """Bit-level float equality where ``nan == nan`` (replay checks)."""
    return (a == b) or (math.isnan(a) and math.isnan(b))


@dataclass(frozen=True)
class TraceHeader:
    """File-level metadata written once per trace.

    Attributes:
        schema: :data:`TRACE_SCHEMA` of the writer.
        backend: Registry id of the *recorded* driver (``"kernel"``,
            ``"sim"``, ...).
        backend_fingerprint: The driver's
            :meth:`~repro.backends.base.SensorBackend.fingerprint` —
            folds engine version tags (kernel layout, numpy, sim
            engine), so a trace names exactly which numerics produced
            it.
        seed_scheme: The Monte-Carlo seed-threading scheme tag in
            force when recording (``MC_SEED_SCHEME``).
        note: Free-form campaign label.
    """

    schema: str
    backend: str
    backend_fingerprint: str
    seed_scheme: str
    note: str = ""

    def to_dict(self) -> dict[str, str]:
        return {
            "schema": self.schema,
            "backend": self.backend,
            "backend_fingerprint": self.backend_fingerprint,
            "seed_scheme": self.seed_scheme,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TraceHeader":
        schema = d.get("schema")
        if not isinstance(schema, str) or not schema.startswith("trace/"):
            raise TraceSchemaError(
                f"trace header carries no recognizable schema tag "
                f"(got {schema!r})"
            )
        if schema not in _KNOWN_SCHEMAS:
            raise TraceSchemaError(
                f"unknown trace schema {schema!r}; this reader "
                f"understands {list(_KNOWN_SCHEMAS)}"
            )
        try:
            return cls(
                schema=schema,
                backend=str(d["backend"]),
                backend_fingerprint=str(d["backend_fingerprint"]),
                seed_scheme=str(d["seed_scheme"]),
                note=str(d.get("note", "")),
            )
        except KeyError as exc:
            raise TraceError(f"trace header missing field {exc}") from exc


@dataclass
class Trace:
    """An in-memory trace: one header plus an ordered record stream.

    Records are plain dicts with an ``"op"`` key plus op-specific
    fields; float payloads are *decoded* Python floats in memory and
    hex tokens on disk.  The dataclass is deliberately schema-light:
    the writer/reader pair (not the container) owns the encoding.
    """

    header: TraceHeader
    records: list[dict[str, Any]] = field(default_factory=list)

    def append(self, record: dict[str, Any]) -> None:
        if "op" not in record:
            raise TraceError("trace records need an 'op' field")
        self.records.append(dict(record))

    def __len__(self) -> int:
        return len(self.records)

    # -- persistence -------------------------------------------------------

    def save(self, path: str | os.PathLike[str], *,
             fmt: str | None = None) -> Path:
        """Write the trace; format from ``fmt`` or the file suffix.

        ``.jsonl`` -> JSONL, ``.csv`` -> CSV.
        """
        path = Path(path)
        fmt = fmt or _fmt_from_suffix(path)
        text = (dump_jsonl(self) if fmt == "jsonl" else dump_csv(self))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    @classmethod
    def load(cls, path: str | os.PathLike[str], *,
             fmt: str | None = None) -> "Trace":
        """Read a trace back; format from ``fmt`` or the file suffix."""
        path = Path(path)
        fmt = fmt or _fmt_from_suffix(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise TraceError(f"cannot read trace {str(path)!r}: {exc}") \
                from exc
        return (parse_jsonl(text) if fmt == "jsonl" else parse_csv(text))


def _fmt_from_suffix(path: Path) -> str:
    suffix = path.suffix.lower()
    if suffix == ".jsonl":
        return "jsonl"
    if suffix == ".csv":
        return "csv"
    raise TraceError(
        f"cannot infer trace format from {path.name!r}; use a .jsonl "
        f"or .csv suffix (or pass fmt=)"
    )


# -- record <-> wire encoding --------------------------------------------------


def _word_str(word: Sequence[int]) -> str:
    return "".join(str(int(b)) for b in word)


def _parse_word(tok: str) -> tuple[int, ...]:
    if not tok or any(ch not in "01" for ch in tok):
        raise TraceError(f"invalid word token {tok!r}")
    return tuple(int(ch) for ch in tok)


def encode_record(record: Mapping[str, Any]) -> dict[str, Any]:
    """In-memory record -> wire dict (floats as hex tokens)."""
    out: dict[str, Any] = {}
    for key, value in record.items():
        if key in _FLOAT_FIELDS:
            out[key] = float_token(value)
        elif key in _FLOAT_LIST_FIELDS:
            out[key] = [float_token(v) for v in value]
        elif key in _FLOAT_TABLE_FIELDS:
            out[key] = [[float_token(v) for v in row] for row in value]
        elif key in _WORD_FIELDS:
            out[key] = _word_str(value)
        elif key in _WORD_LIST_FIELDS:
            out[key] = [_word_str(w) for w in value]
        elif key in _INT_LIST_FIELDS:
            out[key] = [int(v) for v in value]
        elif key in _INT_FIELDS:
            out[key] = int(value)
        else:
            out[key] = value
    return out


def decode_record(wire: Mapping[str, Any]) -> dict[str, Any]:
    """Wire dict -> in-memory record (hex tokens back to floats)."""
    out: dict[str, Any] = {}
    for key, value in wire.items():
        if key in _FLOAT_FIELDS:
            out[key] = parse_float_token(value)
        elif key in _FLOAT_LIST_FIELDS:
            out[key] = tuple(parse_float_token(v) for v in value)
        elif key in _FLOAT_TABLE_FIELDS:
            out[key] = tuple(
                tuple(parse_float_token(v) for v in row) for row in value
            )
        elif key in _WORD_FIELDS:
            out[key] = _parse_word(value)
        elif key in _WORD_LIST_FIELDS:
            out[key] = tuple(_parse_word(w) for w in value)
        elif key in _INT_LIST_FIELDS:
            out[key] = tuple(int(v) for v in value)
        elif key in _INT_FIELDS:
            out[key] = int(value)
        else:
            out[key] = value
    return out


# -- JSONL ---------------------------------------------------------------------


def dump_jsonl(trace: Trace) -> str:
    """Trace -> JSONL text: header line, then one record per line."""
    lines = [json.dumps(trace.header.to_dict(), sort_keys=True)]
    lines.extend(
        json.dumps(encode_record(r), sort_keys=True)
        for r in trace.records
    )
    return "\n".join(lines) + "\n"


def parse_jsonl(text: str) -> Trace:
    """JSONL text -> Trace (schema-checked)."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise TraceError("empty trace file")
    try:
        raw_header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceError(f"unparseable trace header: {exc}") from exc
    header = TraceHeader.from_dict(raw_header)
    trace = Trace(header=header)
    for n, line in enumerate(lines[1:], start=2):
        try:
            wire = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(
                f"unparseable trace record at line {n}: {exc}"
            ) from exc
        trace.append(decode_record(wire))
    return trace


# -- CSV -----------------------------------------------------------------------

#: Tidy-table columns.  ``record`` is the 0-based record index (-1 for
#: header rows); ``key`` names the field; ``value`` holds the token —
#: space-separated for flat lists, ``;``-separated rows of
#: space-separated tokens for tables.
_CSV_COLUMNS = ("record", "op", "code", "key", "value")


def _csv_value(key: str, value: Any) -> str:
    if key in _FLOAT_FIELDS:
        return float_token(value)
    if key in _FLOAT_LIST_FIELDS:
        return " ".join(float_token(v) for v in value)
    if key in _FLOAT_TABLE_FIELDS:
        return ";".join(
            " ".join(float_token(v) for v in row) for row in value
        )
    if key in _WORD_FIELDS:
        return _word_str(value)
    if key in _WORD_LIST_FIELDS:
        return " ".join(_word_str(w) for w in value)
    if key in _INT_LIST_FIELDS:
        return " ".join(str(int(v)) for v in value)
    if key in _INT_FIELDS:
        return str(int(value))
    return str(value)


def _csv_parse_value(key: str, tok: str) -> Any:
    if key in _FLOAT_FIELDS:
        return parse_float_token(tok)
    if key in _FLOAT_LIST_FIELDS:
        return tuple(parse_float_token(t) for t in tok.split())
    if key in _FLOAT_TABLE_FIELDS:
        return tuple(
            tuple(parse_float_token(t) for t in row.split())
            for row in tok.split(";") if row
        )
    if key in _WORD_FIELDS:
        return _parse_word(tok)
    if key in _WORD_LIST_FIELDS:
        return tuple(_parse_word(t) for t in tok.split())
    if key in _INT_LIST_FIELDS:
        return tuple(int(t) for t in tok.split())
    if key in _INT_FIELDS:
        return int(tok)
    return tok


def dump_csv(trace: Trace) -> str:
    """Trace -> tidy CSV text (``record,op,code,key,value``)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(_CSV_COLUMNS)
    for key, value in trace.header.to_dict().items():
        writer.writerow([-1, "header", "", key, value])
    for i, record in enumerate(trace.records):
        op = record["op"]
        code = record.get("code", "")
        for key, value in record.items():
            if key in ("op", "code"):
                continue
            writer.writerow([i, op, code, key, _csv_value(key, value)])
        if len(record) <= (2 if "code" in record else 1):
            # An op with no payload fields still needs a presence row.
            writer.writerow([i, op, code, "", ""])
    return buf.getvalue()


def parse_csv(text: str) -> Trace:
    """Tidy CSV text -> Trace (schema-checked)."""
    reader = csv.reader(io.StringIO(text))
    try:
        columns = tuple(next(reader))
    except StopIteration:
        raise TraceError("empty trace file") from None
    if columns != _CSV_COLUMNS:
        raise TraceError(
            f"unexpected CSV trace columns {columns!r}; expected "
            f"{_CSV_COLUMNS!r}"
        )
    header_fields: dict[str, str] = {}
    records: dict[int, dict[str, Any]] = {}
    for row in reader:
        if not row:
            continue
        idx_s, op, code_s, key, value = row
        idx = int(idx_s)
        if idx < 0:
            header_fields[key] = value
            continue
        rec = records.setdefault(idx, {"op": op})
        if rec["op"] != op:
            raise TraceError(
                f"CSV record {idx} mixes ops {rec['op']!r} and {op!r}"
            )
        if code_s != "" and "code" not in rec:
            rec["code"] = int(code_s)
        if key:
            rec[key] = _csv_parse_value(key, value)
    header = TraceHeader.from_dict(header_fields)
    trace = Trace(header=header)
    for idx in sorted(records):
        trace.append(records[idx])
    return trace


# -- streaming writer ----------------------------------------------------------


class TraceWriter:
    """Append-as-you-measure trace writer.

    Streams JSONL records to disk the moment they are recorded (a
    crash mid-campaign leaves a valid prefix on disk); the CSV
    encoding needs record indices anyway, so it streams tidy rows the
    same way.  Also keeps the in-memory :class:`Trace` so a recording
    session can be replayed without touching the filesystem.

    Args:
        header: File-level metadata.
        path: Destination (``.jsonl``/``.csv``); ``None`` records
            in-memory only.
        fmt: Override the suffix-derived format.
    """

    def __init__(self, header: TraceHeader,
                 path: str | os.PathLike[str] | None = None, *,
                 fmt: str | None = None) -> None:
        self.trace = Trace(header=header)
        self._fh: io.TextIOBase | None = None
        self._csv: Any = None
        self._fmt = None
        if path is not None:
            p = Path(path)
            self._fmt = fmt or _fmt_from_suffix(p)
            p.parent.mkdir(parents=True, exist_ok=True)
            self._fh = p.open("w", newline="")
            if self._fmt == "jsonl":
                self._fh.write(
                    json.dumps(header.to_dict(), sort_keys=True) + "\n"
                )
            else:
                self._csv = csv.writer(self._fh, lineterminator="\n")
                self._csv.writerow(_CSV_COLUMNS)
                for key, value in header.to_dict().items():
                    self._csv.writerow([-1, "header", "", key, value])
            self._fh.flush()

    def record(self, record: dict[str, Any]) -> None:
        """Append one record (and stream it out when a path is open)."""
        idx = len(self.trace.records)
        self.trace.append(record)
        if self._fh is None:
            return
        if self._fmt == "jsonl":
            self._fh.write(
                json.dumps(encode_record(record), sort_keys=True) + "\n"
            )
        else:
            op = record["op"]
            code = record.get("code", "")
            payload = [(k, v) for k, v in record.items()
                       if k not in ("op", "code")]
            if not payload:
                self._csv.writerow([idx, op, code, "", ""])
            for key, value in payload:
                self._csv.writerow(
                    [idx, op, code, key, _csv_value(key, value)]
                )
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def records_equal(a: Mapping[str, Any], b: Mapping[str, Any]) -> bool:
    """Field-wise record equality with NaN-aware float compares."""
    if a.keys() != b.keys():
        return False
    for key in a:
        va, vb = a[key], b[key]
        if key in _FLOAT_FIELDS:
            if not floats_equal(va, vb):
                return False
        elif key in _FLOAT_LIST_FIELDS:
            if len(va) != len(vb) or not all(
                    floats_equal(x, y) for x, y in zip(va, vb)):
                return False
        elif key in _FLOAT_TABLE_FIELDS:
            if len(va) != len(vb) or not all(
                    len(ra) == len(rb) and all(
                        floats_equal(x, y) for x, y in zip(ra, rb))
                    for ra, rb in zip(va, vb)):
                return False
        else:
            if _as_tuple(va) != _as_tuple(vb):
                return False
    return True


def _as_tuple(x: Any) -> Any:
    return tuple(x) if isinstance(x, (list, tuple)) else x


def level_array(levels: Iterable[float]) -> np.ndarray:
    """Levels argument -> a validated 1-D float array."""
    v = np.asarray(list(levels) if not isinstance(levels, np.ndarray)
                   else levels, dtype=float)
    if v.ndim != 1 or v.size == 0:
        raise TraceError("levels must be a non-empty 1-D sequence")
    return v
