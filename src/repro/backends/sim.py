"""The event-driven simulation driver (slow; the oracle).

Every word comes from a full PREPARE/SENSE sequence of the
:class:`~repro.core.array.SensorArrayHarness` netlist — gate-level
events, real flip-flop capture, the works.  Thresholds are bisected on
that pass/fail boundary.  Orders of magnitude slower than
:class:`~repro.backends.kernel.KernelBackend` (~3 ms per word, ~10 ms
per threshold), which is exactly why the backend seam exists: campaigns
develop against the kernel driver and cross-check against this one.

Accuracy note: the event engine realizes the analytic design through
discretized gate delays, so its pass/fail boundary sits within a few
microvolts of the kernel threshold (measured ~5e-7 V on the paper
design) — far inside the documented sub-millivolt sim-vs-analytic
agreement, but *not* within the 2e-9 V kernel-vs-oracle bound.  The
parity matrix (``tests/test_backends_parity.py``) encodes both bounds.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.backends.base import BackendCapabilities, SensorBackend
from repro.core.sensor import SenseRail, SensorBitHarness
from repro.errors import CharacterizationError, ConfigurationError

#: Version tag of the event-engine realization this driver wraps.
SIM_ENGINE_VERSION = "sim-engine/v1"


class SimBackend(SensorBackend):
    """Event-driven measurement driver.

    Args:
        tol: Threshold bisection tolerance, volts.  Folded into the
            fingerprint — a looser bisection is a different instrument.
        bracket_pad: Bisection bracket margin around the analytic
            estimate, volts.
    """

    id = "sim"

    def __init__(self, *, tol: float = 0.5e-3,
                 bracket_pad: float = 0.15) -> None:
        super().__init__()
        if tol <= 0 or bracket_pad <= 0:
            raise ConfigurationError(
                "tol and bracket_pad must be positive"
            )
        self.tol = float(tol)
        self.bracket_pad = float(bracket_pad)
        self._harness = None

    def _configured(self) -> None:
        self._harness = None

    def engine_version(self) -> tuple[str, ...]:
        return super().engine_version() + (
            SIM_ENGINE_VERSION,
            f"tol={self.tol.hex()}",
            f"pad={self.bracket_pad.hex()}",
        )

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(backend=self.id, thresholds=True,
                                   lot_thresholds=False, s_curve=True)

    def _array_harness(self):
        if self._harness is None:
            from repro.core.array import SensorArrayHarness

            self._harness = SensorArrayHarness(self.design, self.rail,
                                               self.tech)
        return self._harness

    def measure_batch(self, levels: Sequence[float] | np.ndarray, *,
                      code: int) -> np.ndarray:
        from repro.backends.trace import level_array

        v = level_array(levels)
        harness = self._array_harness()
        words = np.empty((v.size, self.design.n_bits), dtype=np.uint8)
        for i, level in enumerate(v):
            kwargs = {"vdd_n": float(level)} \
                if self.rail is SenseRail.VDD else {"gnd_n": float(level)}
            measure = harness.measure_once(code, **kwargs)
            words[i] = measure.word.bits
        return words

    def bit_thresholds(self, code: int, *,
                       bits: Iterable[int] | None = None
                       ) -> tuple[float, ...]:
        from repro.core.characterization import (
            _sim_bracket,
            _sim_threshold,
        )
        from repro.kernels.thresholds import threshold_grid

        design = self.design
        sel = tuple(range(1, design.n_bits + 1)) if bits is None \
            else tuple(int(b) for b in bits)
        analytic = threshold_grid(design, (code,), self.tech,
                                  bits=sel)[:, 0]
        if self.rail is SenseRail.GND:
            analytic = design.tech.vdd_nominal - analytic
        out = []
        for b, est in zip(sel, analytic):
            v_lo, v_hi = _sim_bracket(float(est), self.rail,
                                      self.bracket_pad)
            try:
                out.append(_sim_threshold(
                    design, b, code, rail=self.rail, tech=self.tech,
                    v_lo=v_lo, v_hi=v_hi, tol=self.tol,
                ))
            except CharacterizationError:
                # Degraded mode: an unbracketable stage is masked, not
                # fatal — the NaN convention of the protocol.
                out.append(math.nan)
        return tuple(out)

    def s_curve(self, bit: int, *, code: int, noise_rms: float,
                n_per_level: int,
                seed: "int | np.random.SeedSequence",
                span_sigmas: float = 4.0, n_levels: int = 15
                ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Per-draw event simulation — the true stochastic oracle.

        Draws the same Gaussian cube as the kernel sweep (same
        generator, same fill order) but answers each draw with a full
        PREPARE/SENSE event run, so probabilities can differ from the
        kernel's only for draws landing inside the few-microvolt
        engine-boundary band.  Costs ``n_levels * n_per_level`` event
        sims (~1.5 ms each) — keep the cube small.

        Sweeps the VDD-n axis regardless of the configured rail — the
        :func:`~repro.analysis.repeatability.measure_s_curve`
        convention every driver follows.
        """
        from repro.kernels.montecarlo import s_curve_levels

        if noise_rms <= 0:
            raise ConfigurationError(
                "noise_rms must be positive (an S-curve needs noise)"
            )
        if n_levels < 5 or n_per_level < 10:
            raise ConfigurationError(
                "need >= 5 levels and >= 10 measures"
            )
        levels = s_curve_levels(
            self.design, code=code, noise_rms=noise_rms,
            span_sigmas=span_sigmas, n_levels=n_levels, bits=[bit],
        )[0]
        harness = SensorBitHarness(self.design, bit, SenseRail.VDD,
                                   self.tech)
        rng = np.random.default_rng(seed)
        probs = []
        for level in levels:
            draws = level + rng.normal(0.0, noise_rms,
                                       size=n_per_level)
            passes = sum(
                1 for v in draws
                if harness.measure_once(code, vdd_n=float(v)).passed
            )
            probs.append(passes / n_per_level)
        return (tuple(float(v) for v in levels), tuple(probs))
