"""``RecordingBackend`` — wrap any driver, transcribe every op.

The recorder is *transparent*: every request passes straight to the
wrapped driver and every result returns unchanged (same objects, same
floats), while a :class:`~repro.backends.trace.TraceWriter` transcribes
the (request, result) pair.  Transparency extends to identity —
:meth:`RecordingBackend.fingerprint` returns the *inner* driver's
fingerprint — so a recorded campaign and a bare one produce identical
cache keys and therefore identical artifacts: recording never changes
what it records.

Designs and corners land in ``configure`` records as environment-free
``stable_hash`` tokens (not the machine-dependent
``design_fingerprint``), so a trace recorded on one platform verifies
on another — the golden-trace CI job depends on this.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Iterable, Sequence

import numpy as np

from repro.backends.base import (
    BackendCapabilities,
    BackendMeasure,
    SensorBackend,
)
from repro.backends.trace import (
    Trace,
    TraceHeader,
    TraceWriter,
    TRACE_SCHEMA,
    seed_token,
)
from repro.runtime.cache import stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.calibration import SensorDesign
    from repro.core.sensor import SenseRail
    from repro.devices.technology import Technology
    from repro.devices.variation import VariationSample


def _tech_token(tech: "Technology | None") -> str:
    return "" if tech is None else stable_hash(tech)


class RecordingBackend(SensorBackend):
    """Transcribing decorator around any :class:`SensorBackend`.

    Args:
        inner: The driver doing the actual measuring.
        path: Trace destination (``.jsonl``/``.csv``); ``None`` keeps
            the trace in memory only (read it via :attr:`trace`).
        fmt: Override the suffix-derived format.
        note: Free-form campaign label for the trace header.
    """

    id = "recording"

    def __init__(self, inner: SensorBackend,
                 path: str | os.PathLike[str] | None = None, *,
                 fmt: str | None = None, note: str = "") -> None:
        super().__init__()
        from repro.kernels.montecarlo import MC_SEED_SCHEME

        self.inner = inner
        self.writer = TraceWriter(
            TraceHeader(
                schema=TRACE_SCHEMA,
                backend=inner.id,
                backend_fingerprint=inner.fingerprint(),
                seed_scheme=MC_SEED_SCHEME,
                note=note,
            ),
            path, fmt=fmt,
        )

    # -- trace access ------------------------------------------------------

    @property
    def trace(self) -> Trace:
        """The transcript so far (shared with the streaming writer)."""
        return self.writer.trace

    def close(self) -> None:
        self.writer.close()

    def __enter__(self) -> "RecordingBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- transparent identity ----------------------------------------------

    def fingerprint(self) -> str:
        return self.inner.fingerprint()

    def engine_version(self) -> tuple[str, ...]:
        return self.inner.engine_version()

    def capabilities(self) -> BackendCapabilities:
        return self.inner.capabilities()

    # -- transcribed ops ---------------------------------------------------

    def configure(self, design: "SensorDesign", *,
                  rail: "SenseRail | None" = None,
                  tech: "Technology | None" = None) -> None:
        super().configure(design, rail=rail, tech=tech)
        self.inner.configure(design, rail=self.rail, tech=tech)
        self.writer.record({
            "op": "configure",
            "design": stable_hash(design),
            "rail": self.rail.value,
            "tech": _tech_token(tech),
        })

    def measure_batch(self, levels: Sequence[float] | np.ndarray, *,
                      code: int) -> np.ndarray:
        words = self.inner.measure_batch(levels, code=code)
        self.writer.record({
            "op": "measure_batch",
            "code": int(code),
            "levels": [float(v) for v in np.asarray(levels,
                                                    dtype=float)],
            "words": [tuple(int(b) for b in row) for row in words],
        })
        return words

    def measure(self, level: float, *, code: int) -> BackendMeasure:
        # Routes through measure_batch (the base implementation), so a
        # scalar measure records as a one-level batch — replay serves
        # it back the same way.
        return super().measure(level, code=code)

    def bit_thresholds(self, code: int, *,
                       bits: Iterable[int] | None = None
                       ) -> tuple[float, ...]:
        values = self.inner.bit_thresholds(code, bits=bits)
        sel = tuple(range(1, self.design.n_bits + 1)) if bits is None \
            else tuple(int(b) for b in bits)
        self.writer.record({
            "op": "bit_thresholds",
            "code": int(code),
            "bits": sel,
            "values": [float(v) for v in values],
        })
        return values

    def lot_thresholds(self, lot: Sequence["VariationSample"],
                       code: int) -> np.ndarray:
        table = self.inner.lot_thresholds(lot, code)
        self.writer.record({
            "op": "lot_thresholds",
            "code": int(code),
            "lot": stable_hash(tuple(lot)),
            "table": [[float(v) for v in row] for row in table],
        })
        return table

    def s_curve(self, bit: int, *, code: int, noise_rms: float,
                n_per_level: int,
                seed: "int | np.random.SeedSequence",
                span_sigmas: float = 4.0, n_levels: int = 15
                ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        levels, probs = self.inner.s_curve(
            bit, code=code, noise_rms=noise_rms,
            n_per_level=n_per_level, seed=seed,
            span_sigmas=span_sigmas, n_levels=n_levels,
        )
        self.writer.record({
            "op": "s_curve",
            "code": int(code),
            "bits": (int(bit),),
            "noise_rms": float(noise_rms),
            "span_sigmas": float(span_sigmas),
            "n_per_level": int(n_per_level),
            "n_levels": int(n_levels),
            "seed": seed_token(seed),
            "levels": list(levels),
            "probs": list(probs),
        })
        return levels, probs
