"""The analytic + Monte-Carlo kernel driver (fast; the default).

Routes every protocol op to the vectorized kernel tier:

* words — :func:`repro.kernels.montecarlo.word_grid_mc` (bit-identical
  to the scalar :meth:`~repro.core.sensor.SensorBit.measure`);
* thresholds — :func:`repro.kernels.thresholds.threshold_grid`
  (|kernel - brentq oracle| <= 2e-9 V);
* mismatch lots — :func:`repro.kernels.thresholds.lot_threshold_grid`;
* S-curves — :func:`repro.kernels.montecarlo.s_curve_trip_probability`
  under the documented seed-threading scheme.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.backends.base import BackendCapabilities, SensorBackend
from repro.core.sensor import SenseRail
from repro.kernels import KERNEL_LAYOUT_VERSION
from repro.kernels.montecarlo import (
    MC_SEED_SCHEME,
    effective_supply_grid,
    s_curve_trip_probability,
    word_grid_mc,
)
from repro.kernels.thresholds import lot_threshold_grid, threshold_grid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devices.variation import VariationSample


class KernelBackend(SensorBackend):
    """Vectorized analytic/Monte-Carlo measurement driver."""

    id = "kernel"

    def engine_version(self) -> tuple[str, ...]:
        return super().engine_version() \
            + (KERNEL_LAYOUT_VERSION, MC_SEED_SCHEME)

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(backend=self.id, thresholds=True,
                                   lot_thresholds=True, s_curve=True)

    def measure_batch(self, levels: Sequence[float] | np.ndarray, *,
                      code: int) -> np.ndarray:
        from repro.backends.trace import level_array

        v = level_array(levels)
        v_eff = effective_supply_grid(
            self.design, v, rail=self.rail.value
        )
        return word_grid_mc(self.design, v_eff, code=code,
                            tech=self.tech)

    def bit_thresholds(self, code: int, *,
                       bits: Iterable[int] | None = None
                       ) -> tuple[float, ...]:
        grid = threshold_grid(self.design, (code,), self.tech,
                              bits=bits)[:, 0]
        if self.rail is SenseRail.GND:
            grid = self.design.tech.vdd_nominal - grid
        return tuple(float(v) for v in grid)

    def lot_thresholds(self, lot: Sequence["VariationSample"],
                       code: int) -> np.ndarray:
        return lot_threshold_grid(self.design, lot, code)

    def s_curve(self, bit: int, *, code: int, noise_rms: float,
                n_per_level: int,
                seed: "int | np.random.SeedSequence",
                span_sigmas: float = 4.0, n_levels: int = 15
                ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        levels, probs = s_curve_trip_probability(
            self.design, code=code, noise_rms=noise_rms,
            n_per_level=n_per_level, seeds=[seed],
            span_sigmas=span_sigmas, n_levels=n_levels, bits=[bit],
            tech=self.tech,
        )
        return (tuple(float(v) for v in levels[0]),
                tuple(float(p) for p in probs[0]))
