"""Pluggable measurement drivers behind one ``SensorBackend`` seam.

The registry resolves driver *specs* — short strings usable from code,
the CLI (``--backend``) and the environment (``REPRO_BACKEND``):

========================  ====================================================
spec                      driver
========================  ====================================================
``"kernel"``              :class:`~repro.backends.kernel.KernelBackend`
                          (vectorized analytic/MC tier; the default)
``"sim"``                 :class:`~repro.backends.sim.SimBackend`
                          (event-driven oracle)
``"replay:<path>"``       :class:`~repro.backends.replay.ReplayBackend`
                          over the trace file at ``<path>``
========================  ====================================================

Entry points take ``backend=`` (a spec string or a ready instance) and
resolve it with :func:`resolve_backend`; with no explicit argument the
``REPRO_BACKEND`` variable decides, falling back to ``"kernel"``.

Quickstart — record once, replay forever::

    from repro.backends import RecordingBackend, ReplayBackend, get

    with RecordingBackend(get("kernel"), "campaign.jsonl") as rec:
        result = characterize_array(design, backend=rec)

    again = characterize_array(
        design, backend=ReplayBackend("campaign.jsonl")
    )
    assert again == result   # bit-identical, no measuring
"""

from __future__ import annotations

import os
from typing import Callable

from repro.backends.base import (
    BACKEND_PROTOCOL,
    BackendCapabilities,
    BackendMeasure,
    SensorBackend,
)
from repro.backends.faults import FaultInjectingBackend, InjectedFaultError
from repro.backends.kernel import KernelBackend
from repro.backends.recording import RecordingBackend
from repro.backends.replay import ReplayBackend
from repro.backends.sim import SimBackend
from repro.backends.trace import (
    TRACE_SCHEMA,
    Trace,
    TraceHeader,
    TraceWriter,
)
from repro.errors import BackendError

#: Environment variable naming the default driver spec.
BACKEND_ENV = "REPRO_BACKEND"

#: Spec name -> zero-argument driver factory.
_REGISTRY: dict[str, Callable[[], SensorBackend]] = {
    "kernel": KernelBackend,
    "sim": SimBackend,
}


def register(name: str,
             factory: Callable[[], SensorBackend]) -> None:
    """Add a driver factory under a spec name (e.g. a hardware rig).

    Re-registering a name replaces its factory — deliberate, so test
    doubles can shadow the stock drivers.
    """
    if not name or ":" in name:
        raise BackendError(
            f"invalid backend name {name!r} (non-empty, no ':')"
        )
    _REGISTRY[name] = factory


def available() -> tuple[str, ...]:
    """Registered spec names, sorted (``replay:<path>`` not listed —
    it needs a trace argument)."""
    return tuple(sorted(_REGISTRY))


def get(spec: str) -> SensorBackend:
    """Resolve a spec string to a fresh driver instance.

    ``"replay:<path>"`` loads the trace file at ``<path>``; any other
    spec must name a registered factory.
    """
    if spec.startswith("replay:"):
        path = spec[len("replay:"):]
        if not path:
            raise BackendError(
                "replay spec needs a trace path: 'replay:<path>'"
            )
        return ReplayBackend(path)
    factory = _REGISTRY.get(spec)
    if factory is None:
        raise BackendError(
            f"unknown backend {spec!r}; registered: "
            f"{', '.join(available())} (or 'replay:<path>')"
        )
    return factory()


def resolve_backend(backend: "SensorBackend | str | None",
                    *, default: str = "kernel") -> SensorBackend:
    """The entry-point resolution rule.

    Precedence: an explicit instance > an explicit spec string > the
    ``REPRO_BACKEND`` environment variable > ``default``.
    """
    if isinstance(backend, SensorBackend):
        return backend
    if backend is not None:
        return get(backend)
    return get(os.environ.get(BACKEND_ENV) or default)


__all__ = [
    "BACKEND_ENV",
    "BACKEND_PROTOCOL",
    "BackendCapabilities",
    "BackendMeasure",
    "FaultInjectingBackend",
    "InjectedFaultError",
    "KernelBackend",
    "RecordingBackend",
    "ReplayBackend",
    "SensorBackend",
    "SimBackend",
    "TRACE_SCHEMA",
    "Trace",
    "TraceHeader",
    "TraceWriter",
    "available",
    "get",
    "register",
    "resolve_backend",
]
