"""SI-unit helpers.

The library stores every physical quantity in base SI units: seconds,
volts, amperes, farads, ohms, henries.  The constants here exist so that
call sites can say ``65 * PS`` or ``2 * PF`` instead of sprinkling
``e-12`` literals, and so that printed reports can convert back to the
engineering units used in the paper (ps, fF/pF, mV).
"""

from __future__ import annotations

# Time
S = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9
PS = 1e-12
FS = 1e-15

# Capacitance
F = 1.0
UF = 1e-6
NF = 1e-9
PF = 1e-12
FF = 1e-15

# Voltage
V = 1.0
MV = 1e-3

# Current
A = 1.0
MA = 1e-3
UA = 1e-6

# Resistance / inductance
OHM = 1.0
MOHM = 1e-3
NH = 1e-9
PH = 1e-12

# Frequency
HZ = 1.0
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9


def to_ps(seconds: float) -> float:
    """Convert a time in seconds to picoseconds."""
    return seconds / PS


def to_ns(seconds: float) -> float:
    """Convert a time in seconds to nanoseconds."""
    return seconds / NS


def to_ff(farads: float) -> float:
    """Convert a capacitance in farads to femtofarads."""
    return farads / FF


def to_pf(farads: float) -> float:
    """Convert a capacitance in farads to picofarads."""
    return farads / PF


def to_mv(volts: float) -> float:
    """Convert a voltage in volts to millivolts."""
    return volts / MV


def fmt_time(seconds: float) -> str:
    """Render a time with an auto-selected engineering unit.

    >>> fmt_time(65e-12)
    '65.000 ps'
    >>> fmt_time(1.22e-9)
    '1.220 ns'
    """
    a = abs(seconds)
    if a < 1e-15:
        return f"{seconds / FS:.3f} fs" if a > 0 else "0 s"
    if a < 1e-9:
        return f"{seconds / PS:.3f} ps"
    if a < 1e-6:
        return f"{seconds / NS:.3f} ns"
    if a < 1e-3:
        return f"{seconds / US:.3f} us"
    return f"{seconds:.6f} s"


def fmt_cap(farads: float) -> str:
    """Render a capacitance with an auto-selected engineering unit.

    >>> fmt_cap(2e-12)
    '2.000 pF'
    """
    a = abs(farads)
    if a < 1e-12:
        return f"{farads / FF:.3f} fF"
    if a < 1e-9:
        return f"{farads / PF:.3f} pF"
    return f"{farads / NF:.3f} nF"


def fmt_volt(volts: float) -> str:
    """Render a voltage in volts with 4 decimal places (paper style).

    >>> fmt_volt(0.936)
    '0.9360 V'
    """
    return f"{volts:.4f} V"
