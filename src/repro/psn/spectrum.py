"""PDN impedance spectra and decap sizing.

Frequency-domain companions to the time-domain :mod:`repro.psn.pdn`
model: sweep the rail impedance, find the anti-resonance peak that
shapes the mid-frequency droop the sensor is built to catch, and size
decoupling capacitance against a target impedance — the knob a designer
turns when the thermometer reports too much noise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.psn.pdn import PDNParameters


@dataclass(frozen=True)
class ImpedanceProfile:
    """A swept impedance magnitude profile.

    Attributes:
        freqs: Frequency axis, hertz (log-spaced).
        magnitudes: ``|Z|`` at each frequency, ohms.
    """

    freqs: np.ndarray
    magnitudes: np.ndarray

    @property
    def peak(self) -> tuple[float, float]:
        """(frequency, |Z|) at the anti-resonance peak."""
        i = int(np.argmax(self.magnitudes))
        return float(self.freqs[i]), float(self.magnitudes[i])

    def at(self, freq: float) -> float:
        """Interpolated |Z| at one frequency (log-domain interp)."""
        if freq <= 0:
            raise ConfigurationError("freq must be positive")
        return float(np.interp(np.log10(freq), np.log10(self.freqs),
                               self.magnitudes))


def impedance_profile(params: PDNParameters, *,
                      f_min: float = 1e6, f_max: float = 10e9,
                      n_points: int = 400) -> ImpedanceProfile:
    """Sweep ``|Z(f)|`` of a PDN over a log-spaced axis.

    Raises:
        ConfigurationError: for a bad frequency interval.
    """
    if not 0 < f_min < f_max:
        raise ConfigurationError("need 0 < f_min < f_max")
    if n_points < 8:
        raise ConfigurationError("n_points must be at least 8")
    freqs = np.logspace(np.log10(f_min), np.log10(f_max), n_points)
    mags = np.array([abs(params.impedance_at(float(f))) for f in freqs])
    return ImpedanceProfile(freqs=freqs, magnitudes=mags)


def resonant_droop_bound(params: PDNParameters,
                         current_amplitude: float) -> float:
    """Worst-case rail excursion for *sustained periodic* excitation.

    A current waveform with amplitude ``I`` concentrated at the
    anti-resonance frequency rings the rail up to ``I * Z_pk`` — the
    pessimistic design-rule bound (a step or a single burst excites far
    less; see :func:`step_droop_estimate`).
    """
    if current_amplitude < 0:
        raise ConfigurationError("current_amplitude must be >= 0")
    _, z_pk = impedance_profile(params).peak
    return current_amplitude * z_pk


def step_droop_estimate(params: PDNParameters,
                        current_step: float) -> float:
    """First-droop estimate for a single load *step*, volts.

    A step of ``I`` into an underdamped series-RLC rail dips by about
    ``I * sqrt(L/C) * exp(-pi * zeta / sqrt(1 - zeta^2))`` at the first
    resonance trough — the characteristic-impedance kick reduced by the
    damping accumulated over the first half cycle.
    """
    if current_step < 0:
        raise ConfigurationError("current_step must be non-negative")
    zeta = min(params.damping_ratio, 0.999)
    damping = np.exp(-np.pi * zeta / np.sqrt(1.0 - zeta ** 2))
    return current_step * params.characteristic_impedance * damping


def decap_for_target_impedance(params: PDNParameters,
                               z_target: float, *,
                               c_max: float = 10e-6,
                               tol: float = 1e-3) -> PDNParameters:
    """Grow the decap until the peak impedance meets a target.

    Args:
        params: Starting PDN.
        z_target: Required peak impedance, ohms.
        c_max: Search ceiling for the decap, farads.
        tol: Relative bisection tolerance on the capacitance.

    Returns:
        A copy of ``params`` with the smallest sufficient ``c_decap``.

    Raises:
        ConfigurationError: if even ``c_max`` cannot meet the target.
    """
    if z_target <= 0:
        raise ConfigurationError("z_target must be positive")

    def peak_z(c: float) -> float:
        return impedance_profile(replace(params, c_decap=c)).peak[1]

    if peak_z(params.c_decap) <= z_target:
        return params
    if peak_z(c_max) > z_target:
        raise ConfigurationError(
            f"target {z_target:g} ohm unreachable below c_max={c_max:g} F"
        )
    lo, hi = params.c_decap, c_max
    while (hi - lo) / hi > tol:
        mid = (lo * hi) ** 0.5  # geometric bisection on a log axis
        if peak_z(mid) > z_target:
            lo = mid
        else:
            hi = mid
    return replace(params, c_decap=hi)
