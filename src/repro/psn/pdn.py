"""Lumped RLC power-delivery-network model.

The canonical two-element PDN: the off-chip regulator is an ideal
``vdd_nominal`` source behind a package/bump series branch (R, L) into
the on-die rail, which is held up by decoupling capacitance C (with its
effective series resistance) and discharged by the CUT's switching
current.  State equations:

    L * di/dt = vdd_nominal - v_die - R * i
    C * dv_c/dt = i_c                 (decap branch)
    v_die = v_c + R_esr * i_c
    i = i_c + i_load(t)

Two integrators share these equations.  The default (``method="lti"``)
is the exact zero-order-hold solution from
:mod:`repro.kernels.transient` — matrix-exponential ``A_d``/``B_d``
stepping at C speed, exact for piecewise-constant loads and at the DC
steady state.  The original fixed-step trapezoidal (Tustin) loop stays
as the oracle (``method="trapezoid"``) — A-stable, so the resonant
ringing the experiments rely on is reproduced without artificial
damping.  Both converge to the continuous solution as ``dt -> 0``; at
the step ceiling this module enforces (``dt <= 0.05 / f_res``) they
agree within the half-sample input-hold skew, ``~pi * 0.05`` of the
local droop slope per step.  The output is a
:class:`~repro.sim.waveform.PiecewiseLinearWaveform` ready to bind to a
supply net.

A mirrored instance with its own R/L models the ground return path:
ground *bounce* is ``gnd(t) = bounce`` rising above 0 V when current
returns through the ground inductance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.waveform import PiecewiseLinearWaveform
from repro.units import MOHM, NH, NF, PH

CurrentFunction = Callable[[float], float]


def _sample_current(i_load: "CurrentFunction | np.ndarray",
                    times: np.ndarray, *, t_end: float,
                    dt: float) -> np.ndarray:
    """Load-current samples at ``times``, vectorized when possible.

    A callable is first offered the whole time axis; only a plain
    ndarray of exactly ``times.shape`` is accepted as a vectorized
    answer (scalar-returning lambdas broadcast, piecewise ``if``
    conditionals raise — both fall back to the per-sample loop).
    """
    if not callable(i_load):
        i_samples = np.asarray(i_load, dtype=float)
        if i_samples.shape != times.shape:
            raise ConfigurationError(
                f"i_load array has {i_samples.size} samples; expected "
                f"{times.size} for t_end={t_end}, dt={dt}"
            )
        return i_samples
    try:
        batched = i_load(times)
    except Exception:
        batched = None
    if isinstance(batched, np.ndarray) and batched.shape == times.shape:
        return np.asarray(batched, dtype=float)
    return np.array([i_load(float(t)) for t in times])


@dataclass(frozen=True)
class PDNParameters:
    """Electrical parameters of the lumped PDN.

    Defaults are 90 nm-class: tens of pH of package+bump inductance per
    rail as seen die-side, a few mΩ of spreading resistance, and
    hundreds of nF of on-die + package decap, giving a mid-frequency
    resonance in the 50–200 MHz band.

    Attributes:
        vdd_nominal: Regulator setpoint, volts.
        r_series: Series resistance of the supply path, ohms.
        l_series: Series inductance of the supply path, henries.
        c_decap: Decoupling capacitance, farads.
        r_esr: Effective series resistance of the decap, ohms.
    """

    vdd_nominal: float = 1.0
    r_series: float = 3.0 * MOHM
    l_series: float = 60.0 * PH
    c_decap: float = 40.0 * NF
    r_esr: float = 0.5 * MOHM

    def __post_init__(self) -> None:
        if self.vdd_nominal <= 0:
            raise ConfigurationError("vdd_nominal must be positive")
        for attr in ("r_series", "l_series", "c_decap", "r_esr"):
            if getattr(self, attr) < 0:
                raise ConfigurationError(f"{attr} must be non-negative")
        if self.l_series == 0 or self.c_decap == 0:
            raise ConfigurationError(
                "l_series and c_decap must be positive for a resonant PDN"
            )

    @property
    def resonant_frequency(self) -> float:
        """Undamped LC resonance, hertz."""
        return 1.0 / (2.0 * math.pi * math.sqrt(self.l_series * self.c_decap))

    @property
    def characteristic_impedance(self) -> float:
        """``sqrt(L/C)`` — peak impedance scale, ohms."""
        return math.sqrt(self.l_series / self.c_decap)

    @property
    def damping_ratio(self) -> float:
        """Series-RLC damping ratio ``zeta``."""
        return (self.r_series + self.r_esr) / 2.0 \
            * math.sqrt(self.c_decap / self.l_series)

    def impedance_at(self, freq: float) -> complex:
        """Impedance seen by the die at a frequency, ohms (complex)."""
        if freq < 0:
            raise ConfigurationError("freq must be non-negative")
        w = 2.0 * math.pi * freq
        z_series = self.r_series + 1j * w * self.l_series
        if w == 0.0:
            return z_series * 0 + (self.r_series + 0j)
        z_cap = self.r_esr + 1.0 / (1j * w * self.c_decap)
        return z_series * z_cap / (z_series + z_cap)


class PDNModel:
    """Time-domain simulator for one :class:`PDNParameters` instance."""

    def __init__(self, params: PDNParameters) -> None:
        self.params = params

    def simulate(self, i_load: CurrentFunction | np.ndarray, *,
                 t_end: float, dt: float, v0: float | None = None,
                 method: str = "lti") -> PiecewiseLinearWaveform:
        """Integrate the die-rail voltage over ``[0, t_end]``.

        Args:
            i_load: CUT current draw — a callable ``i(t)`` in amperes, or
                a pre-sampled array of length ``round(t_end/dt) + 1``.
                Callables that accept an array of times (returning an
                array of the same shape) are sampled in one call; scalar
                callables fall back to a per-sample loop.
            t_end: End time, seconds.
            dt: Integration step, seconds.  Should resolve the resonance
                (``dt << 1/f_res``); a too-coarse step raises.
            v0: Initial rail voltage; defaults to the nominal (assumes a
                settled rail before the stimulus).
            method: ``"lti"`` (default) for the exact-ZOH kernel
                (:mod:`repro.kernels.transient`), ``"trapezoid"`` for
                the original Tustin loop (the convergence oracle).

        Returns:
            ``v_die(t)`` as a piecewise-linear waveform.

        Raises:
            ConfigurationError: for a step that under-resolves the
                resonance, a mismatched sample array, or an unknown
                method.
        """
        p = self.params
        if method not in ("lti", "trapezoid"):
            raise ConfigurationError(
                f"unknown method {method!r} (use 'lti'/'trapezoid')"
            )
        if t_end <= 0 or dt <= 0:
            raise ConfigurationError("t_end and dt must be positive")
        n = int(round(t_end / dt))
        if n < 2:
            raise ConfigurationError("t_end/dt must give at least 2 steps")
        if dt > 0.05 / p.resonant_frequency:
            raise ConfigurationError(
                f"dt={dt:g}s under-resolves the PDN resonance "
                f"({p.resonant_frequency:.3g} Hz); use dt <= "
                f"{0.05 / p.resonant_frequency:.3g}s"
            )
        times = np.arange(n + 1) * dt
        i_samples = _sample_current(i_load, times, t_end=t_end, dt=dt)

        v_init = p.vdd_nominal if v0 is None else v0
        if method == "lti":
            from repro.kernels.transient import step_rail

            v_out = step_rail(p, i_samples, dt=dt, v0=v_init)
            return PiecewiseLinearWaveform(times, v_out)

        # State x = [i_branch, v_cap]; v_die = v_cap + r_esr*(i - i_load).
        # Trapezoidal update: (I - dt/2 A) x_{k+1} = (I + dt/2 A) x_k
        #                      + dt/2 (b_k + b_{k+1})
        r_total = p.r_series + p.r_esr
        a = np.array([
            [-r_total / p.l_series, -1.0 / p.l_series],
            [1.0 / p.c_decap, 0.0],
        ])
        m_minus = np.eye(2) - (dt / 2.0) * a
        m_plus = np.eye(2) + (dt / 2.0) * a
        m_inv = np.linalg.inv(m_minus)

        def forcing(i_l: float) -> np.ndarray:
            return np.array([
                (p.vdd_nominal + p.r_esr * i_l) / p.l_series,
                -i_l / p.c_decap,
            ])

        x = np.array([i_samples[0], v_init - p.r_esr * 0.0])
        v_out = np.empty(n + 1)
        v_out[0] = x[1] + p.r_esr * (x[0] - i_samples[0])
        for k in range(n):
            b = (dt / 2.0) * (forcing(i_samples[k])
                              + forcing(i_samples[k + 1]))
            x = m_inv @ (m_plus @ x + b)
            v_out[k + 1] = x[1] + p.r_esr * (x[0] - i_samples[k + 1])
        return PiecewiseLinearWaveform(times, v_out)

    def ground_bounce(self, i_load: CurrentFunction | np.ndarray, *,
                      t_end: float, dt: float, fraction: float = 1.0,
                      method: str = "lti") -> PiecewiseLinearWaveform:
        """Ground-rail bounce for the same load current.

        The return path sees the same R/L; bounce is the complement of
        the supply droop around the nominal: ``gnd(t) =
        fraction * (vdd_nominal - v_die(t))``.  ``fraction`` scales for
        asymmetric supply/ground networks.
        """
        if not 0.0 <= fraction <= 2.0:
            raise ConfigurationError("fraction must be in [0, 2]")
        v_die = self.simulate(i_load, t_end=t_end, dt=dt, method=method)
        times = v_die.times
        bounce = fraction * (self.params.vdd_nominal - v_die.values)
        return PiecewiseLinearWaveform(times, bounce)
