"""Direct noise-waveform synthesis and scripted scenarios.

Not every experiment wants the full PDN integration: the paper's own
figures drive the sensor with *scripted* supply levels (1.00 V then
0.95 V in Fig. 3; 1.00 V then 0.90 V in Fig. 9).  This module builds
those scripted rails, plus richer composites — DC IR drop, resonant
ringing, band-limited stochastic noise — for the accuracy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import signal as sp_signal

from repro.errors import ConfigurationError
from repro.sim.waveform import (
    ConstantWaveform,
    DampedSineWaveform,
    PiecewiseLinearWaveform,
    StepWaveform,
    SumWaveform,
    Waveform,
)


def two_level_scenario(v_first: float, v_second: float,
                       t_switch: float) -> StepWaveform:
    """The paper's two-measure rail: ``v_first`` then ``v_second``.

    Fig. 3 uses (1.00 V, 0.95 V); Fig. 9 uses (1.00 V, 0.90 V).
    """
    if v_first <= 0 or v_second <= 0:
        raise ConfigurationError("levels must be positive")
    return StepWaveform(before=v_first, after=v_second, t_step=t_switch)


def droop_event(base: float, depth: float, t0: float, *,
                freq: float = 100e6, decay: float = 20e-9
                ) -> SumWaveform:
    """A first-droop event: a dip of ``depth`` ringing back at ``freq``.

    Modelled as the base rail plus a damped sine whose first half-cycle
    is the droop (negative amplitude).
    """
    if depth < 0:
        raise ConfigurationError("depth must be non-negative")
    return SumWaveform([
        ConstantWaveform(base),
        DampedSineWaveform(base=0.0, amplitude=-depth, freq=freq,
                           decay=decay, t0=t0),
    ])


def band_limited_noise(*, t_end: float, dt: float, rms: float,
                       bandwidth: float, seed: int,
                       mean: float = 0.0) -> PiecewiseLinearWaveform:
    """Seeded Gaussian noise low-passed to ``bandwidth``.

    A 4th-order Butterworth low-pass shapes white Gaussian samples; the
    result is rescaled to the requested RMS about ``mean``.  Used to
    emulate broadband switching noise riding on the rail.

    Raises:
        ConfigurationError: if the bandwidth is not resolvable at ``dt``
            (must be below the Nyquist rate ``0.5/dt``).
    """
    if t_end <= 0 or dt <= 0:
        raise ConfigurationError("t_end and dt must be positive")
    if rms < 0:
        raise ConfigurationError("rms must be non-negative")
    nyquist = 0.5 / dt
    if not 0 < bandwidth < nyquist:
        raise ConfigurationError(
            f"bandwidth {bandwidth:g} Hz must lie in (0, {nyquist:g} Hz) "
            f"for dt={dt:g}s"
        )
    n = int(round(t_end / dt)) + 1
    rng = np.random.default_rng(seed)
    white = rng.normal(0.0, 1.0, size=n)
    b, a = sp_signal.butter(4, bandwidth / nyquist)
    shaped = sp_signal.lfilter(b, a, white)
    std = float(np.std(shaped))
    if std > 0 and rms > 0:
        shaped = shaped / std * rms
    else:
        shaped = np.zeros(n)
    times = np.arange(n) * dt
    return PiecewiseLinearWaveform(times, shaped + mean)


@dataclass
class NoiseScenario:
    """A composable description of one VDD-n / GND-n environment.

    Build up the scenario with the ``with_*`` methods, then call
    :meth:`build` to get the two rail waveforms.  The default scenario
    is clean nominal rails.

    Attributes:
        vdd_nominal: Nominal supply level, volts.
        t_end: Scenario duration, seconds (used by stochastic parts).
        dt: Sample step for stochastic parts, seconds.
        seed: RNG seed for stochastic parts.
    """

    vdd_nominal: float = 1.0
    t_end: float = 200e-9
    dt: float = 20e-12
    seed: int = 1234
    _vdd_parts: list[Waveform] = field(default_factory=list)
    _gnd_parts: list[Waveform] = field(default_factory=list)
    _ir_drop: float = 0.0
    _gnd_rise: float = 0.0

    def with_ir_drop(self, drop: float) -> "NoiseScenario":
        """Static IR drop on VDD-n, volts."""
        if drop < 0:
            raise ConfigurationError("drop must be non-negative")
        self._ir_drop = drop
        return self

    def with_ground_rise(self, rise: float) -> "NoiseScenario":
        """Static ground shift on GND-n, volts."""
        if rise < 0:
            raise ConfigurationError("rise must be non-negative")
        self._gnd_rise = rise
        return self

    def with_vdd_droop(self, depth: float, t0: float, *,
                       freq: float = 100e6,
                       decay: float = 20e-9) -> "NoiseScenario":
        """Add a resonant droop event on VDD-n."""
        self._vdd_parts.append(DampedSineWaveform(
            base=0.0, amplitude=-depth, freq=freq, decay=decay, t0=t0,
        ))
        return self

    def with_gnd_bounce(self, height: float, t0: float, *,
                        freq: float = 100e6,
                        decay: float = 20e-9) -> "NoiseScenario":
        """Add a resonant bounce event on GND-n."""
        self._gnd_parts.append(DampedSineWaveform(
            base=0.0, amplitude=height, freq=freq, decay=decay, t0=t0,
        ))
        return self

    def with_vdd_random_noise(self, rms: float, *,
                              bandwidth: float = 500e6) -> "NoiseScenario":
        """Add band-limited stochastic noise on VDD-n."""
        self._vdd_parts.append(band_limited_noise(
            t_end=self.t_end, dt=self.dt, rms=rms,
            bandwidth=bandwidth, seed=self.seed,
        ))
        return self

    def with_gnd_random_noise(self, rms: float, *,
                              bandwidth: float = 500e6) -> "NoiseScenario":
        """Add band-limited stochastic noise on GND-n."""
        self._gnd_parts.append(band_limited_noise(
            t_end=self.t_end, dt=self.dt, rms=rms,
            bandwidth=bandwidth, seed=self.seed + 1,
        ))
        return self

    def build(self) -> tuple[Waveform, Waveform]:
        """Return ``(vdd_n, gnd_n)`` waveforms."""
        vdd_parts: list[Waveform] = [
            ConstantWaveform(self.vdd_nominal - self._ir_drop)
        ]
        vdd_parts.extend(self._vdd_parts)
        gnd_parts: list[Waveform] = [ConstantWaveform(self._gnd_rise)]
        gnd_parts.extend(self._gnd_parts)
        vdd = vdd_parts[0] if len(vdd_parts) == 1 else SumWaveform(vdd_parts)
        gnd = gnd_parts[0] if len(gnd_parts) == 1 else SumWaveform(gnd_parts)
        return vdd, gnd
