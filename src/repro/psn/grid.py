"""Resistive on-die power-grid solver for spatial IR-drop maps.

The paper's closing argument is that the sensor arrays "can be placed in
many points of the DUT" — a *PSN scan chain*.  Exercising that needs a
CUT whose supply differs from point to point: this module models the
on-die power grid as a rectangular resistive mesh fed from supply pads,
loaded by per-tile currents, and solves the nodal equations with a
sparse direct solve.  The resulting per-tile voltages feed per-site
sensor instances in the scan-chain experiments.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import networkx as nx
import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import splu

from repro.errors import ConfigurationError


@functools.lru_cache(maxsize=16)
def _grid_factorization(grid: "IRDropGrid"):
    """Cached sparse LU of a mesh's conductance matrix + pad RHS.

    The matrix depends only on the (frozen, hashable) grid topology, so
    repeated solves — every timestep of a quasi-static transient —
    reuse one factorization and pay only the triangular solves.  The
    stamp pattern is built with whole-array COO triplets (duplicate
    entries sum), replacing the per-tile Python double loop.
    """
    n = grid.n_tiles
    g_seg = 1.0 / grid.r_segment
    g_pad = 1.0 / grid.r_pad
    idx = np.arange(n).reshape(grid.rows, grid.cols)
    ei = np.concatenate([idx[:, :-1].ravel(), idx[:-1, :].ravel()])
    ej = np.concatenate([idx[:, 1:].ravel(), idx[1:, :].ravel()])
    pad_idx = np.array([grid.tile_index(r, c)
                        for r, c in grid.pad_tiles])
    rows_coo = np.concatenate([ei, ej, ei, ej, pad_idx])
    cols_coo = np.concatenate([ei, ej, ej, ei, pad_idx])
    ones = np.ones(ei.size)
    data = np.concatenate([g_seg * ones, g_seg * ones,
                           -g_seg * ones, -g_seg * ones,
                           np.full(pad_idx.size, g_pad)])
    g_matrix = coo_matrix((data, (rows_coo, cols_coo)),
                          shape=(n, n)).tocsc()
    pad_rhs = np.zeros(n)
    np.add.at(pad_rhs, pad_idx, g_pad * grid.vdd)
    return splu(g_matrix), pad_rhs


@dataclass(frozen=True)
class IRDropGrid:
    """A ``rows x cols`` resistive power mesh.

    Attributes:
        rows: Grid rows (tiles).
        cols: Grid columns (tiles).
        r_segment: Resistance of one mesh segment between adjacent
            tiles, ohms.
        r_pad: Resistance from a pad tile down to the ideal supply, ohms.
        vdd: Pad supply level, volts.
        pad_tiles: Tile coordinates ``(row, col)`` connected to pads;
            defaults to the four corners.
    """

    rows: int
    cols: int
    r_segment: float = 0.05
    r_pad: float = 0.01
    vdd: float = 1.0
    pad_tiles: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("grid must have at least one tile")
        if self.r_segment <= 0 or self.r_pad <= 0:
            raise ConfigurationError("resistances must be positive")
        if self.vdd <= 0:
            raise ConfigurationError("vdd must be positive")
        pads = self.pad_tiles or self._default_pads()
        for r, c in pads:
            if not (0 <= r < self.rows and 0 <= c < self.cols):
                raise ConfigurationError(f"pad tile {(r, c)} outside grid")
        object.__setattr__(self, "pad_tiles", tuple(pads))

    def _default_pads(self) -> tuple[tuple[int, int], ...]:
        corners = {
            (0, 0),
            (0, self.cols - 1),
            (self.rows - 1, 0),
            (self.rows - 1, self.cols - 1),
        }
        return tuple(sorted(corners))

    @property
    def n_tiles(self) -> int:
        return self.rows * self.cols

    def tile_index(self, row: int, col: int) -> int:
        """Flattened index of a tile.

        Raises:
            ConfigurationError: for out-of-range coordinates.
        """
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ConfigurationError(
                f"tile {(row, col)} outside {self.rows}x{self.cols} grid"
            )
        return row * self.cols + col

    def graph(self) -> nx.Graph:
        """The mesh as a networkx graph (for topology checks/plots)."""
        g = nx.grid_2d_graph(self.rows, self.cols)
        nx.set_edge_attributes(g, self.r_segment, "resistance")
        return g

    def solve(self, tile_currents: np.ndarray) -> np.ndarray:
        """Nodal solve: per-tile rail voltage for per-tile load currents.

        Args:
            tile_currents: Array of shape ``(rows, cols)`` (or flat
                ``rows*cols``) of currents drawn by each tile, amperes.

        Returns:
            Array of shape ``(rows, cols)`` of tile voltages, volts.

        Raises:
            ConfigurationError: on shape mismatch or negative currents.
        """
        return self.solve_many(
            np.asarray(tile_currents, dtype=float)[None, ...]
        )[0]

    def solve_many(self, tile_currents: np.ndarray) -> np.ndarray:
        """Batched nodal solve: many current patterns, one factorization.

        The conductance matrix is factorized once per grid (cached);
        each pattern costs two triangular solves against the same LU,
        so the per-pattern numerics are identical to :meth:`solve`.

        Args:
            tile_currents: ``(m, rows, cols)`` (or ``(m, rows*cols)``)
                load-current patterns, amperes.

        Returns:
            ``(m, rows, cols)`` tile voltages, volts.

        Raises:
            ConfigurationError: on shape mismatch or negative currents.
        """
        currents = np.asarray(tile_currents, dtype=float)
        if currents.ndim < 2 \
                or currents[0].size != self.n_tiles:
            raise ConfigurationError(
                f"expected (m, {self.rows}, {self.cols}) tile currents, "
                f"got shape {currents.shape}"
            )
        if np.any(currents < 0):
            raise ConfigurationError("tile currents must be non-negative")
        m = currents.shape[0]
        lu, pad_rhs = _grid_factorization(self)
        rhs = pad_rhs[None, :] - currents.reshape(m, self.n_tiles)
        voltages = lu.solve(rhs.T).T
        return voltages.reshape(m, self.rows, self.cols)

    def worst_drop(self, tile_currents: np.ndarray) -> float:
        """Largest IR drop below the pad supply, volts."""
        v = self.solve(tile_currents)
        return float(self.vdd - v.min())

    def hotspot_currents(self, *, total_current: float,
                         hotspot: tuple[int, int],
                         hotspot_share: float = 0.5) -> np.ndarray:
        """A current map concentrating ``hotspot_share`` at one tile.

        The remainder spreads uniformly over all tiles.  Convenient for
        scan-chain experiments that need a known spatial gradient.
        """
        if total_current < 0:
            raise ConfigurationError("total_current must be non-negative")
        if not 0.0 <= hotspot_share <= 1.0:
            raise ConfigurationError("hotspot_share must be in [0, 1]")
        currents = np.full(
            (self.rows, self.cols),
            total_current * (1.0 - hotspot_share) / self.n_tiles,
        )
        r, c = hotspot
        self.tile_index(r, c)  # bounds check
        currents[r, c] += total_current * hotspot_share
        return currents
