"""Resistive on-die power-grid solver for spatial IR-drop maps.

The paper's closing argument is that the sensor arrays "can be placed in
many points of the DUT" — a *PSN scan chain*.  Exercising that needs a
CUT whose supply differs from point to point: this module models the
on-die power grid as a rectangular resistive mesh fed from supply pads,
loaded by per-tile currents, and solves the nodal equations with a
sparse direct solve.  The resulting per-tile voltages feed per-site
sensor instances in the scan-chain experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np
from scipy.sparse import lil_matrix
from scipy.sparse.linalg import spsolve

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class IRDropGrid:
    """A ``rows x cols`` resistive power mesh.

    Attributes:
        rows: Grid rows (tiles).
        cols: Grid columns (tiles).
        r_segment: Resistance of one mesh segment between adjacent
            tiles, ohms.
        r_pad: Resistance from a pad tile down to the ideal supply, ohms.
        vdd: Pad supply level, volts.
        pad_tiles: Tile coordinates ``(row, col)`` connected to pads;
            defaults to the four corners.
    """

    rows: int
    cols: int
    r_segment: float = 0.05
    r_pad: float = 0.01
    vdd: float = 1.0
    pad_tiles: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("grid must have at least one tile")
        if self.r_segment <= 0 or self.r_pad <= 0:
            raise ConfigurationError("resistances must be positive")
        if self.vdd <= 0:
            raise ConfigurationError("vdd must be positive")
        pads = self.pad_tiles or self._default_pads()
        for r, c in pads:
            if not (0 <= r < self.rows and 0 <= c < self.cols):
                raise ConfigurationError(f"pad tile {(r, c)} outside grid")
        object.__setattr__(self, "pad_tiles", tuple(pads))

    def _default_pads(self) -> tuple[tuple[int, int], ...]:
        corners = {
            (0, 0),
            (0, self.cols - 1),
            (self.rows - 1, 0),
            (self.rows - 1, self.cols - 1),
        }
        return tuple(sorted(corners))

    @property
    def n_tiles(self) -> int:
        return self.rows * self.cols

    def tile_index(self, row: int, col: int) -> int:
        """Flattened index of a tile.

        Raises:
            ConfigurationError: for out-of-range coordinates.
        """
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ConfigurationError(
                f"tile {(row, col)} outside {self.rows}x{self.cols} grid"
            )
        return row * self.cols + col

    def graph(self) -> nx.Graph:
        """The mesh as a networkx graph (for topology checks/plots)."""
        g = nx.grid_2d_graph(self.rows, self.cols)
        nx.set_edge_attributes(g, self.r_segment, "resistance")
        return g

    def solve(self, tile_currents: np.ndarray) -> np.ndarray:
        """Nodal solve: per-tile rail voltage for per-tile load currents.

        Args:
            tile_currents: Array of shape ``(rows, cols)`` (or flat
                ``rows*cols``) of currents drawn by each tile, amperes.

        Returns:
            Array of shape ``(rows, cols)`` of tile voltages, volts.

        Raises:
            ConfigurationError: on shape mismatch or negative currents.
        """
        currents = np.asarray(tile_currents, dtype=float)
        if currents.size != self.n_tiles:
            raise ConfigurationError(
                f"expected {self.n_tiles} tile currents, got {currents.size}"
            )
        if np.any(currents < 0):
            raise ConfigurationError("tile currents must be non-negative")
        currents = currents.reshape(self.rows, self.cols)

        n = self.n_tiles
        g_seg = 1.0 / self.r_segment
        g_pad = 1.0 / self.r_pad
        g_matrix = lil_matrix((n, n))
        rhs = np.zeros(n)

        for row in range(self.rows):
            for col in range(self.cols):
                i = self.tile_index(row, col)
                rhs[i] -= currents[row, col]
                for dr, dc in ((0, 1), (1, 0)):
                    r2, c2 = row + dr, col + dc
                    if r2 < self.rows and c2 < self.cols:
                        j = self.tile_index(r2, c2)
                        g_matrix[i, i] += g_seg
                        g_matrix[j, j] += g_seg
                        g_matrix[i, j] -= g_seg
                        g_matrix[j, i] -= g_seg
        for row, col in self.pad_tiles:
            i = self.tile_index(row, col)
            g_matrix[i, i] += g_pad
            rhs[i] += g_pad * self.vdd

        voltages = spsolve(g_matrix.tocsr(), rhs)
        return np.asarray(voltages).reshape(self.rows, self.cols)

    def worst_drop(self, tile_currents: np.ndarray) -> float:
        """Largest IR drop below the pad supply, volts."""
        v = self.solve(tile_currents)
        return float(self.vdd - v.min())

    def hotspot_currents(self, *, total_current: float,
                         hotspot: tuple[int, int],
                         hotspot_share: float = 0.5) -> np.ndarray:
        """A current map concentrating ``hotspot_share`` at one tile.

        The remainder spreads uniformly over all tiles.  Convenient for
        scan-chain experiments that need a known spatial gradient.
        """
        if total_current < 0:
            raise ConfigurationError("total_current must be non-negative")
        if not 0.0 <= hotspot_share <= 1.0:
            raise ConfigurationError("hotspot_share must be in [0, 1]")
        currents = np.full(
            (self.rows, self.cols),
            total_current * (1.0 - hotspot_share) / self.n_tiles,
        )
        r, c = hotspot
        self.tile_index(r, c)  # bounds check
        currents[r, c] += total_current * hotspot_share
        return currents
