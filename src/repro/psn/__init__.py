"""Power-supply-noise substrate.

The paper measures its sensor against supply waveforms produced by a
real 90 nm CUT; we have no silicon, so this package synthesizes the
equivalent electrical environment:

* :mod:`repro.psn.pdn` — a lumped RLC power-delivery-network model
  (package R/L, on-die decap) integrated with a fixed-step trapezoidal
  scheme; produces the classic first-droop and mid-frequency resonance
  waveforms;
* :mod:`repro.psn.activity` — synthetic CUT switching-current
  generators (idle/active bursts, random activity, clock-locked
  triangular pulses);
* :mod:`repro.psn.noise` — direct waveform synthesis for scripted
  scenarios (steps between measures, droop events, band-limited noise)
  plus ready-made scenarios for the paper's figures;
* :mod:`repro.psn.grid` — a resistive on-die power-grid solver for
  spatial IR-drop maps (the multi-point "PSN scan chain" experiments).
"""

from repro.psn.pdn import PDNParameters, PDNModel
from repro.psn.activity import ActivityProfile, ClockedActivityGenerator
from repro.psn.noise import NoiseScenario, two_level_scenario
from repro.psn.grid import IRDropGrid

__all__ = [
    "PDNParameters",
    "PDNModel",
    "ActivityProfile",
    "ClockedActivityGenerator",
    "NoiseScenario",
    "two_level_scenario",
    "IRDropGrid",
]
