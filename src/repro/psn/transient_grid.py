"""Quasi-static transient solves of the spatial power grid.

The static :class:`~repro.psn.grid.IRDropGrid` answers "what does the
map look like for one current pattern"; real CUTs move — blocks wake,
throttle, migrate.  Because the on-die grid's electrical time constants
(ps) are far below the activity time scales of interest (ns), a
*quasi-static* sweep is the appropriate model: solve the resistive grid
at each time step against the instantaneous tile currents, producing a
per-tile voltage waveform ready to drive per-site sensor harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.psn.grid import IRDropGrid
from repro.sim.waveform import PiecewiseLinearWaveform


@dataclass(frozen=True)
class GridTransient:
    """Per-tile rail waveforms from a quasi-static sweep.

    Attributes:
        grid: The solved grid.
        times: Solve instants, seconds.
        voltages: ``(n_times, rows, cols)`` tile voltages, volts.
    """

    grid: IRDropGrid
    times: np.ndarray
    voltages: np.ndarray

    def waveform_at(self, row: int, col: int
                    ) -> PiecewiseLinearWaveform:
        """The rail waveform one tile sees (for a sensor harness)."""
        self.grid.tile_index(row, col)
        return PiecewiseLinearWaveform(
            self.times, self.voltages[:, row, col]
        )

    def worst_tile(self) -> tuple[int, int]:
        """The tile with the deepest instantaneous droop."""
        flat = self.voltages.reshape(self.times.size, -1)
        tile = int(np.argmin(np.min(flat, axis=0)))
        return divmod(tile, self.grid.cols)

    def worst_drop(self) -> float:
        """Deepest droop below the pad supply anywhere, any time, V."""
        return float(self.grid.vdd - self.voltages.min())

    def snapshot(self, t: float) -> np.ndarray:
        """Interpolated tile-voltage map at one instant."""
        if t <= self.times[0]:
            return self.voltages[0].copy()
        if t >= self.times[-1]:
            return self.voltages[-1].copy()
        i = int(np.searchsorted(self.times, t) - 1)
        frac = (t - self.times[i]) / (self.times[i + 1] - self.times[i])
        return ((1 - frac) * self.voltages[i]
                + frac * self.voltages[i + 1])


def solve_transient(grid: IRDropGrid,
                    tile_currents_fn, *,
                    t_end: float, dt: float) -> GridTransient:
    """Quasi-static transient solve.

    Args:
        grid: The resistive mesh.
        tile_currents_fn: ``f(t) -> (rows, cols) array`` of tile
            currents at time ``t``, amperes.
        t_end: Sweep end, seconds.
        dt: Solve step, seconds.

    Raises:
        ConfigurationError: bad interval/step or mis-shaped currents.
    """
    if t_end <= 0 or dt <= 0:
        raise ConfigurationError("t_end and dt must be positive")
    n = int(round(t_end / dt))
    if n < 2:
        raise ConfigurationError("need at least 2 solve points")
    times = np.arange(n + 1) * dt
    currents = np.empty((times.size, grid.rows, grid.cols))
    for k, t in enumerate(times):
        snapshot = np.asarray(tile_currents_fn(float(t)), dtype=float)
        if snapshot.shape != (grid.rows, grid.cols):
            raise ConfigurationError(
                f"tile_currents_fn returned shape {snapshot.shape}; "
                f"expected ({grid.rows}, {grid.cols})"
            )
        currents[k] = snapshot
    # One batched solve against the grid's cached factorization: the
    # per-step sparse solves were the whole cost of the sweep.
    voltages = grid.solve_many(currents)
    return GridTransient(grid=grid, times=times, voltages=voltages)


def migrating_hotspot(grid: IRDropGrid, *, total_current: float,
                      path: list[tuple[int, int]],
                      dwell: float,
                      hotspot_share: float = 0.8):
    """A tile-current function whose hotspot walks along ``path``.

    The classic workload-migration scenario: the hotspot dwells
    ``dwell`` seconds on each tile of ``path`` in turn (holding at the
    last tile), with the remainder of the current spread uniformly.

    Raises:
        ConfigurationError: empty path / bad dwell.
    """
    if not path:
        raise ConfigurationError("path must be non-empty")
    if dwell <= 0:
        raise ConfigurationError("dwell must be positive")
    for r, c in path:
        grid.tile_index(r, c)

    def currents(t: float) -> np.ndarray:
        idx = min(int(t // dwell), len(path) - 1)
        return grid.hotspot_currents(
            total_current=total_current,
            hotspot=path[idx],
            hotspot_share=hotspot_share,
        )

    return currents
