"""Synthetic CUT switching-current generators.

A digital CUT draws current in clock-locked bursts: every active edge
fires a spike of charge whose magnitude tracks the fraction of gates
switching that cycle (the activity factor).  The generators here sample
that structure onto a uniform time grid suitable for the PDN integrator:
triangular per-cycle pulses whose peak follows a programmable activity
profile — constant load, an idle→active step (the classic first-droop
stimulus), periodic throttling, or seeded random activity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


class ActivityProfile(enum.Enum):
    """Cycle-by-cycle activity-factor envelopes."""

    #: Constant activity at ``base_activity``.
    CONSTANT = "constant"
    #: Idle at ``idle_activity`` then step to ``base_activity`` at
    #: ``step_cycle`` — the wake-up event that excites the first droop.
    STEP = "step"
    #: Square-wave alternation between idle and active every
    #: ``burst_cycles`` cycles (throttling / clock gating).
    BURST = "burst"
    #: Per-cycle activity drawn uniformly from
    #: [idle_activity, base_activity] with a seeded RNG.
    RANDOM = "random"


@dataclass(frozen=True)
class ClockedActivityGenerator:
    """Generates CUT current traces on a uniform grid.

    Attributes:
        clock_period: CUT clock period, seconds.
        peak_current: Current spike peak at activity factor 1.0, amperes.
        base_activity: Active-phase activity factor in [0, 1].
        idle_activity: Idle-phase activity factor in [0, 1].
        pulse_fraction: Fraction of the cycle occupied by the triangular
            current pulse (charge is delivered early in the cycle).
        profile: Which envelope to apply.
        step_cycle: For ``STEP``: first active cycle.
        burst_cycles: For ``BURST``: half-period, in cycles.
        seed: For ``RANDOM``: RNG seed (deterministic traces).
    """

    clock_period: float
    peak_current: float
    base_activity: float = 0.7
    idle_activity: float = 0.05
    pulse_fraction: float = 0.4
    profile: ActivityProfile = ActivityProfile.CONSTANT
    step_cycle: int = 0
    burst_cycles: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clock_period <= 0:
            raise ConfigurationError("clock_period must be positive")
        if self.peak_current < 0:
            raise ConfigurationError("peak_current must be non-negative")
        for attr in ("base_activity", "idle_activity"):
            val = getattr(self, attr)
            if not 0.0 <= val <= 1.0:
                raise ConfigurationError(f"{attr} must be in [0, 1]")
        if not 0.0 < self.pulse_fraction <= 1.0:
            raise ConfigurationError("pulse_fraction must be in (0, 1]")
        if self.burst_cycles <= 0:
            raise ConfigurationError("burst_cycles must be positive")

    def activity_for_cycle(self, cycle: int,
                           rng: np.random.Generator | None = None
                           ) -> float:
        """Activity factor of one clock cycle under the profile."""
        if self.profile is ActivityProfile.CONSTANT:
            return self.base_activity
        if self.profile is ActivityProfile.STEP:
            return (self.base_activity if cycle >= self.step_cycle
                    else self.idle_activity)
        if self.profile is ActivityProfile.BURST:
            phase = (cycle // self.burst_cycles) % 2
            return self.base_activity if phase == 0 else self.idle_activity
        if self.profile is ActivityProfile.RANDOM:
            if rng is None:
                rng = np.random.default_rng(self.seed + cycle)
            lo, hi = sorted((self.idle_activity, self.base_activity))
            return float(rng.uniform(lo, hi))
        raise ConfigurationError(f"unhandled profile {self.profile}")

    def sample(self, *, t_end: float, dt: float) -> np.ndarray:
        """Current samples on ``t = 0, dt, ..., t_end`` (inclusive).

        Each cycle contributes a triangular pulse of width
        ``pulse_fraction * clock_period`` starting at the cycle
        boundary, peaking at ``activity * peak_current``.

        Raises:
            ConfigurationError: if ``dt`` under-resolves the pulse
                (fewer than 4 samples across it).
        """
        if t_end <= 0 or dt <= 0:
            raise ConfigurationError("t_end and dt must be positive")
        pulse_width = self.pulse_fraction * self.clock_period
        if dt > pulse_width / 4.0:
            raise ConfigurationError(
                f"dt={dt:g}s under-resolves the per-cycle current pulse "
                f"({pulse_width:g}s wide); use dt <= {pulse_width / 4.0:g}s"
            )
        n = int(round(t_end / dt))
        times = np.arange(n + 1) * dt
        current = np.zeros_like(times)
        n_cycles = int(np.floor(t_end / self.clock_period)) + 1
        rng = (np.random.default_rng(self.seed)
               if self.profile is ActivityProfile.RANDOM else None)
        half = pulse_width / 2.0
        for cycle in range(n_cycles):
            act = self.activity_for_cycle(cycle, rng)
            peak = act * self.peak_current
            if peak == 0.0:
                continue
            t0 = cycle * self.clock_period
            # Triangular pulse rising to `peak` at t0+half, back to 0 at
            # t0+pulse_width.
            in_pulse = (times >= t0) & (times <= t0 + pulse_width)
            rel = times[in_pulse] - t0
            tri = np.where(rel <= half, rel / half,
                           (pulse_width - rel) / half)
            current[in_pulse] += peak * np.clip(tri, 0.0, 1.0)
        return current

    def average_current(self) -> float:
        """Long-run mean current of the CONSTANT profile (amperes)."""
        # Triangle area = 0.5 * peak * width per period.
        return (0.5 * self.base_activity * self.peak_current
                * self.pulse_fraction)
