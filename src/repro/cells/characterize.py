"""NLDM-style cell characterization.

Real standard-cell flows do not call an analytic delay law at timing
time: they interpolate pre-characterized lookup tables (Liberty NLDM).
This module reproduces that flow — sweep a cell over a (supply, load)
grid, store the delays, interpolate bilinearly — both because the STA
engine consumes tables (mirroring the authors' ref [9] methodology of
folding supply variation into STA) and because table-vs-analytic
agreement is a good property test of the whole timing stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cells.base import Cell
from repro.errors import CharacterizationError, ConfigurationError


@dataclass(frozen=True)
class NLDMTable:
    """A 2-D delay lookup table over (supply voltage, load capacitance).

    Attributes:
        supplies: Strictly increasing supply-voltage axis, volts.
        loads: Strictly increasing load-capacitance axis, farads.
        delays: ``(len(supplies), len(loads))`` delay matrix, seconds.
        cell_name: The characterized cell, for reports.
        arc: ``(input_pin, output_pin)`` of the characterized arc.
    """

    supplies: tuple[float, ...]
    loads: tuple[float, ...]
    delays: tuple[tuple[float, ...], ...]
    cell_name: str = ""
    arc: tuple[str, str] = ("A", "Y")

    def __post_init__(self) -> None:
        sup = np.asarray(self.supplies)
        loa = np.asarray(self.loads)
        if sup.size < 2 or loa.size < 2:
            raise ConfigurationError("axes need at least two points each")
        if not (np.all(np.diff(sup) > 0) and np.all(np.diff(loa) > 0)):
            raise ConfigurationError("axes must be strictly increasing")
        mat = np.asarray(self.delays, dtype=float)
        if mat.shape != (sup.size, loa.size):
            raise ConfigurationError(
                f"delay matrix shape {mat.shape} does not match axes "
                f"({sup.size}, {loa.size})"
            )
        if not np.all(np.isfinite(mat)):
            raise ConfigurationError("delay matrix contains non-finite values")

    def lookup(self, supply_v: float, load_cap: float) -> float:
        """Bilinear interpolation; clamps to the table edges.

        Clamping (rather than extrapolating) matches industrial STA
        behaviour and keeps tails sane.
        """
        sup = np.asarray(self.supplies)
        loa = np.asarray(self.loads)
        mat = np.asarray(self.delays)
        v = float(np.clip(supply_v, sup[0], sup[-1]))
        c = float(np.clip(load_cap, loa[0], loa[-1]))
        i = int(np.clip(np.searchsorted(sup, v) - 1, 0, sup.size - 2))
        j = int(np.clip(np.searchsorted(loa, c) - 1, 0, loa.size - 2))
        v0, v1 = sup[i], sup[i + 1]
        c0, c1 = loa[j], loa[j + 1]
        tv = (v - v0) / (v1 - v0)
        tc = (c - c0) / (c1 - c0)
        d00, d01 = mat[i, j], mat[i, j + 1]
        d10, d11 = mat[i + 1, j], mat[i + 1, j + 1]
        return float(
            d00 * (1 - tv) * (1 - tc)
            + d01 * (1 - tv) * tc
            + d10 * tv * (1 - tc)
            + d11 * tv * tc
        )

    @property
    def supply_range(self) -> tuple[float, float]:
        return self.supplies[0], self.supplies[-1]

    @property
    def load_range(self) -> tuple[float, float]:
        return self.loads[0], self.loads[-1]


def characterize_cell(cell: Cell, *, input_pin: str = "A",
                      output_pin: str = "Y",
                      supplies: list[float] | None = None,
                      loads: list[float] | None = None) -> NLDMTable:
    """Sweep one timing arc of a cell into an :class:`NLDMTable`.

    Args:
        cell: The cell to characterize.
        input_pin: Arc input pin name.
        output_pin: Arc output pin name.
        supplies: Supply axis, volts; defaults to 0.70–1.30 V in 50 mV
            steps around the technology nominal.
        loads: Load axis, farads; defaults to 0–16 unit gate caps.

    Raises:
        CharacterizationError: if any grid point yields a non-finite
            delay (supply at/below device threshold).
    """
    tech = cell.tech
    if supplies is None:
        supplies = [round(0.70 + 0.05 * i, 4) * tech.vdd_nominal
                    for i in range(13)]
    if loads is None:
        unit = cell.model.input_cap
        loads = [k * unit for k in (0, 1, 2, 4, 8, 12, 16)]
        if loads[0] == 0.0:
            loads[0] = 0.0  # explicit zero-load point is meaningful
    matrix: list[tuple[float, ...]] = []
    for v in supplies:
        row = []
        for c in loads:
            d = cell.propagation_delay(input_pin, output_pin, v, c)
            if not np.isfinite(d):
                raise CharacterizationError(
                    f"{cell.name}: non-finite delay at V={v}, C={c} "
                    f"(supply at or below threshold {tech.vth} V?)"
                )
            row.append(d)
        matrix.append(tuple(row))
    return NLDMTable(
        supplies=tuple(float(v) for v in supplies),
        loads=tuple(float(c) for c in loads),
        delays=tuple(matrix),
        cell_name=cell.name,
        arc=(input_pin, output_pin),
    )


def characterize_library_arc_set(cells: list[Cell], **kwargs
                                 ) -> dict[str, NLDMTable]:
    """Characterize the first input->output arc of each cell.

    Returns a map from cell name to its table.  Cells whose first pins
    are not named ``A``/``Y`` can be characterized individually with
    :func:`characterize_cell`.
    """
    tables: dict[str, NLDMTable] = {}
    for cell in cells:
        tables[cell.name] = characterize_cell(cell, **kwargs)
    return tables
