"""Sequential cells: D flip-flops with setup/hold and metastability.

The flip-flop is the *decision element* of the paper's sensor: the noisy
supply modulates the inverter delay, and the FF converts "did DS make
setup?" into a digital bit.  Fig. 2 of the paper shows the canonical
signature of that decision: as the data edge approaches the clock edge,
the FF output delay grows non-linearly (metastability) and finally the
sample fails.  The model here is the standard regenerative-latch one:

* data arriving with at least one metastability-window ``w`` of setup
  margin is captured cleanly with the nominal clock-to-Q delay;
* data arriving inside the window resolves with
  ``t_cq = t_cq0 + tau * ln(w / |margin|)`` — log-divergent at the
  critical point, exactly the "OUT delay increases in a not linear way"
  behaviour of Fig. 2;
* data arriving after the critical point is missed: the FF keeps the
  previous value (for the sensor, the PREPARE-phase ``0``, i.e. an
  error flag).

Resolution beyond a configurable cap is reported as an unresolved
(metastable) sample so callers can treat it as a failure.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Mapping

from repro.cells.base import (
    Cell,
    HIGH,
    LOW,
    LogicValue,
    Pin,
    UNKNOWN,
    validate_logic,
)
from repro.devices.technology import Technology
from repro.errors import ConfigurationError


class SampleOutcome(enum.Enum):
    """How a flip-flop sampling event resolved."""

    #: Data arrived with full setup margin; clean capture of the new value.
    CLEAN_CAPTURE = "clean_capture"
    #: Data arrived inside the metastability window but before the
    #: critical point; the new value wins after an elongated resolution.
    METASTABLE_CAPTURE = "metastable_capture"
    #: Data arrived inside the window past the critical point; the old
    #: value wins after an elongated resolution.
    METASTABLE_MISS = "metastable_miss"
    #: Data arrived well after the clock edge; clean capture of the old
    #: value.
    CLEAN_MISS = "clean_miss"
    #: Resolution exceeded the cap; the output is indeterminate.
    UNRESOLVED = "unresolved"

    @property
    def captured_new_value(self) -> bool:
        """True when the sampled output reflects the new data value."""
        return self in (SampleOutcome.CLEAN_CAPTURE,
                        SampleOutcome.METASTABLE_CAPTURE)

    @property
    def is_metastable(self) -> bool:
        return self in (SampleOutcome.METASTABLE_CAPTURE,
                        SampleOutcome.METASTABLE_MISS,
                        SampleOutcome.UNRESOLVED)


@dataclass(frozen=True)
class SampleResult:
    """Result of one flip-flop sampling event.

    Attributes:
        value: The captured logic value (``UNKNOWN`` when unresolved).
        outcome: How the sample resolved.
        clk_to_q: Clock-to-output delay of this event, seconds.  For
            unresolved samples this is the resolution cap.
        setup_margin: Data setup margin at the clock edge, seconds;
            positive when data met setup (new value side), negative when
            it arrived past the critical point.
    """

    value: LogicValue
    outcome: SampleOutcome
    clk_to_q: float
    setup_margin: float


class DFlipFlop(Cell):
    """Positive-edge-triggered D flip-flop with metastability model.

    Timing parameters default to multiples of the technology's
    unit-inverter FO4-class delay at nominal supply, so a slower corner
    automatically yields a slower flip-flop.

    Args:
        tech: Technology (the FF is on the *nominal* supply in the
            paper's sensor; pass a corner technology to model variation).
        strength: Drive strength of the output stage.
        setup_time: Setup time, seconds (default derived from tech).
        hold_time: Hold time, seconds (default derived).
        clk_to_q: Nominal clock-to-Q delay, seconds (default derived).
        tau: Metastability resolution time constant, seconds (default
            derived; ~1/3 of a unit delay).
        window: Metastability window half-width ``w``, seconds.
        resolution_cap: Maximum modelled resolution time; samples that
            would take longer are reported ``UNRESOLVED``.
    """

    is_sequential = True
    logical_effort = 1.0

    def __init__(self, tech: Technology, *, strength: float = 1.0,
                 name: str | None = None,
                 setup_time: float | None = None,
                 hold_time: float | None = None,
                 clk_to_q: float | None = None,
                 tau: float | None = None,
                 window: float | None = None,
                 resolution_cap: float | None = None) -> None:
        super().__init__(tech, strength=strength, name=name)
        d_unit = self.model.delay(tech.vdd_nominal,
                                  4.0 * self.model.input_cap)
        self.setup_time = setup_time if setup_time is not None else 1.5 * d_unit
        self.hold_time = hold_time if hold_time is not None else 0.5 * d_unit
        self.clk_to_q = clk_to_q if clk_to_q is not None else 2.0 * d_unit
        self.tau = tau if tau is not None else d_unit / 3.0
        self.window = window if window is not None else d_unit / 4.0
        self.resolution_cap = (resolution_cap if resolution_cap is not None
                               else self.clk_to_q + 12.0 * self.tau)
        for attr in ("setup_time", "hold_time", "clk_to_q", "tau", "window"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive")
        if self.resolution_cap <= self.clk_to_q:
            raise ConfigurationError(
                "resolution_cap must exceed the nominal clk_to_q"
            )

    def _build_pins(self) -> list[Pin]:
        return [
            self._input_pin(name="D"),
            self._input_pin(name="CP", is_clock=True),
            self._output_pin("Q"),
        ]

    def evaluate(self, inputs: Mapping[str, LogicValue]
                 ) -> dict[str, LogicValue]:
        """Combinational view: a DFF output does not follow its inputs.

        The event engine drives Q through :meth:`sample` on clock edges;
        this method exists to satisfy the :class:`Cell` interface and
        reports "no combinational change".
        """
        return {}

    # -- sampling ------------------------------------------------------

    def sample(self, *, new_value: LogicValue, old_value: LogicValue,
               data_arrival: float, clock_edge: float,
               supply_v: float | None = None) -> SampleResult:
        """Resolve one positive-clock-edge sampling event.

        Args:
            new_value: The data value the D input transitions *to*.
            old_value: The value D held before the transition (and hence
                what a missed sample captures).
            data_arrival: Absolute time the D transition reaches the FF
                input, seconds.
            clock_edge: Absolute time of the sampling clock edge, s.
            supply_v: Supply of the FF itself; defaults to nominal.
                Mild FF-supply noise scales setup and clk-to-Q, the
                second-order effect the paper says "should be
                characterized".

        Returns:
            A :class:`SampleResult`.  If the data never transitions
            (``new_value == old_value``) the sample is trivially a clean
            capture of that value.
        """
        validate_logic(new_value)
        validate_logic(old_value)
        v = self.tech.vdd_nominal if supply_v is None else supply_v
        # Supply scaling of the FF's own timing: ratio of voltage factors.
        scale = (self.model.voltage_factor(v)
                 / self.model.voltage_factor(self.tech.vdd_nominal))
        if math.isinf(scale):
            return SampleResult(
                value=UNKNOWN,
                outcome=SampleOutcome.UNRESOLVED,
                clk_to_q=self.resolution_cap,
                setup_margin=float("-inf"),
            )
        setup = self.setup_time * scale
        t_cq0 = self.clk_to_q * scale
        tau = self.tau * scale
        window = self.window * scale
        cap = self.resolution_cap * scale

        if new_value == old_value:
            return SampleResult(
                value=new_value,
                outcome=SampleOutcome.CLEAN_CAPTURE,
                clk_to_q=t_cq0,
                setup_margin=float("inf"),
            )

        margin = (clock_edge - setup) - data_arrival
        if margin >= window:
            return SampleResult(
                value=new_value,
                outcome=SampleOutcome.CLEAN_CAPTURE,
                clk_to_q=t_cq0,
                setup_margin=margin,
            )
        if margin <= -window:
            return SampleResult(
                value=old_value,
                outcome=SampleOutcome.CLEAN_MISS,
                clk_to_q=t_cq0,
                setup_margin=margin,
            )
        # Inside the metastability window: log-divergent resolution.
        distance = abs(margin)
        if distance <= 0.0:
            resolution = cap
        else:
            resolution = t_cq0 + tau * math.log(window / distance)
        if resolution >= cap:
            return SampleResult(
                value=UNKNOWN,
                outcome=SampleOutcome.UNRESOLVED,
                clk_to_q=cap,
                setup_margin=margin,
            )
        if margin > 0:
            outcome = SampleOutcome.METASTABLE_CAPTURE
            value = new_value
        else:
            outcome = SampleOutcome.METASTABLE_MISS
            value = old_value
        return SampleResult(
            value=value,
            outcome=outcome,
            clk_to_q=resolution,
            setup_margin=margin,
        )

    def critical_arrival(self, clock_edge: float,
                         supply_v: float | None = None) -> float:
        """The data-arrival time at which capture flips to miss.

        Data arriving earlier than this (by more than the metastability
        window) is cleanly captured; later is missed.
        """
        v = self.tech.vdd_nominal if supply_v is None else supply_v
        scale = (self.model.voltage_factor(v)
                 / self.model.voltage_factor(self.tech.vdd_nominal))
        return clock_edge - self.setup_time * scale
