"""Trimmed delay elements for the pulse generator.

The paper's PG (Fig. 7) builds its eight selectable P/CP skews from
"delay element arrays (standard cell INV with opportunely chosen
sizes)".  A :class:`DelayElement` is exactly that: a buffer whose
nominal delay is set by construction (by choosing an effective internal
load), and whose *actual* delay still tracks supply and process through
the alpha-power model — which is what makes the process-corner
re-trimming experiments meaningful.
"""

from __future__ import annotations

from typing import Mapping

from repro.cells.base import Cell, LogicValue, Pin
from repro.devices.technology import Technology
from repro.errors import ConfigurationError


class DelayElement(Cell):
    """A buffer with a designed-in nominal delay.

    Args:
        tech: Technology the element is built in.
        nominal_delay: Desired propagation delay at nominal supply when
            driving ``trim_load``, seconds.  The constructor solves for
            the internal load capacitance that realizes it; the realized
            delay then scales with supply exactly like any other gate.
        trim_load: External load the element is trimmed for, farads —
            delay elements are trimmed *in situ*, so the known fanout
            (e.g. the FF clock pins on the CP route) is part of the
            budget.
        strength: Drive strength of the output stage.

    Raises:
        ConfigurationError: if ``nominal_delay`` is below the intrinsic
            delay of the buffer (cannot be realized by adding load).
    """

    logical_effort = 1.0

    def __init__(self, tech: Technology, nominal_delay: float, *,
                 strength: float = 1.0, trim_load: float = 0.0,
                 name: str | None = None) -> None:
        super().__init__(tech, strength=strength, name=name)
        if nominal_delay <= 0:
            raise ConfigurationError("nominal_delay must be positive")
        if trim_load < 0:
            raise ConfigurationError("trim_load must be non-negative")
        self.nominal_delay = nominal_delay
        g_nom = self.model.voltage_factor(tech.vdd_nominal)
        k_eff = tech.drive_constant / self.model.strength
        # nominal_delay = k_eff * (C_int + C_internal + trim_load) * g_nom
        c_total = nominal_delay / (k_eff * g_nom)
        c_internal = c_total - self.model.intrinsic_cap - trim_load
        if c_internal < 0:
            raise ConfigurationError(
                f"nominal_delay={nominal_delay:.3e}s is below the intrinsic "
                f"delay of a strength-{self.model.strength:g} buffer into "
                f"{trim_load:.3e} F"
            )
        self.internal_cap = c_internal

    @classmethod
    def from_internal_cap(cls, tech: Technology, internal_cap: float, *,
                          strength: float = 1.0,
                          name: str | None = None) -> "DelayElement":
        """Rebuild the *same physical element* in another technology.

        A delay element is trimmed once at design time by choosing its
        internal load; under a process corner the load stays put while
        the drive changes.  This constructor keeps ``internal_cap``
        fixed and recomputes the realized delay from the new
        technology — the mechanism behind the corner-retrimming
        experiments.

        Raises:
            ConfigurationError: for a negative internal capacitance.
        """
        if internal_cap < 0:
            raise ConfigurationError("internal_cap must be non-negative")
        obj = cls.__new__(cls)
        Cell.__init__(obj, tech, strength=strength, name=name)
        obj.internal_cap = internal_cap
        obj.nominal_delay = obj.delay_at(tech.vdd_nominal)
        return obj

    def _build_pins(self) -> list[Pin]:
        return [self._input_pin(name="A"), self._output_pin("Y")]

    def evaluate(self, inputs: Mapping[str, LogicValue]
                 ) -> dict[str, LogicValue]:
        return {"Y": inputs["A"]}

    def propagation_delay(self, input_pin: str, output_pin: str,
                          supply_v: float, load_cap: float, *,
                          input_slew: float = 0.0) -> float:
        """Delay including the trim load; scales with supply and corner."""
        self.pin(input_pin)
        self.pin(output_pin)
        return self.model.delay(
            supply_v,
            self.internal_cap + load_cap,
            input_slew=input_slew,
        )

    def delay_at(self, supply_v: float) -> float:
        """Unloaded delay at a given supply (convenience for the PG)."""
        return self.propagation_delay("A", "Y", supply_v, 0.0)
