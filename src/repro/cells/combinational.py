"""Combinational standard cells.

Every cell evaluates with X-propagation: an output is known as soon as
the known inputs determine it.  Logical efforts are the classic
equal-rise/fall sizing values (NAND2 ≈ 4/3, NOR2 ≈ 5/3, …) so that
multi-input gates are proportionally slower than the inverter the
device model is normalized to.
"""

from __future__ import annotations

from typing import Mapping

from repro.cells.base import (
    Cell,
    HIGH,
    LOW,
    LogicValue,
    Pin,
    UNKNOWN,
    invert,
)


class Inverter(Cell):
    """INV: ``Y = not A``.

    The sensor's key element: in the noise sensor this cell is powered
    by the noisy supply under measurement, so its delay becomes the
    transducer from supply voltage to arrival time (paper Fig. 1 left).
    """

    logical_effort = 1.0

    def _build_pins(self) -> list[Pin]:
        return [self._input_pin(name="A"), self._output_pin("Y")]

    def evaluate(self, inputs: Mapping[str, LogicValue]
                 ) -> dict[str, LogicValue]:
        return {"Y": invert(inputs["A"])}


class Buffer(Cell):
    """BUF: ``Y = A`` (two inverters back to back)."""

    logical_effort = 2.0

    def _build_pins(self) -> list[Pin]:
        return [self._input_pin(name="A"), self._output_pin("Y")]

    def evaluate(self, inputs: Mapping[str, LogicValue]
                 ) -> dict[str, LogicValue]:
        return {"Y": inputs["A"]}


class Nand2(Cell):
    """NAND2: ``Y = not (A and B)``."""

    logical_effort = 4.0 / 3.0

    def _build_pins(self) -> list[Pin]:
        return [
            self._input_pin(name="A"),
            self._input_pin(name="B"),
            self._output_pin("Y"),
        ]

    def evaluate(self, inputs: Mapping[str, LogicValue]
                 ) -> dict[str, LogicValue]:
        a, b = inputs["A"], inputs["B"]
        if a == LOW or b == LOW:
            return {"Y": HIGH}
        if a == HIGH and b == HIGH:
            return {"Y": LOW}
        return {"Y": UNKNOWN}


class Nor2(Cell):
    """NOR2: ``Y = not (A or B)``."""

    logical_effort = 5.0 / 3.0

    def _build_pins(self) -> list[Pin]:
        return [
            self._input_pin(name="A"),
            self._input_pin(name="B"),
            self._output_pin("Y"),
        ]

    def evaluate(self, inputs: Mapping[str, LogicValue]
                 ) -> dict[str, LogicValue]:
        a, b = inputs["A"], inputs["B"]
        if a == HIGH or b == HIGH:
            return {"Y": LOW}
        if a == LOW and b == LOW:
            return {"Y": HIGH}
        return {"Y": UNKNOWN}


class And2(Cell):
    """AND2: NAND2 + output inverter."""

    logical_effort = 4.0 / 3.0 + 1.0

    def _build_pins(self) -> list[Pin]:
        return [
            self._input_pin(name="A"),
            self._input_pin(name="B"),
            self._output_pin("Y"),
        ]

    def evaluate(self, inputs: Mapping[str, LogicValue]
                 ) -> dict[str, LogicValue]:
        a, b = inputs["A"], inputs["B"]
        if a == LOW or b == LOW:
            return {"Y": LOW}
        if a == HIGH and b == HIGH:
            return {"Y": HIGH}
        return {"Y": UNKNOWN}


class Or2(Cell):
    """OR2: NOR2 + output inverter."""

    logical_effort = 5.0 / 3.0 + 1.0

    def _build_pins(self) -> list[Pin]:
        return [
            self._input_pin(name="A"),
            self._input_pin(name="B"),
            self._output_pin("Y"),
        ]

    def evaluate(self, inputs: Mapping[str, LogicValue]
                 ) -> dict[str, LogicValue]:
        a, b = inputs["A"], inputs["B"]
        if a == HIGH or b == HIGH:
            return {"Y": HIGH}
        if a == LOW and b == LOW:
            return {"Y": LOW}
        return {"Y": UNKNOWN}


class Xor2(Cell):
    """XOR2: ``Y = A xor B`` — both inputs must be known."""

    logical_effort = 4.0

    def _build_pins(self) -> list[Pin]:
        return [
            self._input_pin(name="A"),
            self._input_pin(name="B"),
            self._output_pin("Y"),
        ]

    def evaluate(self, inputs: Mapping[str, LogicValue]
                 ) -> dict[str, LogicValue]:
        a, b = inputs["A"], inputs["B"]
        if a is UNKNOWN or b is UNKNOWN:
            return {"Y": UNKNOWN}
        return {"Y": a ^ b}


class Xnor2(Cell):
    """XNOR2: ``Y = not (A xor B)``."""

    logical_effort = 4.0

    def _build_pins(self) -> list[Pin]:
        return [
            self._input_pin(name="A"),
            self._input_pin(name="B"),
            self._output_pin("Y"),
        ]

    def evaluate(self, inputs: Mapping[str, LogicValue]
                 ) -> dict[str, LogicValue]:
        a, b = inputs["A"], inputs["B"]
        if a is UNKNOWN or b is UNKNOWN:
            return {"Y": UNKNOWN}
        return {"Y": 1 - (a ^ b)}


class Aoi21(Cell):
    """AOI21: ``Y = not ((A and B) or C)``."""

    logical_effort = 2.0

    def _build_pins(self) -> list[Pin]:
        return [
            self._input_pin(name="A"),
            self._input_pin(name="B"),
            self._input_pin(name="C"),
            self._output_pin("Y"),
        ]

    def evaluate(self, inputs: Mapping[str, LogicValue]
                 ) -> dict[str, LogicValue]:
        a, b, c = inputs["A"], inputs["B"], inputs["C"]
        if c == HIGH or (a == HIGH and b == HIGH):
            return {"Y": LOW}
        if c == LOW and (a == LOW or b == LOW):
            return {"Y": HIGH}
        return {"Y": UNKNOWN}


class Oai21(Cell):
    """OAI21: ``Y = not ((A or B) and C)``."""

    logical_effort = 2.0

    def _build_pins(self) -> list[Pin]:
        return [
            self._input_pin(name="A"),
            self._input_pin(name="B"),
            self._input_pin(name="C"),
            self._output_pin("Y"),
        ]

    def evaluate(self, inputs: Mapping[str, LogicValue]
                 ) -> dict[str, LogicValue]:
        a, b, c = inputs["A"], inputs["B"], inputs["C"]
        if c == LOW or (a == LOW and b == LOW):
            return {"Y": HIGH}
        if c == HIGH and (a == HIGH or b == HIGH):
            return {"Y": LOW}
        return {"Y": UNKNOWN}


class Mux2(Cell):
    """MUX2: ``Y = A if S == 0 else B``.

    Used by the pulse generator (paper Fig. 7) to select a delay-line
    tap.  The paper routes *both* P and CP through identical muxes so
    the mux's own insertion delay cancels out of the P/CP skew — a
    property the PG tests assert.
    """

    logical_effort = 2.5

    def _build_pins(self) -> list[Pin]:
        return [
            self._input_pin(name="A"),
            self._input_pin(name="B"),
            self._input_pin(name="S"),
            self._output_pin("Y"),
        ]

    def evaluate(self, inputs: Mapping[str, LogicValue]
                 ) -> dict[str, LogicValue]:
        a, b, s = inputs["A"], inputs["B"], inputs["S"]
        if s == LOW:
            return {"Y": a}
        if s == HIGH:
            return {"Y": b}
        # Unknown select: output known only if both inputs agree.
        if a is not UNKNOWN and a == b:
            return {"Y": a}
        return {"Y": UNKNOWN}
