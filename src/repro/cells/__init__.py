"""Standard-cell library: the behavioural 90 nm cell set.

The paper's sensor is "fully digital and standard cell based": an
inverter, a flip-flop, a mux-based pulse generator and ordinary control
logic.  This package provides those cells with timing derived from the
alpha-power device model (:mod:`repro.devices`):

* :mod:`repro.cells.base` — cell/pin/timing framework and logic values;
* :mod:`repro.cells.combinational` — INV/BUF/NAND/NOR/XOR/AOI/MUX;
* :mod:`repro.cells.sequential` — D flip-flops with setup/hold checking
  and a regenerative metastability model;
* :mod:`repro.cells.delay_elements` — trimmed delay buffers for the PG;
* :mod:`repro.cells.library` — named library container;
* :mod:`repro.cells.characterize` — NLDM-style lookup-table generation.
"""

from repro.cells.base import (
    LOW,
    HIGH,
    UNKNOWN,
    LogicValue,
    PinDirection,
    Pin,
    Cell,
)
from repro.cells.combinational import (
    Inverter,
    Buffer,
    Nand2,
    Nor2,
    And2,
    Or2,
    Xor2,
    Xnor2,
    Aoi21,
    Oai21,
    Mux2,
)
from repro.cells.sequential import DFlipFlop, SampleOutcome, SampleResult
from repro.cells.delay_elements import DelayElement
from repro.cells.library import StdCellLibrary, default_library
from repro.cells.characterize import NLDMTable, characterize_cell

__all__ = [
    "LOW",
    "HIGH",
    "UNKNOWN",
    "LogicValue",
    "PinDirection",
    "Pin",
    "Cell",
    "Inverter",
    "Buffer",
    "Nand2",
    "Nor2",
    "And2",
    "Or2",
    "Xor2",
    "Xnor2",
    "Aoi21",
    "Oai21",
    "Mux2",
    "DFlipFlop",
    "SampleOutcome",
    "SampleResult",
    "DelayElement",
    "StdCellLibrary",
    "default_library",
    "NLDMTable",
    "characterize_cell",
]
