"""Liberty-style library export.

Writes the characterized cell library in a Liberty-like text format —
per-cell NLDM delay tables over (input-derate voltage, output load) —
so the behavioural 90 nm library is inspectable with the same mental
model as a foundry ``.lib``.  The format follows Liberty conventions
(``library``/``cell``/``pin``/``timing`` groups, ``index_1``/``index_2``
axes, ``values`` rows) closely enough to be read by humans and simple
parsers; it is not a bit-exact Synopsys grammar.
"""

from __future__ import annotations

from typing import TextIO

from repro.cells.base import Cell, PinDirection
from repro.cells.characterize import characterize_cell
from repro.cells.library import StdCellLibrary
from repro.cells.sequential import DFlipFlop
from repro.errors import ConfigurationError
from repro.units import to_ff, to_ps


def _fmt_row(values) -> str:
    return ", ".join(f"{v:.4f}" for v in values)


def write_liberty(lib: StdCellLibrary, out: TextIO, *,
                  strengths: tuple[float, ...] = (1.0,),
                  supplies: list[float] | None = None) -> int:
    """Serialize a characterized library.

    Args:
        lib: The cell library (its technology defines the node).
        out: Writable text stream.
        strengths: Drive strengths to emit per cell type.
        supplies: Characterization supply axis override, volts.

    Returns:
        The number of ``cell`` groups written.

    Raises:
        ConfigurationError: for an empty strength list.
    """
    if not strengths:
        raise ConfigurationError("strengths must be non-empty")
    tech = lib.tech
    out.write(f'library ("{lib.name}") {{\n')
    out.write('  delay_model : table_lookup;\n')
    out.write('  time_unit : "1ps";\n')
    out.write('  capacitive_load_unit (1, ff);\n')
    out.write(f'  nom_voltage : {tech.vdd_nominal:.3f};\n')
    out.write(f'  /* technology: {tech.name}; vth={tech.vth:.4f} V; '
              f'alpha={tech.alpha} */\n')

    count = 0
    for cell_name in lib.cell_names():
        for strength in strengths:
            cell = lib.make(cell_name, strength=strength)
            count += 1
            suffix = f"_X{strength:g}".replace(".", "p")
            out.write(f'  cell ("{cell_name}{suffix}") {{\n')
            _write_cell(cell, out, supplies)
            out.write('  }\n')
    out.write('}\n')
    return count


def _write_cell(cell: Cell, out: TextIO,
                supplies: list[float] | None) -> None:
    for pin in cell.input_pins:
        out.write(f'    pin ("{pin.name}") {{\n')
        out.write('      direction : input;\n')
        out.write(f'      capacitance : {to_ff(pin.cap):.4f};\n')
        if pin.is_clock:
            out.write('      clock : true;\n')
        out.write('    }\n')
    if isinstance(cell, DFlipFlop):
        _write_ff_constraints(cell, out)
        return
    for opin in cell.output_pins:
        out.write(f'    pin ("{opin.name}") {{\n')
        out.write('      direction : output;\n')
        for ipin in cell.input_pins:
            table = characterize_cell(cell, input_pin=ipin.name,
                                      output_pin=opin.name,
                                      supplies=supplies)
            out.write('      timing () {\n')
            out.write(f'        related_pin : "{ipin.name}";\n')
            out.write('        cell_rise ("delay_supply_x_load") {\n')
            out.write(f'          index_1 ("{_fmt_row(table.supplies)}");'
                      f' /* supply [V] */\n')
            out.write(f'          index_2 ("'
                      f'{_fmt_row(to_ff(c) for c in table.loads)}");'
                      f' /* load [fF] */\n')
            out.write('          values ( \\\n')
            for row in table.delays:
                out.write(f'            "'
                          f'{_fmt_row(to_ps(d) for d in row)}", \\\n')
            out.write('          );\n')
            out.write('        }\n')
            out.write('      }\n')
        out.write('    }\n')


def _write_ff_constraints(ff: DFlipFlop, out: TextIO) -> None:
    out.write('    pin ("Q") {\n')
    out.write('      direction : output;\n')
    out.write('      timing () {\n')
    out.write('        related_pin : "CP";\n')
    out.write('        timing_type : rising_edge;\n')
    out.write(f'        /* clk_to_q: {to_ps(ff.clk_to_q):.2f} ps; '
              f'metastability tau: {to_ps(ff.tau):.2f} ps; '
              f'window: {to_ps(ff.window):.2f} ps */\n')
    out.write('      }\n')
    out.write('    }\n')
    out.write('    /* constraints */\n')
    out.write(f'    /* setup: {to_ps(ff.setup_time):.2f} ps; '
              f'hold: {to_ps(ff.hold_time):.2f} ps */\n')
