"""Cell framework: pins, logic values and the abstract cell interface.

Logic values are three-state: ``LOW`` (0), ``HIGH`` (1) and ``UNKNOWN``
(``None``), the last standing in for the simulator's pre-reset / X
state.  Cells evaluate with X-propagation semantics: an output is known
whenever the known inputs already determine it (e.g. a NAND with one
``LOW`` input is ``HIGH`` regardless of the other input).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.devices.mosfet import AlphaPowerModel
from repro.devices.technology import Technology
from repro.errors import ConfigurationError

#: Three-state logic value: 0, 1 or None (unknown / X).
LogicValue = Optional[int]

LOW: LogicValue = 0
HIGH: LogicValue = 1
UNKNOWN: LogicValue = None


def invert(value: LogicValue) -> LogicValue:
    """Logical NOT with X-propagation."""
    if value is UNKNOWN:
        return UNKNOWN
    return 1 - value


def validate_logic(value: LogicValue) -> LogicValue:
    """Check a value is 0, 1 or None; return it unchanged.

    Raises:
        ConfigurationError: for any other value.
    """
    if value not in (0, 1, None):
        raise ConfigurationError(f"invalid logic value {value!r}")
    return value


class PinDirection(enum.Enum):
    """Direction of a cell pin."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class Pin:
    """A cell pin.

    Attributes:
        name: Pin name within the cell (e.g. ``"A"``, ``"Y"``).
        direction: Input or output.
        cap: Capacitance presented by the pin to its net, farads.
            Output pins contribute their intrinsic (drain) capacitance.
        is_clock: True for the clock pin of a sequential cell.
    """

    name: str
    direction: PinDirection
    cap: float
    is_clock: bool = False

    def __post_init__(self) -> None:
        if self.cap < 0:
            raise ConfigurationError(f"pin {self.name}: cap must be >= 0")


class Cell:
    """Abstract standard cell.

    A cell owns an :class:`AlphaPowerModel` (technology + drive strength)
    and a set of pins.  Subclasses implement :meth:`evaluate` for the
    logic function and may override :meth:`arc_effort` to express
    per-input logical effort (a NAND2 is slower than an inverter of the
    same strength by roughly its logical effort).

    Cells are stateless with respect to simulation: the event engine
    owns net values; sequential cells expose an explicit sampling API
    instead of hidden state.
    """

    #: Subclasses set this to declare themselves edge-triggered.
    is_sequential: bool = False

    #: Multiplier on the base inverter delay capturing gate complexity
    #: (logical effort * parasitic ratio), overridable per subclass.
    logical_effort: float = 1.0

    def __init__(self, tech: Technology, *, strength: float = 1.0,
                 name: str | None = None) -> None:
        self.model = AlphaPowerModel(tech=tech, strength=strength)
        self.name = name if name is not None else type(self).__name__
        self._pins = {pin.name: pin for pin in self._build_pins()}
        outputs = [p for p in self._pins.values()
                   if p.direction is PinDirection.OUTPUT]
        if not outputs:
            raise ConfigurationError(
                f"cell {self.name} declares no output pin"
            )

    # -- structure ----------------------------------------------------

    def _build_pins(self) -> list[Pin]:
        """Subclass hook: declare this cell's pins."""
        raise NotImplementedError

    @property
    def tech(self) -> Technology:
        return self.model.tech

    @property
    def strength(self) -> float:
        return self.model.strength

    @property
    def pins(self) -> Mapping[str, Pin]:
        return self._pins

    def pin(self, name: str) -> Pin:
        """Look up a pin by name.

        Raises:
            ConfigurationError: for an unknown pin name.
        """
        try:
            return self._pins[name]
        except KeyError:
            known = ", ".join(sorted(self._pins))
            raise ConfigurationError(
                f"cell {self.name} has no pin {name!r}; known: {known}"
            ) from None

    @property
    def input_pins(self) -> list[Pin]:
        return [p for p in self._pins.values()
                if p.direction is PinDirection.INPUT]

    @property
    def output_pins(self) -> list[Pin]:
        return [p for p in self._pins.values()
                if p.direction is PinDirection.OUTPUT]

    def _input_pin(self, *, is_clock: bool = False,
                   cap_scale: float = 1.0, name: str = "A") -> Pin:
        """Helper for subclasses: a standard input pin."""
        return Pin(
            name=name,
            direction=PinDirection.INPUT,
            cap=self.model.input_cap * cap_scale,
            is_clock=is_clock,
        )

    def _output_pin(self, name: str = "Y") -> Pin:
        """Helper for subclasses: a standard output pin."""
        return Pin(
            name=name,
            direction=PinDirection.OUTPUT,
            cap=self.model.intrinsic_cap,
        )

    # -- behaviour ----------------------------------------------------

    def evaluate(self, inputs: Mapping[str, LogicValue]
                 ) -> dict[str, LogicValue]:
        """Combinational function: input pin values -> output pin values.

        Sequential cells evaluate their *combinational view* here (for a
        DFF this returns nothing useful; the engine handles clocking).
        """
        raise NotImplementedError

    def arc_effort(self, input_pin: str, output_pin: str) -> float:
        """Delay multiplier for a specific input->output arc.

        Defaults to the cell-wide :attr:`logical_effort`.
        """
        return self.logical_effort

    def propagation_delay(self, input_pin: str, output_pin: str,
                          supply_v: float, load_cap: float, *,
                          input_slew: float = 0.0) -> float:
        """Arc delay in seconds under the given supply and load.

        The external ``load_cap`` is what the net adds (fanout pin caps +
        explicit capacitors); the cell's intrinsic output capacitance is
        accounted for inside the device model.
        """
        self.pin(input_pin)
        self.pin(output_pin)
        base = self.model.delay(supply_v, load_cap, input_slew=input_slew)
        return base * self.arc_effort(input_pin, output_pin)

    def output_slew(self, supply_v: float, load_cap: float) -> float:
        """Output transition time estimate, seconds."""
        return self.model.output_slew(supply_v, load_cap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.name!r} "
                f"x{self.model.strength:g}>")
