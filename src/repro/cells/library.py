"""Named standard-cell library container.

A :class:`StdCellLibrary` binds a technology to a set of cell factories
and hands out fresh cell instances by (name, strength) — the shape a
netlist builder wants.  :func:`default_library` provides the 90 nm-class
set used throughout the reproduction.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.cells.base import Cell
from repro.cells.combinational import (
    And2,
    Aoi21,
    Buffer,
    Inverter,
    Mux2,
    Nand2,
    Nor2,
    Oai21,
    Or2,
    Xnor2,
    Xor2,
)
from repro.cells.sequential import DFlipFlop
from repro.devices.technology import TECH_90NM, Technology
from repro.errors import ConfigurationError

CellFactory = Callable[..., Cell]


class StdCellLibrary:
    """A named collection of cell factories over one technology.

    Args:
        tech: The technology every cell in the library is built in.
        name: Library name for reports.
    """

    def __init__(self, tech: Technology, *, name: str = "stdlib") -> None:
        self.tech = tech
        self.name = name
        self._factories: dict[str, CellFactory] = {}

    def register(self, cell_name: str, factory: CellFactory) -> None:
        """Register a cell factory under ``cell_name``.

        Raises:
            ConfigurationError: on duplicate registration.
        """
        key = cell_name.upper()
        if key in self._factories:
            raise ConfigurationError(
                f"cell {cell_name!r} already registered in {self.name}"
            )
        self._factories[key] = factory

    def make(self, cell_name: str, *, strength: float = 1.0,
             instance_name: str | None = None, **kwargs) -> Cell:
        """Instantiate a fresh cell.

        Args:
            cell_name: Registered cell type (case-insensitive).
            strength: Drive strength.
            instance_name: Name for the instance (defaults to type name).
            **kwargs: Extra keyword arguments forwarded to the factory
                (e.g. flip-flop timing overrides).
        """
        key = cell_name.upper()
        if key not in self._factories:
            known = ", ".join(sorted(self._factories))
            raise ConfigurationError(
                f"library {self.name} has no cell {cell_name!r}; "
                f"known: {known}"
            )
        return self._factories[key](
            self.tech, strength=strength, name=instance_name, **kwargs
        )

    def cell_names(self) -> list[str]:
        """Registered cell type names, sorted."""
        return sorted(self._factories)

    def __contains__(self, cell_name: str) -> bool:
        return cell_name.upper() in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.cell_names())

    def retarget(self, tech: Technology) -> "StdCellLibrary":
        """The same cell set bound to a different technology (corner)."""
        lib = StdCellLibrary(tech, name=f"{self.name}@{tech.name}")
        for key, factory in self._factories.items():
            lib._factories[key] = factory
        return lib


def default_library(tech: Technology = TECH_90NM) -> StdCellLibrary:
    """The 90 nm-class cell set used by the reproduction."""
    lib = StdCellLibrary(tech, name="repro90")
    lib.register("INV", Inverter)
    lib.register("BUF", Buffer)
    lib.register("NAND2", Nand2)
    lib.register("NOR2", Nor2)
    lib.register("AND2", And2)
    lib.register("OR2", Or2)
    lib.register("XOR2", Xor2)
    lib.register("XNOR2", Xnor2)
    lib.register("AOI21", Aoi21)
    lib.register("OAI21", Oai21)
    lib.register("MUX2", Mux2)
    lib.register("DFF", DFlipFlop)
    return lib
