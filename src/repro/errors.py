"""Exception hierarchy for the PSN-thermometer reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class CalibrationError(ReproError):
    """The paper-anchor calibration could not be satisfied.

    Raised when the technology-model fit fails to converge or produces
    physically meaningless constants (e.g. a negative threshold voltage).
    """


class SimulationError(ReproError):
    """The event-driven simulator reached an inconsistent state."""


class TimingViolationError(ReproError):
    """A hard timing constraint was violated where the caller demanded
    clean capture (e.g. the STA engine found negative slack in a context
    that requires closure)."""


class NetlistError(ReproError):
    """A netlist is structurally invalid (dangling pin, duplicate driver,
    unknown net, combinational loop where none is allowed)."""


class CharacterizationError(ReproError):
    """A characterization sweep could not bracket a threshold.

    Raised e.g. when the requested supply interval does not contain the
    pass/fail boundary of a sensor stage.
    """


class DecodingError(ReproError):
    """A sensor output word could not be decoded.

    Raised for non-thermometer codes when bubble correction is disabled,
    or for words whose width does not match the characterized array.
    """


class ProtocolError(ReproError):
    """The control FSM was driven outside its legal protocol.

    Raised e.g. when a SENSE is requested before the PREPARE phase has
    completed, mirroring the sequencing constraints of the paper's Fig. 8.
    """


class WorkerCrashError(ReproError):
    """A process-pool worker died (killed, OOM, segfault) and the task
    could not be recovered within the retry budget.

    The resilient executor rebuilds the pool and resubmits unfinished
    tasks on a crash; this error surfaces only when a task keeps
    crashing the pool past its bounded retries (or under the default
    ``failure_policy="raise"`` with no retries configured).
    """


class TaskTimeoutError(ReproError):
    """A task exceeded its per-task wall-clock budget.

    Raised by the resilient executor when a task's deadline passes
    without a result and its retry budget is exhausted.  The worker
    that was running the task is presumed stuck and its pool is
    rebuilt before remaining tasks continue.
    """


class TelemetryOverflowError(ReproError):
    """A telemetry ring buffer overflowed under the ``error`` policy.

    The streaming pipeline's ring buffers are bounded by construction;
    under ``OverflowPolicy.ERROR`` a producer that outruns the consumer
    is a configuration problem and surfaces as this exception instead
    of silently losing samples (``drop_oldest``) or exerting
    backpressure (``block``).
    """


class RetryExhaustedError(ReproError):
    """A task kept failing (raising) through all configured retries.

    Carries the final underlying exception as ``__cause__`` where
    available; the per-attempt history lives in the executor's
    :class:`~repro.runtime.resilient.TaskFailure` records.
    """


class BackendError(ReproError):
    """A measurement backend was misused or cannot serve a request.

    Raised e.g. when an entry point asks a driver for a capability it
    does not implement (``capabilities()`` advertises what a driver
    supports), or when a backend is measured before ``configure()``.
    """


class ServiceError(ReproError):
    """The sensing-as-a-service layer could not serve a request.

    Base class for the :mod:`repro.service` job server's refusals.
    Each subclass names one robustness mechanism; the server maps them
    onto explicit REJECTED / error responses so an accepted request
    always receives exactly one terminal reply instead of a hang or a
    dropped connection.
    """


class AdmissionRejectedError(ServiceError):
    """A request was shed at admission.

    Raised (and reported as a REJECTED response) when a shard's bounded
    admission queue is full under the ``error`` policy, or when the
    ``drop_oldest`` policy evicts a queued request to make room for a
    fresher one — the serving analogue of the telemetry ring buffer's
    overflow accounting.
    """


class DeadlineExceededError(ServiceError):
    """A request's deadline passed before a full-quality answer.

    Raised when the per-request deadline expires while the request is
    queued, mid-execution, or inside the retry loop, and no cached or
    degraded fallback could be served in time.
    """


class CircuitOpenError(ServiceError):
    """A shard's circuit breaker is open and no fallback exists.

    After ``threshold`` consecutive failures a shard stops accepting
    work for a cooldown (half-open probes test recovery); requests that
    cannot be answered from cache or a degraded decode surface this.
    """


class TenantQuotaError(ServiceError):
    """A tenant exhausted its token-bucket rate allowance.

    The request is refused before admission; the client should back
    off and resubmit (the response carries the rejection reason).
    """


class CampaignError(ReproError):
    """The declarative campaign layer could not run a campaign.

    Base class for the :mod:`repro.campaign` orchestration failures:
    invalid specs, stages that cannot execute, and golden-result
    divergences surface through this branch so campaign drivers can
    catch the whole family with one clause.
    """


class CampaignSpecError(CampaignError):
    """A campaign spec file is malformed or semantically invalid.

    Raised for unknown schema tags (a ``campaign/v*`` newer than this
    library), missing/unknown keys, unknown stage kinds or check
    kinds, duplicate stage ids, and dependency cycles — anything that
    makes the declared campaign unrunnable before a single stage
    executes.
    """


class StageExecutionError(CampaignError):
    """A campaign stage could not produce its result payload.

    Wraps the underlying failure (the original exception rides as
    ``__cause__``); the runner records it in the manifest and applies
    the campaign's ``on_fail`` policy instead of crashing the run.
    """


class GoldenDivergenceError(CampaignError):
    """A campaign run diverged from its committed golden results.

    Raised by the strict diff path when :func:`repro.campaign.diff.
    diff_campaign` finds divergences — the regression analogue of
    :class:`ReplayMismatchError` one layer up: the campaign no longer
    reproduces the numbers the golden tree froze.
    """


class TraceError(ReproError):
    """A measurement trace file is malformed or cannot be read.

    Base class for the record/replay layer's failures; see
    :class:`TraceSchemaError` and :class:`ReplayMismatchError`.
    """


class TraceSchemaError(TraceError):
    """A trace file carries an unknown or incompatible schema tag.

    Raised when a ``trace/v*`` tag is newer than this library
    understands (or missing entirely) — replaying it could silently
    reinterpret recorded physics, so the reader refuses.
    """


class ReplayMismatchError(TraceError):
    """A replayed campaign diverged from its recording.

    The :class:`~repro.backends.ReplayBackend` verifies every request
    (op, code, levels — bit-exact) against the recorded sequence; any
    drift means the campaign code no longer asks the questions the
    trace answered, and the replay is not a valid regression gate.
    """
