"""Idealized on-chip analog supply sampler (the paper's ref [5]).

High-performance designs (the cited Itanium-family processor) embed
analog samplers that digitize the rail directly.  This model is the
golden reference: an N-bit uniform quantizer with optional aperture
jitter and input-referred noise, sampling any rail waveform at chosen
instants.  The tracking ablation scores the thermometer against it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.waveform import Waveform


@dataclass(frozen=True)
class IdealAnalogSampler:
    """N-bit sampler over a fixed input range.

    Attributes:
        resolution_bits: Quantizer resolution.
        v_min / v_max: Input range, volts; out-of-range inputs clip.
        jitter_rms: Aperture jitter (RMS of the sampling-instant
            error), seconds.
        noise_rms: Input-referred noise, volts RMS.
        seed: RNG seed for jitter/noise (deterministic runs).
    """

    resolution_bits: int = 8
    v_min: float = 0.6
    v_max: float = 1.4
    jitter_rms: float = 0.0
    noise_rms: float = 0.0
    seed: int = 99

    def __post_init__(self) -> None:
        if self.resolution_bits < 1:
            raise ConfigurationError("resolution_bits must be >= 1")
        if self.v_max <= self.v_min:
            raise ConfigurationError("v_max must exceed v_min")
        if self.jitter_rms < 0 or self.noise_rms < 0:
            raise ConfigurationError("jitter/noise must be non-negative")

    @property
    def lsb(self) -> float:
        """Quantization step, volts."""
        return (self.v_max - self.v_min) / (2 ** self.resolution_bits)

    def quantize(self, v: float) -> float:
        """Mid-tread quantization of one voltage, with clipping."""
        clipped = min(max(v, self.v_min), self.v_max)
        code = round((clipped - self.v_min) / self.lsb)
        code = min(code, 2 ** self.resolution_bits - 1)
        return self.v_min + code * self.lsb

    def sample(self, waveform: Waveform,
               times: np.ndarray) -> np.ndarray:
        """Sample a rail at many instants; returns quantized volts."""
        ts = np.asarray(times, dtype=float)
        if ts.size == 0:
            raise ConfigurationError("times must be non-empty")
        rng = np.random.default_rng(self.seed)
        if self.jitter_rms > 0:
            ts = ts + rng.normal(0.0, self.jitter_rms, size=ts.size)
        raw = np.array([waveform(t) for t in ts])
        if self.noise_rms > 0:
            raw = raw + rng.normal(0.0, self.noise_rms, size=ts.size)
        return np.array([self.quantize(v) for v in raw])

    def rmse_against(self, waveform: Waveform,
                     times: np.ndarray) -> float:
        """RMS sampling error vs. the true waveform at the instants."""
        ts = np.asarray(times, dtype=float)
        est = self.sample(waveform, ts)
        truth = np.array([waveform(t) for t in ts])
        return float(np.sqrt(np.mean((est - truth) ** 2)))
