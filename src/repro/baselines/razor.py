"""Razor-style shadow-latch error detection (the paper's ref [8]).

Razor augments a pipeline register with a shadow latch clocked
``delta`` after the main edge.  When supply droop stretches the
combinational path past the main FF's setup but not past the shadow's,
the two disagree — a detected (and architecturally recoverable) timing
error.  As a *sensor* it is binary and datapath-bound: it reports only
"this path failed this cycle", with no noise magnitude and only below
the path's own failure threshold — the comparison the ablation bench
quantifies against the thermometer's multi-level reading.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.devices.mosfet import voltage_factor
from repro.devices.technology import Technology
from repro.errors import ConfigurationError


class RazorOutcome(enum.Enum):
    """What one Razor cycle observed."""

    #: Path met the main FF's setup: no information beyond "fast enough".
    NO_ERROR = "no_error"
    #: Main FF failed, shadow latch caught it: detected, recoverable.
    DETECTED_ERROR = "detected_error"
    #: Path blew past the shadow latch too: silent data corruption.
    UNDETECTED_FAILURE = "undetected_failure"


@dataclass(frozen=True)
class RazorObservation:
    """One cycle's outcome plus the underlying timing."""

    outcome: RazorOutcome
    path_delay: float
    main_deadline: float
    shadow_deadline: float


class RazorStage:
    """One Razor-protected pipeline stage.

    Args:
        tech: Technology (scales the path delay with supply).
        path_delay_nominal: Combinational path delay at nominal supply,
            seconds.
        clock_period: Pipeline clock period, seconds.
        delta: Shadow-latch clock skew after the main edge, seconds.
        setup_time: FF setup time, seconds.
    """

    def __init__(self, tech: Technology, *, path_delay_nominal: float,
                 clock_period: float, delta: float,
                 setup_time: float) -> None:
        if min(path_delay_nominal, clock_period, delta, setup_time) <= 0:
            raise ConfigurationError("all timing parameters must be > 0")
        if path_delay_nominal >= clock_period - setup_time:
            raise ConfigurationError(
                "path must meet timing at nominal supply"
            )
        self.tech = tech
        self.path_delay_nominal = path_delay_nominal
        self.clock_period = clock_period
        self.delta = delta
        self.setup_time = setup_time

    def path_delay(self, v_eff: float) -> float:
        """Path delay at an effective supply, seconds."""
        g_nom = voltage_factor(self.tech.vdd_nominal, self.tech.vth,
                               self.tech.alpha)
        g = voltage_factor(v_eff, self.tech.vth, self.tech.alpha)
        return self.path_delay_nominal * g / g_nom

    def observe(self, v_eff: float) -> RazorObservation:
        """Evaluate one cycle at a static effective supply."""
        d = self.path_delay(v_eff)
        main_deadline = self.clock_period - self.setup_time
        shadow_deadline = main_deadline + self.delta
        if d <= main_deadline:
            outcome = RazorOutcome.NO_ERROR
        elif d <= shadow_deadline:
            outcome = RazorOutcome.DETECTED_ERROR
        else:
            outcome = RazorOutcome.UNDETECTED_FAILURE
        return RazorObservation(
            outcome=outcome,
            path_delay=d,
            main_deadline=main_deadline,
            shadow_deadline=shadow_deadline,
        )

    def error_threshold(self, *, v_lo: float = 0.4, v_hi: float = 1.5,
                        tol: float = 1e-5) -> float:
        """The supply below which errors start — Razor's single
        'threshold', against the thermometer's seven.

        Raises:
            ConfigurationError: when the bracket does not straddle the
                onset.
        """
        def errs(v: float) -> bool:
            return self.observe(v).outcome is not RazorOutcome.NO_ERROR

        if errs(v_hi) or not errs(v_lo):
            raise ConfigurationError(
                f"bracket [{v_lo}, {v_hi}] does not straddle the error "
                f"onset"
            )
        lo, hi = v_lo, v_hi
        while hi - lo > tol:
            mid = 0.5 * (lo + hi)
            if errs(mid):
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def detection_window(self) -> tuple[float, float]:
        """Supply interval where errors are *detected* (not silent).

        Below the lower edge the shadow latch misses too.
        """
        upper = self.error_threshold()

        def silent(v: float) -> bool:
            return self.observe(v).outcome is \
                RazorOutcome.UNDETECTED_FAILURE

        lo, hi = 0.3, upper
        if not silent(lo):
            return (lo, upper)
        while hi - lo > 1e-5:
            mid = 0.5 * (lo + hi)
            if silent(mid):
                lo = mid
            else:
                hi = mid
        return (0.5 * (lo + hi), upper)


class RazorHarness:
    """Structural Razor stage in the event simulator.

    The real circuit: a datapath (an inverter chain on the noisy rail)
    feeds a main FF clocked at ``t_clk`` and a shadow FF clocked
    ``delta`` later through a delay element; an XOR compares the two
    captures.  Complements the analytic :class:`RazorStage` exactly the
    way the sensor's harnesses complement its analytic models.

    Args:
        tech: Technology of every cell.
        n_stages: Datapath inverter-chain length (sets the path delay).
        delta: Shadow clock skew, seconds.
        clock_period: Pipeline period, seconds.
    """

    def __init__(self, tech, *, n_stages: int = 120,
                 delta: float = 0.25e-9,
                 clock_period: float = 2e-9) -> None:
        from repro.cells.combinational import Inverter, Xor2
        from repro.cells.delay_elements import DelayElement
        from repro.cells.sequential import DFlipFlop
        from repro.sim.netlist import Netlist

        if n_stages < 2 or n_stages % 2:
            raise ConfigurationError("n_stages must be even and >= 2")
        self.tech = tech
        self.clock_period = clock_period
        self.delta = delta
        nl = Netlist("razor_stage")
        nl.add_supply("VDD", tech.vdd_nominal)
        nl.add_supply("GND", 0.0, is_ground=True)
        nl.add_supply("VDDN", tech.vdd_nominal)
        for net in ("din", "clk"):
            nl.add_net(net)
            nl.mark_external_input(net)
        prev = "din"
        for i in range(n_stages):
            nl.add_net(f"p{i}")
            inv = Inverter(tech, name=f"path{i}")
            nl.add_instance(f"path{i}", inv,
                            {"A": prev, "Y": f"p{i}"},
                            vdd="VDDN", gnd="GND")
            prev = f"p{i}"
        self._path_out = prev
        for net in ("sclk", "qmain", "qshadow", "error"):
            nl.add_net(net)
        delay = DelayElement(tech, delta, name="shadow_skew")
        nl.add_instance("shadow_skew", delay, {"A": "clk", "Y": "sclk"},
                        vdd="VDD", gnd="GND")
        nl.add_instance("ff_main", DFlipFlop(tech, name="ff_main"),
                        {"D": prev, "CP": "clk", "Q": "qmain"},
                        vdd="VDD", gnd="GND")
        nl.add_instance("ff_shadow", DFlipFlop(tech, name="ff_shadow"),
                        {"D": prev, "CP": "sclk", "Q": "qshadow"},
                        vdd="VDD", gnd="GND")
        nl.add_instance("cmp", Xor2(tech, name="cmp"),
                        {"A": "qmain", "B": "qshadow", "Y": "error"},
                        vdd="VDD", gnd="GND")
        self.netlist = nl

    def path_delay_nominal(self) -> float:
        """Datapath delay at the nominal rail (for parity with the
        analytic stage)."""
        from repro.sim.engine import SimulationEngine

        return self._measure_path_delay(self.tech.vdd_nominal)

    def _measure_path_delay(self, v_eff: float) -> float:
        from repro.sim.engine import SimulationEngine

        self.netlist.set_supply_waveform("VDDN", v_eff)
        engine = SimulationEngine(self.netlist)
        engine.set_initial("din", 0)
        engine.set_initial("clk", 0)
        engine.set_initial("sclk", 0)
        engine.settle()
        engine.schedule_stimulus("din", 1, 1e-9)
        engine.run(20e-9)
        edges = [t for t in engine.trace.edges(self._path_out,
                                               rising=True)
                 if t >= 1e-9]
        return edges[0] - 1e-9

    def observe(self, v_eff: float) -> "RazorObservation":
        """One launch/capture cycle at a static effective supply.

        Launch the data edge one period before the capture clock, then
        read the XOR error flag after the shadow capture.
        """
        from repro.sim.engine import SimulationEngine

        self.netlist.set_supply_waveform("VDDN", v_eff)
        engine = SimulationEngine(self.netlist)
        engine.set_initial("din", 0)
        engine.set_initial("clk", 0)
        engine.set_initial("qmain", 0)
        engine.set_initial("qshadow", 0)
        engine.settle()
        t_launch = 2e-9
        t_clk = t_launch + self.clock_period
        engine.schedule_stimulus("din", 1, t_launch)
        engine.schedule_stimulus("clk", 1, t_clk)
        engine.schedule_stimulus("clk", 0, t_clk + self.clock_period / 2)
        engine.run(t_clk + self.clock_period)
        t_read = t_clk + self.clock_period * 0.9
        qmain = engine.trace.value_at("qmain", t_read)
        qshadow = engine.trace.value_at("qshadow", t_read)
        error = engine.trace.value_at("error", t_read)
        arrival = [t for t in engine.trace.edges(self._path_out,
                                                 rising=True)
                   if t >= t_launch]
        d = (arrival[0] - t_launch) if arrival else float("inf")
        if qmain == 1 and error == 0:
            outcome = RazorOutcome.NO_ERROR
        elif qshadow == 1 and error == 1:
            outcome = RazorOutcome.DETECTED_ERROR
        else:
            outcome = RazorOutcome.UNDETECTED_FAILURE
        ff = self.netlist.instances["ff_main"].cell
        main_deadline = self.clock_period - ff.setup_time
        return RazorObservation(
            outcome=outcome,
            path_delay=d,
            main_deadline=main_deadline,
            shadow_deadline=main_deadline + self.delta,
        )
