"""Comparison baselines from the paper's introduction.

The paper positions its thermometer against three families of prior
art; each gets a quantitative model here so the introduction's
qualitative claims become benches:

* :mod:`repro.baselines.ring_oscillator` — the standard-cell RO sensor
  of their ref [7] (Ogasahara et al.): digital and simple, but it
  averages over its counting window and — the paper's explicit
  criticism — "it cannot distinguish between power and ground voltage
  variations";
* :mod:`repro.baselines.razor` — the Razor shadow-latch scheme of their
  ref [8]: detects actual timing errors in a datapath but reports only
  error/no-error, no noise magnitude, and needs a pipeline to live in;
* :mod:`repro.baselines.analog_sampler` — an idealized on-chip analog
  sampler in the spirit of their ref [5]: the accuracy golden
  reference that a digital sensor trades against.
"""

from repro.baselines.ring_oscillator import (
    RingOscillatorSensor,
    RingOscillatorHarness,
)
from repro.baselines.razor import RazorStage, RazorObservation
from repro.baselines.analog_sampler import IdealAnalogSampler

__all__ = [
    "RingOscillatorSensor",
    "RingOscillatorHarness",
    "RazorStage",
    "RazorObservation",
    "IdealAnalogSampler",
]
