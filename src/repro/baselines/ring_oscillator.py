"""Ring-oscillator PSN sensor (the paper's ref [7] baseline).

A ring of inverters powered by the rail under test oscillates at a
frequency set by the inverter delay, hence by the *effective* supply
``vdd - gnd``; counting its edges over a window digitizes the supply.
Two structural limitations — both stated by the paper and both
reproduced by this model — are:

* the count is an **average** over the window: fast droop events are
  smeared (the thermometer takes an instantaneous sample per measure);
* the ring sees only the supply *difference*: a 50 mV VDD droop and a
  50 mV ground bounce produce the same count — "it cannot distinguish
  between power and ground voltage variations" (§I).
"""

from __future__ import annotations

import numpy as np

from repro.cells.combinational import Inverter, Nand2
from repro.devices.technology import Technology
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.netlist import Netlist
from repro.sim.waveform import ConstantWaveform, Waveform
from repro.units import NS


class RingOscillatorSensor:
    """Analytic RO sensor model.

    Args:
        tech: Technology of the ring inverters.
        n_stages: Ring length (odd; period = 2 * n * stage delay).
        strength: Inverter drive strength.
    """

    def __init__(self, tech: Technology, *, n_stages: int = 31,
                 strength: float = 1.0) -> None:
        if n_stages < 3 or n_stages % 2 == 0:
            raise ConfigurationError("n_stages must be odd and >= 3")
        self.tech = tech
        self.n_stages = n_stages
        self.inv = Inverter(tech, strength=strength)
        # Each stage drives the next stage's input.
        self._stage_load = self.inv.pin("A").cap

    def stage_delay(self, v_eff: float) -> float:
        """One inverter delay at an effective supply, seconds."""
        return self.inv.model.delay(v_eff, self._stage_load)

    def period(self, v_eff: float) -> float:
        """Oscillation period at an effective supply, seconds."""
        return 2.0 * self.n_stages * self.stage_delay(v_eff)

    def frequency(self, v_eff: float) -> float:
        """Oscillation frequency, hertz (0 below threshold)."""
        p = self.period(v_eff)
        if np.isinf(p):
            return 0.0
        return 1.0 / p

    def count(self, window: float, *,
              vdd_n: Waveform | float = 1.0,
              gnd_n: Waveform | float = 0.0,
              dt: float = 10e-12) -> int:
        """Oscillation count over a window with time-varying rails.

        Integrates the instantaneous frequency — the defining
        *averaging* behaviour of a counted RO.

        Raises:
            ConfigurationError: non-positive window or dt.
        """
        if window <= 0 or dt <= 0:
            raise ConfigurationError("window and dt must be positive")
        vdd = (ConstantWaveform(vdd_n) if isinstance(vdd_n, (int, float))
               else vdd_n)
        gnd = (ConstantWaveform(gnd_n) if isinstance(gnd_n, (int, float))
               else gnd_n)
        ts = np.arange(0.0, window, dt)
        freqs = np.array([self.frequency(vdd(t) - gnd(t)) for t in ts])
        return int(np.floor(np.trapezoid(freqs, dx=dt)))

    def calibration_curve(self, v_grid: np.ndarray,
                          window: float) -> list[tuple[float, int]]:
        """(effective supply, count) pairs for static levels."""
        return [(float(v), self.count(window, vdd_n=float(v)))
                for v in np.asarray(v_grid, dtype=float)]

    def estimate_supply(self, count: int, window: float, *,
                        v_lo: float = 0.5, v_hi: float = 1.5,
                        tol: float = 1e-4) -> float:
        """Invert the count under the *assumption* GND-n is nominal.

        This is the flawed step the paper calls out: the estimate is
        really of ``vdd - gnd``, so ground bounce masquerades as a
        supply droop.  Bisection over static levels.

        Raises:
            ConfigurationError: when the count is outside the bracket's
                count range.
        """
        c_lo = self.count(window, vdd_n=v_lo)
        c_hi = self.count(window, vdd_n=v_hi)
        if not c_lo <= count <= c_hi:
            raise ConfigurationError(
                f"count {count} outside [{c_lo}, {c_hi}] for bracket "
                f"[{v_lo}, {v_hi}]"
            )
        lo, hi = v_lo, v_hi
        while hi - lo > tol:
            mid = 0.5 * (lo + hi)
            if self.count(window, vdd_n=mid) < count:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)


class RingOscillatorHarness:
    """Structural RO: a NAND-enabled inverter ring in the simulator.

    The ring actually oscillates in the event engine; edges on the tap
    net are counted over the window.  Kept short (default 7 stages) so
    the event count stays reasonable.
    """

    def __init__(self, tech: Technology, *, n_stages: int = 7,
                 strength: float = 1.0) -> None:
        if n_stages < 3 or n_stages % 2 == 0:
            raise ConfigurationError("n_stages must be odd and >= 3")
        self.tech = tech
        self.n_stages = n_stages
        self.strength = strength
        self._build()

    def _build(self) -> None:
        nl = Netlist("ring_oscillator")
        nl.add_supply("VDDN", self.tech.vdd_nominal)
        nl.add_supply("GNDN", 0.0, is_ground=True)
        nl.add_net("EN")
        nl.mark_external_input("EN")
        # Stage 0 is the enable NAND; stages 1..n-1 are inverters.
        for i in range(self.n_stages):
            nl.add_net(f"n{i}")
        nand = Nand2(self.tech, strength=self.strength, name="ring_nand")
        nl.add_instance("ring_nand", nand,
                        {"A": "EN", "B": f"n{self.n_stages - 1}",
                         "Y": "n0"},
                        vdd="VDDN", gnd="GNDN")
        for i in range(1, self.n_stages):
            inv = Inverter(self.tech, strength=self.strength,
                           name=f"ring_inv{i}")
            nl.add_instance(f"ring_inv{i}", inv,
                            {"A": f"n{i - 1}", "Y": f"n{i}"},
                            vdd="VDDN", gnd="GNDN")
        self.netlist = nl

    def count_edges(self, window: float, *,
                    vdd_n: Waveform | float = 1.0,
                    gnd_n: Waveform | float = 0.0,
                    max_events: int = 2_000_000) -> int:
        """Enable the ring for a window; count rising tap edges.

        Raises:
            SimulationError: when the ring fails to oscillate.
        """
        if window <= 0:
            raise ConfigurationError("window must be positive")
        self.netlist.set_supply_waveform("VDDN", vdd_n)
        self.netlist.set_supply_waveform("GNDN", gnd_n)
        engine = SimulationEngine(self.netlist, max_events=max_events)
        engine.set_initial("EN", 0)
        engine.settle()
        t_on = 1.0 * NS
        engine.schedule_stimulus("EN", 1, t_on)
        engine.run(t_on + window)
        tap = f"n{self.n_stages - 1}"
        edges = [t for t in engine.trace.edges(tap, rising=True)
                 if t >= t_on]
        if not edges:
            raise SimulationError("ring did not oscillate")
        return len(edges)
