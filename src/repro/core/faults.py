"""Sensor self-screening via fault injection.

The paper argues the sensor can be deployed "on a systematic basis for
PSN measure as scan chains are for fault verification" — which invites
the reciprocal question: *who tests the tester?*  The measurement
protocol itself carries two built-in checks:

* the **PREPARE word** must read all-fail (Fig. 9's ``0000000``) —
  a stage whose output is stuck at the pass value is caught before any
  measure is trusted;
* the **SENSE word** must be a valid thermometer code — a stage stuck
  at fail below passing stages shows up as a bubble.

A production tester adds a third: screening happens at *known* applied
reference levels, so the whole **expected word** is checkable — which
is what closes coverage on the corner cases the in-field checks cannot
see (a top stage stuck at fail reads as a merely lower, valid code).

:class:`FaultInjector` forces classic stuck-at faults onto a sensor
array netlist (using the simulator's force mechanism);
:meth:`FaultInjector.screen` runs the checks;
:func:`coverage_study` sweeps every (fault, stage) pair through the
two-level tester protocol (one level above the ladder, one below) and
reports detection coverage per check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.array import SensorArrayHarness
from repro.core.calibration import SensorDesign
from repro.core.sensor import SenseRail
from repro.devices.technology import Technology
from repro.errors import ConfigurationError
from repro.sim.waveform import Waveform


class FaultType(enum.Enum):
    """Injectable stuck-at faults on one sensor stage."""

    #: Sensor FF output stuck at the pass value.
    OUT_STUCK_PASS = "out_stuck_pass"
    #: Sensor FF output stuck at the fail value.
    OUT_STUCK_FAIL = "out_stuck_fail"
    #: Delay-sense node stuck at the PREPARE level (dead inverter —
    #: the measured transition never launches).
    DS_STUCK_PREPARE = "ds_stuck_prepare"
    #: Delay-sense node stuck at the SENSE level (shorted inverter —
    #: the FF always sees the post-transition value).
    DS_STUCK_SENSE = "ds_stuck_sense"


@dataclass(frozen=True)
class ScreenReport:
    """Outcome of one screening run.

    Attributes:
        prepare_word: The PREPARE-phase word (must be all-fail).
        sense_word: The SENSE-phase word.
        prepare_check_failed: True when PREPARE read a passing stage.
        bubble_check_failed: True when SENSE was not a thermometer code.
        reference_check_failed: True when a known screening level was
            applied and the SENSE word differed from the expected one
            (None when no reference level was supplied).
        detected: Any check fired.
        suspect_bits: 1-based stages implicated by the failing checks.
    """

    prepare_word: str
    sense_word: str
    prepare_check_failed: bool
    bubble_check_failed: bool
    reference_check_failed: bool | None
    suspect_bits: tuple[int, ...]

    @property
    def detected(self) -> bool:
        return (self.prepare_check_failed or self.bubble_check_failed
                or bool(self.reference_check_failed))


class FaultInjector:
    """Injects stuck-at faults into an event-driven sensor array.

    Args:
        design: Calibrated design.
        rail: VDD or GND array.
        tech: Corner technology.
    """

    def __init__(self, design: SensorDesign,
                 rail: SenseRail = SenseRail.VDD,
                 tech: Technology | None = None) -> None:
        self.design = design
        self.rail = rail
        self.harness = SensorArrayHarness(design, rail, tech)
        self._fault: tuple[FaultType, int] | None = None

    def inject(self, fault: FaultType, bit: int) -> None:
        """Arm one fault on one stage (replaces any previous fault).

        Raises:
            ConfigurationError: bad bit index.
        """
        if not 1 <= bit <= self.design.n_bits:
            raise ConfigurationError(
                f"bit {bit} outside 1..{self.design.n_bits}"
            )
        self._fault = (fault, bit)

    def clear(self) -> None:
        self._fault = None

    def _apply_fault(self, engine) -> None:
        if self._fault is None:
            return
        fault, bit = self._fault
        rail = self.rail
        if fault is FaultType.OUT_STUCK_PASS:
            engine.force_net(f"OUT{bit}", rail.pass_value)
        elif fault is FaultType.OUT_STUCK_FAIL:
            engine.force_net(f"OUT{bit}", 1 - rail.pass_value)
        elif fault is FaultType.DS_STUCK_PREPARE:
            engine.force_net(f"DS{bit}", rail.prepare_ds)
        elif fault is FaultType.DS_STUCK_SENSE:
            engine.force_net(f"DS{bit}", 1 - rail.prepare_ds)
        else:  # pragma: no cover - enum is closed
            raise ConfigurationError(f"unhandled fault {fault}")

    def screen(self, *, code: int = 3,
               vdd_n: Waveform | float | None = None,
               gnd_n: Waveform | float | None = None,
               reference_level: float | None = None) -> ScreenReport:
        """Run one PREPARE/SENSE measure with the armed fault and apply
        the built-in checks.

        Args:
            code: Delay code for the screen.
            vdd_n / gnd_n: Rail during the screen.
            reference_level: When the applied VDD-n is a *known* static
                tester level, pass it here to enable the expected-word
                check (the check that closes coverage on top-stage
                stuck-at-fail faults).
        """
        h = self.harness
        # Patch the harness's engine construction to apply the force:
        # run_measures builds its own engine, so screening replays its
        # scheduling with an injected hook.
        from repro.sim.engine import SimulationEngine

        if vdd_n is not None:
            h.netlist.set_supply_waveform("VDDN", vdd_n)
        if gnd_n is not None:
            h.netlist.set_supply_waveform("GNDN", gnd_n)
        engine = SimulationEngine(h.netlist)
        rail = self.rail
        engine.set_initial("P", rail.prepare_p)
        engine.set_initial("CP", 0)
        engine.set_initial("CPD", 0)
        engine.settle()
        for b in range(1, self.design.n_bits + 1):
            engine.set_initial(f"OUT{b}", 1 - rail.pass_value)
        self._apply_fault(engine)

        from repro.core.pulsegen import PulseGenerator

        skew = PulseGenerator(self.design, h.tech).skew(code)
        t_m = 2 * h.PREPARE_LEAD
        t_prep = t_m - h.PREPARE_LEAD
        engine.schedule_stimulus("P", rail.prepare_p, t_prep)
        engine.schedule_stimulus(
            "CP", 1, t_prep + skew + h.PREPARE_LEAD / 2
        )
        engine.schedule_stimulus(
            "CP", 0, t_prep + skew + h.PREPARE_LEAD / 2
            + h.CP_PULSE_WIDTH
        )
        engine.schedule_stimulus("P", rail.sense_p, t_m)
        engine.schedule_stimulus("CP", 1, t_m + skew)
        engine.schedule_stimulus("CP", 0, t_m + skew + h.CP_PULSE_WIDTH)
        engine.run(t_m + h.PREPARE_LEAD)

        def word_at(t_lo: float, t_hi: float) -> list[int]:
            bits = []
            for b in range(1, self.design.n_bits + 1):
                v = engine.trace.value_at(f"OUT{b}",
                                          t_hi)
                bits.append(1 if v == rail.pass_value else 0)
            return bits

        t_prep_done = t_prep + skew + h.PREPARE_LEAD / 2 \
            + h.CP_PULSE_WIDTH
        prep_bits = word_at(t_prep, t_prep_done + 0.4e-9)
        sense_bits = word_at(t_m, t_m + h.PREPARE_LEAD * 0.9)

        from repro.analysis.thermometer import ThermometerWord

        prep_word = ThermometerWord(prep_bits)
        sense_word = ThermometerWord(sense_bits)
        prepare_failed = prep_word.ones != 0
        bubble_failed = not sense_word.is_valid_thermometer
        reference_failed: bool | None = None
        expected_bits: tuple[int, ...] | None = None
        if reference_level is not None:
            expected_bits = tuple(
                1 if reference_level > self.design.bit_threshold(b, code)
                else 0
                for b in range(1, self.design.n_bits + 1)
            )
            reference_failed = tuple(sense_bits) != expected_bits
        suspects: list[int] = []
        if prepare_failed:
            suspects.extend(
                b for b, bit in enumerate(prep_bits, start=1) if bit
            )
        if bubble_failed:
            corrected = sense_word.corrected()
            suspects.extend(
                b for b, (got, fix) in enumerate(
                    zip(sense_word.bits, corrected.bits), start=1)
                if got != fix
            )
        if reference_failed and expected_bits is not None:
            suspects.extend(
                b for b, (got, want) in enumerate(
                    zip(sense_bits, expected_bits), start=1)
                if got != want
            )
        return ScreenReport(
            prepare_word=prep_word.to_string(),
            sense_word=sense_word.to_string(),
            prepare_check_failed=prepare_failed,
            bubble_check_failed=bubble_failed,
            reference_check_failed=reference_failed,
            suspect_bits=tuple(sorted(set(suspects))),
        )


def screen_suspects(injector: FaultInjector, *, code: int = 3,
                    margin: float = 0.05) -> tuple[int, ...]:
    """Two-level tester screen; returns every implicated stage.

    Runs the same protocol :func:`coverage_study` uses for one
    injector: one screen at a known reference level just *below* the
    whole threshold ladder (every healthy stage must fail) and one
    just *above* it (every healthy stage must pass), both with the
    expected-word check enabled.  The union of the suspect bits is
    exactly the stage set a degraded-mode decoder
    (:class:`~repro.core.degraded.DegradedArray`) should mask.

    Args:
        injector: A :class:`FaultInjector` (with or without an armed
            fault) wrapping the array under test.
        code: Delay code for the screens.
        margin: Reference-level clearance beyond the ladder ends,
            volts.

    Returns:
        Sorted 1-based stage indices implicated by any failing check;
        empty for a healthy array.
    """
    if margin <= 0:
        raise ConfigurationError("margin must be positive")
    design = injector.design
    ts = [design.bit_threshold(b, code)
          for b in range(1, design.n_bits + 1)]
    suspects: set[int] = set()
    for level in (ts[0] - margin, ts[-1] + margin):
        report = injector.screen(code=code, vdd_n=level,
                                 reference_level=level)
        suspects.update(report.suspect_bits)
    return tuple(sorted(suspects))


def coverage_study(design: SensorDesign, *,
                   code: int = 3) -> dict[str, float]:
    """Inject every (fault, bit) pair; two-level tester screening.

    The protocol: one screen at a reference level *below* the whole
    ladder (every healthy stage fails — exposes stuck-at-pass), one
    *above* it (every healthy stage passes — exposes stuck-at-fail),
    both with the expected-word check enabled.  A fault counts as
    detected when any check fires at either level.

    Returns:
        Coverage fraction per fault type plus ``"overall"``.
    """
    ts = [design.bit_threshold(b, code)
          for b in range(1, design.n_bits + 1)]
    low_level = ts[0] - 0.05
    high_level = ts[-1] + 0.05
    results: dict[str, float] = {}
    total_detected = 0
    total = 0
    for fault in FaultType:
        detected = 0
        for bit in range(1, design.n_bits + 1):
            injector = FaultInjector(design)
            injector.inject(fault, bit)
            caught = False
            for level in (low_level, high_level):
                report = injector.screen(code=code, vdd_n=level,
                                         reference_level=level)
                if report.detected:
                    caught = True
                    break
            if caught:
                detected += 1
            total += 1
        results[fault.value] = detected / design.n_bits
        total_detected += detected
    results["overall"] = total_detected / total
    return results
