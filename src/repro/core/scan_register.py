"""Gate-level scan register: serial readout of sensor words.

The paper's closing analogy — "this sensor system can be thought for
PSN as scan chains are for data faults" — implies the standard DFT
readout structure: every sensor output bit gets a scan flip-flop whose
input is a MUX2 between *capture* (the sensor FF's OUT) and *shift*
(the previous scan stage), all clocked by the scan clock.  One capture
pulse loads the word(s); N shift pulses stream them out of ``SO``.

:class:`ScanRegisterHarness` builds that structure for one or more
sensor words and runs it in the event simulator — proving the digital
readout path at gate level, not just as list slicing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.combinational import Mux2
from repro.cells.sequential import DFlipFlop
from repro.core.calibration import SensorDesign
from repro.devices.technology import Technology
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.netlist import Netlist
from repro.units import NS


@dataclass(frozen=True)
class ScanPorts:
    """Net names of a built scan register."""

    scan_clock: str
    scan_enable: str
    scan_in: str
    scan_out: str
    capture_inputs: tuple[str, ...]


def build_scan_register(design: SensorDesign, n_bits: int, *,
                        tech: Technology | None = None,
                        netlist: Netlist | None = None,
                        prefix: str = "scan",
                        vdd: str = "VDD", gnd: str = "GND"
                        ) -> tuple[Netlist, ScanPorts]:
    """Structural scan register over ``n_bits`` capture inputs.

    Per bit: ``MUX2(capture_i, prev_stage, SE) -> DFF -> stage_i``.
    Bit 0 is nearest ``SI``; the last stage drives ``SO``, so the last
    capture input shifts out first — the convention
    :meth:`~repro.core.scanchain.PSNScanChain.scan_out` models
    analytically.

    Raises:
        ConfigurationError: for a non-positive width.
    """
    if n_bits < 1:
        raise ConfigurationError("n_bits must be positive")
    t = tech if tech is not None else design.tech
    nl = netlist
    if nl is None:
        nl = Netlist(f"{prefix}_register")
        nl.add_supply(vdd, design.tech.vdd_nominal)
        nl.add_supply(gnd, 0.0, is_ground=True)

    sck = f"{prefix}_clk"
    sen = f"{prefix}_en"
    sin = f"{prefix}_si"
    for net in (sck, sen, sin):
        nl.add_net(net)
        nl.mark_external_input(net)

    captures = []
    prev = sin
    for i in range(n_bits):
        cap_net = f"{prefix}_cap{i}"
        mux_out = f"{prefix}_d{i}"
        stage = f"{prefix}_q{i}"
        nl.add_net(cap_net)
        nl.mark_external_input(cap_net)
        nl.add_net(mux_out)
        nl.add_net(stage)
        mux = Mux2(t, name=f"{prefix}_mux{i}")
        # S=0 -> capture; S=1 -> shift from the previous stage.
        nl.add_instance(f"{prefix}_mux{i}", mux,
                        {"A": cap_net, "B": prev, "S": sen,
                         "Y": mux_out}, vdd=vdd, gnd=gnd)
        ff = DFlipFlop(t, name=f"{prefix}_ff{i}")
        nl.add_instance(f"{prefix}_ff{i}", ff,
                        {"D": mux_out, "CP": sck, "Q": stage},
                        vdd=vdd, gnd=gnd)
        captures.append(cap_net)
        prev = stage
    return nl, ScanPorts(
        scan_clock=sck,
        scan_enable=sen,
        scan_in=sin,
        scan_out=prev,
        capture_inputs=tuple(captures),
    )


class ScanRegisterHarness:
    """Capture-and-shift a set of bits through the gate-level register.

    Args:
        design: Calibrated design (technology source).
        n_bits: Register length (e.g. sites × word width).
        tech: Corner technology.
        clock_period: Scan clock period, seconds.
    """

    def __init__(self, design: SensorDesign, n_bits: int, *,
                 tech: Technology | None = None,
                 clock_period: float = 2.0 * NS) -> None:
        if clock_period <= 0:
            raise ConfigurationError("clock_period must be positive")
        self.design = design
        self.clock_period = clock_period
        self.netlist, self.ports = build_scan_register(
            design, n_bits, tech=tech,
        )
        self.n_bits = n_bits

    def capture_and_shift(self, bits: list[int], *,
                          scan_in_value: int = 0) -> list[int]:
        """Load ``bits`` in capture mode, then shift them all out.

        Args:
            bits: The parallel capture values (bit 0 nearest SI).
            scan_in_value: Value streamed into SI while shifting.

        Returns:
            The serial stream observed at SO, one value per shift
            clock, last stage first.

        Raises:
            ConfigurationError: width mismatch.
            SimulationError: if SO never resolves.
        """
        if len(bits) != self.n_bits:
            raise ConfigurationError(
                f"expected {self.n_bits} bits, got {len(bits)}"
            )
        ports = self.ports
        engine = SimulationEngine(self.netlist)
        engine.set_initial(ports.scan_clock, 0)
        engine.set_initial(ports.scan_enable, 0)  # capture mode
        engine.set_initial(ports.scan_in, scan_in_value)
        for net, b in zip(ports.capture_inputs, bits):
            engine.set_initial(net, b)
        for i in range(self.n_bits):
            engine.set_initial(f"scan_q{i}", 0)
        engine.settle()

        period = self.clock_period
        # One capture pulse.
        engine.schedule_stimulus(ports.scan_clock, 1, 1 * period)
        engine.schedule_stimulus(ports.scan_clock, 0, 1.5 * period)
        # Switch to shift mode; SO then presents the last stage, so it
        # is read *before* each shift pulse (tester convention).
        engine.schedule_stimulus(ports.scan_enable, 1, 1.75 * period)
        stream: list[int] = []
        for k in range(self.n_bits):
            t_rise = (2 + k) * period
            engine.run(t_rise - 0.1 * period)  # settle, then sample SO
            value = self.netlist.nets[ports.scan_out].value
            if value is None:
                raise SimulationError(
                    f"scan output unresolved at shift {k}"
                )
            stream.append(value)
            engine.schedule_stimulus(ports.scan_clock, 1, t_rise)
            engine.schedule_stimulus(ports.scan_clock, 0,
                                     t_rise + 0.5 * period)
        engine.run((2 + self.n_bits) * period)
        return stream
