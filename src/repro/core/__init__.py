"""The paper's contribution: the fully digital PSN thermometer.

Layout (mirroring the paper's block diagram, Fig. 6):

* :mod:`repro.core.paperdata` — every number the paper publishes
  (delay-code table, Fig. 4 anchor, Fig. 5 ranges, Fig. 9 codes);
* :mod:`repro.core.calibration` — fits the technology model to those
  anchors and emits the :class:`~repro.core.calibration.SensorDesign`
  used by every component;
* :mod:`repro.core.sensor` — the single-bit INV+FF+C sensor (Fig. 1
  left) with analytic and event-simulated measurement paths;
* :mod:`repro.core.array` — the multi-bit thermometer (Fig. 1 right);
* :mod:`repro.core.pulsegen` — the PG with eight delay codes (Fig. 7);
* :mod:`repro.core.encoder` — thermometer-to-binary ENC with bubble
  correction;
* :mod:`repro.core.counter` — measurement sequencing counter;
* :mod:`repro.core.control` — the CNTR FSM (Fig. 8);
* :mod:`repro.core.system` — the assembled sensor system (Fig. 6);
* :mod:`repro.core.characterization` — threshold extraction (Figs. 4/5);
* :mod:`repro.core.trimming` — process-corner delay-code retrimming;
* :mod:`repro.core.scanchain` — multi-point PSN scan chain.
"""

from repro.core.calibration import SensorDesign, fit_paper_design, paper_design
from repro.core.sensor import SenseRail, SensorBit, SensorBitHarness
from repro.core.array import SensorArray, SensorArrayHarness
from repro.core.pulsegen import PulseGenerator
from repro.core.encoder import ThermometerEncoder
from repro.core.counter import MeasurementCounter
from repro.core.control import ControlFSM, ControlState
from repro.core.system import SensorSystem, MeasurementResult
from repro.core.characterization import (
    characterize_bit_thresholds,
    characterize_array,
    threshold_vs_capacitance,
)
from repro.core.trimming import TrimmingPolicy, retrim_for_corner
from repro.core.scanchain import PSNScanChain
from repro.core.autorange import AutoRangingMeter
from repro.core.monitor import NoiseMonitor
from repro.core.scan_register import ScanRegisterHarness
from repro.core.faults import FaultInjector, FaultType, coverage_study
from repro.core.calibrated_decoder import MeasuredDecoder
from repro.core.guardband import GuardbandController, GuardbandAction

__all__ = [
    "SensorDesign",
    "fit_paper_design",
    "paper_design",
    "SenseRail",
    "SensorBit",
    "SensorBitHarness",
    "SensorArray",
    "SensorArrayHarness",
    "PulseGenerator",
    "ThermometerEncoder",
    "MeasurementCounter",
    "ControlFSM",
    "ControlState",
    "SensorSystem",
    "MeasurementResult",
    "characterize_bit_thresholds",
    "characterize_array",
    "threshold_vs_capacitance",
    "TrimmingPolicy",
    "retrim_for_corner",
    "PSNScanChain",
    "AutoRangingMeter",
    "NoiseMonitor",
    "ScanRegisterHarness",
    "FaultInjector",
    "FaultType",
    "coverage_study",
    "MeasuredDecoder",
    "GuardbandController",
    "GuardbandAction",
]
