"""Equivalent-time noise monitoring with the full sensor system.

The paper's verification use case: the sensed levels "can be ...
transferred to the output for verification purposes", with measures
"iterated so that noise values can be captured in different moments of
the CUT transient behavior".  :class:`NoiseMonitor` packages that whole
flow: it re-runs the event-driven :class:`~repro.core.system.SensorSystem`
against a (repeatable) rail waveform with swept trigger offsets —
equivalent-time sampling — optionally auto-ranging the delay code, and
stitches the decoded ranges into a waveform estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reconstruct import WaveformReconstructor
from repro.analysis.thermometer import VoltageRange
from repro.core.array import SensorArray
from repro.core.autorange import AutoRangingMeter
from repro.core.calibration import SensorDesign
from repro.core.sensor import SenseRail
from repro.core.system import SensorSystem
from repro.devices.technology import Technology
from repro.errors import ConfigurationError
from repro.sim.waveform import Waveform
from repro.units import NS


class _ShiftedWaveform:
    """``w(t + offset)`` — re-triggers the repeatable transient so the
    SENSE instants land at different phases of it."""

    def __init__(self, inner: Waveform, offset: float) -> None:
        self._inner = inner
        self._offset = offset

    def __call__(self, t: float) -> float:
        return self._inner(t + self._offset)


@dataclass(frozen=True)
class MonitorPoint:
    """One equivalent-time sample."""

    time: float
    code: int
    word: str
    decoded: VoltageRange
    metastable: bool


@dataclass(frozen=True)
class MonitorCapture:
    """A completed equivalent-time capture.

    Attributes:
        points: Per-sample detail, time-ordered.
        reconstructor: The stitched waveform estimate.
        reranged: How many samples needed a second pass at another code.
    """

    points: tuple[MonitorPoint, ...]
    reconstructor: WaveformReconstructor
    reranged: int

    def rmse_against(self, waveform: Waveform) -> float:
        return self.reconstructor.rmse_against(waveform)

    def extremes(self) -> tuple[float, float]:
        return self.reconstructor.extremes()


class NoiseMonitor:
    """Equivalent-time rail monitor built on the full sensor system.

    Args:
        design: Calibrated design.
        rail: Which rail to monitor.
        tech: Corner technology.
        code: Starting delay code.
        auto_range: Re-measure saturated samples at a stepped code.
        clock_period: Control clock period, seconds.
    """

    def __init__(self, design: SensorDesign,
                 rail: SenseRail = SenseRail.VDD,
                 tech: Technology | None = None, *,
                 code: int = 3,
                 auto_range: bool = True,
                 clock_period: float = 2.0 * NS) -> None:
        if not 0 <= code < 8:
            raise ConfigurationError("code outside 0..7")
        self.design = design
        self.rail = rail
        self.tech = tech
        self.code = code
        self.auto_range = auto_range
        self.system = SensorSystem(
            design, tech=tech, clock_period=clock_period,
            include_ls=(rail is SenseRail.GND),
        )
        self.decoder = SensorArray(design, rail, tech)
        self._ranger = AutoRangingMeter(design, rail, tech,
                                        initial_code=code)

    def _run_once(self, waveform: Waveform, offset: float,
                  code: int):
        """One full-system burst with the transient shifted by
        ``offset``; returns (measure, sense_time)."""
        shifted = _ShiftedWaveform(waveform, offset)
        kwargs = {"code_hs": code, "code_ls": code}
        if self.rail is SenseRail.VDD:
            run = self.system.run(1, vdd_n=shifted, **kwargs)
            measure = run.hs[0]
        else:
            run = self.system.run(1, gnd_n=shifted, **kwargs)
            measure = run.ls[0]
        return measure

    def capture(self, waveform: Waveform, *,
                t_start: float, t_stop: float,
                n_points: int = 32) -> MonitorCapture:
        """Equivalent-time capture of a repeatable transient.

        The SENSE instant inside one burst is fixed by the FSM; the
        monitor instead slides the *transient* under it (offset sweep),
        exactly how on-silicon equivalent-time capture retriggers the
        CUT.

        Args:
            waveform: The repeatable rail transient (``t`` in seconds).
            t_start / t_stop: Transient interval to cover, seconds.
            n_points: Number of equivalent-time samples.

        Raises:
            ConfigurationError: bad interval or point count.
        """
        if n_points < 2:
            raise ConfigurationError("n_points must be at least 2")
        if t_stop <= t_start:
            raise ConfigurationError("t_stop must exceed t_start")
        # The burst's actual DS-launch instant (one probe measure):
        # tick time plus PG/driver insertion — the sensor's aperture
        # reference, which matters against fast transients.
        probe = self.system.run(1, vdd_n=1.0, gnd_n=0.0)
        probe_measure = (probe.hs[0] if self.rail is SenseRail.VDD
                         else probe.ls[0])
        launch_instant = probe_measure.launch_time

        offsets = np.linspace(t_start, t_stop, n_points) - launch_instant
        rec = WaveformReconstructor()
        points: list[MonitorPoint] = []
        reranged = 0
        for offset in offsets:
            measure = self._run_once(waveform, float(offset), self.code)
            # The equivalent time is where the launch landed on the
            # original transient: the run's own launch instant plus
            # the offset it was shifted by.
            t_equiv = float(offset + measure.launch_time)
            word = measure.word
            code = self.code
            if self.auto_range and word.ones in (0, word.n_bits):
                nxt = self._ranger._next_code(code, word)
                if nxt is not None:
                    reranged += 1
                    code = nxt
                    measure = self._run_once(waveform, float(offset),
                                             code)
                    word = measure.word
            decoded = self.decoder.decode(word, code, strict=False)
            rec.add(t_equiv, decoded)
            points.append(MonitorPoint(
                time=t_equiv,
                code=code,
                word=word.to_string(),
                decoded=decoded,
                metastable=measure.any_metastable,
            ))
        return MonitorCapture(points=tuple(points),
                              reconstructor=rec,
                              reranged=reranged)
