"""Fit the technology model to the paper's published anchors.

The paper characterizes its 90 nm sensor with post-layout SPICE; we
re-derive the free constants of the alpha-power substrate so that the
*simulated* sensor reproduces the published numbers.  The failure
condition of sensor bit *i* under delay code *c* is

    d_inv(V, C_i) = D(c) + t0                                   (1)

where ``d_inv(V, C) = k_eff * (C_int + C) * g(V)`` with
``g(V) = V / (V - vth)**alpha``, ``D(c)`` the PG skew from the paper's
delay-code table, and ``t0`` the fixed difference between the CP and P
insertion paths minus the flip-flop setup time.  The published anchors
give us:

* **cross-code consistency** — bit 1 and bit 7 have thresholds under
  *two* codes (011: 0.827/1.053 V; 010: 0.951/1.237 V).  Eq. (1) for
  the same bit under two codes forces
  ``g(0.827)/g(0.951) == g(1.053)/g(1.237)``, which pins ``vth`` for a
  chosen ``alpha``;
* the same ratio then yields ``t0`` from the two code delays;
* the **Fig. 4 anchor** (C = 2 pF fails below 0.9360 V) sets the sensor
  inverter's drive strength;
* the remaining published code boundaries of code 011 set the per-bit
  trim capacitances.

Everything downstream (characterization sweeps, the event-driven system
simulation, the corner retrimming) *re-derives* the paper's figures
from this fitted design rather than replaying the anchors.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace

import numpy as np
from scipy.optimize import brentq

from repro.cells.delay_elements import DelayElement
from repro.cells.combinational import Inverter
from repro.cells.sequential import DFlipFlop
from repro.core import paperdata
from repro.devices.mosfet import AlphaPowerModel, voltage_factor
from repro.devices.technology import TECH_90NM, Technology
from repro.errors import CalibrationError, ConfigurationError
from repro.units import PS


@dataclass(frozen=True)
class SensorDesign:
    """The complete, calibrated design of the paper's sensor system.

    Attributes:
        tech: Fitted technology (vth/alpha from calibration).
        sensor_strength: Drive strength of the sensor inverters.
        ff_strength: Drive strength of the sense flip-flops.
        t0: CP-vs-P insertion offset minus FF setup, seconds; the
            effective sensing window under code ``c`` is
            ``D(c) + t0``.
        delay_codes: The eight PG skews ``D(c)``, seconds.
        load_caps: Per-bit explicit DS trim capacitances, ascending, F.
        bit_thresholds_code011: The fitted per-bit failure thresholds
            under code 011, volts (ascending; diagnostic/reference).
    """

    tech: Technology
    sensor_strength: float
    ff_strength: float
    t0: float
    delay_codes: tuple[float, ...]
    load_caps: tuple[float, ...]
    bit_thresholds_code011: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.delay_codes) != 8:
            raise ConfigurationError("expected 8 delay codes")
        if any(d + self.t0 <= 0 for d in self.delay_codes):
            raise ConfigurationError(
                "every effective window D(c) + t0 must be positive"
            )
        caps = np.asarray(self.load_caps)
        if caps.size < 1 or np.any(caps <= 0) or np.any(np.diff(caps) <= 0):
            raise ConfigurationError(
                "load_caps must be positive and strictly ascending"
            )

    # -- component factories -------------------------------------------

    @property
    def n_bits(self) -> int:
        return len(self.load_caps)

    def sensor_inverter(self, tech: Technology | None = None,
                        *, name: str | None = None) -> Inverter:
        """The sensor INV (powered by the rail under measurement)."""
        return Inverter(tech or self.tech, strength=self.sensor_strength,
                        name=name)

    def sense_flipflop(self, tech: Technology | None = None,
                       *, name: str | None = None) -> DFlipFlop:
        """The sense FF (powered by the nominal rail)."""
        return DFlipFlop(tech or self.tech, strength=self.ff_strength,
                         name=name)

    @property
    def ff_setup_time(self) -> float:
        """Setup time of the sense FF at nominal conditions, seconds."""
        return self.sense_flipflop().setup_time

    @property
    def cp_route_delay(self) -> float:
        """Extra CP-path insertion delay realizing ``t0``.

        The netlist inserts this as a delay element in the CP path so
        that (CP route) - (P route) - (FF setup) == t0 at nominal.
        """
        return self.t0 + self.ff_setup_time

    def cp_route_element(self, tech: Technology | None = None,
                         *, trim_load: float = 0.0,
                         name: str | None = None) -> DelayElement:
        """Physical CP-route delay element (trim fixed at design time).

        Args:
            tech: Corner technology; the design-time trim capacitance is
                kept and the delay recomputed (real silicon behaviour).
            trim_load: In-situ fanout load the element is trimmed for
                (e.g. the FF clock pins it drives).
        """
        design_elem = DelayElement(self.tech, self.cp_route_delay,
                                   strength=self.ff_strength,
                                   trim_load=trim_load)
        if tech is None or tech is self.tech:
            design_elem.name = name or design_elem.name
            return design_elem
        return DelayElement.from_internal_cap(
            tech, design_elem.internal_cap, strength=self.ff_strength,
            name=name,
        )

    # -- analytic timing ------------------------------------------------

    def timing_scale(self, tech: Technology | None = None) -> float:
        """Delay scale of a corner technology vs. the design technology.

        All nominal-rail components (PG delay elements, CP route, FF
        setup) are built from the same device model with fixed
        capacitances, so a corner multiplies every one of them by the
        same factor: ``(k'/k) * (g'(Vnom) / g(Vnom))``.
        """
        if tech is None or tech is self.tech:
            return 1.0
        g_design = voltage_factor(self.tech.vdd_nominal, self.tech.vth,
                                  self.tech.alpha)
        g_corner = voltage_factor(tech.vdd_nominal, tech.vth, tech.alpha)
        return (tech.drive_constant / self.tech.drive_constant) \
            * (g_corner / g_design)

    def effective_window(self, code: int,
                         tech: Technology | None = None) -> float:
        """The sensing window ``sigma * (D(code) + t0)``, seconds.

        A sensor bit passes iff its inverter delay fits inside this
        window.

        Raises:
            ConfigurationError: for a code outside 0..7.
        """
        if not 0 <= code < len(self.delay_codes):
            raise ConfigurationError(
                f"delay code {code} outside 0..{len(self.delay_codes) - 1}"
            )
        return self.timing_scale(tech) * (self.delay_codes[code] + self.t0)

    def ds_external_load(self, bit: int,
                         tech: Technology | None = None) -> float:
        """External load on the DS node of one bit: trim cap + FF D pin.

        Bits are numbered 1..n_bits, matching the paper's convention
        (bit 1 = smallest capacitance = lowest threshold).
        """
        if not 1 <= bit <= self.n_bits:
            raise ConfigurationError(
                f"bit {bit} outside 1..{self.n_bits}"
            )
        ff = self.sense_flipflop(tech)
        return self.load_caps[bit - 1] + ff.pin("D").cap

    def bit_threshold(self, bit: int, code: int,
                      tech: Technology | None = None, *,
                      window_tech: Technology | None = None) -> float:
        """Analytic failure threshold V* of one bit under one code.

        The supply below which the bit's FF misses its sample: solves
        ``d_inv(V*, C_bit) == effective_window(code)``.

        Args:
            bit: Bit index 1..n_bits.
            code: Delay code 0..7.
            tech: Technology of the *sensor inverter* (corner).
            window_tech: Technology of the window-defining blocks (PG,
                CP route, FF) — defaults to ``tech``.  Passing the
                design technology here while ``tech`` is a corner models
                an externally referenced timing window (PG not tracking
                the corner), which maximizes the corner shift the
                trimming policy must compensate.
        """
        inv = self.sensor_inverter(tech)
        window = self.effective_window(
            code, tech if window_tech is None else window_tech
        )
        load = self.ds_external_load(bit, tech)
        return inv.model.supply_for_delay(window, load, v_hi=3.0)

    def linearized_load_caps(self) -> tuple[float, ...]:
        """Best linear (arithmetic-progression) fit to the trim caps.

        The paper states the array capacitances "increase linearly"; the
        anchor-fitted caps are close to but not exactly linear.  This
        returns the least-squares linear spacing for the ablation that
        quantifies the difference.
        """
        idx = np.arange(self.n_bits, dtype=float)
        caps = np.asarray(self.load_caps)
        slope, intercept = np.polyfit(idx, caps, 1)
        return tuple(float(intercept + slope * i) for i in idx)

    def with_load_caps(self, load_caps: tuple[float, ...]
                       ) -> "SensorDesign":
        """A copy with different trim capacitances (ablations)."""
        return replace(self, load_caps=tuple(load_caps))


def _solve_vth(alpha: float) -> float:
    """Pin vth from the cross-code consistency of the published ranges."""
    lo1, lo2 = paperdata.FIG5_CODE011_RANGE[0], paperdata.FIG5_CODE010_RANGE[0]
    hi1, hi2 = paperdata.FIG5_CODE011_RANGE[1], paperdata.FIG5_CODE010_RANGE[1]

    def mismatch(vth: float) -> float:
        g = functools.partial(voltage_factor, vth=vth, alpha=alpha)
        return g(lo1) / g(lo2) - g(hi1) / g(hi2)

    v_min, v_max = 0.02, min(lo1, hi1) - 0.05
    f_min, f_max = mismatch(v_min), mismatch(v_max)
    if f_min * f_max > 0:
        raise CalibrationError(
            f"cross-code consistency has no vth solution in "
            f"[{v_min}, {v_max}] for alpha={alpha}; "
            f"f({v_min})={f_min:.3e}, f({v_max})={f_max:.3e}"
        )
    return float(brentq(mismatch, v_min, v_max, xtol=1e-9))


def _solve_t0(tech: Technology) -> float:
    """Pin t0 from the two published code windows for the same bit."""
    g = functools.partial(voltage_factor, vth=tech.vth, alpha=tech.alpha)
    rho = g(paperdata.FIG5_CODE011_RANGE[0]) \
        / g(paperdata.FIG5_CODE010_RANGE[0])
    d_011 = paperdata.DELAY_CODES_S[3]
    d_010 = paperdata.DELAY_CODES_S[2]
    if abs(rho - 1.0) < 1e-12:
        raise CalibrationError("degenerate code ratio; cannot solve t0")
    t0 = (rho * d_010 - d_011) / (1.0 - rho)
    if d_010 + t0 <= 0 or d_011 + t0 <= 0:
        raise CalibrationError(
            f"fitted t0={t0 / PS:.1f} ps leaves a non-positive window"
        )
    return float(t0)


def _solve_sensor_strength(tech: Technology, t0: float,
                           ff_strength: float) -> float:
    """Pin the sensor INV strength from the Fig. 4 anchor point."""
    window = paperdata.DELAY_CODES_S[3] + t0  # Fig. 4 uses code 011
    ff = DFlipFlop(tech, strength=ff_strength)
    external = paperdata.FIG4_ANCHOR_CAP + ff.pin("D").cap

    def mismatch(strength: float) -> float:
        inv = Inverter(tech, strength=strength)
        return inv.model.delay(paperdata.FIG4_ANCHOR_THRESHOLD,
                               external) - window

    s_min, s_max = 1.0, 2000.0
    f_min, f_max = mismatch(s_min), mismatch(s_max)
    if f_min * f_max > 0:
        raise CalibrationError(
            f"no sensor strength in [{s_min}, {s_max}] hits the Fig. 4 "
            f"anchor (f_min={f_min:.3e}, f_max={f_max:.3e})"
        )
    return float(brentq(mismatch, s_min, s_max, xtol=1e-6))


def _solve_load_caps(tech: Technology, t0: float, sensor_strength: float,
                     ff_strength: float) -> tuple[tuple[float, ...],
                                                  tuple[float, ...]]:
    """Per-bit trim caps from the published code-011 boundaries.

    Bit 4's boundary is unpublished; its cap is the midpoint of bits 3
    and 5 (linear spacing locally, per the paper's linear-cap claim).

    Returns:
        (load_caps, realized_thresholds) — both ascending, length 7.
    """
    window = paperdata.DELAY_CODES_S[3] + t0
    inv = Inverter(tech, strength=sensor_strength)
    ff = DFlipFlop(tech, strength=ff_strength)
    d_pin_cap = ff.pin("D").cap
    model: AlphaPowerModel = inv.model
    g = functools.partial(voltage_factor, vth=tech.vth, alpha=tech.alpha)
    k_eff = tech.drive_constant / sensor_strength

    caps: dict[int, float] = {}
    for bit, v_star in paperdata.FIG5_CODE011_BOUNDARIES.items():
        c_total = window / (k_eff * g(v_star))
        cap = c_total - model.intrinsic_cap - d_pin_cap
        if cap <= 0:
            raise CalibrationError(
                f"bit {bit}: fitted trim cap is non-positive ({cap:.3e} F)"
            )
        caps[bit] = float(cap)
    caps[4] = 0.5 * (caps[3] + caps[5])
    ordered = tuple(caps[b] for b in range(1, paperdata.N_BITS + 1))
    if np.any(np.diff(ordered) <= 0):
        raise CalibrationError("fitted trim caps are not ascending")
    thresholds = tuple(
        model.supply_for_delay(window, c + d_pin_cap, v_hi=3.0)
        for c in ordered
    )
    return ordered, thresholds


def fit_paper_design(*, alpha: float = 1.3,
                     base_tech: Technology = TECH_90NM,
                     ff_strength: float = 1.0) -> SensorDesign:
    """Run the full anchor calibration and return the fitted design.

    Args:
        alpha: Velocity-saturation index to fit at.  The cross-code
            anchors determine only one of (vth, alpha); 1.3 is the
            conventional 90 nm value.
        base_tech: Technology whose drive constant and capacitances are
            retained; vth is replaced by the fitted value.
        ff_strength: Drive strength of the sense flip-flops.

    Raises:
        CalibrationError: when any anchor cannot be satisfied.
    """
    vth = _solve_vth(alpha)
    tech = Technology(
        name=f"{base_tech.name}-calibrated",
        vdd_nominal=base_tech.vdd_nominal,
        vth=vth,
        alpha=alpha,
        drive_constant=base_tech.drive_constant,
        gate_cap_unit=base_tech.gate_cap_unit,
        intrinsic_cap_unit=base_tech.intrinsic_cap_unit,
        slew_fraction=base_tech.slew_fraction,
    )
    t0 = _solve_t0(tech)
    sensor_strength = _solve_sensor_strength(tech, t0, ff_strength)
    load_caps, thresholds = _solve_load_caps(
        tech, t0, sensor_strength, ff_strength
    )
    return SensorDesign(
        tech=tech,
        sensor_strength=sensor_strength,
        ff_strength=ff_strength,
        t0=t0,
        delay_codes=paperdata.DELAY_CODES_S,
        load_caps=load_caps,
        bit_thresholds_code011=thresholds,
    )


@functools.lru_cache(maxsize=4)
def paper_design(alpha: float = 1.3) -> SensorDesign:
    """The cached default fitted design (see :func:`fit_paper_design`)."""
    return fit_paper_design(alpha=alpha)
