"""The pulse generator PG (paper Fig. 7).

The PG receives P and CP from the control block and re-emits them with
a programmable skew: CP rides a delay-element line whose eight taps are
selected by a 3-level MUX2 tree, while P passes through an *identical*
mux tree (all inputs tied together) so the mux insertion delay cancels
— "as the MUX inserts a further delay, the same MUX is also used for
the P signal, so that P and CP are skewed of the same value".  The
paper's delay-code table (26…107 ps) is realized by trimming the
per-stage delay elements at design time; under a process corner the
fixed trim capacitances stay and the realized skews scale with the
devices, which is exactly what the corner-retrimming experiments probe.

Two views are provided:

* :class:`PulseGenerator` — behavioural: closed-form skews per code,
  technology-aware (used by the system harness and trimming policy);
* :func:`build_pg_netlist` / :class:`PulseGeneratorHarness` —
  structural: the actual delay line + mux trees as a netlist, run
  through the event simulator (used by the delay-code-table bench to
  show the structure realizes the table).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.combinational import Buffer, Mux2
from repro.cells.delay_elements import DelayElement
from repro.core.calibration import SensorDesign
from repro.devices.technology import Technology
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.netlist import Netlist
from repro.units import NS


class PulseGenerator:
    """Behavioural PG bound to a calibrated design.

    Args:
        design: The calibrated sensor design (owns the delay-code
            table the PG realizes).
        tech: Corner technology; ``None`` uses the design technology.
    """

    N_CODES = 8

    def __init__(self, design: SensorDesign,
                 tech: Technology | None = None) -> None:
        self.design = design
        self.tech = tech if tech is not None else design.tech
        self._stages = self._build_stage_elements()

    def _build_stage_elements(self) -> tuple[DelayElement, ...]:
        """One element per tap, trimmed to the absolute code delay.

        The taps are a *parallel* delay-element array (one sized element
        per code, each driving one mux input), which keeps every trim
        target at or above the 26 ps minimum of the table — chaining
        per-code increments would demand sub-intrinsic 7 ps stages.
        """
        prev = 0.0
        for d in self.design.delay_codes:
            if d <= prev:
                raise ConfigurationError(
                    "delay-code table must be strictly increasing"
                )
            prev = d
        design_elems = [
            DelayElement(self.design.tech, d, name=f"PGtap{i}")
            for i, d in enumerate(self.design.delay_codes)
        ]
        if self.tech is self.design.tech:
            return tuple(design_elems)
        return tuple(
            DelayElement.from_internal_cap(
                self.tech, e.internal_cap, name=e.name
            )
            for e in design_elems
        )

    def skew(self, code: int, *, supply_v: float | None = None) -> float:
        """CP-vs-P skew for a code, seconds.

        Args:
            code: Delay code 0..7.
            supply_v: Supply of the PG itself (nominal rail); PG supply
                noise perturbs the skew — a second-order effect the
                characterization benches can quantify.
        """
        if not 0 <= code < self.N_CODES:
            raise ConfigurationError(f"code {code} outside 0..7")
        v = self.tech.vdd_nominal if supply_v is None else supply_v
        return self._stages[code].delay_at(v)

    def delay_table(self, *, supply_v: float | None = None
                    ) -> tuple[float, ...]:
        """The realized 8-entry delay-code table, seconds."""
        return tuple(self.skew(c, supply_v=supply_v)
                     for c in range(self.N_CODES))

    def code_for_skew(self, target: float) -> int:
        """The code whose skew is nearest a target (trimming helper)."""
        table = self.delay_table()
        return min(range(self.N_CODES),
                   key=lambda c: abs(table[c] - target))


@dataclass(frozen=True)
class PGNetlistPorts:
    """Net names of a built PG netlist fragment."""

    p_in: str
    cp_in: str
    p_out: str
    cp_out: str
    selects: tuple[str, str, str]


def build_pg_netlist(design: SensorDesign, *,
                     tech: Technology | None = None,
                     netlist: Netlist | None = None,
                     prefix: str = "pg",
                     p_out_load: float = 0.0,
                     cp_out_load: float = 0.0,
                     vdd: str = "VDD", gnd: str = "GND"
                     ) -> tuple[Netlist, PGNetlistPorts]:
    """Build the structural PG: delay line + matched MUX2 trees.

    The two trees are matched stage by stage; the residual output-load
    difference (P drives the heavy sensor-inverter array, CP a single
    route element) is balanced with an explicit capacitor on the
    lighter net — the paper's "accurate routing as a differential pair".

    Args:
        design: Calibrated design (delay table + technology).
        tech: Corner technology.
        netlist: Existing netlist to build into (supplies must already
            exist); a fresh one is created otherwise.
        prefix: Name prefix for nets/instances.
        p_out_load / cp_out_load: Known downstream loads, used for the
            balancing capacitor.
        vdd / gnd: Supply rail names for every PG cell.

    Returns:
        (netlist, ports).
    """
    t = tech if tech is not None else design.tech
    nl = netlist
    if nl is None:
        nl = Netlist(f"{prefix}_netlist")
        nl.add_supply(vdd, design.tech.vdd_nominal)
        nl.add_supply(gnd, 0.0, is_ground=True)

    mux_strength = 1.0
    sample_mux = Mux2(t, strength=mux_strength)
    mux_in_cap = sample_mux.pin("A").cap

    p_in = f"{prefix}_P_in"
    cp_in = f"{prefix}_CP_in"
    nl.add_net(p_in)
    nl.add_net(cp_in)
    nl.mark_external_input(p_in)
    nl.mark_external_input(cp_in)
    selects = tuple(f"{prefix}_S{k}" for k in range(3))
    for s in selects:
        nl.add_net(s)
        nl.mark_external_input(s)

    # CP tap array: one parallel element per code, trimmed for its
    # in-situ fanout (the mux input it drives).
    taps = []
    for i, d in enumerate(design.delay_codes):
        tap = f"{prefix}_tap{i}"
        nl.add_net(tap)
        elem_design = DelayElement(design.tech, d, strength=2.0,
                                   trim_load=mux_in_cap,
                                   name=f"{prefix}_tapelem{i}")
        elem = (elem_design if t is design.tech else
                DelayElement.from_internal_cap(
                    t, elem_design.internal_cap, strength=2.0,
                    name=elem_design.name,
                ))
        nl.add_instance(f"{prefix}_tapelem{i}", elem,
                        {"A": cp_in, "Y": tap}, vdd=vdd, gnd=gnd)
        taps.append(tap)

    def mux_tree(tree: str, inputs: list[str]) -> str:
        """3-level MUX2 reduction; returns the root output net."""
        level = 0
        current = inputs
        while len(current) > 1:
            sel = selects[level]
            nxt = []
            for j in range(0, len(current), 2):
                out = f"{prefix}_{tree}_m{level}_{j // 2}"
                nl.add_net(out)
                mux = Mux2(t, strength=mux_strength,
                           name=f"{prefix}_{tree}_mux{level}_{j // 2}")
                nl.add_instance(
                    mux.name, mux,
                    {"A": current[j], "B": current[j + 1], "S": sel,
                     "Y": out},
                    vdd=vdd, gnd=gnd,
                )
                nxt.append(out)
            current = nxt
            level += 1
        return current[0]

    cp_root = mux_tree("cp", taps)
    p_root = mux_tree("p", [p_in] * 8)

    # Output drivers, matched; balance the lighter output net.
    drv_strength = 16.0
    p_out = f"{prefix}_P_out"
    cp_out = f"{prefix}_CP_out"
    p_drv = Buffer(t, strength=drv_strength, name=f"{prefix}_pdrv")
    cp_drv = Buffer(t, strength=drv_strength, name=f"{prefix}_cpdrv")
    heavier = max(p_out_load, cp_out_load)
    nl.add_net(p_out, extra_cap=heavier - p_out_load)
    nl.add_net(cp_out, extra_cap=heavier - cp_out_load)
    nl.add_instance(p_drv.name, p_drv, {"A": p_root, "Y": p_out},
                    vdd=vdd, gnd=gnd)
    nl.add_instance(cp_drv.name, cp_drv, {"A": cp_root, "Y": cp_out},
                    vdd=vdd, gnd=gnd)

    return nl, PGNetlistPorts(
        p_in=p_in, cp_in=cp_in, p_out=p_out, cp_out=cp_out,
        selects=selects,
    )


class PulseGeneratorHarness:
    """Event-driven measurement of the structural PG's realized skews."""

    def __init__(self, design: SensorDesign,
                 tech: Technology | None = None) -> None:
        self.design = design
        self.tech = tech if tech is not None else design.tech
        self.netlist, self.ports = build_pg_netlist(design, tech=tech)

    def measure_skew(self, code: int) -> float:
        """Launch simultaneous P/CP edges; return output skew, seconds.

        Raises:
            SimulationError: if either output never transitions.
        """
        if not 0 <= code < PulseGenerator.N_CODES:
            raise ConfigurationError(f"code {code} outside 0..7")
        engine = SimulationEngine(self.netlist)
        ports = self.ports
        bits = [code & 1, (code >> 1) & 1, (code >> 2) & 1]
        for s, b in zip(ports.selects, bits):
            engine.set_initial(s, b)
        engine.set_initial(ports.p_in, 0)
        engine.set_initial(ports.cp_in, 0)
        engine.settle()
        t_launch = 2.0 * NS
        engine.schedule_stimulus(ports.p_in, 1, t_launch)
        engine.schedule_stimulus(ports.cp_in, 1, t_launch)
        engine.run(t_launch + 5.0 * NS)
        p_edges = engine.trace.edges(ports.p_out, rising=True)
        cp_edges = engine.trace.edges(ports.cp_out, rising=True)
        p_edges = [t for t in p_edges if t >= t_launch]
        cp_edges = [t for t in cp_edges if t >= t_launch]
        if not p_edges or not cp_edges:
            raise SimulationError(
                f"PG outputs missing edges (code {code}): "
                f"P={p_edges}, CP={cp_edges}"
            )
        return cp_edges[0] - p_edges[0]

    def measure_table(self) -> tuple[float, ...]:
        """Realized skews for all eight codes, seconds."""
        return tuple(self.measure_skew(c)
                     for c in range(PulseGenerator.N_CODES))
