"""The ENC block: thermometer-to-binary encoder.

The paper's ENC compresses each FF array's thermometer word into the
noise word ``OUTE`` handed to the control block.  Implemented as a
ones-counter — the standard flash-ADC encoder, which doubles as bubble
suppression since it depends only on the *number* of passing stages.

Behavioural (:class:`ThermometerEncoder`) and structural
(:func:`build_encoder_netlist` — a full-adder tree) views are provided;
the structural one feeds the STA critical-path reproduction and is
functionally verified against the behavioural one in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.thermometer import ThermometerWord
from repro.cells.combinational import And2, Or2, Xor2
from repro.core.calibration import SensorDesign
from repro.devices.technology import Technology
from repro.errors import ConfigurationError
from repro.sim.engine import SimulationEngine
from repro.sim.netlist import Netlist


@dataclass(frozen=True)
class EncodedMeasure:
    """ENC output for one measurement.

    Attributes:
        oute: The binary noise word (number of passing stages).
        valid: True when the raw word was already bubble-free.
        raw_word: The input word.
    """

    oute: int
    valid: bool
    raw_word: ThermometerWord

    def oute_bits(self, width: int) -> tuple[int, ...]:
        """LSB-first binary rendering of ``oute``."""
        return tuple((self.oute >> i) & 1 for i in range(width))


class ThermometerEncoder:
    """Behavioural ENC for an N-bit array.

    Args:
        n_bits: Thermometer width (7 in the paper's example).
    """

    def __init__(self, n_bits: int) -> None:
        if n_bits < 1:
            raise ConfigurationError("n_bits must be positive")
        self.n_bits = n_bits

    @property
    def output_width(self) -> int:
        """Binary output width: ``ceil(log2(n_bits + 1))``."""
        return max(1, math.ceil(math.log2(self.n_bits + 1)))

    def encode(self, word: ThermometerWord) -> EncodedMeasure:
        """Count passing stages; flag bubbled inputs.

        Raises:
            ConfigurationError: on width mismatch.
        """
        if word.n_bits != self.n_bits:
            raise ConfigurationError(
                f"word has {word.n_bits} bits, encoder expects "
                f"{self.n_bits}"
            )
        return EncodedMeasure(
            oute=word.ones,
            valid=word.is_valid_thermometer,
            raw_word=word,
        )


@dataclass(frozen=True)
class EncoderPorts:
    """Net names of a built encoder netlist fragment."""

    inputs: tuple[str, ...]
    outputs: tuple[str, ...]


def _full_adder(nl: Netlist, tech: Technology, prefix: str,
                a: str, b: str, c: str, vdd: str, gnd: str,
                wire_cap: float) -> tuple[str, str]:
    """Instantiate a full adder; returns (sum, carry) net names."""
    axb = f"{prefix}_axb"
    s = f"{prefix}_s"
    ab = f"{prefix}_ab"
    cab = f"{prefix}_cab"
    cy = f"{prefix}_cy"
    for net in (axb, s, ab, cab, cy):
        nl.add_net(net, extra_cap=wire_cap)
    nl.add_instance(f"{prefix}_x1", Xor2(tech, name=f"{prefix}_x1"),
                    {"A": a, "B": b, "Y": axb}, vdd=vdd, gnd=gnd)
    nl.add_instance(f"{prefix}_x2", Xor2(tech, name=f"{prefix}_x2"),
                    {"A": axb, "B": c, "Y": s}, vdd=vdd, gnd=gnd)
    nl.add_instance(f"{prefix}_a1", And2(tech, name=f"{prefix}_a1"),
                    {"A": a, "B": b, "Y": ab}, vdd=vdd, gnd=gnd)
    nl.add_instance(f"{prefix}_a2", And2(tech, name=f"{prefix}_a2"),
                    {"A": axb, "B": c, "Y": cab}, vdd=vdd, gnd=gnd)
    nl.add_instance(f"{prefix}_o1", Or2(tech, name=f"{prefix}_o1"),
                    {"A": ab, "B": cab, "Y": cy}, vdd=vdd, gnd=gnd)
    return s, cy


def build_encoder_netlist(design: SensorDesign, *,
                          tech: Technology | None = None,
                          netlist: Netlist | None = None,
                          prefix: str = "enc",
                          vdd: str = "VDD", gnd: str = "GND",
                          wire_cap: float = 0.0
                          ) -> tuple[Netlist, EncoderPorts]:
    """Structural 7:3 ones counter (full-adder tree).

    The classic arrangement: FA(in1..3) and FA(in4..6) produce two
    (sum, carry) pairs; FA(s1, s2, in7) merges the sums; FA of the three
    carries forms the upper bits.  Only the 7-bit case is built — the
    paper's array width.

    Args:
        design: Calibrated design (technology source).
        tech: Corner technology override.
        netlist: Existing netlist to extend (supplies must exist).
        prefix: Net/instance name prefix.
        vdd / gnd: Rail names.
        wire_cap: Explicit per-net wiring capacitance, farads (gives
            the netlist post-layout-like loading for STA).

    Raises:
        ConfigurationError: when the design is not 7 bits wide.
    """
    if design.n_bits != 7:
        raise ConfigurationError(
            "the structural encoder implements the paper's 7-bit array"
        )
    t = tech if tech is not None else design.tech
    nl = netlist
    if nl is None:
        nl = Netlist(f"{prefix}_netlist")
        nl.add_supply(vdd, design.tech.vdd_nominal)
        nl.add_supply(gnd, 0.0, is_ground=True)

    inputs = tuple(f"{prefix}_in{i}" for i in range(1, 8))
    for net in inputs:
        nl.add_net(net, extra_cap=wire_cap)
        nl.mark_external_input(net)

    s1, c1 = _full_adder(nl, t, f"{prefix}_fa1", inputs[0], inputs[1],
                         inputs[2], vdd, gnd, wire_cap)
    s2, c2 = _full_adder(nl, t, f"{prefix}_fa2", inputs[3], inputs[4],
                         inputs[5], vdd, gnd, wire_cap)
    s3, c3 = _full_adder(nl, t, f"{prefix}_fa3", s1, s2, inputs[6],
                         vdd, gnd, wire_cap)
    s4, c4 = _full_adder(nl, t, f"{prefix}_fa4", c1, c2, c3,
                         vdd, gnd, wire_cap)
    outputs = (s3, s4, c4)  # count = s3 + 2*s4 + 4*c4
    return nl, EncoderPorts(inputs=inputs, outputs=outputs)


def encode_via_netlist(design: SensorDesign,
                       word: ThermometerWord, *,
                       tech: Technology | None = None) -> int:
    """Run the structural encoder on a word (zero-delay settle).

    Used by the equivalence tests: must match
    :meth:`ThermometerEncoder.encode` for every input.
    """
    nl, ports = build_encoder_netlist(design, tech=tech)
    engine = SimulationEngine(nl)
    for net, bit in zip(ports.inputs, word.bits):
        engine.set_initial(net, bit)
    engine.settle()
    value = 0
    for k, net in enumerate(ports.outputs):
        bit = engine.netlist.nets[net].value
        if bit is None:
            raise ConfigurationError(
                f"encoder output {net} did not settle"
            )
        value |= bit << k
    return value
