"""The multi-bit thermometer array (paper Fig. 1 right).

N identical inverter+FF stages share the same P and CP signals; only
the DS trim capacitance differs, giving each stage its own failure
threshold.  The output is a thermometer code proportional to the rail
level — "in principle similar to a flash A/D converter" (§III-A).

Like the single bit, the array has an analytic path
(:class:`SensorArray`) for sweeps and an event-driven path
(:class:`SensorArrayHarness`) for waveform-accurate runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.thermometer import (
    ThermometerWord,
    VoltageRange,
    decode_word,
)
from repro.core.calibration import SensorDesign
from repro.core.sensor import BitMeasure, SenseRail, SensorBit
from repro.devices.technology import Technology
from repro.devices.variation import VariationSample
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.netlist import Netlist
from repro.sim.waveform import Waveform
from repro.units import NS


@dataclass(frozen=True)
class ArrayMeasure:
    """One array measurement: the word plus per-bit detail."""

    time: float
    word: ThermometerWord
    bit_measures: tuple[BitMeasure, ...]

    @property
    def any_metastable(self) -> bool:
        return any("metastable" in m.outcome or m.outcome == "unresolved"
                   for m in self.bit_measures)


class SensorArray:
    """Analytic N-bit thermometer.

    Args:
        design: Calibrated sensor design.
        rail: VDD (HIGH-SENSE array) or GND (LOW-SENSE array).
        tech: Corner technology override.
    """

    def __init__(self, design: SensorDesign,
                 rail: SenseRail = SenseRail.VDD,
                 tech: Technology | None = None) -> None:
        self.design = design
        self.rail = rail
        self.tech = tech
        self.bits = tuple(
            SensorBit(design, b, rail)
            for b in range(1, design.n_bits + 1)
        )

    @property
    def n_bits(self) -> int:
        return self.design.n_bits

    def supply_thresholds(self, code: int) -> tuple[float, ...]:
        """Per-bit thresholds in *effective supply* terms, ascending."""
        from repro.kernels import threshold_grid

        return tuple(
            float(v)
            for v in threshold_grid(self.design, (code,), self.tech)[:, 0]
        )

    def rail_thresholds(self, code: int) -> tuple[float, ...]:
        """Per-bit thresholds in measured-rail terms.

        VDD rail: ascending VDD-n failure levels (Fig. 5's x-axis).
        GND rail: per-bit GND-n rise levels (descending with bit index:
        the largest-cap stage tolerates the least bounce).
        """
        return tuple(b.threshold(code, self.tech) for b in self.bits)

    def measurable_range(self, code: int) -> tuple[float, float]:
        """(min, max) measurable effective supply under a code —
        the "dynamic" endpoints the paper quotes for Fig. 5."""
        t = self.supply_thresholds(code)
        return t[0], t[-1]

    def measure(self, code: int, *, vdd_n: float | None = None,
                gnd_n: float | None = None) -> ArrayMeasure:
        """Analytic measurement at a static rail level."""
        measures = tuple(
            b.measure(code, vdd_n=vdd_n, gnd_n=gnd_n, tech=self.tech)
            for b in self.bits
        )
        word = ThermometerWord.from_samples(
            tuple(1 if m.passed else 0 for m in measures)
        )
        return ArrayMeasure(time=0.0, word=word, bit_measures=measures)

    def decode(self, word: ThermometerWord, code: int, *,
               strict: bool = True) -> VoltageRange:
        """Decode a word into a measured-rail voltage range.

        For the VDD rail the range is in VDD-n volts (Fig. 9's decoded
        ranges); for the GND rail it is the GND-n rise interval.
        """
        supply_range = decode_word(word, self.supply_thresholds(code),
                                   strict=strict)
        if self.rail is SenseRail.VDD:
            return supply_range
        nominal = self.design.tech.vdd_nominal
        return VoltageRange(lo=nominal - supply_range.hi,
                            hi=nominal - supply_range.lo)

    def word_for(self, code: int, *, vdd_n: float | None = None,
                 gnd_n: float | None = None) -> str:
        """Convenience: the MSB-first word string at a rail level."""
        return self.measure(code, vdd_n=vdd_n, gnd_n=gnd_n).word.to_string()

    def masked(self, masked_bits):
        """A degraded-mode view of this array with stages excluded.

        Args:
            masked_bits: 1-based stages to drop (e.g. the suspects a
                production screen implicated).

        Returns:
            A :class:`~repro.core.degraded.DegradedArray` sharing this
            array's design, rail and corner.
        """
        from repro.core.degraded import DegradedArray

        return DegradedArray(self.design, masked_bits, self.rail,
                             self.tech)


class SensorArrayHarness:
    """Event-driven N-bit array (shared P/CP, per-bit DS and OUT).

    Args:
        design: Calibrated sensor design.
        rail: VDD or GND array.
        tech: Corner technology override for every cell.
        variation: Optional per-die variation sample; instance ``i``
            (0-based) of the sample varies sensor inverter ``i+1`` —
            the source of real thermometer bubbles.
    """

    PREPARE_LEAD = 2.0 * NS
    CP_PULSE_WIDTH = 0.4 * NS

    def __init__(self, design: SensorDesign,
                 rail: SenseRail = SenseRail.VDD,
                 tech: Technology | None = None,
                 variation: VariationSample | None = None) -> None:
        self.design = design
        self.rail = rail
        self.tech = tech if tech is not None else design.tech
        self.variation = variation
        if variation is not None and variation.n_instances < design.n_bits:
            raise ConfigurationError(
                f"variation sample has {variation.n_instances} instances; "
                f"need at least {design.n_bits}"
            )
        self.array = SensorArray(design, rail, tech)
        self._build()

    def _inv_tech(self, bit: int) -> Technology:
        if self.variation is None:
            return self.tech
        return self.variation.technology_for(self.tech, bit - 1)

    def _build(self) -> None:
        design = self.design
        nl = Netlist(f"sensor_array_{self.rail.value}")
        nominal = design.tech.vdd_nominal
        nl.add_supply("VDD", nominal)
        nl.add_supply("GND", 0.0, is_ground=True)
        nl.add_supply("VDDN", nominal)
        nl.add_supply("GNDN", 0.0, is_ground=True)

        nl.add_net("P")
        nl.add_net("CP")
        nl.add_net("CPD")
        nl.mark_external_input("P")
        nl.mark_external_input("CP")

        sample_ff = design.sense_flipflop(self.tech)
        cp_fanout = design.n_bits * sample_ff.pin("CP").cap
        route = design.cp_route_element(self.tech, trim_load=cp_fanout,
                                        name="CProute")
        nl.add_instance("route", route, {"A": "CP", "Y": "CPD"},
                        vdd="VDD", gnd="GND")
        inv_vdd, inv_gnd = (("VDDN", "GND") if self.rail is SenseRail.VDD
                            else ("VDD", "GNDN"))
        for b in range(1, design.n_bits + 1):
            nl.add_net(f"DS{b}", extra_cap=design.load_caps[b - 1])
            nl.add_net(f"OUT{b}")
            inv = design.sensor_inverter(self._inv_tech(b), name=f"INV{b}")
            ff = design.sense_flipflop(self.tech, name=f"FF{b}")
            nl.add_instance(f"inv{b}", inv, {"A": "P", "Y": f"DS{b}"},
                            vdd=inv_vdd, gnd=inv_gnd)
            nl.add_instance(f"ff{b}", ff,
                            {"D": f"DS{b}", "CP": "CPD", "Q": f"OUT{b}"},
                            vdd="VDD", gnd="GND")
        self.netlist = nl

    def run_measures(self, code: int, measure_times: list[float], *,
                     vdd_n: Waveform | float | None = None,
                     gnd_n: Waveform | float | None = None
                     ) -> list[ArrayMeasure]:
        """PREPARE/SENSE the whole array at each instant.

        Returns one :class:`ArrayMeasure` per instant, word bits ordered
        bit 1 first (use ``word.to_string()`` for the paper's MSB-first
        rendering).
        """
        if not measure_times:
            raise ConfigurationError("measure_times must be non-empty")
        times = list(measure_times)
        if any(t2 - t1 < self.PREPARE_LEAD + 2 * self.CP_PULSE_WIDTH
               for t1, t2 in zip(times, times[1:])):
            raise ConfigurationError(
                "measure_times too dense for PREPARE/SENSE sequencing"
            )
        if times[0] < self.PREPARE_LEAD:
            raise ConfigurationError(
                f"first measure must be at or after t={self.PREPARE_LEAD}"
            )
        if vdd_n is not None:
            self.netlist.set_supply_waveform("VDDN", vdd_n)
        if gnd_n is not None:
            self.netlist.set_supply_waveform("GNDN", gnd_n)
        engine = SimulationEngine(self.netlist)
        rail = self.rail
        engine.set_initial("P", rail.prepare_p)
        engine.set_initial("CP", 0)
        engine.set_initial("CPD", 0)
        for b in range(1, self.design.n_bits + 1):
            engine.set_initial(f"DS{b}", rail.prepare_ds)
            engine.set_initial(f"OUT{b}", 0)

        # Corner-realized PG skew (see SensorBitHarness.run_measures).
        from repro.core.pulsegen import PulseGenerator

        skew = PulseGenerator(self.design, self.tech).skew(code)
        for t_m in times:
            t_prep = t_m - self.PREPARE_LEAD
            if t_prep > 0:
                engine.schedule_stimulus("P", rail.prepare_p, t_prep)
            engine.schedule_stimulus(
                "CP", 1, t_prep + skew + self.PREPARE_LEAD / 2
            )
            engine.schedule_stimulus(
                "CP", 0,
                t_prep + skew + self.PREPARE_LEAD / 2 + self.CP_PULSE_WIDTH,
            )
            engine.schedule_stimulus("P", rail.sense_p, t_m)
            engine.schedule_stimulus("CP", 1, t_m + skew)
            engine.schedule_stimulus("CP", 0,
                                     t_m + skew + self.CP_PULSE_WIDTH)
        engine.run(times[-1] + self.PREPARE_LEAD + 4 * self.CP_PULSE_WIDTH)
        return self._collect(engine, times)

    def _collect(self, engine: SimulationEngine,
                 times: list[float]) -> list[ArrayMeasure]:
        design = self.design
        window_pad = (design.cp_route_delay + max(design.delay_codes)
                      + 0.5 * NS)
        out: list[ArrayMeasure] = []
        for t_m in times:
            measures: list[BitMeasure] = []
            for b in range(1, design.n_bits + 1):
                samples = [
                    s for s in engine.trace.samples_for(f"ff{b}")
                    if t_m <= s.time <= t_m + window_pad
                ]
                if not samples:
                    raise SimulationError(
                        f"bit {b}: no SENSE sample at t={t_m}"
                    )
                rec = samples[0]
                ds_edges = [
                    (t, v) for t, v in engine.trace.transitions(f"DS{b}")
                    if t > t_m and v == (1 - self.rail.prepare_ds)
                ]
                measures.append(BitMeasure(
                    passed=rec.value == self.rail.pass_value,
                    value=rec.value,
                    outcome=rec.outcome,
                    ds_delay=(ds_edges[0][0] - t_m) if ds_edges else None,
                    out_delay=rec.clk_to_q,
                    setup_margin=rec.setup_margin,
                ))
            word = ThermometerWord.from_samples(
                tuple(1 if m.passed else 0 for m in measures)
            )
            out.append(ArrayMeasure(
                time=t_m, word=word, bit_measures=tuple(measures)
            ))
        return out

    def measure_once(self, code: int, *,
                     vdd_n: Waveform | float | None = None,
                     gnd_n: Waveform | float | None = None
                     ) -> ArrayMeasure:
        """One array measurement (convenience wrapper)."""
        return self.run_measures(
            code, [2 * self.PREPARE_LEAD], vdd_n=vdd_n, gnd_n=gnd_n
        )[0]
