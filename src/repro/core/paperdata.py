"""Every number the paper publishes, in one place.

These are the calibration anchors and the expected values the
reproduction benches compare against.  Sources are section/figure
references into Graziano & Vittori, "A Fully Digital Power Supply Noise
Thermometer", IEEE SOCC 2009.
"""

from __future__ import annotations

from repro.units import NS, PF, PS

#: Number of bits in the paper's example thermometer (Fig. 1 right,
#: Fig. 5, Fig. 9).
N_BITS = 7

#: §III-B delay-code table: PG-inserted CP-vs-P skew per 3-bit code.
#: "Delay Code 000 001 010 011 100 101 110 111 /
#:  CP delay [ps] 26  40  50  65  77  92  100 107"
DELAY_CODE_TABLE_PS: dict[str, float] = {
    "000": 26.0,
    "001": 40.0,
    "010": 50.0,
    "011": 65.0,
    "100": 77.0,
    "101": 92.0,
    "110": 100.0,
    "111": 107.0,
}

#: Same table in seconds, indexed by integer code 0..7.
DELAY_CODES_S: tuple[float, ...] = tuple(
    DELAY_CODE_TABLE_PS[format(i, "03b")] * PS for i in range(8)
)

#: Fig. 4 anchor: "if C=2pF (added to the intrinsic DS node
#: capacitance), the VDD-n value below which the FF fails is 0.9360V".
FIG4_ANCHOR_CAP = 2.0 * PF
FIG4_ANCHOR_THRESHOLD = 0.9360

#: Fig. 4: "the characteristic has a linear behavior within the VDD-n
#: range of interest (0.9V - 1.1V in this example)".
FIG4_LINEAR_RANGE = (0.90, 1.10)

#: Fig. 5, delay code 011: "the threshold range goes from 0.827V (all
#: errors) to 1.053V (no errors)"; interior boundaries from the text:
#: "code 0011111 if VDD-n is lower than 1.021V and greater than 0.992V"
#: and (via Fig. 9) "0000011 to the range 0.896V-0.929V".
FIG5_CODE011_RANGE = (0.827, 1.053)
FIG5_CODE011_BOUNDARIES: dict[int, float] = {
    # bit index (1 = smallest load capacitance / lowest threshold)
    1: 0.827,
    2: 0.896,
    3: 0.929,
    # bit 4 is not published; the calibration interpolates it
    5: 0.992,
    6: 1.021,
    7: 1.053,
}

#: Fig. 5, delay code 010: "the dynamic ranges from 0.951V to 1.237V
#: (also overvoltages can be measured)".
FIG5_CODE010_RANGE = (0.951, 1.237)

#: The three delay codes plotted in Fig. 5 (the third is named in the
#: figure but its range is not printed in the text; 001 per the
#: monotone code ordering).
FIG5_CODES = ("001", "010", "011")

#: Fig. 9: full-system sequence of two measures with delay code 011.
FIG9_DELAY_CODE = "011"
FIG9_MEASURES: tuple[dict, ...] = (
    {
        "vdd_n": 1.00,
        "expected_word": "0011111",
        "decoded_range": (0.992, 1.021),
    },
    {
        "vdd_n": 0.90,
        "expected_word": "0000011",
        "decoded_range": (0.896, 0.929),
    },
)

#: Fig. 3: the single-bit two-measure experiment.
FIG3_MEASURES: tuple[dict, ...] = (
    {"vdd_n": 1.00, "expected_out": 1},
    {"vdd_n": 0.95, "expected_out": 0},
)

#: Fig. 2: four linearly spaced VDD-n cases; cases 1-3 sample
#: correctly, case 4 fails (and the OUT delay grows non-linearly as the
#: failure point approaches).  The paper does not print the voltages;
#: the bench spaces four cases linearly across one bit's pass/fail
#: boundary.
FIG2_N_CASES = 4

#: §III-B: "The critical path of the whole control system at 90nm is
#: 1.22ns".
CRITICAL_PATH_S = 1.22 * NS

#: §II / Fig. 3: measurement phases alternate PREPARE (P=1, DS forced
#: low for VDD sensing) and SENSE (P=0, DS rises with VDD-n-dependent
#: delay).  For GND sensing the conditions are opposite.
PREPARE_P_VDD = 1
SENSE_P_VDD = 0
