"""Process-variation-aware delay-code trimming (§III-A).

The paper's compensation story: the multibit characteristic shifts with
process corner, and because the P/CP skew is programmable, "a variation
of P and CP, conveniently trimmed, allows ... to compensate the
different sensor behavior in presence of process variations (of course
having as an input an information on the process corner and having a
careful characterization of the sensor in such condition)".

:class:`TrimmingPolicy` is exactly that: characterize the array per
corner, then pick the delay code whose measurable range best matches a
reference (typical-corner) range.

Note on direction: in this reproduction's symmetric model the PG delay
line, CP route and FF slow down *with* the sensor inverter at a slow
corner, so the drive-strength part of the corner cancels and only the
threshold-voltage shift moves the characteristic.  The paper (whose
blocks need not track perfectly) quotes the slow-corner shift as
"threshold value is lower"; the compensation mechanism — re-choosing
the code — is identical in either direction, and the benches report the
measured shifts explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.calibration import SensorDesign
from repro.devices.corners import ProcessCorner
from repro.devices.technology import Technology
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TrimResult:
    """Outcome of retrimming one corner.

    Attributes:
        corner_name: The corner that was characterized.
        reference_code: The code whose typical-corner range is the
            target.
        reference_range: (v_min, v_max) of the target characteristic.
        chosen_code: The code selected for the corner.
        corner_ranges: Per-code (v_min, v_max) at the corner.
        achieved_range: The chosen code's range at the corner.
        residual: Sum of absolute endpoint mismatches after trimming, V.
        untrimmed_residual: The mismatch had the reference code been
            kept — the error trimming removed.
    """

    corner_name: str
    reference_code: int
    reference_range: tuple[float, float]
    chosen_code: int
    corner_ranges: tuple[tuple[float, float], ...]
    achieved_range: tuple[float, float]
    residual: float
    untrimmed_residual: float

    @property
    def improved(self) -> bool:
        """True when trimming strictly reduced the range mismatch."""
        return self.residual < self.untrimmed_residual or \
            self.chosen_code == self.reference_code


class TrimmingPolicy:
    """Chooses delay codes to restore a reference characteristic.

    Args:
        design: Calibrated design.
        reference_code: Code defining the target range at the design
            (typical) technology; the paper's running example is 011.
        pg_tracks_corner: When True (default), the PG/route/FF window
            is built on-die and slows with the corner, so the drive
            part of the shift cancels and only the Vth part remains —
            a sub-code shift at the standard corners.  When False, the
            window is referenced to an external (design-value) timing
            source, the full corner shift lands on the sensor inverter,
            and retrimming moves whole codes.
    """

    def __init__(self, design: SensorDesign,
                 reference_code: int = 3, *,
                 pg_tracks_corner: bool = True) -> None:
        if not 0 <= reference_code < 8:
            raise ConfigurationError("reference_code outside 0..7")
        self.design = design
        self.reference_code = reference_code
        self.pg_tracks_corner = pg_tracks_corner
        self.reference_range = self._range(design.tech, reference_code)

    def _range(self, tech: Technology, code: int
               ) -> tuple[float, float]:
        window_tech = None if self.pg_tracks_corner else self.design.tech
        return (
            self.design.bit_threshold(1, code, tech,
                                      window_tech=window_tech),
            self.design.bit_threshold(self.design.n_bits, code, tech,
                                      window_tech=window_tech),
        )

    @staticmethod
    def _mismatch(a: tuple[float, float],
                  b: tuple[float, float]) -> float:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def choose_code(self, tech: Technology) -> int:
        """The code whose corner range best matches the reference."""
        ranges = [self._range(tech, c) for c in range(8)]
        return min(
            range(8),
            key=lambda c: self._mismatch(ranges[c], self.reference_range),
        )

    def retrim(self, tech: Technology, *,
               corner_name: str = "") -> TrimResult:
        """Characterize a corner and pick its compensating code."""
        ranges = tuple(self._range(tech, c) for c in range(8))
        chosen = min(
            range(8),
            key=lambda c: self._mismatch(ranges[c], self.reference_range),
        )
        return TrimResult(
            corner_name=corner_name or tech.name,
            reference_code=self.reference_code,
            reference_range=self.reference_range,
            chosen_code=chosen,
            corner_ranges=ranges,
            achieved_range=ranges[chosen],
            residual=self._mismatch(ranges[chosen], self.reference_range),
            untrimmed_residual=self._mismatch(
                ranges[self.reference_code], self.reference_range
            ),
        )


def retrim_for_corner(design: SensorDesign, corner: ProcessCorner, *,
                      reference_code: int = 3,
                      pg_tracks_corner: bool = True) -> TrimResult:
    """Convenience: retrim the paper design for one named corner."""
    policy = TrimmingPolicy(design, reference_code,
                            pg_tracks_corner=pg_tracks_corner)
    tech = corner.apply(design.tech)
    return policy.retrim(tech, corner_name=corner.name)
