"""The measurement counter.

The control system uses a counter to sequence measurement iterations
("measures should be iterated so that noise values can be captured in
different moments of the CUT transient behavior") and to time the
PREPARE/SENSE phases.  Behavioural
(:class:`MeasurementCounter`) and structural
(:func:`build_counter_netlist` — a synchronous binary up-counter) views
are provided; the structural carry chain is one leg of the control
system's critical path reproduced by the STA bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.combinational import And2, Xor2
from repro.cells.sequential import DFlipFlop
from repro.core.calibration import SensorDesign
from repro.devices.technology import Technology
from repro.errors import ConfigurationError
from repro.sim.engine import SimulationEngine
from repro.sim.netlist import Netlist
from repro.units import NS


class MeasurementCounter:
    """Behavioural N-bit wrap-around up-counter.

    Args:
        width: Counter width in bits.
    """

    def __init__(self, width: int = 8) -> None:
        if width < 1:
            raise ConfigurationError("width must be positive")
        self.width = width
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    @property
    def modulus(self) -> int:
        return 1 << self.width

    def reset(self) -> None:
        self._value = 0

    def load(self, value: int) -> None:
        """Load a value (wraps into range).

        Raises:
            ConfigurationError: for negative values.
        """
        if value < 0:
            raise ConfigurationError("value must be non-negative")
        self._value = value % self.modulus

    def tick(self, *, enable: bool = True) -> int:
        """Advance one clock; returns the new value."""
        if enable:
            self._value = (self._value + 1) % self.modulus
        return self._value

    @property
    def terminal(self) -> bool:
        """True at the all-ones terminal count."""
        return self._value == self.modulus - 1

    def bits(self) -> tuple[int, ...]:
        """LSB-first bit rendering of the current value."""
        return tuple((self._value >> i) & 1 for i in range(self.width))


@dataclass(frozen=True)
class CounterPorts:
    """Net names of a built counter netlist fragment."""

    clock: str
    enable: str
    outputs: tuple[str, ...]
    terminal: str


def build_counter_netlist(design: SensorDesign, width: int = 8, *,
                          tech: Technology | None = None,
                          netlist: Netlist | None = None,
                          prefix: str = "cnt",
                          vdd: str = "VDD", gnd: str = "GND",
                          wire_cap: float = 0.0,
                          clock_net: str | None = None,
                          enable_net: str | None = None
                          ) -> tuple[Netlist, CounterPorts]:
    """Structural synchronous up-counter.

    Per bit: ``next_i = q_i XOR carry_i`` with
    ``carry_0 = enable`` and ``carry_{i+1} = carry_i AND q_i`` — the
    AND-chain carry is the long combinational path that (with the FSM
    decode downstream) forms the control system's critical path.

    Args:
        design: Calibrated design (technology source).
        width: Counter width.
        tech: Corner technology override.
        netlist: Existing netlist to extend.
        prefix: Net/instance prefix.
        vdd / gnd: Rail names.
        wire_cap: Explicit per-net wiring capacitance, farads.
        clock_net: Existing net to clock from (shares the host's clock
            domain); a fresh external input is created otherwise.
        enable_net: Existing net to gate counting from; a fresh
            external input otherwise.
    """
    if width < 2:
        raise ConfigurationError("structural counter needs width >= 2")
    t = tech if tech is not None else design.tech
    nl = netlist
    if nl is None:
        nl = Netlist(f"{prefix}_netlist")
        nl.add_supply(vdd, design.tech.vdd_nominal)
        nl.add_supply(gnd, 0.0, is_ground=True)

    if clock_net is None:
        clock = f"{prefix}_clk"
        nl.add_net(clock, extra_cap=wire_cap)
        nl.mark_external_input(clock)
    else:
        clock = clock_net
    if enable_net is None:
        enable = f"{prefix}_en"
        nl.add_net(enable, extra_cap=wire_cap)
        nl.mark_external_input(enable)
    else:
        enable = enable_net

    q_nets = []
    d_nets = []
    for i in range(width):
        q = f"{prefix}_q{i}"
        d = f"{prefix}_d{i}"
        nl.add_net(q, extra_cap=wire_cap)
        nl.add_net(d, extra_cap=wire_cap)
        q_nets.append(q)
        d_nets.append(d)

    carry = enable
    for i in range(width):
        nl.add_instance(
            f"{prefix}_x{i}", Xor2(t, name=f"{prefix}_x{i}"),
            {"A": q_nets[i], "B": carry, "Y": d_nets[i]},
            vdd=vdd, gnd=gnd,
        )
        if i < width - 1:
            nxt = f"{prefix}_c{i + 1}"
            nl.add_net(nxt, extra_cap=wire_cap)
            nl.add_instance(
                f"{prefix}_a{i}", And2(t, name=f"{prefix}_a{i}"),
                {"A": carry, "B": q_nets[i], "Y": nxt},
                vdd=vdd, gnd=gnd,
            )
            carry_next = nxt
        else:
            # Terminal-count net: carry AND the top bit.
            terminal = f"{prefix}_tc"
            nl.add_net(terminal, extra_cap=wire_cap)
            nl.add_instance(
                f"{prefix}_a{i}", And2(t, name=f"{prefix}_a{i}"),
                {"A": carry, "B": q_nets[i], "Y": terminal},
                vdd=vdd, gnd=gnd,
            )
            carry_next = terminal
        carry = carry_next
    for i in range(width):
        ff = DFlipFlop(t, name=f"{prefix}_ff{i}")
        nl.add_instance(
            f"{prefix}_ff{i}", ff,
            {"D": d_nets[i], "CP": clock, "Q": q_nets[i]},
            vdd=vdd, gnd=gnd,
        )
    return nl, CounterPorts(
        clock=clock, enable=enable, outputs=tuple(q_nets),
        terminal=f"{prefix}_tc",
    )


def run_counter_netlist(design: SensorDesign, n_ticks: int, *,
                        width: int = 4,
                        clock_period: float = 2.0 * NS) -> list[int]:
    """Clock the structural counter and read the value after each tick.

    Used by the equivalence tests against
    :class:`MeasurementCounter`.
    """
    if n_ticks < 1:
        raise ConfigurationError("n_ticks must be positive")
    nl, ports = build_counter_netlist(design, width)
    engine = SimulationEngine(nl)
    engine.set_initial(ports.enable, 1)
    engine.set_initial(ports.clock, 0)
    for q in ports.outputs:
        engine.set_initial(q, 0)
    engine.settle()
    values: list[int] = []
    for k in range(n_ticks):
        t_rise = (k + 1) * clock_period
        engine.schedule_stimulus(ports.clock, 1, t_rise)
        engine.schedule_stimulus(ports.clock, 0,
                                 t_rise + clock_period / 2)
        engine.run(t_rise + clock_period * 0.9)
        value = 0
        for i, q in enumerate(ports.outputs):
            bit = engine.netlist.nets[q].value
            value |= (bit or 0) << i
        values.append(value)
    return values
