"""The single-bit noise sensor (paper Fig. 1 left, Figs. 2-3).

One sensor bit is an inverter powered by the rail under measurement,
driving a capacitively loaded delay-sense node ``DS`` sampled by a
flip-flop on the nominal rail.  Two measurement paths are provided:

* **analytic** (:class:`SensorBit`) — closed-form pass/fail from the
  calibrated delay law; used by the characterization sweeps (Figs. 4-5)
  where tens of thousands of evaluations are needed;
* **event-driven** (:class:`SensorBitHarness`) — a real netlist run
  through the simulator, PREPARE/SENSE phases and metastability
  included; used by the waveform figures (Figs. 2, 3, 9).

The two paths agree at the pass/fail boundary by construction, and the
test suite asserts it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cells.base import HIGH, LOW, LogicValue, UNKNOWN
from repro.core import paperdata
from repro.core.calibration import SensorDesign
from repro.devices.technology import Technology
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.netlist import Netlist
from repro.sim.trace import SampleRecord
from repro.sim.waveform import ConstantWaveform, Waveform
from repro.units import NS, PS


class SenseRail(enum.Enum):
    """Which rail a sensor bit measures.

    ``VDD`` is the paper's HIGH-SENSE (noisy supply, nominal ground);
    ``GND`` is LOW-SENSE (nominal supply, noisy ground), with the
    PREPARE/SENSE polarities swapped as §II describes.
    """

    VDD = "vdd"
    GND = "gnd"

    @property
    def prepare_p(self) -> int:
        """P level during PREPARE (forces DS to a known state)."""
        return paperdata.PREPARE_P_VDD if self is SenseRail.VDD else \
            paperdata.SENSE_P_VDD

    @property
    def sense_p(self) -> int:
        """P level during SENSE (launches the measured transition)."""
        return paperdata.SENSE_P_VDD if self is SenseRail.VDD else \
            paperdata.PREPARE_P_VDD

    @property
    def prepare_ds(self) -> int:
        """DS level forced by PREPARE."""
        return 1 - self.prepare_p  # through the inverter

    @property
    def pass_value(self) -> int:
        """FF value meaning 'transition made setup' (no noise error)."""
        return 1 - self.sense_p  # the post-SENSE DS level


@dataclass(frozen=True)
class BitMeasure:
    """Result of one sensor-bit measurement.

    Attributes:
        passed: True when the FF captured the SENSE value — the rail was
            on the good side of this bit's threshold.
        value: Raw captured value (``None`` for an unresolved sample).
        outcome: Sampling outcome name (clean/metastable/miss).
        ds_delay: Observed P→DS propagation delay, seconds (None when
            DS never transitioned).
        out_delay: Observed clock-to-OUT delay, seconds.
        setup_margin: FF setup margin of the sample, seconds.
    """

    passed: bool
    value: LogicValue
    outcome: str
    ds_delay: float | None
    out_delay: float
    setup_margin: float


class SensorBit:
    """Analytic model of one sensor bit.

    Args:
        design: The calibrated sensor design.
        bit: Bit index 1..n_bits (1 = smallest trim cap).
        rail: VDD (HIGH-SENSE) or GND (LOW-SENSE).
    """

    def __init__(self, design: SensorDesign, bit: int,
                 rail: SenseRail = SenseRail.VDD) -> None:
        if not 1 <= bit <= design.n_bits:
            raise ConfigurationError(
                f"bit {bit} outside 1..{design.n_bits}"
            )
        self.design = design
        self.bit = bit
        self.rail = rail

    def effective_supply(self, *, vdd_n: float | None = None,
                         gnd_n: float | None = None) -> float:
        """Supply headroom seen by this bit's inverter.

        HIGH-SENSE inverters sit between noisy VDD-n and nominal ground;
        LOW-SENSE between nominal VDD and noisy GND-n — the separation
        the paper uses to keep the two measures independent.
        """
        if self.rail is SenseRail.VDD:
            v = self.design.tech.vdd_nominal if vdd_n is None else vdd_n
            return v
        g = 0.0 if gnd_n is None else gnd_n
        return self.design.tech.vdd_nominal - g

    def threshold(self, code: int,
                  tech: Technology | None = None) -> float:
        """Failure threshold of this bit under a delay code.

        For the VDD rail: the VDD-n below which the bit fails.  For the
        GND rail: the GND-n rise *above* which the bit fails.
        """
        v_star = self.design.bit_threshold(self.bit, code, tech)
        if self.rail is SenseRail.VDD:
            return v_star
        return self.design.tech.vdd_nominal - v_star

    def ds_delay(self, code: int, *, vdd_n: float | None = None,
                 gnd_n: float | None = None,
                 tech: Technology | None = None) -> float:
        """Inverter P→DS delay at the given rail conditions, seconds."""
        inv = self.design.sensor_inverter(tech)
        load = self.design.ds_external_load(self.bit, tech)
        return inv.model.delay(
            self.effective_supply(vdd_n=vdd_n, gnd_n=gnd_n), load
        )

    def measure(self, code: int, *, vdd_n: float | None = None,
                gnd_n: float | None = None,
                tech: Technology | None = None) -> BitMeasure:
        """Analytic measurement: does the DS transition make setup?

        Metastability is flagged when the margin falls inside the FF
        window; the captured value still flips exactly at margin zero,
        matching the event-driven path.
        """
        window = self.design.effective_window(code, tech)
        d = self.ds_delay(code, vdd_n=vdd_n, gnd_n=gnd_n, tech=tech)
        margin = window - d
        ff = self.design.sense_flipflop(tech)
        passed = margin > 0.0
        if abs(margin) < ff.window:
            outcome = ("metastable_capture" if passed
                       else "metastable_miss")
            out_delay = ff.clk_to_q + ff.tau * _safe_log(
                ff.window, abs(margin)
            )
        else:
            outcome = "clean_capture" if passed else "clean_miss"
            out_delay = ff.clk_to_q
        value = self.rail.pass_value if passed else 1 - self.rail.pass_value
        return BitMeasure(
            passed=passed,
            value=value,
            outcome=outcome,
            ds_delay=d,
            out_delay=out_delay,
            setup_margin=margin,
        )


def _safe_log(window: float, distance: float) -> float:
    """``ln(window/distance)`` guarded against a zero distance."""
    import math

    if distance <= 0.0:
        return 50.0  # effectively 'unbounded' resolution
    return math.log(window / distance)


class SensorBitHarness:
    """Event-driven measurement of one sensor bit.

    Builds the Fig. 1 (left) netlist — sensor inverter on the measured
    rail, trim capacitance on DS, CP-route delay element and sense FF on
    the nominal rail — and runs PREPARE/SENSE sequences through the
    event simulator.

    Args:
        design: Calibrated sensor design.
        bit: Bit index 1..n_bits.
        rail: VDD (HIGH-SENSE) or GND (LOW-SENSE).
        tech: Corner technology override for every cell.
    """

    #: Time allotted to the PREPARE phase before each SENSE instant.
    PREPARE_LEAD = 2.0 * NS
    #: Raw CP pulse width.
    CP_PULSE_WIDTH = 0.4 * NS

    def __init__(self, design: SensorDesign, bit: int,
                 rail: SenseRail = SenseRail.VDD,
                 tech: Technology | None = None) -> None:
        self.design = design
        self.bit = SensorBit(design, bit, rail)
        self.rail = rail
        self.tech = tech if tech is not None else design.tech
        self._build()

    def _build(self) -> None:
        design, tech = self.design, self.tech
        nl = Netlist(f"sensor_bit{self.bit.bit}_{self.rail.value}")
        nominal = design.tech.vdd_nominal
        nl.add_supply("VDD", nominal)
        nl.add_supply("GND", 0.0, is_ground=True)
        nl.add_supply("VDDN", nominal)
        nl.add_supply("GNDN", 0.0, is_ground=True)

        nl.add_net("P")
        nl.add_net("CP")
        nl.add_net("CPD")
        nl.add_net("DS", extra_cap=design.load_caps[self.bit.bit - 1])
        nl.add_net("OUT")
        nl.mark_external_input("P")
        nl.mark_external_input("CP")

        inv = design.sensor_inverter(tech, name=f"INV{self.bit.bit}")
        ff = design.sense_flipflop(tech, name=f"FF{self.bit.bit}")
        route = design.cp_route_element(
            tech, trim_load=ff.pin("CP").cap, name="CProute"
        )
        if self.rail is SenseRail.VDD:
            inv_vdd, inv_gnd = "VDDN", "GND"
        else:
            inv_vdd, inv_gnd = "VDD", "GNDN"
        nl.add_instance("inv", inv, {"A": "P", "Y": "DS"},
                        vdd=inv_vdd, gnd=inv_gnd)
        nl.add_instance("route", route, {"A": "CP", "Y": "CPD"},
                        vdd="VDD", gnd="GND")
        nl.add_instance("ff", ff, {"D": "DS", "CP": "CPD", "Q": "OUT"},
                        vdd="VDD", gnd="GND")
        self.netlist = nl

    def bind_rails(self, *, vdd_n: Waveform | float | None = None,
                   gnd_n: Waveform | float | None = None) -> None:
        """Attach the noisy rail waveforms for the next run."""
        if vdd_n is not None:
            self.netlist.set_supply_waveform("VDDN", vdd_n)
        if gnd_n is not None:
            self.netlist.set_supply_waveform("GNDN", gnd_n)

    def run_measures(self, code: int, measure_times: list[float], *,
                     vdd_n: Waveform | float | None = None,
                     gnd_n: Waveform | float | None = None
                     ) -> list[BitMeasure]:
        """Run a PREPARE/SENSE sequence at each requested instant.

        Args:
            code: PG delay code 0..7 (the harness applies the code's
                skew directly to the raw CP stimulus; the PG netlist
                itself is exercised by the full-system harness).
            measure_times: SENSE instants, seconds; must be spaced by at
                least ``PREPARE_LEAD`` plus the sensing window.
            vdd_n / gnd_n: Noisy rail waveforms for this run.

        Returns:
            One :class:`BitMeasure` per SENSE instant.

        Raises:
            ConfigurationError: unordered / too-dense measure times.
            SimulationError: when a SENSE sample is missing (harness
                misconfiguration).
        """
        if not measure_times:
            raise ConfigurationError("measure_times must be non-empty")
        times = list(measure_times)
        if any(t2 - t1 < self.PREPARE_LEAD + 2 * self.CP_PULSE_WIDTH
               for t1, t2 in zip(times, times[1:])):
            raise ConfigurationError(
                "measure_times too dense for PREPARE/SENSE sequencing"
            )
        if times[0] < self.PREPARE_LEAD:
            raise ConfigurationError(
                f"first measure must be at or after t={self.PREPARE_LEAD}"
            )
        self.bind_rails(vdd_n=vdd_n, gnd_n=gnd_n)
        engine = SimulationEngine(self.netlist)
        rail = self.rail
        engine.set_initial("P", rail.prepare_p)
        engine.set_initial("DS", rail.prepare_ds)
        engine.set_initial("CP", 0)
        engine.set_initial("CPD", 0)
        engine.set_initial("OUT", 0)

        # The harness bypasses the PG netlist but must apply the skew
        # the PG would *realize in this technology* — at a corner the
        # delay elements scale with the devices.
        from repro.core.pulsegen import PulseGenerator

        skew = PulseGenerator(self.design, self.tech).skew(code)
        for t_m in times:
            t_prep = t_m - self.PREPARE_LEAD
            if t_prep > 0:
                engine.schedule_stimulus("P", rail.prepare_p, t_prep)
            # PREPARE sample: CP pulse while DS is forced — captures the
            # prepare level (the paper's '0000000' phase).
            engine.schedule_stimulus("CP", 1, t_prep + skew
                                     + self.PREPARE_LEAD / 2)
            engine.schedule_stimulus("CP", 0, t_prep + skew
                                     + self.PREPARE_LEAD / 2
                                     + self.CP_PULSE_WIDTH)
            # SENSE: release P, clock the FF one skew later.
            engine.schedule_stimulus("P", rail.sense_p, t_m)
            engine.schedule_stimulus("CP", 1, t_m + skew)
            engine.schedule_stimulus("CP", 0,
                                     t_m + skew + self.CP_PULSE_WIDTH)
        t_end = times[-1] + self.PREPARE_LEAD + 4 * self.CP_PULSE_WIDTH
        engine.run(t_end)
        return self._collect(engine, times)

    def _collect(self, engine: SimulationEngine,
                 times: list[float]) -> list[BitMeasure]:
        route_delay_nom = self.design.cp_route_delay
        results: list[BitMeasure] = []
        samples = engine.trace.samples_for("ff")
        for t_m in times:
            # The SENSE sample is the first FF event at/after the SENSE
            # instant (the PREPARE sample of the *next* measure is at
            # least PREPARE_LEAD/2 later).
            window_end = (t_m + route_delay_nom
                          + max(self.design.delay_codes) + 0.5 * NS)
            sense = [s for s in samples if t_m <= s.time <= window_end]
            if not sense:
                raise SimulationError(
                    f"no SENSE sample found for measure at t={t_m}"
                )
            results.append(self._to_measure(engine, sense[0], t_m))
        return results

    def _to_measure(self, engine: SimulationEngine, rec: SampleRecord,
                    t_m: float) -> BitMeasure:
        rail = self.rail
        passed = rec.value == rail.pass_value
        ds_edges = [
            (t, v) for t, v in engine.trace.transitions("DS")
            if t > t_m and v == (1 - rail.prepare_ds)
        ]
        ds_delay = ds_edges[0][0] - t_m if ds_edges else None
        return BitMeasure(
            passed=passed,
            value=rec.value,
            outcome=rec.outcome,
            ds_delay=ds_delay,
            out_delay=rec.clk_to_q,
            setup_margin=rec.setup_margin,
        )

    def measure_once(self, code: int, *,
                     vdd_n: Waveform | float | None = None,
                     gnd_n: Waveform | float | None = None
                     ) -> BitMeasure:
        """One PREPARE/SENSE measurement (convenience wrapper)."""
        return self.run_measures(
            code, [2.0 * self.PREPARE_LEAD], vdd_n=vdd_n, gnd_n=gnd_n
        )[0]
