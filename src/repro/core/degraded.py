"""Degraded-mode decoding: measure around known-bad stages.

The paper pitches the sensor for *systematic* deployment — dozens of
arrays spread across a die, screened in production like scan chains.
At that scale some stages **will** fail screening, and discarding a
whole array over one stuck stage throws away six good comparators.
This module implements the graceful alternative: mask the stages
:func:`repro.core.faults.screen_suspects` implicated, drop their rungs
from the threshold ladder, and decode the surviving bits as a
*shorter* thermometer.

The physics cooperates: each stage is an independent comparator
against its own threshold, so removing one simply merges its two
adjacent decode intervals.  The decoded range stays **correct** — the
rail really is inside it — it is just *wider* where the dead rung
used to split it.  :class:`DegradedDecode` reports that widening
explicitly (``resolution`` vs ``full_resolution``, ``uncertainty``),
so downstream consumers can weight or reject degraded readings
instead of trusting a silently wrong word.

Typical flow::

    suspects = screen_suspects(injector, code=code)
    degraded = DegradedArray(design, masked_bits=suspects)
    reading = degraded.decode(raw_word, code)   # raises nothing for
                                                # faults already masked
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.thermometer import (
    ThermometerWord,
    VoltageRange,
    decode_word,
)
from repro.core.array import SensorArray
from repro.core.calibration import SensorDesign
from repro.core.sensor import SenseRail
from repro.devices.technology import Technology
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DegradedDecode:
    """One masked-decode result, with its resolution loss made explicit.

    Attributes:
        word: The reduced word (surviving stages only, bit order
            preserved, MSB-first string).
        decoded: The measured-rail voltage range the surviving stages
            imply.  Correct but wider than a full-array decode
            wherever a masked rung used to subdivide it.
        masked_bits: 1-based stages excluded from the decode.
        resolution: Number of stages that contributed (decode levels
            minus one).
        full_resolution: Stage count of the healthy array.
        uncertainty: Width of ``decoded``, volts; ``inf`` when the
            reading pinned at an open ladder end.
    """

    word: str
    decoded: VoltageRange
    masked_bits: tuple[int, ...]
    resolution: int
    full_resolution: int
    uncertainty: float

    @property
    def degraded(self) -> bool:
        return self.resolution < self.full_resolution


class DegradedArray:
    """A :class:`~repro.core.array.SensorArray` with stages masked out.

    Args:
        design: Calibrated sensor design.
        masked_bits: 1-based stages to exclude (from
            :func:`~repro.core.faults.screen_suspects`); may be empty,
            in which case decoding matches the full array exactly.
        rail: VDD or GND array.
        tech: Corner technology override.

    Raises:
        ConfigurationError: a masked bit outside ``1..n_bits``, or
            every stage masked (nothing left to decode).
    """

    def __init__(self, design: SensorDesign,
                 masked_bits: Iterable[int] = (),
                 rail: SenseRail = SenseRail.VDD,
                 tech: Technology | None = None) -> None:
        masked = tuple(sorted(set(int(b) for b in masked_bits)))
        for b in masked:
            if not 1 <= b <= design.n_bits:
                raise ConfigurationError(
                    f"masked bit {b} outside 1..{design.n_bits}"
                )
        if len(masked) >= design.n_bits:
            raise ConfigurationError(
                f"all {design.n_bits} stages masked; nothing to decode"
            )
        self.design = design
        self.rail = rail
        self.tech = tech
        self.masked_bits = masked
        self.array = SensorArray(design, rail, tech)

    @classmethod
    def from_screen(cls, injector, *, code: int = 3,
                    margin: float = 0.05) -> "DegradedArray":
        """Build directly from a production screen of ``injector``.

        Runs :func:`~repro.core.faults.screen_suspects` and masks
        whatever it implicates.
        """
        from repro.core.faults import screen_suspects

        suspects = screen_suspects(injector, code=code, margin=margin)
        return cls(injector.design, suspects, injector.rail,
                   getattr(injector.harness, "tech", None))

    # -- structure ---------------------------------------------------------

    @property
    def n_bits(self) -> int:
        """Surviving stage count."""
        return self.design.n_bits - len(self.masked_bits)

    @property
    def surviving_bits(self) -> tuple[int, ...]:
        """1-based stages that still contribute, ascending."""
        dead = set(self.masked_bits)
        return tuple(b for b in range(1, self.design.n_bits + 1)
                     if b not in dead)

    def supply_thresholds(self, code: int) -> tuple[float, ...]:
        """Surviving rungs of the effective-supply ladder, ascending.

        Solved through the same kernel as the full array; solver batch
        invariance keeps the surviving rungs bit-identical to the
        matching rungs of :meth:`SensorArray.supply_thresholds`.
        """
        from repro.kernels import threshold_grid

        grid = threshold_grid(self.design, (code,), self.tech,
                              bits=self.surviving_bits)
        return tuple(float(v) for v in grid[:, 0])

    def reduce_word(self, word: ThermometerWord) -> ThermometerWord:
        """Project a full-array word onto the surviving stages.

        Masked positions are dropped outright — their sampled values
        are untrusted by construction, whatever they read.
        """
        if word.n_bits != self.design.n_bits:
            raise ConfigurationError(
                f"word has {word.n_bits} bits; array has "
                f"{self.design.n_bits}"
            )
        return ThermometerWord(
            tuple(word.bits[b - 1] for b in self.surviving_bits)
        )

    # -- decoding ----------------------------------------------------------

    def decode(self, word: ThermometerWord, code: int, *,
               strict: bool = False) -> DegradedDecode:
        """Decode a full-array word with the masked stages excluded.

        A word that bubbles only *because of* a masked stage decodes
        cleanly here — the offending bit never reaches the ladder.
        Residual bubbles among the surviving stages are bubble-
        corrected by default (``strict=False``): a degraded decode
        exists to keep measuring, not to re-raise.

        Args:
            word: The raw N-bit word as sampled (masked bits included).
            code: Delay code the word was taken under.
            strict: Forwarded to the underlying decoder for the
                *reduced* word.

        Returns:
            A :class:`DegradedDecode` in measured-rail terms (VDD-n
            volts for the VDD rail, GND-n rise for the GND rail).
        """
        reduced = self.reduce_word(word)
        supply_range = decode_word(
            reduced, self.supply_thresholds(code), strict=strict
        )
        if self.rail is SenseRail.VDD:
            decoded = supply_range
        else:
            nominal = self.design.tech.vdd_nominal
            decoded = VoltageRange(lo=nominal - supply_range.hi,
                                   hi=nominal - supply_range.lo)
        return DegradedDecode(
            word=reduced.to_string(),
            decoded=decoded,
            masked_bits=self.masked_bits,
            resolution=self.n_bits,
            full_resolution=self.design.n_bits,
            uncertainty=decoded.width,
        )

    def measure(self, code: int, *, vdd_n: float | None = None,
                gnd_n: float | None = None) -> DegradedDecode:
        """Analytic masked measurement at a static rail level.

        The underlying full array is measured (faulty stages and all —
        this is the analytic path, so "faulty" means "untrusted", not
        mis-modelled) and the word is masked-decoded.
        """
        full = self.array.measure(code, vdd_n=vdd_n, gnd_n=gnd_n)
        return self.decode(full.word, code)


def degraded_from_screen(injector, *, code: int = 3,
                         margin: float = 0.05) -> DegradedArray:
    """Function-style alias of :meth:`DegradedArray.from_screen`."""
    return DegradedArray.from_screen(injector, code=code, margin=margin)
