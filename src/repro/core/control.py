"""The CNTR control block (paper Fig. 8).

A finite-state machine sequences the measurement protocol: after RESET
it idles until enabled, then runs PREPARE (``S_PRP0`` = negative CP
edge, ``S_PRP`` = positive CP edge with P at the prepare level) and
SENSE (``S_SNS0`` = negative CP edge again, ``S_SNS`` = the "very sense
phase" with P released) sequences, iterating while more measures are
pending.  The paper folds the SENSE-side negative edge into its READY
state; here it gets an explicit ``S_SNS0`` for clarity — the generated
edge sequence is identical.

Views:

* :class:`ControlFSM` — behavioural, cycle-accurate, protocol-checked;
  drives the full-system harness;
* :func:`build_control_netlist` — gate-level: the FSM two-level logic
  plus the measurement counter and the ENC ones-counter, assembled into
  the "whole control system" whose 90 nm critical path the paper
  reports as 1.22 ns (reproduced by the STA bench).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cells.combinational import And2, Inverter, Or2
from repro.cells.sequential import DFlipFlop
from repro.core.calibration import SensorDesign
from repro.core.counter import build_counter_netlist
from repro.core.encoder import build_encoder_netlist
from repro.core.sensor import SenseRail
from repro.devices.technology import Technology
from repro.errors import ConfigurationError, ProtocolError, SimulationError
from repro.sim.netlist import Netlist
from repro.units import FF as FARAD_F


class ControlState(enum.Enum):
    """FSM states (Fig. 8).  Binary encodings drive the netlist view."""

    IDLE = 0b000
    READY = 0b001
    S_PRP0 = 0b010
    S_PRP = 0b011
    S_SNS0 = 0b100
    S_SNS = 0b101

    @property
    def encoding(self) -> tuple[int, int, int]:
        """(s0, s1, s2) LSB-first state bits."""
        return (self.value & 1, (self.value >> 1) & 1,
                (self.value >> 2) & 1)


@dataclass(frozen=True)
class ControlOutputs:
    """Per-cycle FSM outputs.

    Attributes:
        state: State after the clock tick.
        p: Raw P level toward the PG (pre-skew).
        cp: Raw CP level toward the PG.
        prepare_sample: True on the cycle whose CP rising edge samples
            the PREPARE value (the paper's '0000000' check word).
        sense_sample: True on the cycle whose CP rising edge takes the
            actual measure.
        measuring: True while a PREPARE/SENSE sequence is in flight.
    """

    state: ControlState
    p: int
    cp: int
    prepare_sample: bool
    sense_sample: bool
    measuring: bool


class ControlFSM:
    """Behavioural CNTR.

    Args:
        rail: Which array this controller drives — fixes the P
            polarity of the PREPARE/SENSE phases (opposite for GND-n
            sensing, §II).
    """

    def __init__(self, rail: SenseRail = SenseRail.VDD) -> None:
        self.rail = rail
        self.state = ControlState.IDLE
        self._pending = 0

    def reset(self) -> None:
        """Asynchronous reset back to IDLE; drops pending measures."""
        self.state = ControlState.IDLE
        self._pending = 0

    @property
    def pending_measures(self) -> int:
        return self._pending

    def request_measures(self, n: int) -> None:
        """Queue ``n`` PREPARE/SENSE sequences.

        Raises:
            ProtocolError: when called mid-sequence (the paper's
                protocol only accepts commands in IDLE/READY).
            ConfigurationError: for a non-positive count.
        """
        if n < 1:
            raise ConfigurationError("n must be positive")
        if self.state not in (ControlState.IDLE, ControlState.READY):
            raise ProtocolError(
                f"measures can only be requested in IDLE/READY, "
                f"not {self.state.name}"
            )
        self._pending += n

    def tick(self, *, enable: bool = True) -> ControlOutputs:
        """Advance one clock cycle; returns the new outputs.

        The CP edge pattern follows Fig. 8: low in ``S_PRP0``/``S_SNS0``
        (negative edges), high in ``S_PRP``/``S_SNS`` (the sampling
        positive edges).
        """
        s = self.state
        if s is ControlState.IDLE:
            nxt = ControlState.READY if enable else ControlState.IDLE
        elif s is ControlState.READY:
            nxt = (ControlState.S_PRP0 if self._pending > 0
                   else ControlState.READY)
        elif s is ControlState.S_PRP0:
            nxt = ControlState.S_PRP
        elif s is ControlState.S_PRP:
            nxt = ControlState.S_SNS0
        elif s is ControlState.S_SNS0:
            nxt = ControlState.S_SNS
        elif s is ControlState.S_SNS:
            self._pending -= 1
            nxt = (ControlState.S_PRP0 if self._pending > 0
                   else ControlState.READY)
        else:  # pragma: no cover - enum is closed
            raise ProtocolError(f"illegal state {s}")
        self.state = nxt

        sense_phase = nxt is ControlState.S_SNS
        p = self.rail.sense_p if sense_phase else self.rail.prepare_p
        cp = 1 if nxt in (ControlState.S_PRP, ControlState.S_SNS) else 0
        return ControlOutputs(
            state=nxt,
            p=p,
            cp=cp,
            prepare_sample=nxt is ControlState.S_PRP,
            sense_sample=sense_phase,
            measuring=nxt not in (ControlState.IDLE, ControlState.READY),
        )

    def run_schedule(self, n_measures: int, *, clock_period: float,
                     start_time: float, enable: bool = True,
                     max_ticks: int | None = None
                     ) -> "MeasurementSchedule":
        """Walk the FSM and emit the timed stimulus for a whole burst.

        Returns the P/CP event lists (pre-PG, i.e. the raw CNTR
        outputs) plus the SENSE launch instants, for the system harness
        to apply.

        Args:
            max_ticks: Watchdog budget on FSM ticks; ``None`` uses the
                protocol bound ``16 * n_measures + 64`` (a healthy
                burst takes ``4 * n_measures + O(1)``).  A schedule
                that does not terminate within the budget raises
                instead of hanging the caller — e.g. when the FSM is
                never enabled, so the burst can never start.

        Raises:
            ConfigurationError: non-positive count/period/start/ticks.
            SimulationError: the watchdog fired before the burst
                completed (non-terminating schedule).
        """
        if n_measures < 1:
            raise ConfigurationError("n_measures must be positive")
        if clock_period <= 0 or start_time <= 0:
            raise ConfigurationError(
                "clock_period and start_time must be positive"
            )
        if max_ticks is None:
            max_ticks = 16 * n_measures + 64
        if max_ticks < 1:
            raise ConfigurationError("max_ticks must be positive")
        self.reset()
        self.tick(enable=enable)  # IDLE -> READY
        self.request_measures(n_measures)
        p_events: list[tuple[float, int]] = []
        cp_events: list[tuple[float, int]] = []
        sense_times: list[float] = []
        prepare_times: list[float] = []
        t = start_time
        prev_p = self.rail.prepare_p
        prev_cp = 0
        guard = 0
        while True:
            out = self.tick(enable=enable)
            if out.p != prev_p:
                p_events.append((t, out.p))
                prev_p = out.p
            if out.cp != prev_cp:
                cp_events.append((t, out.cp))
                prev_cp = out.cp
            if out.prepare_sample:
                prepare_times.append(t)
            if out.sense_sample:
                sense_times.append(t)
            t += clock_period
            guard += 1
            if not out.measuring and len(sense_times) >= n_measures:
                break
            if guard > max_ticks:
                raise SimulationError(
                    f"FSM schedule did not terminate within "
                    f"max_ticks={max_ticks} "
                    f"({len(sense_times)}/{n_measures} measures taken)"
                )
        return MeasurementSchedule(
            p_events=tuple(p_events),
            cp_events=tuple(cp_events),
            prepare_times=tuple(prepare_times),
            sense_times=tuple(sense_times),
            end_time=t,
        )


@dataclass(frozen=True)
class MeasurementSchedule:
    """Timed raw stimulus for a measurement burst (pre-PG signals)."""

    p_events: tuple[tuple[float, int], ...]
    cp_events: tuple[tuple[float, int], ...]
    prepare_times: tuple[float, ...]
    sense_times: tuple[float, ...]
    end_time: float


# --------------------------------------------------------------------------
# Structural view
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ControlPorts:
    """Net names of the built control-system netlist."""

    clock: str
    enable: str
    start: str
    state_bits: tuple[str, str, str]
    counter_bits: tuple[str, ...]
    encoder_inputs: tuple[str, ...]
    oute_bits: tuple[str, ...]


def _sop(nl: Netlist, tech: Technology, prefix: str,
         literal_nets: dict[str, tuple[str, str]],
         terms: list[list[tuple[str, bool]]],
         vdd: str, gnd: str, wire_cap: float) -> str:
    """Build a sum-of-products network; returns the output net.

    Args:
        literal_nets: variable -> (true_net, complement_net).
        terms: each term is a list of (variable, positive?) literals.
    """
    def and_tree(nets: list[str], tag: str) -> str:
        idx = 0
        while len(nets) > 1:
            nxt = []
            for j in range(0, len(nets) - 1, 2):
                out = f"{prefix}_{tag}_a{idx}"
                idx += 1
                nl.add_net(out, extra_cap=wire_cap)
                g = And2(tech, name=out + "_g")
                nl.add_instance(g.name, g,
                                {"A": nets[j], "B": nets[j + 1],
                                 "Y": out}, vdd=vdd, gnd=gnd)
                nxt.append(out)
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    def or_tree(nets: list[str], tag: str) -> str:
        idx = 0
        while len(nets) > 1:
            nxt = []
            for j in range(0, len(nets) - 1, 2):
                out = f"{prefix}_{tag}_o{idx}"
                idx += 1
                nl.add_net(out, extra_cap=wire_cap)
                g = Or2(tech, name=out + "_g")
                nl.add_instance(g.name, g,
                                {"A": nets[j], "B": nets[j + 1],
                                 "Y": out}, vdd=vdd, gnd=gnd)
                nxt.append(out)
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    product_nets = []
    for ti, term in enumerate(terms):
        literals = [
            literal_nets[var][0] if positive else literal_nets[var][1]
            for var, positive in term
        ]
        product_nets.append(and_tree(literals, f"t{ti}"))
    return or_tree(product_nets, "sum")


def build_control_netlist(design: SensorDesign, *,
                          tech: Technology | None = None,
                          counter_width: int = 8,
                          wire_cap: float = 2.7294 * FARAD_F,
                          vdd: str = "VDD", gnd: str = "GND"
                          ) -> tuple[Netlist, ControlPorts]:
    """The "whole control system" as one gate-level netlist.

    Contents: the 3-bit FSM state register with its two-level
    next-state logic, the measurement counter (whose terminal count
    gates the FSM's "more measures pending" decision — the long
    counter→FSM path), and the ENC ones-counter feeding a registered
    OUTE word.  ``wire_cap`` models post-layout wiring load; the
    default is tuned so the STA critical path lands at the paper's
    reported 1.22 ns.

    Returns:
        (netlist, ports).
    """
    t = tech if tech is not None else design.tech
    nl = Netlist("control_system")
    nl.add_supply(vdd, design.tech.vdd_nominal)
    nl.add_supply(gnd, 0.0, is_ground=True)

    clock = "ctl_clk"
    enable = "ctl_en"
    start = "ctl_start"
    for net in (clock, enable, start):
        nl.add_net(net, extra_cap=wire_cap)
        nl.mark_external_input(net)

    # Counter: shares the control clock; counts while the FSM is in a
    # measuring state ('ctl_measuring', driven by the FSM decode
    # below); terminal count means "burst finished" -> more = NOT tc.
    measuring = "ctl_measuring"
    nl.add_net(measuring, extra_cap=wire_cap)
    _, cnt_ports = build_counter_netlist(
        design, counter_width, tech=t, netlist=nl, prefix="ctl_cnt",
        vdd=vdd, gnd=gnd, wire_cap=wire_cap,
        clock_net=clock, enable_net=measuring,
    )

    # Encoder (sensor FF outputs arrive as external inputs here).
    _, enc_ports = build_encoder_netlist(
        design, tech=t, netlist=nl, prefix="ctl_enc",
        vdd=vdd, gnd=gnd, wire_cap=wire_cap,
    )

    # FSM state bits + complements.
    state_q = tuple(f"ctl_s{i}" for i in range(3))
    state_qn = tuple(f"ctl_s{i}_n" for i in range(3))
    state_d = tuple(f"ctl_s{i}_d" for i in range(3))
    for q, qn, dnet in zip(state_q, state_qn, state_d):
        nl.add_net(q, extra_cap=wire_cap)
        nl.add_net(qn, extra_cap=wire_cap)
        nl.add_net(dnet, extra_cap=wire_cap)
        inv = Inverter(t, name=f"{q}_inv")
        nl.add_instance(inv.name, inv, {"A": q, "Y": qn},
                        vdd=vdd, gnd=gnd)
    # Input complements.
    more = "ctl_more"
    nl.add_net(more, extra_cap=wire_cap)
    more_inv = Inverter(t, name="ctl_more_inv")
    nl.add_instance(more_inv.name, more_inv,
                    {"A": cnt_ports.terminal, "Y": more},
                    vdd=vdd, gnd=gnd)
    more_n = cnt_ports.terminal  # complement of 'more' IS the tc net
    start_n = "ctl_start_n"
    nl.add_net(start_n, extra_cap=wire_cap)
    sn_inv = Inverter(t, name="ctl_start_inv")
    nl.add_instance(sn_inv.name, sn_inv, {"A": start, "Y": start_n},
                    vdd=vdd, gnd=gnd)

    lits: dict[str, tuple[str, str]] = {
        "s0": (state_q[0], state_qn[0]),
        "s1": (state_q[1], state_qn[1]),
        "s2": (state_q[2], state_qn[2]),
        "en": (enable, enable),      # complement unused below
        "start": (start, start_n),
        "more": (more, more_n),
    }

    def m(code: int) -> list[tuple[str, bool]]:
        """State minterm literals for a 3-bit encoding."""
        return [
            ("s0", bool(code & 1)),
            ("s1", bool(code & 2)),
            ("s2", bool(code & 4)),
        ]

    # Next-state SOP (see ControlFSM.tick for the transition table).
    n0_terms = [
        m(0b000) + [("en", True)],
        m(0b001) + [("start", False)],
        m(0b010),
        m(0b100),
        m(0b101) + [("more", False)],
    ]
    n1_terms = [
        m(0b001) + [("start", True)],
        m(0b010),
        m(0b101) + [("more", True)],
    ]
    n2_terms = [m(0b011), m(0b100)]
    for dnet, terms, tag in zip(state_d, (n0_terms, n1_terms, n2_terms),
                                ("n0", "n1", "n2")):
        out = _sop(nl, t, f"ctl_{tag}", lits, terms, vdd, gnd, wire_cap)
        buf = Inverter(t, name=f"ctl_{tag}_pbuf")
        mid = f"ctl_{tag}_mid"
        nl.add_net(mid, extra_cap=wire_cap)
        nl.add_instance(buf.name, buf, {"A": out, "Y": mid},
                        vdd=vdd, gnd=gnd)
        buf2 = Inverter(t, name=f"ctl_{tag}_pbuf2")
        nl.add_instance(buf2.name, buf2, {"A": mid, "Y": dnet},
                        vdd=vdd, gnd=gnd)
    for i, (q, dnet) in enumerate(zip(state_q, state_d)):
        ff = DFlipFlop(t, name=f"ctl_sff{i}")
        nl.add_instance(ff.name, ff, {"D": dnet, "CP": clock, "Q": q},
                        vdd=vdd, gnd=gnd)

    # Counter runs while measuring: measuring = s1 OR s2 (any
    # S_PRP*/S_SNS* state), closing the loop FSM -> counter -> tc ->
    # more -> FSM (combinational between registers; no cycle).
    meas_or = Or2(t, name="ctl_meas_or")
    nl.add_instance(meas_or.name, meas_or,
                    {"A": state_q[1], "B": state_q[2], "Y": measuring},
                    vdd=vdd, gnd=gnd)

    # Registered OUTE word.
    oute = tuple(f"ctl_oute{i}" for i in range(3))
    for i, (src, q) in enumerate(zip(enc_ports.outputs, oute)):
        nl.add_net(q, extra_cap=wire_cap)
        ff = DFlipFlop(t, name=f"ctl_outeff{i}")
        nl.add_instance(ff.name, ff, {"D": src, "CP": clock, "Q": q},
                        vdd=vdd, gnd=gnd)

    return nl, ControlPorts(
        clock=clock,
        enable=enable,
        start=start,
        state_bits=state_q,
        counter_bits=cnt_ports.outputs,
        encoder_inputs=enc_ports.inputs,
        oute_bits=oute,
    )
