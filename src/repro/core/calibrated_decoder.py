"""Per-die calibrated decoding.

The yield study (:mod:`repro.analysis.yield_study`) shows the problem:
inter-die variation shifts the whole threshold ladder, so decoding a
fabricated die's words against the *design* ladder mis-brackets a large
fraction of readings.  The paper's remedy is §III-A's "careful
characterization of the sensor in such condition".

:class:`MeasuredDecoder` is that remedy as an object: a decoder bound
to a ladder *measured on the die itself* — from tester S-curves
(:func:`from_s_curves`), from bisected event-driven screening
(:func:`from_bisection`), or from any externally supplied ladder (e.g.
a corner model).  It decodes words exactly like
:class:`~repro.core.array.SensorArray` but against the measured rungs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.thermometer import (
    ThermometerWord,
    VoltageRange,
    decode_word,
)
from repro.core.calibration import SensorDesign
from repro.devices.technology import Technology
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MeasuredDecoder:
    """A decoder bound to a characterized threshold ladder.

    Attributes:
        ladder: Ascending measured thresholds, volts.
        code: The delay code the ladder was characterized at.
        source: Human-readable provenance ("s-curve", "bisection",
            "corner-model", ...).
    """

    ladder: tuple[float, ...]
    code: int
    source: str = "external"

    def __post_init__(self) -> None:
        if len(self.ladder) < 2:
            raise ConfigurationError("ladder needs at least 2 rungs")
        if np.any(np.diff(self.ladder) <= 0):
            raise ConfigurationError("ladder must be strictly ascending")
        if not 0 <= self.code < 8:
            raise ConfigurationError("code outside 0..7")

    @property
    def n_bits(self) -> int:
        return len(self.ladder)

    def decode(self, word: ThermometerWord, *,
               strict: bool = False) -> VoltageRange:
        """Word -> supply range against the measured ladder."""
        return decode_word(word, self.ladder, strict=strict)

    def measurable_range(self) -> tuple[float, float]:
        return self.ladder[0], self.ladder[-1]

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_s_curves(cls, design: SensorDesign, *,
                      code: int = 3,
                      noise_rms: float = 5e-3,
                      n_per_level: int = 150,
                      seed: int = 13) -> "MeasuredDecoder":
        """Extract the ladder with the tester S-curve flow.

        Purely digital pass/fail statistics at known applied levels —
        see :func:`repro.analysis.repeatability.extract_ladder_via_s_curves`.
        """
        from repro.analysis.repeatability import (
            extract_ladder_via_s_curves,
        )

        fits = extract_ladder_via_s_curves(
            design, code=code, noise_rms=noise_rms,
            n_per_level=n_per_level, seed=seed,
        )
        return cls(
            ladder=tuple(f.threshold for f in fits),
            code=code,
            source="s-curve",
        )

    @classmethod
    def from_bisection(cls, design: SensorDesign, *,
                       code: int = 3,
                       tech: Technology | None = None,
                       tol: float = 0.5e-3) -> "MeasuredDecoder":
        """Extract the ladder by bisecting the event-driven harness.

        The noiseless tester flow: apply static levels, bisect each
        stage's pass/fail boundary.  ``tech`` selects the (possibly
        corner/die-shifted) silicon being characterized.
        """
        from repro.core.characterization import (
            characterize_bit_thresholds,
        )

        ladder = characterize_bit_thresholds(
            design, code, tech=tech, method="sim", tol=tol,
        )
        return cls(ladder=tuple(ladder), code=code, source="bisection")

    @classmethod
    def from_design(cls, design: SensorDesign, *,
                    code: int = 3,
                    tech: Technology | None = None) -> "MeasuredDecoder":
        """The analytic (model) ladder — the uncalibrated reference."""
        ladder = tuple(
            design.bit_threshold(b, code, tech)
            for b in range(1, design.n_bits + 1)
        )
        return cls(ladder=ladder, code=code, source="design-model")
