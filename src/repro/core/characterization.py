"""Threshold characterization — the machinery behind Figs. 4 and 5.

Two extraction methods are offered everywhere:

* ``"analytic"`` — invert the calibrated delay law (fast; the default
  for sweeps);
* ``"sim"`` — bisect the pass/fail boundary by repeatedly running the
  event-driven harness at constant rail levels (slow; the cross-check
  that the full simulation stack realizes the analytic design).

The test suite asserts the two agree to sub-millivolt precision.

The slow ``"sim"`` path is embarrassingly parallel across (bit, delay
code) pairs and deterministic (bisection, no RNG), so every sim-method
entry point takes ``workers=`` (process-pool fan-out, bit-identical to
serial) and ``cache=`` (on-disk memoization keyed by the design
fingerprint + corner + code + brackets + tolerance) — see
:mod:`repro.runtime`.  Both default to the serial, uncached behavior.

Every entry point also takes ``backend=`` — a
:class:`~repro.backends.SensorBackend` instance or registry spec
(``"kernel"``, ``"sim"``, ``"replay:<path>"``); unset, the
``REPRO_BACKEND`` environment variable decides, falling back to the
analytic route.  A resolved :class:`~repro.backends.KernelBackend` /
:class:`~repro.backends.SimBackend` takes the matching classic route
above (so ``workers``/``cache``/``tol`` keep working, with the
backend's fingerprint folded into the cache keys); any other driver —
replay, recording, a registered custom rig — measures through the
generic protocol path, serially.  ``method=`` and ``backend=`` are
mutually exclusive spellings of the same choice.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal, Sequence

import numpy as np

from repro.analysis.thermometer import VoltageRange, decode_table
from repro.core.calibration import SensorDesign
from repro.core.sensor import SenseRail, SensorBitHarness
from repro.devices.technology import Technology
from repro.errors import CharacterizationError, ConfigurationError
from repro.kernels import solve_supply_for_delay, threshold_grid
from repro.runtime import (
    ResultCache,
    cached_map,
    design_fingerprint,
    resolve_cache,
    stable_hash,
    task_key,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends import SensorBackend

Method = Literal["analytic", "sim"]


def _resolve_route(backend: "SensorBackend | str | None",
                   method: Method | None) -> tuple[
                       Method | None, "SensorBackend | None"]:
    """Map ``(backend=, method=)`` onto an execution route.

    Returns ``(route, driver)``: ``route`` is ``"analytic"``/``"sim"``
    for the classic fast paths (``driver`` carries the resolved
    instance when one was named, for cache-key fingerprinting) or
    ``None`` when ``driver`` must be measured through the generic
    protocol path.
    """
    from repro.backends import (
        BACKEND_ENV,
        KernelBackend,
        SimBackend,
        resolve_backend,
    )

    if method is not None:
        if backend is not None:
            raise ConfigurationError(
                "pass either method= or backend=, not both"
            )
        if method not in ("analytic", "sim"):
            raise ConfigurationError(f"unknown method {method!r}")
        return method, None
    if backend is None and not os.environ.get(BACKEND_ENV):
        return "analytic", None
    bk = resolve_backend(backend)
    # Exact-type matches only: a *subclass* may override measurement
    # behaviour, so it must go through the generic protocol path, not
    # be silently collapsed onto the classic fast path.
    if type(bk) is KernelBackend:
        return "analytic", bk
    if type(bk) is SimBackend:
        return "sim", bk
    return None, bk


@dataclass(frozen=True)
class ArrayCharacteristic:
    """The full characteristic of one (array, delay code) pair.

    Attributes:
        code: Delay code 0..7.
        thresholds: Per-bit effective-supply thresholds, ascending, V.
            Under ``failure_policy="partial"`` these are the
            *surviving* rungs only (see ``masked_bits``).
        v_min: "All errors" endpoint (supply below which every stage
            fails) — the low end of the paper's Fig. 5 dynamic.
        v_max: "No errors" endpoint.
        table: (word, decoded range) rows from all-fail to all-pass.
        masked_bits: 1-based bits whose characterization failed and
            were excluded from the ladder (empty for a full sweep) —
            the degraded-mode analogue of
            :class:`~repro.core.degraded.DegradedArray` masking.
    """

    code: int
    thresholds: tuple[float, ...]
    v_min: float
    v_max: float
    table: tuple[tuple[str, VoltageRange], ...]
    masked_bits: tuple[int, ...] = ()

    def word_at(self, v: float) -> str:
        """The word the array outputs at an effective supply level."""
        ones = int(np.searchsorted(self.thresholds, v, side="left"))
        n = len(self.thresholds)
        return "".join("1" if i >= n - ones else "0" for i in range(n))


def _sim_threshold(design: SensorDesign, bit: int, code: int, *,
                   rail: SenseRail, tech: Technology | None,
                   v_lo: float, v_hi: float, tol: float) -> float:
    """Bisect the event-driven pass/fail boundary of one bit."""
    harness = SensorBitHarness(design, bit, rail, tech)

    def passes(level: float) -> bool:
        if rail is SenseRail.VDD:
            return harness.measure_once(code, vdd_n=level).passed
        return harness.measure_once(code, gnd_n=level).passed

    # For the VDD rail, higher supply passes; for GND, lower bounce does.
    hi_passes = passes(v_hi)
    lo_passes = passes(v_lo)
    increasing = rail is SenseRail.VDD
    if increasing and (lo_passes or not hi_passes):
        raise CharacterizationError(
            f"bit {bit}, code {code}: [{v_lo}, {v_hi}] does not bracket "
            f"the threshold (pass at lo={lo_passes}, hi={hi_passes})"
        )
    if not increasing and (hi_passes or not lo_passes):
        raise CharacterizationError(
            f"bit {bit}, code {code}: [{v_lo}, {v_hi}] does not bracket "
            f"the GND threshold"
        )
    lo, hi = v_lo, v_hi
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if passes(mid) == increasing:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


def _sim_threshold_task(spec: tuple) -> float:
    """Picklable adapter: one bisection from a task payload tuple."""
    design, bit, code, rail, tech, v_lo, v_hi, tol = spec
    return _sim_threshold(design, bit, code, rail=rail, tech=tech,
                          v_lo=v_lo, v_hi=v_hi, tol=tol)


def _solve_sim_thresholds(
        tasks: Sequence[tuple[SensorDesign, int, int, float, float]], *,
        rail: SenseRail,
        tech: Technology | None,
        tol: float,
        workers: int | None,
        cache: ResultCache | str | None,
        retries: int = 0,
        task_timeout: float | None = None,
        failure_policy: str = "raise",
        backend: "SensorBackend | None" = None) -> list[float | None]:
    """Bisect many (design, bit, code, v_lo, v_hi) tasks, in order.

    The shared fan-out/memoization engine behind every sim-method
    sweep: cache lookups happen here in the parent process (so hit and
    miss counters are authoritative), only the misses are dispatched —
    serially or across a process pool — and results return in task
    order, making the parallel path bit-identical to the serial one.

    Resilience: ``retries``/``task_timeout``/``failure_policy`` go
    straight to :func:`repro.runtime.cached_map`.  Under ``"partial"``
    a task that exhausts its budget leaves ``None`` in its slot
    instead of aborting the sweep.

    ``backend`` names the driver the sweep was requested through; its
    fingerprint lands in the design fingerprint of every key, so a
    sweep dispatched via ``backend="sim"`` can never share cache
    entries with one dispatched under a different driver identity.
    """
    store = resolve_cache(cache)
    keys = None
    if store is not None:
        tech_fp = None if tech is None else stable_hash(tech)
        design_fps: dict[int, str] = {}
        keys = []
        for design, bit, code, v_lo, v_hi in tasks:
            fp = design_fps.get(id(design))
            if fp is None:
                fp = design_fps[id(design)] = design_fingerprint(
                    design, backend=backend
                )
            keys.append(task_key("sim-threshold", fp, bit, code, rail,
                                 tech_fp, v_lo, v_hi, tol))
    specs = [
        (design, bit, code, rail, tech, v_lo, v_hi, tol)
        for design, bit, code, v_lo, v_hi in tasks
    ]
    out = cached_map(_sim_threshold_task, specs, keys=keys,
                     cache=store, workers=workers, retries=retries,
                     task_timeout=task_timeout,
                     failure_policy=failure_policy)
    # "partial" returns a MapOutcome; the sweeps only need the
    # positional results (failed slots are None).
    return out.results if failure_policy == "partial" else out


def _sim_bracket(est: float, rail: SenseRail,
                 bracket_pad: float) -> tuple[float, float]:
    """Bisection bracket around one analytic estimate."""
    v_lo = est - bracket_pad
    if rail is SenseRail.GND:
        v_lo = max(v_lo, 0.0)
    return v_lo, est + bracket_pad


def _generic_thresholds(bk: "SensorBackend", design: SensorDesign,
                        code: int, *, rail: SenseRail,
                        tech: Technology | None,
                        bits: Sequence[int] | None = None
                        ) -> tuple[float | None, ...]:
    """Characterize through the generic driver protocol.

    NaN (the protocol's masked-bit marker) maps to ``None`` — the same
    convention the classic routes use under ``failure_policy=
    "partial"``, so downstream masking logic is shared.
    """
    bk.configure(design, rail=rail, tech=tech)
    values = bk.bit_thresholds(code, bits=bits)
    return tuple(None if math.isnan(v) else float(v) for v in values)


def characterize_bit_thresholds(
        design: SensorDesign, code: int, *,
        rail: SenseRail = SenseRail.VDD,
        tech: Technology | None = None,
        method: Method | None = None,
        backend: "SensorBackend | str | None" = None,
        tol: float = 0.5e-3,
        bracket_pad: float = 0.15,
        workers: int | None = None,
        cache: ResultCache | str | None = None,
        retries: int = 0,
        task_timeout: float | None = None,
        failure_policy: str = "raise") -> tuple[float | None, ...]:
    """Per-bit thresholds of an array under one delay code.

    Returns effective-supply thresholds for the VDD rail and rail
    (bounce) thresholds for the GND rail, in bit order 1..N.

    Args:
        design: Calibrated design.
        code: Delay code 0..7.
        rail: Which array to characterize.
        tech: Corner technology.
        method: ``"analytic"`` or ``"sim"`` (bisected event
            simulation); ``None`` (default) defers to ``backend``.
        backend: Measurement driver — an instance or a registry spec
            (see :mod:`repro.backends`); resolved per the module
            docstring.  Kernel/sim drivers take the matching classic
            route; any other driver measures through the generic
            protocol path (NaN thresholds report as ``None``).
        tol: Bisection tolerance, volts (sim route).
        bracket_pad: Bisection bracket margin around the analytic
            estimate, volts (sim route).
        workers: Process-pool size for the sim route (<= 1: serial).
        cache: On-disk memoization for the sim route — a
            :class:`~repro.runtime.ResultCache` or a cache directory;
            ``None`` disables caching.
        retries / task_timeout / failure_policy: Resilience options
            for the sim route (see :func:`repro.runtime.map_tasks`);
            under ``"partial"`` a bit whose bisection kept failing
            reports ``None`` instead of aborting the sweep.
    """
    route, bk = _resolve_route(backend, method)
    if route is None:
        assert bk is not None
        return _generic_thresholds(bk, design, code, rail=rail,
                                   tech=tech)
    analytic = tuple(
        float(v) for v in threshold_grid(design, (code,), tech)[:, 0]
    )
    if rail is SenseRail.GND:
        nominal = design.tech.vdd_nominal
        analytic = tuple(nominal - v for v in analytic)
    if route == "analytic":
        return analytic
    tasks = []
    for b, est in zip(range(1, design.n_bits + 1), analytic):
        v_lo, v_hi = _sim_bracket(est, rail, bracket_pad)
        tasks.append((design, b, code, v_lo, v_hi))
    return tuple(_solve_sim_thresholds(
        tasks, rail=rail, tech=tech, tol=tol,
        workers=workers, cache=cache, retries=retries,
        task_timeout=task_timeout, failure_policy=failure_policy,
        backend=bk,
    ))


def characterize_array(design: SensorDesign,
                       codes: Sequence[int] = (1, 2, 3), *,
                       tech: Technology | None = None,
                       method: Method | None = None,
                       backend: "SensorBackend | str | None" = None,
                       tol: float = 0.5e-3,
                       bracket_pad: float = 0.15,
                       workers: int | None = None,
                       cache: ResultCache | str | None = None,
                       retries: int = 0,
                       task_timeout: float | None = None,
                       failure_policy: str = "raise",
                       ) -> dict[int, ArrayCharacteristic]:
    """Fig. 5: the multibit characteristic for several delay codes.

    With the sim method, the (bit, code) grid is characterized as one
    flat task batch, so a process pool keeps every worker busy across
    code boundaries instead of re-synchronizing per code.

    Under ``failure_policy="partial"``, bits whose bisection failed
    through the whole retry budget are *masked*: the characteristic is
    built from the surviving rungs only (a shorter, still strictly
    ascending ladder — the degraded-mode decode of
    :mod:`repro.core.degraded`) and the dropped bits are listed in
    :attr:`ArrayCharacteristic.masked_bits`.  A code whose every bit
    failed raises :class:`CharacterizationError` even then.

    ``backend=`` routes as in :func:`characterize_bit_thresholds`; a
    generic driver (replay, recording, custom) characterizes the codes
    serially through the protocol, NaN rungs masking as above.
    """
    route, bk = _resolve_route(backend, method)
    per_code: dict[int, tuple[float | None, ...]] = {}
    if route is None:
        assert bk is not None
        for code in codes:
            per_code[code] = _generic_thresholds(
                bk, design, code, rail=SenseRail.VDD, tech=tech
            )
    elif route == "sim":
        analytic = {
            code: characterize_bit_thresholds(design, code, tech=tech,
                                              method="analytic")
            for code in codes
        }
        tasks = []
        for code in codes:
            for b, est in zip(range(1, design.n_bits + 1),
                              analytic[code]):
                v_lo, v_hi = _sim_bracket(est, SenseRail.VDD,
                                          bracket_pad)
                tasks.append((design, b, code, v_lo, v_hi))
        flat = _solve_sim_thresholds(
            tasks, rail=SenseRail.VDD, tech=tech, tol=tol,
            workers=workers, cache=cache, retries=retries,
            task_timeout=task_timeout, failure_policy=failure_policy,
            backend=bk,
        )
        for k, code in enumerate(codes):
            start = k * design.n_bits
            per_code[code] = tuple(flat[start:start + design.n_bits])
    else:
        # One (bits x codes) kernel solve for the whole Fig. 5 grid.
        grid = threshold_grid(design, tuple(codes), tech)
        for j, code in enumerate(codes):
            per_code[code] = tuple(float(v) for v in grid[:, j])
    out: dict[int, ArrayCharacteristic] = {}
    for code, raw in per_code.items():
        masked = tuple(b for b, t in enumerate(raw, start=1)
                       if t is None)
        thresholds = tuple(t for t in raw if t is not None)
        if not thresholds:
            raise CharacterizationError(
                f"code {code}: every bit failed characterization"
            )
        table = tuple(decode_table(thresholds))
        out[code] = ArrayCharacteristic(
            code=code,
            thresholds=thresholds,
            v_min=thresholds[0],
            v_max=thresholds[-1],
            table=table,
            masked_bits=masked,
        )
    return out


def threshold_vs_capacitance(
        design: SensorDesign, caps: Sequence[float], *,
        code: int = 3,
        tech: Technology | None = None,
        method: Method | None = None,
        backend: "SensorBackend | str | None" = None,
        tol: float = 0.5e-3,
        workers: int | None = None,
        cache: ResultCache | str | None = None,
        retries: int = 0,
        task_timeout: float | None = None,
        failure_policy: str = "raise"
        ) -> list[tuple[float, float | None]]:
    """Fig. 4: failure threshold as a function of the DS trim cap.

    Args:
        design: Calibrated design.
        caps: Trim capacitances to characterize, farads.
        code: Delay code (the paper's Fig. 4 is consistent with 011).
        tech: Corner technology.
        method: ``"analytic"`` or ``"sim"``; ``None`` defers to
            ``backend``.
        backend: Measurement driver (see
            :func:`characterize_bit_thresholds`); a generic driver is
            reconfigured onto each single-bit probe design in turn.
        tol: Sim bisection tolerance, volts.
        workers: Process-pool size for the sim route (<= 1: serial).
        cache: On-disk memoization for the sim route (per probe cap).
        retries / task_timeout / failure_policy: Resilience options
            (see :func:`repro.runtime.map_tasks`); under ``"partial"``
            a failed probe reports ``(cap, None)``.

    Returns:
        ``[(cap, threshold_v), ...]`` in the given cap order.
    """
    if not caps:
        raise ConfigurationError("caps must be non-empty")
    route, bk = _resolve_route(backend, method)
    if route is None:
        assert bk is not None
        caps_arr = np.asarray(caps, dtype=float)
        if np.any(caps_arr <= 0):
            raise ConfigurationError("caps must be positive")
        out: list[tuple[float, float | None]] = []
        for cap in caps:
            probe = design.with_load_caps((float(cap),))
            thr = _generic_thresholds(bk, probe, code,
                                      rail=SenseRail.VDD, tech=tech,
                                      bits=(1,))[0]
            out.append((cap, thr))
        return out
    inv = design.sensor_inverter(tech)
    ff = design.sense_flipflop(tech)
    window = design.effective_window(code, tech)
    d_pin = ff.pin("D").cap
    caps_arr = np.asarray(caps, dtype=float)
    if np.any(caps_arr <= 0):
        raise ConfigurationError("caps must be positive")
    solved = solve_supply_for_delay(
        window, inv.model.intrinsic_cap + (caps_arr + d_pin),
        inv.model.tech.drive_constant / inv.model.strength,
        inv.model.tech.vth, inv.model.tech.alpha, v_hi=3.0,
    )
    analytic = [float(v) for v in solved]
    if route == "analytic":
        return list(zip(caps, analytic))
    # One single-bit probe design per cap: the probe's load_caps land
    # in its fingerprint, so every cap gets its own cache identity.
    tasks = [
        (design.with_load_caps((cap,)), 1, code, est - 0.15, est + 0.15)
        for cap, est in zip(caps, analytic)
    ]
    thresholds = _solve_sim_thresholds(
        tasks, rail=SenseRail.VDD, tech=tech, tol=tol,
        workers=workers, cache=cache, retries=retries,
        task_timeout=task_timeout, failure_policy=failure_policy,
        backend=bk,
    )
    return list(zip(caps, thresholds))


def linearity_report(points: Sequence[tuple[float, float]]
                     ) -> dict[str, float]:
    """Least-squares linearity of a (x, y) characteristic.

    Returns slope, intercept, the coefficient of determination and the
    maximum absolute residual — the quantitative form of the paper's
    "linear behavior within the VDD-n range of interest" claim.
    """
    if len(points) < 3:
        raise ConfigurationError("need at least 3 points")
    x = np.array([p[0] for p in points])
    y = np.array([p[1] for p in points])
    slope, intercept = np.polyfit(x, y, 1)
    fit = intercept + slope * x
    ss_res = float(np.sum((y - fit) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return {
        "slope": float(slope),
        "intercept": float(intercept),
        "r_squared": r2,
        "max_residual": float(np.max(np.abs(y - fit))),
    }
