"""Threshold characterization — the machinery behind Figs. 4 and 5.

Two extraction methods are offered everywhere:

* ``"analytic"`` — invert the calibrated delay law (fast; the default
  for sweeps);
* ``"sim"`` — bisect the pass/fail boundary by repeatedly running the
  event-driven harness at constant rail levels (slow; the cross-check
  that the full simulation stack realizes the analytic design).

The test suite asserts the two agree to sub-millivolt precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from repro.analysis.thermometer import VoltageRange, decode_table
from repro.core.calibration import SensorDesign
from repro.core.sensor import SenseRail, SensorBitHarness
from repro.devices.technology import Technology
from repro.errors import CharacterizationError, ConfigurationError

Method = Literal["analytic", "sim"]


@dataclass(frozen=True)
class ArrayCharacteristic:
    """The full characteristic of one (array, delay code) pair.

    Attributes:
        code: Delay code 0..7.
        thresholds: Per-bit effective-supply thresholds, ascending, V.
        v_min: "All errors" endpoint (supply below which every stage
            fails) — the low end of the paper's Fig. 5 dynamic.
        v_max: "No errors" endpoint.
        table: (word, decoded range) rows from all-fail to all-pass.
    """

    code: int
    thresholds: tuple[float, ...]
    v_min: float
    v_max: float
    table: tuple[tuple[str, VoltageRange], ...]

    def word_at(self, v: float) -> str:
        """The word the array outputs at an effective supply level."""
        ones = sum(1 for t in self.thresholds if v > t)
        n = len(self.thresholds)
        return "".join("1" if i >= n - ones else "0" for i in range(n))


def _sim_threshold(design: SensorDesign, bit: int, code: int, *,
                   rail: SenseRail, tech: Technology | None,
                   v_lo: float, v_hi: float, tol: float) -> float:
    """Bisect the event-driven pass/fail boundary of one bit."""
    harness = SensorBitHarness(design, bit, rail, tech)

    def passes(level: float) -> bool:
        if rail is SenseRail.VDD:
            return harness.measure_once(code, vdd_n=level).passed
        return harness.measure_once(code, gnd_n=level).passed

    # For the VDD rail, higher supply passes; for GND, lower bounce does.
    hi_passes = passes(v_hi)
    lo_passes = passes(v_lo)
    increasing = rail is SenseRail.VDD
    if increasing and (lo_passes or not hi_passes):
        raise CharacterizationError(
            f"bit {bit}, code {code}: [{v_lo}, {v_hi}] does not bracket "
            f"the threshold (pass at lo={lo_passes}, hi={hi_passes})"
        )
    if not increasing and (hi_passes or not lo_passes):
        raise CharacterizationError(
            f"bit {bit}, code {code}: [{v_lo}, {v_hi}] does not bracket "
            f"the GND threshold"
        )
    lo, hi = v_lo, v_hi
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if passes(mid) == increasing:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


def characterize_bit_thresholds(
        design: SensorDesign, code: int, *,
        rail: SenseRail = SenseRail.VDD,
        tech: Technology | None = None,
        method: Method = "analytic",
        tol: float = 0.5e-3,
        bracket_pad: float = 0.15) -> tuple[float, ...]:
    """Per-bit thresholds of an array under one delay code.

    Returns effective-supply thresholds for the VDD rail and rail
    (bounce) thresholds for the GND rail, in bit order 1..N.

    Args:
        design: Calibrated design.
        code: Delay code 0..7.
        rail: Which array to characterize.
        tech: Corner technology.
        method: ``"analytic"`` or ``"sim"`` (bisected event simulation).
        tol: Bisection tolerance, volts (sim method).
        bracket_pad: Bisection bracket margin around the analytic
            estimate, volts (sim method).
    """
    analytic = tuple(
        design.bit_threshold(b, code, tech)
        for b in range(1, design.n_bits + 1)
    )
    if rail is SenseRail.GND:
        nominal = design.tech.vdd_nominal
        analytic = tuple(nominal - v for v in analytic)
    if method == "analytic":
        return analytic
    if method != "sim":
        raise ConfigurationError(f"unknown method {method!r}")
    out = []
    for b, est in zip(range(1, design.n_bits + 1), analytic):
        v_lo = est - bracket_pad
        v_hi = est + bracket_pad
        if rail is SenseRail.GND:
            v_lo = max(v_lo, 0.0)
        out.append(_sim_threshold(
            design, b, code, rail=rail, tech=tech,
            v_lo=v_lo, v_hi=v_hi, tol=tol,
        ))
    return tuple(out)


def characterize_array(design: SensorDesign,
                       codes: Sequence[int] = (1, 2, 3), *,
                       tech: Technology | None = None,
                       method: Method = "analytic",
                       ) -> dict[int, ArrayCharacteristic]:
    """Fig. 5: the multibit characteristic for several delay codes."""
    out: dict[int, ArrayCharacteristic] = {}
    for code in codes:
        thresholds = characterize_bit_thresholds(
            design, code, tech=tech, method=method,
        )
        table = tuple(decode_table(thresholds))
        out[code] = ArrayCharacteristic(
            code=code,
            thresholds=thresholds,
            v_min=thresholds[0],
            v_max=thresholds[-1],
            table=table,
        )
    return out


def threshold_vs_capacitance(
        design: SensorDesign, caps: Sequence[float], *,
        code: int = 3,
        tech: Technology | None = None,
        method: Method = "analytic",
        tol: float = 0.5e-3) -> list[tuple[float, float]]:
    """Fig. 4: failure threshold as a function of the DS trim cap.

    Args:
        design: Calibrated design.
        caps: Trim capacitances to characterize, farads.
        code: Delay code (the paper's Fig. 4 is consistent with 011).
        tech: Corner technology.
        method: ``"analytic"`` or ``"sim"``.
        tol: Sim bisection tolerance, volts.

    Returns:
        ``[(cap, threshold_v), ...]`` in the given cap order.
    """
    if not caps:
        raise ConfigurationError("caps must be non-empty")
    results: list[tuple[float, float]] = []
    inv = design.sensor_inverter(tech)
    ff = design.sense_flipflop(tech)
    window = design.effective_window(code, tech)
    d_pin = ff.pin("D").cap
    for cap in caps:
        if cap <= 0:
            raise ConfigurationError("caps must be positive")
        analytic = inv.model.supply_for_delay(window, cap + d_pin,
                                              v_hi=3.0)
        if method == "analytic":
            results.append((cap, float(analytic)))
            continue
        if method != "sim":
            raise ConfigurationError(f"unknown method {method!r}")
        probe = design.with_load_caps((cap,))
        v = _sim_threshold(
            probe, 1, code, rail=SenseRail.VDD, tech=tech,
            v_lo=analytic - 0.15, v_hi=analytic + 0.15, tol=tol,
        )
        results.append((cap, v))
    return results


def linearity_report(points: Sequence[tuple[float, float]]
                     ) -> dict[str, float]:
    """Least-squares linearity of a (x, y) characteristic.

    Returns slope, intercept, the coefficient of determination and the
    maximum absolute residual — the quantitative form of the paper's
    "linear behavior within the VDD-n range of interest" claim.
    """
    if len(points) < 3:
        raise ConfigurationError("need at least 3 points")
    x = np.array([p[0] for p in points])
    y = np.array([p[1] for p in points])
    slope, intercept = np.polyfit(x, y, 1)
    fit = intercept + slope * x
    ss_res = float(np.sum((y - fit) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return {
        "slope": float(slope),
        "intercept": float(intercept),
        "r_squared": r2,
        "max_residual": float(np.max(np.abs(y - fit))),
    }
