"""The assembled sensor system (paper Fig. 6).

One netlist contains: the HIGH-SENSE pulse generator, CP route and
sensor array (inverters on the noisy ``VDD-n``), optionally the
LOW-SENSE chain (inverters against the noisy ``GND-n``), all sense
flip-flops and digital blocks on the nominal rails.  The behavioural
CNTR FSM produces the timed P/CP stimulus (one PREPARE/SENSE pair per
measure) that enters each PG; everything downstream — PG skew, route
insertion, inverter slow-down under the noisy rail, FF sampling with
metastability — happens inside the event simulator.

This is the harness behind the paper's Fig. 9 trace and behind every
closed-loop experiment (droop capture, scan chains, DVFS guard-banding).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.thermometer import ThermometerWord, VoltageRange
from repro.core.array import SensorArray
from repro.core.calibration import SensorDesign
from repro.core.control import ControlFSM, MeasurementSchedule
from repro.core.encoder import EncodedMeasure, ThermometerEncoder
from repro.core.pulsegen import build_pg_netlist
from repro.core.sensor import SenseRail
from repro.devices.technology import Technology
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.netlist import Netlist
from repro.sim.waveform import Waveform
from repro.units import NS


@dataclass(frozen=True)
class MeasurementResult:
    """One decoded measurement from one array.

    Attributes:
        time: SENSE tick instant (raw CNTR clock time), seconds.
        launch_time: When the measured DS transition actually launched
            at the sensor inverters — the tick plus the PG/driver
            insertion delay.  This is the instant the reading refers
            to (the sensor's aperture), which matters when the rail
            moves fast relative to the insertion delay.
        rail: Which rail was measured.
        word: The thermometer output word.
        encoded: The ENC noise word (OUTE).
        decoded: The rail voltage range the word implies.
        prepare_word: The word captured during the preceding PREPARE
            phase (the paper's all-'0' check).
        any_metastable: True when any stage resolved metastably.
    """

    time: float
    launch_time: float
    rail: SenseRail
    word: ThermometerWord
    encoded: EncodedMeasure
    decoded: VoltageRange
    prepare_word: str
    any_metastable: bool


@dataclass(frozen=True)
class SystemRun:
    """All results of one measurement burst.

    Attributes:
        hs / ls: Decoded measures per chain.
        schedule: The raw CNTR stimulus schedule.
        events_processed: Simulator events in the run.
        switching_energy: Total dynamic energy of the sensor system
            during the burst, joules (the paper's "very low overhead in
            terms of power", measured).
    """

    hs: tuple[MeasurementResult, ...]
    ls: tuple[MeasurementResult, ...]
    schedule: MeasurementSchedule
    events_processed: int
    switching_energy: float


class SensorSystem:
    """The full sensor system of Fig. 6.

    Args:
        design: Calibrated sensor design.
        tech: Corner technology for every cell.
        clock_period: CNTR clock period, seconds.  Must exceed the
            slowest sensing window; the default 2 ns corresponds to the
            500 MHz-class CUT clocks the paper targets ("it can work
            with most of the typical CUTs system clock").
        include_ls: Build the LOW-SENSE chain as well.
    """

    def __init__(self, design: SensorDesign, *,
                 tech: Technology | None = None,
                 clock_period: float = 2.0 * NS,
                 include_ls: bool = True) -> None:
        if clock_period <= 0:
            raise ConfigurationError("clock_period must be positive")
        min_period = (design.cp_route_delay + max(design.delay_codes)
                      + 4 * design.sense_flipflop().clk_to_q)
        if clock_period < min_period:
            raise ConfigurationError(
                f"clock_period {clock_period:g}s below the minimum "
                f"{min_period:g}s required by the sensing window"
            )
        self.design = design
        self.tech = tech if tech is not None else design.tech
        self.clock_period = clock_period
        self.include_ls = include_ls
        self._build()

    def _build(self) -> None:
        design, t = self.design, self.tech
        nl = Netlist("sensor_system")
        nominal = design.tech.vdd_nominal
        nl.add_supply("VDD", nominal)
        nl.add_supply("GND", 0.0, is_ground=True)
        nl.add_supply("VDDN", nominal)
        nl.add_supply("GNDN", 0.0, is_ground=True)
        self.netlist = nl

        self._ports = {}
        self._build_chain(SenseRail.VDD, "h")
        if self.include_ls:
            self._build_chain(SenseRail.GND, "l")

    def _build_chain(self, rail: SenseRail, tag: str) -> None:
        """One PG + route + array chain (HS or LS)."""
        design, t, nl = self.design, self.tech, self.netlist
        inv_probe = design.sensor_inverter(t)
        ff_probe = design.sense_flipflop(t)
        p_load = design.n_bits * inv_probe.pin("A").cap
        route = design.cp_route_element(
            t, trim_load=design.n_bits * ff_probe.pin("CP").cap,
            name=f"route_{tag}",
        )
        cp_load = route.pin("A").cap
        _, pg_ports = build_pg_netlist(
            design, tech=t, netlist=nl, prefix=f"pg{tag}",
            p_out_load=p_load, cp_out_load=cp_load,
            vdd="VDD", gnd="GND",
        )
        cpd = f"CPD_{tag}"
        nl.add_net(cpd)
        nl.add_instance(f"route_{tag}", route,
                        {"A": pg_ports.cp_out, "Y": cpd},
                        vdd="VDD", gnd="GND")
        inv_vdd, inv_gnd = (("VDDN", "GND") if rail is SenseRail.VDD
                            else ("VDD", "GNDN"))
        for b in range(1, design.n_bits + 1):
            ds = f"DS{tag}{b}"
            out = f"OUT{tag}{b}"
            nl.add_net(ds, extra_cap=design.load_caps[b - 1])
            nl.add_net(out)
            inv = design.sensor_inverter(t, name=f"inv_{tag}{b}")
            ff = design.sense_flipflop(t, name=f"ff_{tag}{b}")
            nl.add_instance(f"inv_{tag}{b}", inv,
                            {"A": pg_ports.p_out, "Y": ds},
                            vdd=inv_vdd, gnd=inv_gnd)
            nl.add_instance(f"ff_{tag}{b}", ff,
                            {"D": ds, "CP": cpd, "Q": out},
                            vdd="VDD", gnd="GND")
        self._ports[tag] = pg_ports

    # -- running ----------------------------------------------------------

    def run(self, n_measures: int, *, code_hs: int = 3,
            code_ls: int = 3,
            vdd_n: Waveform | float | None = None,
            gnd_n: Waveform | float | None = None,
            start_time: float | None = None,
            max_events: int | None = None) -> SystemRun:
        """Run a burst of PREPARE/SENSE measures through the system.

        Args:
            n_measures: Number of measures in the burst.
            code_hs / code_ls: Delay codes for the HS / LS chains
                (Fig. 7's independent ``delay HS`` / ``delay LS``).
            vdd_n / gnd_n: Noisy rail waveforms (floats become constant
                rails).
            start_time: First FSM tick, seconds; defaults to two clock
                periods (leaves room for settling).
            max_events: Watchdog budget on simulator events (forwarded
                to :class:`~repro.sim.engine.SimulationEngine`); a run
                that exceeds it raises
                :class:`~repro.errors.SimulationError` instead of
                spinning forever on an oscillating netlist.  ``None``
                keeps the engine default.

        Returns:
            A :class:`SystemRun` with decoded HS and (if built) LS
            measures.
        """
        if n_measures < 1:
            raise ConfigurationError("n_measures must be positive")
        for code in (code_hs, code_ls):
            if not 0 <= code < 8:
                raise ConfigurationError(f"delay code {code} outside 0..7")
        t_start = (2 * self.clock_period if start_time is None
                   else start_time)
        if vdd_n is not None:
            self.netlist.set_supply_waveform("VDDN", vdd_n)
        if gnd_n is not None:
            self.netlist.set_supply_waveform("GNDN", gnd_n)

        engine = (SimulationEngine(self.netlist) if max_events is None
                  else SimulationEngine(self.netlist,
                                        max_events=max_events))
        schedules: dict[str, MeasurementSchedule] = {}
        chains = [("h", SenseRail.VDD, code_hs)]
        if self.include_ls:
            chains.append(("l", SenseRail.GND, code_ls))
        for tag, rail, code in chains:
            ports = self._ports[tag]
            bits = [code & 1, (code >> 1) & 1, (code >> 2) & 1]
            for s, b in zip(ports.selects, bits):
                engine.set_initial(s, b)
            fsm = ControlFSM(rail)
            sched = fsm.run_schedule(
                n_measures, clock_period=self.clock_period,
                start_time=t_start,
            )
            schedules[tag] = sched
            engine.set_initial(ports.p_in, rail.prepare_p)
            engine.set_initial(ports.cp_in, 0)
            for t_ev, v in sched.p_events:
                engine.schedule_stimulus(ports.p_in, v, t_ev)
            for t_ev, v in sched.cp_events:
                engine.schedule_stimulus(ports.cp_in, v, t_ev)
        engine.settle()
        for tag, _, _ in chains:
            for b in range(1, self.design.n_bits + 1):
                engine.set_initial(f"OUT{tag}{b}", 0)
        t_end = max(s.end_time for s in schedules.values()) \
            + 2 * self.clock_period
        engine.run(t_end)

        hs = self._collect(engine, "h", SenseRail.VDD, schedules["h"],
                           code_hs)
        ls: tuple[MeasurementResult, ...] = ()
        if self.include_ls:
            ls = self._collect(engine, "l", SenseRail.GND,
                               schedules["l"], code_ls)
        return SystemRun(
            hs=hs, ls=ls, schedule=schedules["h"],
            events_processed=engine.events_processed,
            switching_energy=engine.total_energy,
        )

    def _collect(self, engine: SimulationEngine, tag: str,
                 rail: SenseRail, sched: MeasurementSchedule,
                 code: int) -> tuple[MeasurementResult, ...]:
        design = self.design
        encoder = ThermometerEncoder(design.n_bits)
        decoder = SensorArray(design, rail, self.tech)
        p_out = self._ports[tag].p_out
        results = []
        for t_prep, t_sense in zip(sched.prepare_times,
                                   sched.sense_times):
            launch_edges = [
                t for t, v in engine.trace.transitions(p_out)
                if t_sense <= t < t_sense + self.clock_period
                and v == rail.sense_p
            ]
            launch_time = launch_edges[0] if launch_edges else t_sense
            word_bits = []
            prep_bits = []
            metastable = False
            for b in range(1, design.n_bits + 1):
                inst = f"ff_{tag}{b}"
                samples = engine.trace.samples_for(inst)
                sense = [s for s in samples
                         if t_sense <= s.time < t_sense
                         + self.clock_period]
                prep = [s for s in samples
                        if t_prep <= s.time < t_prep + self.clock_period]
                if not sense or not prep:
                    raise SimulationError(
                        f"{inst}: missing sample for measure at "
                        f"t={t_sense}"
                    )
                rec = sense[0]
                if "metastable" in rec.outcome or \
                        rec.outcome == "unresolved":
                    metastable = True
                word_bits.append(
                    1 if rec.value == rail.pass_value else 0
                )
                prep_bits.append(
                    1 if prep[0].value == rail.pass_value else 0
                )
            word = ThermometerWord(word_bits)
            results.append(MeasurementResult(
                time=t_sense,
                launch_time=launch_time,
                rail=rail,
                word=word,
                encoded=encoder.encode(word),
                decoded=decoder.decode(word, code, strict=False),
                prepare_word=ThermometerWord(prep_bits).to_string(),
                any_metastable=metastable,
            ))
        return tuple(results)

    def cell_stats(self) -> dict[str, int]:
        """Cell accounting of the built system (overhead bench)."""
        return self.netlist.stats()
