"""The PSN scan chain: sensor arrays replicated across the CUT.

The paper's closing pitch: "the sensor arrays (INVs plus FFs) can be
multiplied, so that measures in many points of the CUT are possible ...
This sensor system can be thought for PSN as scan chains are for data
faults."  This module realizes that: sensor sites placed on tiles of an
:class:`~repro.psn.grid.IRDropGrid`, each measuring its local rail
voltage, with the output words shifted out through a scan register —
producing a spatial IR-drop map from purely digital readout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.thermometer import ThermometerWord, VoltageRange
from repro.core.array import SensorArray
from repro.core.calibration import SensorDesign
from repro.core.sensor import SenseRail
from repro.errors import ConfigurationError
from repro.psn.grid import IRDropGrid


@dataclass(frozen=True)
class SiteMeasure:
    """One scan-chain site's reading.

    Attributes:
        site: Tile coordinates (row, col).
        true_voltage: The tile's actual rail voltage, volts.
        word: The site's thermometer word.
        decoded: The decoded rail range.
    """

    site: tuple[int, int]
    true_voltage: float
    word: ThermometerWord
    decoded: VoltageRange

    @property
    def estimate(self) -> float:
        return self.decoded.midpoint

    @property
    def brackets_truth(self) -> bool:
        return self.decoded.contains(self.true_voltage)


class PSNScanChain:
    """Sensor sites on a power grid, read out scan-chain style.

    Args:
        design: Calibrated sensor design (every site is identical —
            "identical control signals and sizes", Fig. 1 right).
        grid: The resistive power grid the CUT lives on.
        sites: Tile coordinates carrying a sensor array.
        code: Delay code used by every site.
    """

    def __init__(self, design: SensorDesign, grid: IRDropGrid,
                 sites: list[tuple[int, int]], *, code: int = 3) -> None:
        if not sites:
            raise ConfigurationError("need at least one sensor site")
        if len(set(sites)) != len(sites):
            raise ConfigurationError("duplicate sensor sites")
        for r, c in sites:
            grid.tile_index(r, c)  # bounds check
        if not 0 <= code < 8:
            raise ConfigurationError("code outside 0..7")
        self.design = design
        self.grid = grid
        self.sites = list(sites)
        self.code = code
        self.array = SensorArray(design, SenseRail.VDD)

    def measure_map(self, tile_currents: np.ndarray
                    ) -> list[SiteMeasure]:
        """Solve the grid and read every site.

        Returns per-site measures in chain order.
        """
        voltages = self.grid.solve(tile_currents)
        out: list[SiteMeasure] = []
        for (r, c) in self.sites:
            v = float(voltages[r, c])
            m = self.array.measure(self.code, vdd_n=v)
            out.append(SiteMeasure(
                site=(r, c),
                true_voltage=v,
                word=m.word,
                decoded=self.array.decode(m.word, self.code),
            ))
        return out

    def scan_out(self, measures: list[SiteMeasure]) -> list[int]:
        """Serialize the words like a scan chain shifts out.

        The last site in the chain appears first in the shifted stream
        (closest to the scan output), each word MSB (highest-threshold
        bit) first — so the stream is
        ``site[-1] msb..lsb, site[-2] msb..lsb, …``.
        """
        if len(measures) != len(self.sites):
            raise ConfigurationError(
                f"expected {len(self.sites)} measures, got {len(measures)}"
            )
        stream: list[int] = []
        for m in reversed(measures):
            stream.extend(int(ch) for ch in m.word.to_string())
        return stream

    def deserialize(self, stream: list[int]) -> list[ThermometerWord]:
        """Invert :meth:`scan_out`: stream -> per-site words in chain
        order.

        Raises:
            ConfigurationError: on a stream-length mismatch.
        """
        n = self.design.n_bits
        if len(stream) != n * len(self.sites):
            raise ConfigurationError(
                f"stream length {len(stream)} != {n * len(self.sites)}"
            )
        words: list[ThermometerWord] = []
        for k in range(len(self.sites)):
            chunk = stream[k * n:(k + 1) * n]
            words.append(ThermometerWord.from_string(
                "".join(str(b) for b in chunk)
            ))
        return list(reversed(words))

    def map_error(self, measures: list[SiteMeasure]) -> dict[str, float]:
        """Accuracy of the reconstructed spatial map.

        Returns RMS and worst-case midpoint errors plus the bracket
        rate (fraction of sites whose decoded range contains the true
        tile voltage — 1.0 within the measurable range for a calibrated
        sensor).
        """
        if not measures:
            raise ConfigurationError("measures must be non-empty")
        errors = [m.estimate - m.true_voltage for m in measures]
        return {
            "rmse": float(np.sqrt(np.mean(np.square(errors)))),
            "worst": float(np.max(np.abs(errors))),
            "bracket_rate": float(
                np.mean([m.brackets_truth for m in measures])
            ),
        }

    def hotspot_site(self, measures: list[SiteMeasure]
                     ) -> tuple[int, int]:
        """The site reporting the deepest droop (smallest estimate)."""
        if not measures:
            raise ConfigurationError("measures must be non-empty")
        worst = min(measures, key=lambda m: m.estimate)
        return worst.site
