"""Closed-loop supply guard-banding on sensor feedback.

The abstract's second use case: the sensed level can be "used by a
control block within the circuit under test (CUT) for the activation of
power aware policies".  :class:`GuardbandController` is that control
block as a policy object: it consumes decoded measurements, tracks the
worst level seen per decision epoch, and steps the supply setpoint
down (saving power) while the measured worst case clears the CUT's
minimum operating voltage by a margin — with hysteresis so the
setpoint does not chatter, and an emergency raise when a reading dips
below the floor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.analysis.thermometer import VoltageRange
from repro.errors import ConfigurationError


class GuardbandAction(enum.Enum):
    """Decision emitted at the end of each epoch."""

    LOWER = "lower"
    HOLD = "hold"
    RAISE = "raise"


@dataclass
class GuardbandController:
    """Sensor-driven DVS policy.

    Attributes:
        vmin: CUT minimum operating voltage, volts.
        margin: Required clearance of the measured worst case above
            ``vmin``, volts.
        step: Setpoint step per decision, volts.
        setpoint: Current supply setpoint, volts.
        hysteresis: Extra clearance required before *lowering* beyond
            what HOLD needs — prevents lower/raise chatter at the
            boundary.  Design rule: with quantized feedback the
            conservative (lower-edge) reading can sit a full LSB below
            the true level, so set ``hysteresis`` to at least the
            sensor's LSB (~32 mV for the paper's 7-stage ladder) or
            the loop limit-cycles.
        floor / ceiling: Setpoint clamp range, volts.
    """

    vmin: float
    margin: float
    step: float = 0.01
    setpoint: float = 1.0
    hysteresis: float = 0.005
    floor: float = 0.7
    ceiling: float = 1.1
    _epoch_worst: float = field(default=float("inf"), repr=False)
    _epoch_measures: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.vmin <= 0 or self.margin < 0 or self.step <= 0:
            raise ConfigurationError(
                "vmin must be > 0, margin >= 0, step > 0"
            )
        if self.hysteresis < 0:
            raise ConfigurationError("hysteresis must be >= 0")
        if not self.floor < self.ceiling:
            raise ConfigurationError("floor must be below ceiling")
        if not self.floor <= self.setpoint <= self.ceiling:
            raise ConfigurationError("setpoint outside [floor, ceiling]")

    # -- per-measurement path ------------------------------------------------

    def observe(self, reading: VoltageRange) -> None:
        """Feed one decoded measurement into the current epoch.

        The *lower edge* of the decoded range is used — the
        conservative interpretation of a quantized reading.
        """
        if reading.lo == float("-inf"):
            # Below the measurable range: treat as a hard violation.
            worst_case = self.vmin - self.margin - self.step
        else:
            worst_case = reading.lo
        self._epoch_worst = min(self._epoch_worst, worst_case)
        self._epoch_measures += 1

    def observe_many(self,
                     readings: "Sequence[VoltageRange] | np.ndarray"
                     ) -> None:
        """Feed a whole epoch's measurements at once.

        Equivalent to calling :meth:`observe` per reading (same worst
        tracker, same violation substitution for ``-inf`` edges) but as
        one array reduction — the guardband leg of a kernel-evaluated
        sweep hands its decoded lower edges straight in.

        Args:
            readings: Decoded :class:`VoltageRange` objects, or an
                array of their *lower edges* in volts (``-inf`` for
                below-range readings).
        """
        if len(readings) == 0:
            return
        if isinstance(readings[0], VoltageRange):
            lo = np.array([r.lo for r in readings], dtype=float)
        else:
            lo = np.asarray(readings, dtype=float)
        worst = np.where(np.isneginf(lo),
                         self.vmin - self.margin - self.step, lo)
        self._epoch_worst = min(self._epoch_worst, float(worst.min()))
        self._epoch_measures += int(lo.size)

    @property
    def epoch_worst(self) -> float:
        return self._epoch_worst

    # -- decision path -----------------------------------------------------------

    def decide(self) -> GuardbandAction:
        """Close the epoch: step the setpoint and reset the tracker.

        Raises:
            ConfigurationError: when no measurements were observed this
                epoch (deciding blind is a policy bug).
        """
        if self._epoch_measures == 0:
            raise ConfigurationError(
                "decide() called with no observations this epoch"
            )
        clearance = self._epoch_worst - (self.vmin + self.margin)
        self._epoch_worst = float("inf")
        self._epoch_measures = 0

        if clearance < 0:
            self.setpoint = min(self.setpoint + self.step, self.ceiling)
            return GuardbandAction.RAISE
        if clearance > self.step + self.hysteresis \
                and self.setpoint - self.step >= self.floor:
            self.setpoint = self.setpoint - self.step
            return GuardbandAction.LOWER
        return GuardbandAction.HOLD

    # -- reporting --------------------------------------------------------------

    def power_saving(self, *, nominal: float = 1.0) -> float:
        """Dynamic-power saving of the current setpoint vs. nominal
        (``1 - (V/Vnom)^2``)."""
        if nominal <= 0:
            raise ConfigurationError("nominal must be positive")
        return 1.0 - (self.setpoint / nominal) ** 2
