"""Auto-ranging measurement: exploit the programmable delay code.

The paper: "It allows to change on-site the Power Supply and Ground
ranges to be sensed" — the eight delay codes are overlapping measurement
ranges, exactly like a multimeter's.  :class:`AutoRangingMeter` turns
that into a policy: measure at the current code; if the word saturates
(all-pass / all-fail), step the code toward the signal and re-measure,
until the reading is interior or the code range is exhausted.

Works against any measurement backend exposing the analytic
:class:`~repro.core.array.SensorArray` interface; the event-driven
harness can be wrapped via :meth:`measure_with`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.thermometer import ThermometerWord, VoltageRange
from repro.core.array import SensorArray
from repro.core.calibration import SensorDesign
from repro.core.sensor import SenseRail
from repro.devices.technology import Technology
from repro.errors import ConfigurationError

#: A measurement backend: (code) -> output word.
MeasureFn = Callable[[int], ThermometerWord]


@dataclass(frozen=True)
class AutoRangedMeasure:
    """One auto-ranged reading.

    Attributes:
        word: The final (interior or best-effort) word.
        code: The delay code that produced it.
        decoded: The decoded rail range at that code.
        attempts: Number of measures spent, including re-ranges.
        saturated: True when even the extreme code saturated (signal
            outside the sensor's total dynamic).
    """

    word: ThermometerWord
    code: int
    decoded: VoltageRange
    attempts: int
    saturated: bool


class AutoRangingMeter:
    """Delay-code auto-ranging around a :class:`SensorArray` decode.

    Args:
        design: Calibrated design.
        rail: Which rail is being measured (decides which saturation
            direction means "signal too high").
        tech: Corner technology.
        initial_code: Code to try first (the paper's running example
            011).
        max_attempts: Re-range budget per reading.
        backend: Measurement driver (instance or registry spec, see
            :mod:`repro.backends`) answering :meth:`measure_level`
            readings; configured onto ``design``/``rail``/``tech`` at
            construction.  ``None`` keeps the built-in analytic array
            (and the kernel fast path of :meth:`scan_levels`, which
            always measures analytically).  Decoding always uses the
            analytic ladder — the meter's calibration — whatever
            driver produced the word.
    """

    def __init__(self, design: SensorDesign,
                 rail: SenseRail = SenseRail.VDD,
                 tech: Technology | None = None, *,
                 initial_code: int = 3,
                 max_attempts: int = 4,
                 backend: "object | str | None" = None) -> None:
        if not 0 <= initial_code < 8:
            raise ConfigurationError("initial_code outside 0..7")
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be positive")
        self.design = design
        self.rail = rail
        self.array = SensorArray(design, rail, tech)
        self.initial_code = initial_code
        self.max_attempts = max_attempts
        self.backend = None
        if backend is not None:
            from repro.backends import resolve_backend

            self.backend = resolve_backend(backend)
            self.backend.configure(design, rail=rail, tech=tech)

    def _next_code(self, code: int, word: ThermometerWord) -> int | None:
        """Step the code toward the saturated side, or None if stuck.

        All-pass on the VDD rail means the supply is above the range:
        a *smaller* skew (lower code) shifts the thresholds up.
        All-fail means the supply is below: a larger skew reaches down.
        The GND rail inverts the correspondence (its effective supply
        falls as the bounce grows).
        """
        if word.ones == word.n_bits:
            step = -1
        elif word.ones == 0:
            step = +1
        else:
            return None
        nxt = code + step
        if not 0 <= nxt < len(self.design.delay_codes):
            return None
        return nxt

    def measure_with(self, measure: MeasureFn) -> AutoRangedMeasure:
        """Auto-range using an arbitrary backend.

        Args:
            measure: Callable mapping a delay code to an output word
                (e.g. a lambda around an event-driven harness).
        """
        code = self.initial_code
        attempts = 0
        word = None
        while attempts < self.max_attempts:
            word = measure(code)
            attempts += 1
            nxt = self._next_code(code, word)
            if nxt is None:
                break
            code = nxt
        assert word is not None
        interior = 0 < word.ones < word.n_bits
        return AutoRangedMeasure(
            word=word,
            code=code,
            decoded=self.array.decode(word, code, strict=False),
            attempts=attempts,
            saturated=not interior,
        )

    def measure_level(self, *, vdd_n: float | None = None,
                      gnd_n: float | None = None) -> AutoRangedMeasure:
        """Auto-range one static rail level (configured driver, or the
        analytic array when none was given)."""
        if self.backend is not None:
            level = vdd_n if self.rail is SenseRail.VDD else gnd_n
            if level is None:
                raise ConfigurationError(
                    f"a {self.rail.value}-rail meter needs "
                    f"{'vdd_n' if self.rail is SenseRail.VDD else 'gnd_n'}="
                )

            def measure(code: int) -> ThermometerWord:
                word = self.backend.measure(float(level),
                                            code=code).word
                return ThermometerWord(word)

            return self.measure_with(measure)

        def measure(code: int) -> ThermometerWord:
            return self.array.measure(code, vdd_n=vdd_n,
                                      gnd_n=gnd_n).word

        return self.measure_with(measure)

    def scan_levels(self, levels: Sequence[float]
                    ) -> list[AutoRangedMeasure]:
        """Auto-range the analytic array at many static rail levels.

        One delay-law evaluation covers every (code, level, bit) cell
        up front — the per-level policy then just indexes words — so a
        dense guardband/autorange sweep costs one kernel pass instead
        of ``levels x attempts`` array measurements.  Per level the
        result equals :meth:`measure_level` exactly: pass/fail is the
        same ``window - delay > 0`` margin rule as
        :meth:`~repro.core.sensor.SensorBit.measure`, and the code
        walk replicates :meth:`measure_with` step for step.

        Args:
            levels: Static rail levels, volts — VDD-n for a VDD-rail
                meter, GND-n bounce for a GND-rail meter.
        """
        from repro.kernels import delay_grid, window_grid

        design = self.design
        tech = self.array.tech
        tech_eff = design.tech if tech is None else tech
        v = np.asarray(levels, dtype=float)
        if v.ndim != 1 or v.size == 0:
            raise ConfigurationError("levels must be a non-empty 1-D "
                                     "sequence of rail voltages")
        v_eff = v if self.rail is SenseRail.VDD \
            else design.tech.vdd_nominal - v

        windows = window_grid(design, None, tech)          # (codes,)
        d_pin_cap = design.sense_flipflop(tech).pin("D").cap
        loads = np.asarray(design.load_caps, dtype=float) + d_pin_cap
        c_total = tech_eff.intrinsic_cap_unit * design.sensor_strength \
            + loads                                        # (bits,)
        k_eff = tech_eff.drive_constant / design.sensor_strength
        delays = delay_grid(v_eff[:, None], c_total[None, :], k_eff,
                            tech_eff.vth, tech_eff.alpha)  # (levels, bits)
        margins = windows[:, None, None] - delays[None, :, :]
        words = (margins > 0.0).astype(np.uint8)   # (codes, levels, bits)
        ones = np.sum(words, axis=-1)              # (codes, levels)

        n_codes, n_levels = ones.shape
        n_bits = design.n_bits
        lanes = np.arange(n_levels)
        codes = np.full(n_levels, self.initial_code, dtype=int)
        meas_code = codes.copy()
        attempts = np.zeros(n_levels, dtype=int)
        active = np.ones(n_levels, dtype=bool)
        for _ in range(self.max_attempts):
            meas_code = np.where(active, codes, meas_code)
            attempts += active
            k = ones[meas_code, lanes]
            step = np.where(k == n_bits, -1, np.where(k == 0, +1, 0))
            nxt = meas_code + step
            ok = active & (step != 0) & (nxt >= 0) & (nxt < n_codes)
            # A lane whose budget survives steps its code; the scalar
            # loop applies that step even when the next measure never
            # happens, so the final code may trail the final word by
            # one range.
            codes = np.where(ok, nxt, codes)
            active = ok
            if not active.any():
                break

        out: list[AutoRangedMeasure] = []
        for i in range(n_levels):
            word = ThermometerWord(
                tuple(int(b) for b in words[meas_code[i], i])
            )
            k = int(ones[meas_code[i], i])
            out.append(AutoRangedMeasure(
                word=word,
                code=int(codes[i]),
                decoded=self.array.decode(word, int(codes[i]),
                                          strict=False),
                attempts=int(attempts[i]),
                saturated=not 0 < k < n_bits,
            ))
        return out

    def total_dynamic(self) -> tuple[float, float]:
        """The sensor's full measurable span across all codes, in
        effective-supply volts: (code-7 low end, code-0 high end)."""
        lo = self.design.bit_threshold(1, 7)
        hi = self.design.bit_threshold(self.design.n_bits, 0)
        return lo, hi
