"""Auto-ranging measurement: exploit the programmable delay code.

The paper: "It allows to change on-site the Power Supply and Ground
ranges to be sensed" — the eight delay codes are overlapping measurement
ranges, exactly like a multimeter's.  :class:`AutoRangingMeter` turns
that into a policy: measure at the current code; if the word saturates
(all-pass / all-fail), step the code toward the signal and re-measure,
until the reading is interior or the code range is exhausted.

Works against any measurement backend exposing the analytic
:class:`~repro.core.array.SensorArray` interface; the event-driven
harness can be wrapped via :meth:`measure_with`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.thermometer import ThermometerWord, VoltageRange
from repro.core.array import SensorArray
from repro.core.calibration import SensorDesign
from repro.core.sensor import SenseRail
from repro.devices.technology import Technology
from repro.errors import ConfigurationError

#: A measurement backend: (code) -> output word.
MeasureFn = Callable[[int], ThermometerWord]


@dataclass(frozen=True)
class AutoRangedMeasure:
    """One auto-ranged reading.

    Attributes:
        word: The final (interior or best-effort) word.
        code: The delay code that produced it.
        decoded: The decoded rail range at that code.
        attempts: Number of measures spent, including re-ranges.
        saturated: True when even the extreme code saturated (signal
            outside the sensor's total dynamic).
    """

    word: ThermometerWord
    code: int
    decoded: VoltageRange
    attempts: int
    saturated: bool


class AutoRangingMeter:
    """Delay-code auto-ranging around a :class:`SensorArray` decode.

    Args:
        design: Calibrated design.
        rail: Which rail is being measured (decides which saturation
            direction means "signal too high").
        tech: Corner technology.
        initial_code: Code to try first (the paper's running example
            011).
        max_attempts: Re-range budget per reading.
    """

    def __init__(self, design: SensorDesign,
                 rail: SenseRail = SenseRail.VDD,
                 tech: Technology | None = None, *,
                 initial_code: int = 3,
                 max_attempts: int = 4) -> None:
        if not 0 <= initial_code < 8:
            raise ConfigurationError("initial_code outside 0..7")
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be positive")
        self.design = design
        self.rail = rail
        self.array = SensorArray(design, rail, tech)
        self.initial_code = initial_code
        self.max_attempts = max_attempts

    def _next_code(self, code: int, word: ThermometerWord) -> int | None:
        """Step the code toward the saturated side, or None if stuck.

        All-pass on the VDD rail means the supply is above the range:
        a *smaller* skew (lower code) shifts the thresholds up.
        All-fail means the supply is below: a larger skew reaches down.
        The GND rail inverts the correspondence (its effective supply
        falls as the bounce grows).
        """
        if word.ones == word.n_bits:
            step = -1
        elif word.ones == 0:
            step = +1
        else:
            return None
        nxt = code + step
        if not 0 <= nxt < len(self.design.delay_codes):
            return None
        return nxt

    def measure_with(self, measure: MeasureFn) -> AutoRangedMeasure:
        """Auto-range using an arbitrary backend.

        Args:
            measure: Callable mapping a delay code to an output word
                (e.g. a lambda around an event-driven harness).
        """
        code = self.initial_code
        attempts = 0
        word = None
        while attempts < self.max_attempts:
            word = measure(code)
            attempts += 1
            nxt = self._next_code(code, word)
            if nxt is None:
                break
            code = nxt
        assert word is not None
        interior = 0 < word.ones < word.n_bits
        return AutoRangedMeasure(
            word=word,
            code=code,
            decoded=self.array.decode(word, code, strict=False),
            attempts=attempts,
            saturated=not interior,
        )

    def measure_level(self, *, vdd_n: float | None = None,
                      gnd_n: float | None = None) -> AutoRangedMeasure:
        """Auto-range the analytic array at a static rail level."""
        def backend(code: int) -> ThermometerWord:
            return self.array.measure(code, vdd_n=vdd_n,
                                      gnd_n=gnd_n).word

        return self.measure_with(backend)

    def total_dynamic(self) -> tuple[float, float]:
        """The sensor's full measurable span across all codes, in
        effective-supply volts: (code-7 low end, code-0 high end)."""
        lo = self.design.bit_threshold(1, 7)
        hi = self.design.bit_threshold(self.design.n_bits, 0)
        return lo, hi
