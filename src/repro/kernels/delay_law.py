"""Vectorized alpha-power delay law and its inverse.

The scalar model (:mod:`repro.devices.mosfet`) evaluates

    d(V) = (k / strength) * (C_int + C) * g(V),
    g(V) = V / (V - vth)**alpha,

one point at a time and inverts it with per-point ``brentq``.  This
module evaluates and inverts the same law over whole NumPy grids:

* :func:`voltage_factor_grid` / :func:`delay_grid` are elementwise and
  **bit-identical** to the scalar path (same operations, same order,
  IEEE-754 doubles either way);
* :func:`solve_voltage_factor` inverts ``g(V) = G`` with a safeguarded
  Newton-bisection iteration run in log space, converged until the
  per-lane bracket collapses to a few ulps — *more* accurate than the
  scalar oracle's ``brentq(xtol=1e-9)``, hence within ``2e-9`` V of it
  (see :mod:`repro.kernels`).

Batch invariance: every update is elementwise and converged lanes are
frozen by masks, so solving lanes one at a time returns bit-identical
floats to solving the whole grid at once.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels.backend import active_backend, compiled_solver
from repro.kernels.dtype import resolve_dtype
from repro.runtime.profiling import phase

#: Iteration ceiling for the safeguarded solver.  Pure bisection needs
#: ~60 iterations to collapse a [vth, v_hi] bracket to ulps; Newton
#: typically finishes in < 10.  Hitting the ceiling raises.
_MAX_ITER = 128


def voltage_factor_grid(v: np.ndarray, vth: np.ndarray | float,
                        alpha: np.ndarray | float, *,
                        dtype: "np.dtype | str | None" = None
                        ) -> np.ndarray:
    """``g(V) = V / (V - vth)**alpha`` elementwise; ``+inf`` at or
    below threshold (the gate never switches).

    ``dtype`` selects the working precision (see
    :mod:`repro.kernels.dtype`); the float64 default is bit-identical
    to the scalar path.
    """
    dt = resolve_dtype(dtype)
    v = np.asarray(v, dtype=dt)
    vth = np.asarray(vth, dtype=dt)
    alpha = np.asarray(alpha, dtype=dt)
    headroom = v - vth
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(headroom > 0.0,
                     v / np.power(np.abs(headroom), alpha), np.inf)
    return g


def delay_grid(v: np.ndarray, c_total: np.ndarray | float,
               k_eff: np.ndarray | float, vth: np.ndarray | float,
               alpha: np.ndarray | float) -> np.ndarray:
    """Propagation delay ``k_eff * c_total * g(V)`` elementwise, s.

    ``k_eff`` is the strength-scaled drive constant
    ``drive_constant / strength`` and ``c_total`` the *total* load
    (intrinsic + external), matching
    :meth:`repro.devices.mosfet.AlphaPowerModel.delay` at zero input
    slew operation for operation.
    """
    return k_eff * c_total * voltage_factor_grid(v, vth, alpha)


def _iterate_numpy(lo: np.ndarray, hi: np.ndarray, vth_f: np.ndarray,
                   alpha_f: np.ndarray, log_g: np.ndarray) -> np.ndarray:
    """The vectorized safeguarded Newton-bisection core.

    Masked full-grid iteration: converged lanes are frozen, so lane
    results are independent of which other lanes are in the batch
    (batch invariance).  The compiled backend
    (:mod:`repro.kernels.backend`) mirrors this loop operation for
    operation, one lane at a time.
    """
    x = 0.5 * (lo + hi)
    active = np.ones(x.shape, dtype=bool)
    for _ in range(_MAX_ITER):
        # f(x) = ln g(x) - ln G, strictly decreasing in x.
        headroom = np.where(active, x - vth_f, 1.0)
        f = np.log(x) - alpha_f * np.log(headroom) - log_g
        above = f > 0.0  # root is above x
        lo = np.where(active & above, x, lo)
        hi = np.where(active & ~above, x, hi)
        # Newton proposal on the log form.
        fprime = 1.0 / x - alpha_f / headroom
        step = f / fprime
        cand = x - step
        inside = np.isfinite(cand) & (cand > lo) & (cand < hi)
        cand = np.where(inside, cand, 0.5 * (lo + hi))
        x = np.where(active, cand, x)
        # A lane converges when its bracket spans <= 2 ulps.
        done = (hi - lo) <= 2.0 * np.spacing(hi)
        newly = active & done
        if np.any(newly):
            x = np.where(newly, 0.5 * (lo + hi), x)
            active &= ~done
        if not np.any(active):
            break
    else:  # pragma: no cover - defensive
        raise ConfigurationError(
            "voltage-factor solve failed to converge"
        )
    return x


def solve_voltage_factor(g_target: np.ndarray,
                         vth: np.ndarray | float,
                         alpha: np.ndarray | float, *,
                         v_hi: float = 3.0,
                         dtype: "np.dtype | str | None" = None
                         ) -> np.ndarray:
    """Invert ``g(V) = g_target`` elementwise for ``V`` in (vth, v_hi].

    ``g`` is strictly decreasing on ``(vth, inf)`` for ``alpha >= 1``,
    so the root is unique when it exists.  The iteration maintains a
    per-lane bracket ``[lo, hi]`` and proposes Newton steps on
    ``f(V) = ln(V) - alpha * ln(V - vth) - ln(G)`` (smooth, no
    overflow near the pole); a step outside the open bracket falls
    back to bisection.  Lanes terminate — and are *frozen*, for batch
    invariance — once their bracket spans <= 2 ulps.

    Args:
        g_target: Target voltage factors, any broadcastable shape.
        vth: Threshold voltage(s), broadcastable to ``g_target``.
        alpha: Velocity-saturation index(es), broadcastable.
        v_hi: Upper bracket, volts (the scalar oracle's
            ``supply_for_delay(..., v_hi=...)``).
        dtype: Working precision (see :mod:`repro.kernels.dtype`);
            float32 solves carry the documented
            :data:`~repro.kernels.dtype.FLOAT32_THRESHOLD_BOUND_V`
            error bound against the float64 oracle.

    Returns:
        Array of solved supplies, shaped like the broadcast inputs.

    Raises:
        ConfigurationError: a lane has no root in ``(vth, v_hi]`` —
            mirroring the scalar oracle's bracket errors — or the
            iteration ceiling is hit (never observed; defensive).
    """
    with phase("kernel.solve"):
        dt = resolve_dtype(dtype)
        g_target, vth, alpha = np.broadcast_arrays(
            np.asarray(g_target, dtype=dt),
            np.asarray(vth, dtype=dt),
            np.asarray(alpha, dtype=dt),
        )
        shape = g_target.shape
        g_t = g_target.ravel().astype(dt)
        vth_f = np.ascontiguousarray(vth, dtype=dt).ravel()
        alpha_f = np.ascontiguousarray(alpha, dtype=dt).ravel()

        if not np.all(np.isfinite(g_t) & (g_t > 0.0)):
            raise ConfigurationError(
                "g_target must be positive and finite "
                "(a non-positive target delay has no threshold)"
            )
        lo = vth_f + 1e-6
        hi = np.full_like(lo, float(v_hi))
        if np.any(lo >= hi):
            raise ConfigurationError(
                f"v_hi={v_hi} does not clear the threshold bracket"
            )
        # Root exists iff g(lo) > G (slow enough near the pole; always
        # true for a finite target since g -> inf) and g(hi) < G (the
        # gate beats the target at full rail).
        g_hi = voltage_factor_grid(hi, vth_f, alpha_f)
        if np.any(g_hi >= g_t):
            raise ConfigurationError(
                "gate is slower than the target even at the upper "
                "bracket; no threshold exists in the interval"
            )
        g_lo = voltage_factor_grid(lo, vth_f, alpha_f)
        bad = g_lo <= g_t
        if np.any(bad):
            # Mirror the scalar nudge: step off the pole and re-check.
            lo = np.where(bad, vth_f + 1e-4, lo)
            g_lo = voltage_factor_grid(lo, vth_f, alpha_f)
            if np.any(g_lo < g_t):
                raise ConfigurationError(
                    "gate is faster than the target even at the lower "
                    "bracket; no threshold exists in the interval"
                )

        log_g = np.log(g_t)
        solver = compiled_solver() \
            if active_backend() == "numba" else None
        if solver is not None:
            x = np.asarray(solver(lo, hi, vth_f, alpha_f, log_g,
                                  _MAX_ITER))
            if np.any(np.isnan(x)):  # pragma: no cover - defensive
                raise ConfigurationError(
                    "voltage-factor solve failed to converge"
                )
        else:
            x = _iterate_numpy(lo, hi, vth_f, alpha_f, log_g)
        return x.reshape(shape)


def solve_supply_for_delay(target_delay: np.ndarray,
                           c_total: np.ndarray | float,
                           k_eff: np.ndarray | float,
                           vth: np.ndarray | float,
                           alpha: np.ndarray | float, *,
                           v_hi: float = 3.0,
                           dtype: "np.dtype | str | None" = None
                           ) -> np.ndarray:
    """Invert the full delay law elementwise: the supply ``V*`` at
    which ``k_eff * c_total * g(V*)`` equals ``target_delay``.

    The vectorized analogue of
    :meth:`repro.devices.mosfet.AlphaPowerModel.supply_for_delay`.

    Raises:
        ConfigurationError: non-positive targets or loads, or a lane
            with no root in the bracket.
    """
    target_delay = np.asarray(target_delay, dtype=float)
    c_total = np.asarray(c_total, dtype=float)
    if np.any(target_delay <= 0.0):
        raise ConfigurationError("target_delay must be positive")
    if np.any(c_total <= 0.0):
        raise ConfigurationError("total load must be positive")
    g_target = target_delay / (np.asarray(k_eff, dtype=float) * c_total)
    return solve_voltage_factor(g_target, vth, alpha, v_hi=v_hi,
                                dtype=dtype)
