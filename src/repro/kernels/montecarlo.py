"""Batched Monte-Carlo s-curve kernels.

The scalar statistical flows (:mod:`repro.analysis.repeatability`)
measure one noisy draw at a time: build a
:class:`~repro.core.sensor.SensorBit`, evaluate the delay law, compare
against the sensing window, repeat ``trials x levels x bits`` times.
These kernels evaluate the same pass/fail decision over whole draw
cubes at once:

* :func:`trip_margin_grid` / :func:`trip_grid` — setup margin and
  pass/fail over arbitrary draw shapes, **bit-identical** to
  :meth:`repro.core.sensor.SensorBit.measure` (same delay-law
  arithmetic elementwise, same strict ``margin > 0`` comparison);
* :func:`word_grid_mc` / :func:`word_histogram_grid` — whole-array
  words and word-string histograms for repeated noisy measures,
  reproducing :func:`repro.analysis.repeatability.word_histogram`
  exactly;
* :func:`s_curve_trip_probability` — the batched Fig. 4/Fig. 5
  s-curve sweep: every (bit x level x trial) mismatch draw comes from
  one :class:`numpy.random.Generator` call per bit, pass/fail is one
  vectorized margin evaluation, and the returned trip-probability grid
  equals the scalar per-draw sweep *exactly* under the seed-threading
  scheme below.

Seed-threading scheme (``MC_SEED_SCHEME``)
------------------------------------------

Ladder extraction seeds bit ``b`` with child ``b - 1`` of
``numpy.random.SeedSequence(seed).spawn(n_bits)`` (see
:func:`spawn_bit_seeds`).  Three properties make serial, process-pool
and kernel paths statistically bit-identical:

1. a child's stream is a pure function of ``(seed, bit)`` — pool
   scheduling order cannot change any bit's draws;
2. children are cryptographically independent — no overlap between
   ``seed`` and ``seed + 1`` ladders (the old ``seed + bit`` scheme
   aliased adjacent roots);
3. a single ``Generator.normal(size=(levels, trials))`` call fills in
   C order, so the batched draw cube equals the scalar path's
   per-level sequential draws from the same generator, float for
   float.

Instrumented under the ``kernel.mc`` profiler phase.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels.delay_law import voltage_factor_grid
from repro.runtime.profiling import phase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.calibration import SensorDesign
    from repro.devices.technology import Technology

#: Version tag of the documented ladder seed-threading scheme; folded
#: into result-cache keys so fits drawn under the old ``seed + bit``
#: scheme can never alias the spawn-based ones.
MC_SEED_SCHEME = "mc-seedseq-spawn/v1"


def spawn_bit_seeds(seed: int | np.random.SeedSequence,
                    n_bits: int) -> tuple[np.random.SeedSequence, ...]:
    """Per-bit child seeds: ``SeedSequence(seed).spawn(n_bits)``.

    Bit ``b`` (1-based) consumes child ``b - 1``.  This is the
    documented seed-threading scheme (``MC_SEED_SCHEME``): every
    consumer — serial loop, process-pool task, batched kernel — that
    needs bit ``b``'s draws builds ``default_rng(children[b - 1])``
    and gets the identical stream.
    """
    if n_bits < 1:
        raise ConfigurationError("n_bits must be positive")
    root = seed if isinstance(seed, np.random.SeedSequence) \
        else np.random.SeedSequence(seed)
    return tuple(root.spawn(n_bits))


def _bits_array(design: "SensorDesign",
                bits: Iterable[int] | None) -> np.ndarray:
    idx = np.arange(1, design.n_bits + 1) if bits is None \
        else np.asarray(list(bits), dtype=int)
    if idx.size < 1:
        raise ConfigurationError("need at least one bit")
    if idx.min() < 1 or idx.max() > design.n_bits:
        raise ConfigurationError(
            f"bit outside 1..{design.n_bits}: {idx.tolist()}"
        )
    return idx


def effective_supply_grid(design: "SensorDesign", draws: np.ndarray,
                          rail: str = "vdd") -> np.ndarray:
    """Rail draws -> effective inverter supplies, elementwise.

    The vectorized :meth:`repro.core.sensor.SensorBit.effective_supply`:
    HIGH-SENSE (``rail="vdd"``) passes the draw through; LOW-SENSE
    (``rail="gnd"``) sees ``vdd_nominal - draw``.
    """
    draws = np.asarray(draws, dtype=float)
    if rail == "vdd":
        return draws
    if rail == "gnd":
        return design.tech.vdd_nominal - draws
    raise ConfigurationError(f"unknown rail {rail!r} (use 'vdd'/'gnd')")


def _delay_law_terms(design: "SensorDesign", idx: np.ndarray,
                     tech: "Technology | None"
                     ) -> tuple[np.ndarray, float, float, float]:
    """Per-bit ``(c_total, k_eff, vth, alpha)`` of the scalar measure.

    Composed exactly as :meth:`SensorBit.measure` ->
    :meth:`SensorDesign.ds_external_load` ->
    :meth:`AlphaPowerModel.delay` does: ``c_total = intrinsic +
    (trim_cap + D-pin cap)``, ``k_eff = drive_constant / strength``.
    """
    tech_eff = design.tech if tech is None else tech
    d_pin_cap = design.sense_flipflop(tech).pin("D").cap
    loads = np.asarray(design.load_caps, dtype=float)[idx - 1] \
        + d_pin_cap
    c_total = tech_eff.intrinsic_cap_unit * design.sensor_strength \
        + loads
    k_eff = tech_eff.drive_constant / design.sensor_strength
    return c_total, k_eff, tech_eff.vth, tech_eff.alpha


def trip_margin_grid(design: "SensorDesign", v_eff: np.ndarray, *,
                     code: int, bits: Iterable[int] | None = None,
                     tech: "Technology | None" = None,
                     dtype: "np.dtype | str | None" = None) -> np.ndarray:
    """Setup margins ``window - d_inv`` over a draw grid, seconds.

    ``out[..., i]`` is the margin of ``bits[i]`` at effective supply
    ``v_eff[...]`` — exactly the ``setup_margin`` of the scalar
    :meth:`~repro.core.sensor.SensorBit.measure` (same elementwise
    delay-law arithmetic, so the sign matches float for float).
    Supplies at or below threshold give ``-inf`` (the gate never
    switches — a clean miss, as in the scalar path).

    Args:
        design: Calibrated design.
        v_eff: Effective supplies, any shape; a bit axis is appended.
        code: Delay code 0..7.
        bits: Bit numbers 1..n_bits (last-axis order); None = all.
        tech: Corner technology of the sensor inverters and the
            window-defining blocks (the scalar measure's convention).
    """
    with phase("kernel.mc"):
        from repro.kernels.dtype import resolve_dtype

        dt = resolve_dtype(dtype)
        idx = _bits_array(design, bits)
        window = design.effective_window(code, tech)
        c_total, k_eff, vth, alpha = _delay_law_terms(design, idx, tech)
        v = np.asarray(v_eff, dtype=dt)
        g = voltage_factor_grid(v[..., None], vth, alpha, dtype=dt)
        w = np.asarray(window, dtype=dt)
        scale = np.asarray(k_eff * c_total, dtype=dt)
        with np.errstate(invalid="ignore"):
            margins = w - scale * g
        return margins


def trip_grid(design: "SensorDesign", v_eff: np.ndarray, *,
              code: int, bits: Iterable[int] | None = None,
              tech: "Technology | None" = None) -> np.ndarray:
    """Pass/fail over a draw grid: ``margin > 0`` (strict, matching
    the scalar measure's comparison).  Shape ``v_eff.shape + (bits,)``.
    """
    return trip_margin_grid(design, v_eff, code=code, bits=bits,
                            tech=tech) > 0.0


def word_grid_mc(design: "SensorDesign", v_eff: np.ndarray, *,
                 code: int,
                 tech: "Technology | None" = None) -> np.ndarray:
    """Whole-array output words per draw: uint8, bit 1 first.

    Equals the word of :meth:`repro.core.array.SensorArray.measure` at
    each draw (analytic per-bit pass/fail; thresholds ascend with bit
    index, so the words are valid thermometer codes by construction).
    """
    return trip_grid(design, v_eff, code=code, tech=tech) \
        .astype(np.uint8)


def word_histogram_grid(words: np.ndarray) -> dict[str, int]:
    """Word-string histogram of a ``(measures, n_bits)`` word grid.

    Strings render MSB-first (``ThermometerWord.to_string``); counts
    equal the scalar ``Counter`` loop exactly.
    """
    with phase("kernel.mc"):
        w = np.asarray(words)
        if w.ndim != 2 or w.shape[1] < 1:
            raise ConfigurationError(
                f"expected a (measures, n_bits) word grid, got {w.shape}"
            )
        uniq, counts = np.unique(w, axis=0, return_counts=True)
        return {
            "".join(str(int(b)) for b in row[::-1]): int(c)
            for row, c in zip(uniq, counts)
        }


def s_curve_levels(design: "SensorDesign", *, code: int,
                   noise_rms: float, span_sigmas: float = 4.0,
                   n_levels: int = 15,
                   bits: Iterable[int] | None = None) -> np.ndarray:
    """Per-bit sweep levels ``threshold +- span_sigmas * noise_rms``.

    Centers come from the *scalar* :meth:`SensorDesign.bit_threshold`
    (``brentq``), not the vectorized solver: the sweep grid must equal
    the scalar oracle's float for float so the noisy draws — which add
    to these levels — coincide exactly.  O(bits) root solves are
    negligible against the draw cube.

    Returns:
        ``(n_sel_bits, n_levels)`` nominal levels, volts.
    """
    idx = _bits_array(design, bits)
    half = span_sigmas * noise_rms
    return np.stack([
        np.linspace(design.bit_threshold(int(b), code) - half,
                    design.bit_threshold(int(b), code) + half,
                    n_levels)
        for b in idx
    ])


def s_curve_trip_probability(
    design: "SensorDesign", *, code: int, noise_rms: float,
    n_per_level: int, seeds: Sequence[int | np.random.SeedSequence],
    span_sigmas: float = 4.0, n_levels: int = 15,
    bits: Iterable[int] | None = None,
    tech: "Technology | None" = None,
    dtype: "np.dtype | str | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched s-curve sweep: trip probabilities for many stages.

    For each selected bit, all ``n_levels x n_per_level`` mismatch
    draws come from a single ``Generator.normal`` call seeded with that
    bit's entry of ``seeds`` (see :func:`spawn_bit_seeds`), and
    pass/fail is one vectorized margin evaluation — the kernel behind
    :func:`repro.analysis.repeatability.measure_s_curve`.

    Returns:
        ``(levels, probs)`` — both ``(n_sel_bits, n_levels)``; probs
        equal the scalar per-draw sweep exactly under the seed scheme.
    """
    if noise_rms <= 0:
        raise ConfigurationError(
            "noise_rms must be positive (an S-curve needs noise)"
        )
    if n_levels < 5 or n_per_level < 10:
        raise ConfigurationError("need >= 5 levels and >= 10 measures")
    idx = _bits_array(design, bits)
    if len(seeds) != idx.size:
        raise ConfigurationError(
            f"got {len(seeds)} seeds for {idx.size} bits"
        )
    levels = s_curve_levels(design, code=code, noise_rms=noise_rms,
                            span_sigmas=span_sigmas, n_levels=n_levels,
                            bits=idx)
    draws = np.empty((idx.size, n_levels, n_per_level))
    for i, seed in enumerate(seeds):
        rng = np.random.default_rng(seed)
        draws[i] = levels[i][:, None] + rng.normal(
            0.0, noise_rms, size=(n_levels, n_per_level)
        )
    with phase("kernel.mc"):
        from repro.kernels.dtype import resolve_dtype

        dt = resolve_dtype(dtype)
        # One margin evaluation for the whole (bit, level, trial)
        # cube; each bit's lane pairs with its own load capacitance
        # along axis 0, so the cube stays O(bits * levels * trials).
        window = design.effective_window(code, tech)
        c_total, k_eff, vth, alpha = _delay_law_terms(design, idx, tech)
        g = voltage_factor_grid(draws, vth, alpha, dtype=dt)
        w = np.asarray(window, dtype=dt)
        scale = np.asarray(k_eff * c_total, dtype=dt)
        with np.errstate(invalid="ignore"):
            margins = w - scale[:, None, None] * g
        passes = np.count_nonzero(margins > 0.0, axis=-1)
        probs = passes / n_per_level
    return levels, probs
