"""Optional compiled kernel backend (Numba), behind the same interface.

The delay-law inverse (:func:`~repro.kernels.delay_law.
solve_voltage_factor`) is the one genuinely iterative kernel: a
safeguarded Newton-bisection per lane.  The vectorized NumPy form pays
for full-grid temporaries on every iteration even though most lanes
converge early; a compiled scalar loop visits each lane once and stops
the moment its bracket collapses.  When `numba <https://numba.pydata.
org>`_ is importable, this module provides exactly that loop —
``@njit``-compiled, mirroring the NumPy iteration *operation for
operation* (same bracket updates, same Newton proposal, same 2-ulp
stopping rule) so the two backends are bit-identical and consumers
never need to know which one ran.

Selection: ``$REPRO_KERNEL_BACKEND`` is ``auto`` (default — use numba
when importable), ``numpy`` (force the pure-NumPy path; what the CI
no-numba leg pins) or ``numba`` (require the compiled path; raises
when numba is missing).  The active backend is folded into cache
fingerprints via :func:`backend_token` and into committed BENCH files
via the machine fingerprint, so artifacts and timings from different
backends are never conflated.

Degradation: a numba that imports but fails to *compile* (ABI skew,
unsupported platform) disables the compiled path for the process with
a warning and falls back to NumPy — never a crash, and (because the
loops are bit-identical) never a numerics change.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Callable

from repro.errors import ConfigurationError

#: Environment variable selecting the kernel backend.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

_BACKENDS = ("auto", "numpy", "numba")

#: Set after a compile failure: the compiled path is disabled for the
#: rest of the process (NumPy fallback, single warning).
_disabled = False

_compiled: Callable[..., Any] | None = None

_UNPROBED = object()
_numba_version_cache: Any = _UNPROBED


def numba_version() -> str | None:
    """The importable numba's version string, or ``None``.

    Probed once per process: Python does not cache *failed* imports,
    and this sits on the solver hot path.
    """
    global _numba_version_cache
    if _numba_version_cache is _UNPROBED:
        try:
            import numba  # type: ignore[import-not-found]
        except ImportError:
            _numba_version_cache = None
        else:
            _numba_version_cache = str(numba.__version__)
    return _numba_version_cache


def requested_backend() -> str:
    """The backend asked for via ``$REPRO_KERNEL_BACKEND`` (validated;
    default ``"auto"``)."""
    raw = os.environ.get(KERNEL_BACKEND_ENV, "").strip() or "auto"
    if raw not in _BACKENDS:
        raise ConfigurationError(
            f"${KERNEL_BACKEND_ENV}={raw!r} is not a kernel backend "
            f"(use one of {_BACKENDS})"
        )
    return raw


def active_backend() -> str:
    """The backend that will actually run: ``"numba"`` or ``"numpy"``.

    ``auto`` resolves to numba only when it imports; an explicit
    ``numba`` request without an importable numba raises (a silent
    fallback would invalidate any perf claim the caller is making).
    """
    req = requested_backend()
    if req == "numpy":
        return "numpy"
    available = numba_version() is not None and not _disabled
    if req == "numba" and not available:
        raise ConfigurationError(
            f"${KERNEL_BACKEND_ENV}=numba but numba is not importable "
            f"(or failed to compile); install numba or use 'auto'"
        )
    return "numba" if available else "numpy"


def backend_token() -> str:
    """Cache-key token of the active backend, e.g. ``"backend/numpy"``
    or ``"backend/numba-0.59.1"``.  Folded into design fingerprints so
    compiled and pure-NumPy artifacts can never collide (defensive: the
    backends are designed bit-identical, but a cache must not *depend*
    on that)."""
    if active_backend() == "numba":
        return f"backend/numba-{numba_version()}"
    return "backend/numpy"


def _build_compiled() -> Callable[..., Any]:
    """Compile the scalar-loop solver core (lazily, once per process).

    The loop body mirrors ``delay_law._iterate_numpy`` operation for
    operation; a lane that hits the iteration ceiling returns NaN and
    the caller raises the same :class:`ConfigurationError` the NumPy
    path would.
    """
    import numba  # type: ignore[import-not-found]
    import numpy as np

    @numba.njit(cache=False, fastmath=False)
    def _solve_lanes(lo, hi, vth, alpha, log_g, max_iter):
        n = lo.shape[0]
        x = np.empty(n, dtype=lo.dtype)
        for i in range(n):
            lo_i = lo[i]
            hi_i = hi[i]
            v = vth[i]
            a = alpha[i]
            lg = log_g[i]
            xi = 0.5 * (lo_i + hi_i)
            out = np.nan
            for _ in range(max_iter):
                headroom = xi - v
                f = np.log(xi) - a * np.log(headroom) - lg
                if f > 0.0:
                    lo_i = xi
                else:
                    hi_i = xi
                fprime = 1.0 / xi - a / headroom
                cand = xi - f / fprime
                if not (np.isfinite(cand) and cand > lo_i
                        and cand < hi_i):
                    cand = 0.5 * (lo_i + hi_i)
                xi = cand
                if (hi_i - lo_i) <= 2.0 * np.spacing(hi_i):
                    out = 0.5 * (lo_i + hi_i)
                    break
            x[i] = out
        return x

    return _solve_lanes


def compiled_solver() -> Callable[..., Any] | None:
    """The compiled lane solver, or ``None`` when unavailable.

    First call under an importable numba triggers the JIT build; a
    build failure warns once, disables the compiled path for the
    process and returns ``None`` (pure-NumPy fallback).
    """
    global _compiled, _disabled
    if _disabled or numba_version() is None:
        return None
    if _compiled is None:
        try:
            _compiled = _build_compiled()
        except Exception as exc:
            _disabled = True
            warnings.warn(
                f"numba backend failed to build ({exc}); falling back "
                f"to the pure-NumPy kernels",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
    return _compiled
