"""Fused solve+decode kernels: supply levels to decoded outputs
without materializing the intermediate grids.

The tier-1 kernels compose like the hardware does: ``word_grid`` (a
uint8 word cube), then ``bubble_grid`` (a diff pass over it), then
``ones_count_grid`` (a sum over it), then ``decode_bounds``.  Correct
and bit-identical to the scalar oracles — but for the pool-bound
campaigns (yield studies, MC s-curve cubes, telemetry chunk decode)
the word cube itself is pure overhead: every consumer reduces it
straight back down to a count.  These kernels skip it:

* :func:`decode_counts` — ones counts and bubble flags from the
  threshold compare in one pass (no word/diff grids), for *physical*
  (possibly non-monotone) ladders;
* :func:`fused_decode` — counts + decode bounds + midpoints for a
  strictly ascending ladder via ``searchsorted`` (no compare cube at
  all): the telemetry chunk-decode fast path;
* :func:`score_lot_grids` — the whole yield-study per-die reduction
  (bubbles, brackets, calibrated brackets, decode errors) vectorized
  across the lot in one shot;
* :func:`trip_counts_from_thresholds` /
  :func:`s_curve_trip_probability_fused` — the MC s-curve collapsed to
  a single threshold compare: ``margin > 0`` is equivalent to
  ``V > V*`` (``g`` is strictly decreasing above ``vth``), so one
  tiny per-bit root solve replaces the per-draw delay-law evaluation
  of the whole cube.

Every fused kernel is bit-identical to the chain it replaces on the
same inputs (same compares, same gathers — proven case-by-case in the
docstrings below and enforced by ``tests/test_kernels_fused.py``);
the MC compare form is exact except for draws within float rounding
of the solved root, which the bench gates on explicitly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, DecodingError
from repro.kernels.dtype import resolve_dtype
from repro.kernels.montecarlo import _bits_array, s_curve_levels
from repro.kernels.thermometer import midpoint_grid
from repro.kernels.thresholds import threshold_grid
from repro.runtime.profiling import phase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.calibration import SensorDesign
    from repro.devices.technology import Technology


def decode_counts(v: np.ndarray, thresholds: np.ndarray, *,
                  dtype: "np.dtype | str | None" = None
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Ones counts and bubble flags in one pass over the compare cube.

    Replaces ``word_grid`` -> ``ones_count_grid`` + ``bubble_grid``
    without materializing the uint8 word grid or the int8 diff grid:

    * ``counts[...] == ones_count_grid(word_grid(v, thresholds))``
      exactly (same strict ``v > t`` compares, same sum);
    * ``bubbled[...] == bubble_grid(word_grid(v, thresholds))``
      exactly: a bubble is a 0->1 rise along the bit axis, i.e. a
      position where ``v <= t_i`` but ``v > t_{i+1}``.

    Args:
        v: Supplies, any shape; broadcast against the bit axis
            (``v[..., None] > thresholds``, the ``word_grid`` layout).
        thresholds: Per-stage thresholds, bit 1 first, *physical*
            order (need not be sorted).
        dtype: Compare precision; float64 default is bit-identical to
            the unfused chain.

    Returns:
        ``(counts, bubbled)`` — int64 counts and bool flags, both
        shaped like the broadcast of ``v`` against the leading axes of
        ``thresholds``.
    """
    with phase("kernel.decode"):
        dt = resolve_dtype(dtype)
        v = np.asarray(v, dtype=dt)
        t = np.asarray(thresholds, dtype=dt)
        passing = v[..., None] > t
        counts = np.sum(passing, axis=-1, dtype=np.int64)
        if passing.shape[-1] < 2:
            bubbled = np.zeros(counts.shape, dtype=bool)
        else:
            rising = ~passing[..., :-1] & passing[..., 1:]
            bubbled = np.any(rising, axis=-1)
        return counts, bubbled


def fused_decode(ladder: Sequence[float], v: np.ndarray, *,
                 dtype: "np.dtype | str | None" = None
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                            np.ndarray]:
    """Supplies -> (counts, lo, hi, mid) for an ascending ladder.

    The telemetry chunk-decode fast path: for a strictly ascending
    ladder the ones count is ``#{t_i < v}``, which is exactly
    ``searchsorted(ladder, v, side="left")`` — no compare cube, no
    word grid, and bubbles are impossible by construction.  The
    bounds are the same padded gathers as
    :func:`~repro.kernels.thermometer.decode_bounds` and the midpoints
    the same :func:`~repro.kernels.thermometer.midpoint_grid`
    arithmetic, so all four outputs are bit-identical to the unfused
    ``word_grid`` -> ``ones_count_grid`` -> ``decode_bounds`` ->
    ``midpoint_grid`` chain.

    Raises:
        DecodingError: empty or non-ascending ladder.
    """
    with phase("kernel.decode"):
        dt = resolve_dtype(dtype)
        lad = np.asarray(ladder, dtype=dt)
        if lad.ndim != 1 or lad.size < 1:
            raise DecodingError("ladder must be a non-empty 1-D array")
        if lad.size > 1 and not np.all(np.diff(lad) > 0):
            raise DecodingError("thresholds must be strictly ascending")
        v = np.asarray(v, dtype=dt)
        k = np.searchsorted(lad, v, side="left").astype(np.int64)
        padded = np.concatenate(([-np.inf], lad, [np.inf]))
        lo = padded[k]
        hi = padded[k + 1]
        mid = midpoint_grid(lo, hi)
        return k, lo, hi, mid


def decode_word_rows(ladder: Sequence[float], words: np.ndarray, *,
                     dtype: "np.dtype | str | None" = None
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Word rows -> (counts, lo, hi) against an ascending ladder.

    The service ``measure`` fast path: a ``(n, bits)`` batch of output
    words (bit 1 first) decodes in one gather instead of one
    ``ThermometerWord`` + ``decode_word`` round trip per row.  Each
    row's ones count selects the same ``(T_k, T_{k+1}]`` interval as
    :func:`~repro.analysis.thermometer.decode_word` with
    ``strict=False`` — bubble correction preserves the ones count, so
    counting set bits *is* the corrected decode.

    Raises:
        DecodingError: empty/non-ascending ladder or width mismatch.
    """
    with phase("kernel.decode"):
        dt = resolve_dtype(dtype)
        lad = np.asarray(ladder, dtype=dt)
        if lad.ndim != 1 or lad.size < 1:
            raise DecodingError("ladder must be a non-empty 1-D array")
        if lad.size > 1 and not np.all(np.diff(lad) > 0):
            raise DecodingError("thresholds must be strictly ascending")
        rows = np.atleast_2d(np.asarray(words))
        if rows.shape[-1] != lad.size:
            raise DecodingError(
                f"words have {rows.shape[-1]} bits but {lad.size} "
                f"thresholds given"
            )
        ks = np.sum(rows != 0, axis=-1, dtype=np.int64)
        padded = np.concatenate(([-np.inf], lad, [np.inf]))
        return ks, padded[ks], padded[ks + 1]


def score_lot_grids(lot_grid: np.ndarray,
                    supplies: Sequence[float],
                    nominal_ladder: Sequence[float], *,
                    dtype: "np.dtype | str | None" = None
                    ) -> dict[str, np.ndarray]:
    """The yield-study per-die reduction, vectorized across the lot.

    One call replaces the per-die ``_score_from_thresholds`` loop in
    :func:`repro.analysis.yield_study.run_yield_study`: every output
    row equals the per-die call on ``lot_grid[d]`` exactly (same
    compares and gathers over the same float64 inputs), so the fused
    batched path and the per-die pool/cache path stay bit-identical.

    Args:
        lot_grid: ``(dies, bits)`` solved thresholds, physical bit
            order (:func:`~repro.kernels.thresholds.
            lot_threshold_grid` output).
        supplies: Evaluation supply grid, volts.
        nominal_ladder: Ascending design ladder, volts.
        dtype: Compare precision (float64 default: exact parity).

    Returns:
        Dict of per-die arrays: ``counts`` (dies x supplies, int64),
        ``bubbled``/``monotone``/``bracketed``/``bracketed_cal``
        (per-die totals), ``bounded`` mask and ``abs_errors`` grid
        (dies x supplies; errors only valid where ``bounded``).

    Raises:
        DecodingError: non-ascending nominal ladder, or a die whose
            *sorted* ladder has tied thresholds (mirroring the
            unfused ``decode_bounds`` check on that die).
    """
    with phase("kernel.decode"):
        dt = resolve_dtype(dtype)
        grid = np.asarray(lot_grid, dtype=dt)
        if grid.ndim != 2:
            raise ConfigurationError(
                f"expected a (dies, bits) lot grid, got {grid.shape}"
            )
        v = np.asarray(supplies, dtype=dt)
        lad = np.asarray(nominal_ladder, dtype=dt)
        if lad.size > 1 and not np.all(np.diff(lad) > 0):
            raise DecodingError("thresholds must be strictly ascending")
        if lad.size != grid.shape[1]:
            raise ConfigurationError(
                f"nominal ladder has {lad.size} rungs for "
                f"{grid.shape[1]} bits"
            )

        # Physical-order compare: counts + bubbles, (dies, supplies).
        counts, bubbled = decode_counts(
            v[None, :], grid[:, None, :], dtype=dt
        )

        # Nominal-ladder decode: one padded gather for every die.
        padded = np.concatenate(([-np.inf], lad, [np.inf]))
        lo = padded[counts]
        hi = padded[counts + 1]
        bracketed = (lo < v) & (v <= hi)
        bounded = np.isfinite(lo) & np.isfinite(hi)
        with np.errstate(invalid="ignore"):
            abs_errors = np.abs(0.5 * (lo + hi) - v)

        # Calibrated decode: per-die sorted ladders, padded columns,
        # gathered with take_along_axis.
        die_ladders = np.sort(grid, axis=-1)
        if die_ladders.shape[1] > 1 \
                and not np.all(np.diff(die_ladders, axis=-1) > 0):
            raise DecodingError("thresholds must be strictly ascending")
        n_dies = grid.shape[0]
        inf_col = np.full((n_dies, 1), np.inf, dtype=die_ladders.dtype)
        pad_die = np.concatenate((-inf_col, die_ladders, inf_col),
                                 axis=1)
        lo_c = np.take_along_axis(pad_die, counts, axis=1)
        hi_c = np.take_along_axis(pad_die, counts + 1, axis=1)
        bracketed_cal = (lo_c < v) & (v <= hi_c)

        return {
            "counts": counts,
            "bubbled": np.sum(bubbled, axis=1, dtype=np.int64),
            "monotone": np.all(np.diff(grid, axis=-1) > 0, axis=-1),
            "bracketed": np.sum(bracketed, axis=1, dtype=np.int64),
            "bracketed_cal": np.sum(bracketed_cal, axis=1,
                                    dtype=np.int64),
            "bounded": bounded,
            "abs_errors": abs_errors,
        }


def trip_counts_from_thresholds(draws: np.ndarray,
                                thresholds: np.ndarray) -> np.ndarray:
    """Trip counts per level from solved thresholds: ``#{draw > V*}``.

    The fused form of the MC margin evaluation: for a supply ``V``
    above ``vth``, ``margin > 0`` is ``g(V) < g_target``, and since
    ``g`` is strictly decreasing on ``(vth, inf)`` that is ``V > V*``
    where ``V*`` solves ``g(V*) = g_target`` — exactly the threshold
    :func:`~repro.kernels.thresholds.threshold_grid` returns.  (At or
    below ``vth`` the margin is ``-inf`` and ``V < V*`` holds too, so
    the equivalence covers the whole real line.)  One compare per draw
    replaces a power/divide per draw; the equivalence is exact in real
    arithmetic and can only flip for draws within float rounding of
    the solved root — which the speed bench gates on (exact count
    parity plus a minimum draw-to-root ulp distance).

    Args:
        draws: ``(bits, levels, trials)`` supply draw cube, volts.
        thresholds: ``(bits,)`` solved per-bit thresholds ``V*``.

    Returns:
        ``(bits, levels)`` int64 trip counts.
    """
    with phase("kernel.mc"):
        draws = np.asarray(draws)
        t = np.asarray(thresholds, dtype=draws.dtype)
        return np.sum(draws > t[:, None, None], axis=-1,
                      dtype=np.int64)


def s_curve_trip_probability_fused(
    design: "SensorDesign", *, code: int, noise_rms: float,
    n_per_level: int, seeds: Sequence[int | np.random.SeedSequence],
    span_sigmas: float = 4.0, n_levels: int = 15,
    bits: Iterable[int] | None = None,
    tech: "Technology | None" = None,
    dtype: "np.dtype | str | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The fused :func:`~repro.kernels.montecarlo.
    s_curve_trip_probability`: same seeded draw cube, but pass/fail by
    threshold compare instead of per-draw delay-law evaluation.

    Draw generation is identical to the unfused kernel (same
    ``MC_SEED_SCHEME`` Generator streams, same level grid), so the
    probabilities agree with it — and with the scalar per-draw loop —
    exactly, except for draws within float rounding of the solved
    root (see :func:`trip_counts_from_thresholds`).
    """
    if noise_rms <= 0:
        raise ConfigurationError(
            "noise_rms must be positive (an S-curve needs noise)"
        )
    if n_levels < 5 or n_per_level < 10:
        raise ConfigurationError("need >= 5 levels and >= 10 measures")
    idx = _bits_array(design, bits)
    if len(seeds) != idx.size:
        raise ConfigurationError(
            f"got {len(seeds)} seeds for {idx.size} bits"
        )
    dt = resolve_dtype(dtype)
    levels = s_curve_levels(design, code=code, noise_rms=noise_rms,
                            span_sigmas=span_sigmas, n_levels=n_levels,
                            bits=idx)
    draws = np.empty((idx.size, n_levels, n_per_level))
    for i, seed in enumerate(seeds):
        rng = np.random.default_rng(seed)
        draws[i] = levels[i][:, None] + rng.normal(
            0.0, noise_rms, size=(n_levels, n_per_level)
        )
    thresholds = threshold_grid(design, (code,), tech, bits=idx,
                                dtype=dt)[:, 0]
    counts = trip_counts_from_thresholds(draws.astype(dt, copy=False),
                                         thresholds)
    return levels, counts / n_per_level
