"""repro.kernels — vectorized analytic kernels for sweep hot paths.

Every analytic sweep in the repo reduces to three array-shaped
operations over (samples x bits x codes x supplies) grids:

* **delay-law evaluation / inversion** (:mod:`repro.kernels.delay_law`)
  — ``d = (k/strength) * C_total * g(V)`` and its inverse
  ``V* = g^{-1}(window / (k_eff * C_total))``, solved elementwise with
  a safeguarded Newton-bisection iteration converged to a few ulps;
* **threshold grids** (:mod:`repro.kernels.thresholds`) — per-bit
  failure thresholds over (bit x code) and (die x bit) grids, replacing
  per-point ``brentq`` loops;
* **thermometer evaluation** (:mod:`repro.kernels.thermometer`) —
  words, bubble flags, ones counts and decode bounds over
  (sample x supply) grids, replacing per-word Python loops.

A second, stochastic/transient tier batches the repo's Monte-Carlo
and time-stepping flows:

* **Monte-Carlo s-curves** (:mod:`repro.kernels.montecarlo`) — whole
  (bit x level x trial) mismatch-draw cubes from one Generator call,
  pass/fail and trip-probability grids bit-identical to the scalar
  per-draw measures under the documented seed-threading scheme
  (``MC_SEED_SCHEME``);
* **exact LTI transients** (:mod:`repro.kernels.transient`) —
  zero-order-hold discretization of the RLC PDN (matrix exponential
  ``A_d``/``B_d``), chunk-invariant streaming stepping and batched
  corner lots, with the trapezoidal loop retained as the convergence
  oracle.

Contract with the scalar layer: the scalar paths
(:meth:`~repro.core.calibration.SensorDesign.bit_threshold`,
:func:`~repro.analysis.thermometer.decode_word`, ...) stay in place as
the *oracle*; the kernels must agree with them bit-identically where
the arithmetic is the same elementwise computation, and within the
oracle's own root-finding tolerance (``brentq`` ``xtol=1e-9``, so
|kernel - oracle| <= 2e-9 V) where the kernels solve to higher
precision.  ``tests/test_kernels.py`` enforces both on randomized
designs.

Kernels are also **batch-invariant**: evaluating one grid row at a time
produces bit-identical floats to evaluating the whole grid in one call
(elementwise ops only; converged lanes of the root solver are frozen by
masking).  This is what lets the process-pool path (one die per task)
and the batched serial path share results exactly.

A third, raw-speed tier removes redundant work without touching the
contract:

* **fused solve+decode** (:mod:`repro.kernels.fused`) — supply levels
  to counts/bounds/scores without materializing the intermediate word
  and diff grids (yield scoring, telemetry decode, MC trip counting
  collapsed to a threshold compare);
* **precision policy** (:mod:`repro.kernels.dtype`) — ``dtype=`` on
  kernel entry points and ``$REPRO_KERNEL_DTYPE``; float64 (default)
  keeps every bit-identity guarantee, float32 is opt-in with a
  measured, documented threshold error bound;
* **compiled backend** (:mod:`repro.kernels.backend`) — an optional
  numba-compiled lane solver behind the same interface, mirrored
  operation for operation so backends are bit-identical, with a
  pure-NumPy fallback that is always available.
"""

from repro.kernels.backend import (
    KERNEL_BACKEND_ENV,
    active_backend,
    backend_token,
    numba_version,
    requested_backend,
)
from repro.kernels.delay_law import (
    delay_grid,
    solve_supply_for_delay,
    solve_voltage_factor,
    voltage_factor_grid,
)
from repro.kernels.dtype import (
    FLOAT32_THRESHOLD_BOUND_V,
    KERNEL_DTYPE_ENV,
    dtype_token,
    resolve_dtype,
)
from repro.kernels.fused import (
    decode_counts,
    decode_word_rows,
    fused_decode,
    s_curve_trip_probability_fused,
    score_lot_grids,
    trip_counts_from_thresholds,
)
from repro.kernels.montecarlo import (
    MC_SEED_SCHEME,
    effective_supply_grid,
    s_curve_trip_probability,
    spawn_bit_seeds,
    trip_grid,
    trip_margin_grid,
    word_grid_mc,
    word_histogram_grid,
)
from repro.kernels.thermometer import (
    bracket_grid,
    bubble_grid,
    decode_bounds,
    midpoint_grid,
    ones_count_grid,
    word_grid,
)
from repro.kernels.thresholds import (
    lot_threshold_grid,
    threshold_grid,
    window_grid,
)
from repro.kernels.transient import (
    TransientStepper,
    discretize,
    simulate_corner_lot,
    step_rail,
)

#: Bump whenever kernel numerics or grid layouts change meaning:
#: participates in :func:`repro.runtime.cache.design_fingerprint`, so
#: vectorized results can never alias cache entries written by a
#: different kernel generation (or by the scalar-only era, which had no
#: version token at all).  v2: stochastic/transient tier (Monte-Carlo
#: draw cubes under ``MC_SEED_SCHEME``, exact-ZOH PDN stepping).
#: v3: raw-speed tier (fused solve+decode kernels, dtype policy,
#: optional compiled backend) — fingerprints additionally fold
#: :func:`~repro.kernels.dtype.dtype_token` and
#: :func:`~repro.kernels.backend.backend_token`, so float32 and
#: compiled-backend artifacts can never alias float64/NumPy ones.
KERNEL_LAYOUT_VERSION = "kernels/v3"

__all__ = [
    "FLOAT32_THRESHOLD_BOUND_V",
    "KERNEL_BACKEND_ENV",
    "KERNEL_DTYPE_ENV",
    "KERNEL_LAYOUT_VERSION",
    "MC_SEED_SCHEME",
    "active_backend",
    "backend_token",
    "decode_counts",
    "decode_word_rows",
    "dtype_token",
    "fused_decode",
    "numba_version",
    "requested_backend",
    "resolve_dtype",
    "s_curve_trip_probability_fused",
    "score_lot_grids",
    "trip_counts_from_thresholds",
    "TransientStepper",
    "bracket_grid",
    "bubble_grid",
    "decode_bounds",
    "delay_grid",
    "discretize",
    "effective_supply_grid",
    "lot_threshold_grid",
    "midpoint_grid",
    "ones_count_grid",
    "s_curve_trip_probability",
    "simulate_corner_lot",
    "solve_supply_for_delay",
    "solve_voltage_factor",
    "spawn_bit_seeds",
    "step_rail",
    "threshold_grid",
    "trip_grid",
    "trip_margin_grid",
    "window_grid",
    "word_grid",
    "word_grid_mc",
    "word_histogram_grid",
]
