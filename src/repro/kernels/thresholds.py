"""Threshold grids: per-bit failure thresholds without Python loops.

The scalar oracle is :meth:`repro.core.calibration.SensorDesign.
bit_threshold` — one ``brentq`` per (bit, code).  These kernels build
the same quantities for whole grids:

* :func:`window_grid` — effective sensing windows per code;
* :func:`threshold_grid` — (bits x codes) thresholds for one
  technology pair, the analytic characterization grid of Fig. 5;
* :func:`lot_threshold_grid` — (dies x bits) thresholds for a sampled
  variation lot at one code, the yield-study hot loop.

All three reduce the delay law to a target voltage factor
``G = window / (k_eff * C_total)`` per lane and invert it with
:func:`repro.kernels.delay_law.solve_voltage_factor`; agreement with
the scalar oracle is |kernel - oracle| <= 2e-9 V (the oracle's own
``xtol``), enforced by ``tests/test_kernels.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.devices.mosfet import voltage_factor
from repro.devices.technology import Technology
from repro.errors import ConfigurationError
from repro.kernels.delay_law import solve_voltage_factor, voltage_factor_grid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.calibration import SensorDesign
    from repro.devices.variation import VariationSample


def _codes_array(design: "SensorDesign",
                 codes: Iterable[int] | None) -> np.ndarray:
    n_codes = len(design.delay_codes)
    idx = np.arange(n_codes) if codes is None \
        else np.asarray(list(codes), dtype=int)
    if idx.size and (idx.min() < 0 or idx.max() >= n_codes):
        raise ConfigurationError(
            f"delay code outside 0..{n_codes - 1}: {idx.tolist()}"
        )
    return idx


def _bits_array(design: "SensorDesign",
                bits: Iterable[int] | None) -> np.ndarray:
    idx = np.arange(1, design.n_bits + 1) if bits is None \
        else np.asarray(list(bits), dtype=int)
    if idx.size and (idx.min() < 1 or idx.max() > design.n_bits):
        raise ConfigurationError(
            f"bit outside 1..{design.n_bits}: {idx.tolist()}"
        )
    return idx


def window_grid(design: "SensorDesign",
                codes: Iterable[int] | None = None,
                tech: Technology | None = None) -> np.ndarray:
    """Effective sensing windows ``sigma * (D(c) + t0)`` per code, s.

    The vectorized :meth:`~repro.core.calibration.SensorDesign.
    effective_window`: ``codes=None`` means all codes.
    """
    idx = _codes_array(design, codes)
    skews = np.asarray(design.delay_codes, dtype=float)[idx]
    return design.timing_scale(tech) * (skews + design.t0)


def threshold_grid(design: "SensorDesign",
                   codes: Iterable[int] | None = None,
                   tech: Technology | None = None, *,
                   window_tech: Technology | None = None,
                   bits: Iterable[int] | None = None,
                   v_hi: float = 3.0,
                   dtype: "np.dtype | str | None" = None) -> np.ndarray:
    """Per-bit failure thresholds over a (bits x codes) grid, volts.

    ``out[i, j]`` equals ``design.bit_threshold(bits[i], codes[j],
    tech, window_tech=window_tech)`` to within the oracle tolerance.
    Defaults cover the full array under every code — the analytic
    Fig. 5 characteristic in one solve.

    Args:
        design: Calibrated design.
        codes: Delay codes (column order); None = all codes.
        tech: Sensor-inverter technology (corner); None = design tech.
        window_tech: Technology of the window-defining blocks;
            defaults to ``tech`` (same convention as the scalar path).
        bits: Bit numbers 1..n_bits (row order); None = all bits.
            Batch invariance makes a subset solve bit-identical to
            slicing the full-array solve — :class:`~repro.core.degraded.
            DegradedArray` relies on this.
        v_hi: Upper root bracket, volts.
        dtype: Working precision of the root solve (see
            :mod:`repro.kernels.dtype`); the float64 default keeps the
            oracle-agreement contract, float32 carries the documented
            error bound.
    """
    bit_idx = _bits_array(design, bits)
    tech_eff = design.tech if tech is None else tech
    windows = window_grid(
        design, codes, tech if window_tech is None else window_tech
    )
    # FF D-pin cap is gate_cap_unit * ff_strength — untouched by corner
    # vth/drive scaling, so one FF build covers every lane.
    d_pin_cap = design.sense_flipflop(tech).pin("D").cap
    loads = np.asarray(design.load_caps, dtype=float)[bit_idx - 1] \
        + d_pin_cap
    c_total = tech_eff.intrinsic_cap_unit * design.sensor_strength + loads
    k_eff = tech_eff.drive_constant / design.sensor_strength
    g_target = windows[None, :] / (k_eff * c_total[:, None])
    return solve_voltage_factor(
        g_target, tech_eff.vth, tech_eff.alpha, v_hi=v_hi, dtype=dtype
    )


def lot_threshold_grid(design: "SensorDesign",
                       lot: Sequence["VariationSample"],
                       code: int, *, v_hi: float = 3.0,
                       dtype: "np.dtype | str | None" = None
                       ) -> np.ndarray:
    """Per-die, per-bit thresholds over a variation lot: (dies x bits).

    ``out[d, b-1]`` matches the scalar
    :func:`repro.analysis.yield_study.die_characteristic` convention:
    sensor inverter *b* takes die ``d``'s instance-varied technology
    (``technology_for``), the shared window blocks take the die
    technology (``die_technology``).  Variation composition replicates
    :meth:`~repro.devices.technology.Technology.scaled` operation
    order exactly (inner ``die + instance`` sum / ``die * instance``
    product first), so lanes agree with the scalar path to the solver
    tolerance.
    """
    n = design.n_bits
    for i, sample in enumerate(lot):
        if sample.n_instances < n:
            raise ConfigurationError(
                f"lot[{i}] has {sample.n_instances} instances; need {n}"
            )
    tech = design.tech
    die_vth = np.array([s.die_vth_shift for s in lot], dtype=float)
    die_k = np.array([s.die_drive_scale for s in lot], dtype=float)
    inst_vth = np.array([s.instance_vth_shifts[:n] for s in lot],
                        dtype=float)
    inst_k = np.array([s.instance_drive_scales[:n] for s in lot],
                      dtype=float)

    vth_db = tech.vth + (die_vth[:, None] + inst_vth)
    k_db = tech.drive_constant * (die_k[:, None] * inst_k)

    # Window under the die technology: timing_scale(die) * (D(c) + t0).
    vth_d = tech.vth + die_vth
    k_d = tech.drive_constant * die_k
    g_design = voltage_factor(tech.vdd_nominal, tech.vth, tech.alpha)
    g_die = voltage_factor_grid(tech.vdd_nominal, vth_d, tech.alpha)
    scale_d = (k_d / tech.drive_constant) * (g_die / g_design)
    windows = window_grid(design, (code,))  # nominal windows, len 1
    window_d = scale_d * windows[0]

    d_pin_cap = design.sense_flipflop().pin("D").cap
    loads = np.asarray(design.load_caps, dtype=float) + d_pin_cap
    c_total = tech.intrinsic_cap_unit * design.sensor_strength + loads
    k_eff = k_db / design.sensor_strength
    g_target = window_d[:, None] / (k_eff * c_total[None, :])
    return solve_voltage_factor(g_target, vth_db, tech.alpha, v_hi=v_hi,
                                dtype=dtype)
