"""Exact zero-order-hold LTI stepping for the lumped RLC PDN.

The scalar integrator (:meth:`repro.psn.pdn.PDNModel.simulate`) walks a
fixed-step trapezoidal update through a Python loop — ~10 numpy calls
and several small allocations *per timestep*, which dominates wall
clock at the million-step traces the telemetry pipeline consumes.  This
module replaces the loop with the exact discrete solution of the same
2x2 state equations:

* :func:`discretize` — zero-order-hold discretization via the matrix
  exponential of the augmented ``[[A, B], [0, 0]]`` block: ``A_d =
  expm(A dt)``, ``B_d = (int_0^dt expm(A s) ds) B``.  For load
  currents held constant across each step the recurrence ``x_{k+1} =
  A_d x_k + B_d u_k`` is *exact* — no stability limit, no numerical
  damping of the PDN resonance;
* :class:`TransientStepper` — evaluates that recurrence at C speed by
  collapsing the 2x2 state update into the scalar second-order form
  Cayley-Hamilton gives (``x[k+2] = tr(A_d) x[k+1] - det(A_d) x[k] +
  f[k]``) and running it through :func:`scipy.signal.lfilter`.  The
  stepper is **chunk-invariant**: feeding a trace in arbitrary pieces
  returns bit-identical samples to one shot, because the carried
  filter state fully determines every subsequent sample;
* :func:`simulate_corner_lot` — the batched multi-corner entry point:
  one call steps a whole lot of :class:`~repro.psn.pdn.PDNParameters`
  lanes (each lane a C-speed filter pass).

Oracle contract: the trapezoidal stepper stays in place
(``PDNModel.simulate(method="trapezoid")``) and both integrators
converge to the continuous solution as ``dt -> 0``; for a rail
resolved at the repo's own step ceiling (``dt <= 0.05 / f_res``) the
two agree within ``~0.5 * omega * dt`` of the droop amplitude — the
half-sample input-hold skew — which the Monte-Carlo bench asserts
before timing anything (see ``benchmarks/bench_montecarlo.py``).

Instrumented under the ``kernel.transient`` profiler phase.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Sequence

import numpy as np
from scipy.linalg import expm
from scipy.signal import lfilter, lfiltic

from repro.errors import ConfigurationError
from repro.runtime.profiling import phase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.psn.pdn import PDNParameters


class DiscretePDN:
    """ZOH discretization of one PDN at one step size.

    State ``x = [i_branch, v_cap]``, input ``u = [1, i_load]``:

        A = [[-(R + R_esr)/L, -1/L], [1/C, 0]]
        B = [[vdd/L, R_esr/L], [0, -1/C]]

    Attributes:
        a_d: ``expm(A dt)`` — (2, 2).
        b_d: Exact ZOH input matrix — (2, 2).
        trace / det: Invariants of ``a_d`` (the second-order
            recurrence coefficients via Cayley-Hamilton).
    """

    __slots__ = ("params", "dt", "a_d", "b_d", "trace", "det")

    def __init__(self, params: "PDNParameters", dt: float) -> None:
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        p = params
        r_total = p.r_series + p.r_esr
        a = np.array([
            [-r_total / p.l_series, -1.0 / p.l_series],
            [1.0 / p.c_decap, 0.0],
        ])
        b = np.array([
            [p.vdd_nominal / p.l_series, p.r_esr / p.l_series],
            [0.0, -1.0 / p.c_decap],
        ])
        block = np.zeros((4, 4))
        block[:2, :2] = a * dt
        block[:2, 2:] = b * dt
        e = expm(block)
        self.params = params
        self.dt = float(dt)
        self.a_d = np.ascontiguousarray(e[:2, :2])
        self.b_d = np.ascontiguousarray(e[:2, 2:])
        self.trace = float(self.a_d[0, 0] + self.a_d[1, 1])
        self.det = float(self.a_d[0, 0] * self.a_d[1, 1]
                         - self.a_d[0, 1] * self.a_d[1, 0])

    def steady_state(self, i_load: float) -> np.ndarray:
        """Fixed point ``x* = (I - A_d)^{-1} B_d u`` for a DC load."""
        u = np.array([1.0, float(i_load)])
        return np.linalg.solve(np.eye(2) - self.a_d, self.b_d @ u)


@functools.lru_cache(maxsize=32)
def _discretize_cached(params: "PDNParameters",
                       dt: float) -> DiscretePDN:
    return DiscretePDN(params, dt)


def discretize(params: "PDNParameters", dt: float) -> DiscretePDN:
    """The (cached) ZOH discretization of a PDN at step ``dt``."""
    return _discretize_cached(params, float(dt))


class TransientStepper:
    """Streaming exact-ZOH integrator for one PDN lane.

    Feed load-current samples in arbitrary chunks with :meth:`step`;
    each call returns the die-rail voltage at the new sample instants.
    Chunking is **bit-invariant**: any split of the same sample
    sequence yields the same floats, because the carried second-order
    filter state determines every later sample exactly (the property
    ``tests/test_kernels_transient.py`` drives with Hypothesis).

    Args:
        params: PDN electrical parameters.
        dt: Step size, seconds (samples are ``dt`` apart).
        v0: Initial rail voltage; defaults to the nominal.
    """

    def __init__(self, params: "PDNParameters", dt: float,
                 *, v0: float | None = None) -> None:
        self._disc = discretize(params, dt)
        self._r_esr = params.r_esr
        self._v0 = params.vdd_nominal if v0 is None else float(v0)
        self._n_seen = 0
        self._x0: np.ndarray | None = None   # state at sample 0
        self._x1: np.ndarray | None = None   # state at sample 1
        self._g_tail: list[np.ndarray] = []  # forcings of last 2 samples
        self._zi: np.ndarray | None = None   # (2, 2) lfilter state

    @property
    def n_seen(self) -> int:
        """Samples consumed so far."""
        return self._n_seen

    def step(self, i_samples: np.ndarray) -> np.ndarray:
        """Consume load samples; return ``v_die`` at those instants.

        The first sample of the first chunk defines the initial branch
        current (a settled rail, matching the trapezoidal oracle).
        """
        with phase("kernel.transient"):
            return self._step(i_samples)

    def _step(self, i_samples: np.ndarray) -> np.ndarray:
        i_new = np.atleast_1d(np.asarray(i_samples, dtype=float))
        if i_new.ndim != 1:
            raise ConfigurationError("i_samples must be 1-D")
        m = i_new.size
        if m == 0:
            return np.empty(0)
        disc = self._disc
        a_d, b_d = disc.a_d, disc.b_d
        # Forcing per new sample: g_k = B_d @ [1, i_k].
        g_new = b_d[:, 0][:, None] + b_d[:, 1][:, None] * i_new[None, :]
        k0 = self._n_seen
        states = np.empty((m, 2))
        pos = 0

        if k0 == 0:
            self._x0 = np.array([i_new[0], self._v0])
            states[0] = self._x0
            pos = 1
        if k0 + pos == 1 and pos < m:
            # State at global sample 1 directly: x1 = A_d x0 + g0.
            g0 = self._g_tail[-1] if pos == 0 else g_new[:, 0]
            self._x1 = a_d @ self._x0 + g0
            states[pos] = self._x1
            pos += 1

        first_global = k0 + pos  # global index of next state to emit
        if pos < m:
            # States x_k for k >= 2 via the second-order recurrence:
            # x[k] = tr(A_d) x[k-1] - det(A_d) x[k-2] + f[k-2],
            # f[j] = g[j+1] + (A_d - tr(A_d) I) g[j].
            if self._zi is None:
                self._zi = np.stack([
                    lfiltic([1.0], [1.0, -disc.trace, disc.det],
                            [self._x1[i], self._x0[i]])
                    for i in range(2)
                ])
            g_hist = np.concatenate(
                [np.stack(self._g_tail, axis=1), g_new], axis=1
            ) if self._g_tail else g_new
            # f[j] spans global j = first_global - 2 .. k0 + m - 3;
            # g_hist starts at global sample k0 - len(tail).
            tail = len(self._g_tail)
            lo = (first_global - 2) - (k0 - tail)
            hi = (k0 + m - 2) - (k0 - tail)
            m_mix = a_d - disc.trace * np.eye(2)
            # Elementwise, NOT m_mix @ g_hist: BLAS picks different
            # micro-kernels (FMA vs mul+add) by operand width, so a
            # matmul's per-column rounding would depend on the chunk
            # split — breaking the bit-invariance contract.  Broadcast
            # ufuncs round each element identically at any width.
            f = (g_hist[:, lo + 1:hi + 1]
                 + m_mix[:, :1] * g_hist[:1, lo:hi]
                 + m_mix[:, 1:] * g_hist[1:2, lo:hi])
            for i in range(2):
                y, zf = lfilter([1.0], [1.0, -disc.trace, disc.det],
                                f[i], zi=self._zi[i])
                states[pos:, i] = y
                self._zi[i] = zf

        self._n_seen = k0 + m
        self._g_tail = [g_new[:, j].copy() for j in
                        range(max(0, m - 2), m)] \
            if m >= 2 else (self._g_tail + [g_new[:, 0].copy()])[-2:]
        v_out = states[:, 1] + self._r_esr * (states[:, 0] - i_new)
        return v_out


def step_rail(params: "PDNParameters", i_samples: np.ndarray, *,
              dt: float, v0: float | None = None) -> np.ndarray:
    """One-shot exact-ZOH solve: ``v_die`` at every sample instant.

    Equivalent to a single :meth:`TransientStepper.step` call (and
    bit-identical to any chunked feeding of the same samples).
    """
    return TransientStepper(params, dt, v0=v0).step(i_samples)


def simulate_corner_lot(lots: Sequence["PDNParameters"],
                        i_loads: np.ndarray, *, dt: float,
                        v0: float | None = None) -> np.ndarray:
    """Step a whole corner lot of PDNs in one pass.

    Args:
        lots: One :class:`PDNParameters` per lane.
        i_loads: Load currents — ``(n_samples,)`` shared across lanes
            or ``(n_lanes, n_samples)`` per lane.
        dt: Step size, seconds.
        v0: Initial rail voltage (all lanes); None = each nominal.

    Returns:
        ``(n_lanes, n_samples)`` die-rail voltages.

    Raises:
        ConfigurationError: empty lot or mis-shaped currents.
    """
    if not lots:
        raise ConfigurationError("corner lot must be non-empty")
    cur = np.asarray(i_loads, dtype=float)
    if cur.ndim == 1:
        cur = np.broadcast_to(cur, (len(lots), cur.size))
    if cur.ndim != 2 or cur.shape[0] != len(lots):
        raise ConfigurationError(
            f"i_loads shape {np.shape(i_loads)} does not fit "
            f"{len(lots)} lanes"
        )
    out = np.empty(cur.shape)
    for lane, params in enumerate(lots):
        out[lane] = step_rail(params, cur[lane], dt=dt, v0=v0)
    return out
