"""Thermometer word evaluation over (samples x supplies) grids.

The scalar oracle builds one :class:`~repro.analysis.thermometer.
ThermometerWord` per (die, supply) point and decodes it with Python
loops.  These kernels evaluate whole grids at once — raw words, bubble
flags, ones counts, decode bounds and bracket tests are all pure
integer/compare arithmetic, so kernel outputs are **bit-identical** to
the scalar path (not merely close).

Grid layout: thresholds/words put the *bit axis last* (bit 1 first
along it, matching ``ThermometerWord.bits``); leading axes are free
(dies, supplies, ...).  Ones-counting bubble correction preserves the
ones count, so a corrected decode needs only :func:`ones_count_grid` —
no corrected word grid is ever materialized.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DecodingError
from repro.runtime.profiling import phase


def word_grid(v: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """Raw output words: ``out[..., i] = 1`` iff ``v > T_{i+1}``.

    Args:
        v: Supplies, any shape; broadcast against the bit axis.
        thresholds: Per-stage thresholds, bit 1 first, *physical* bit
            order (need not be sorted — bubbles then appear, exactly as
            in :meth:`DieCharacteristic.word_at`).

    Returns:
        uint8 array shaped ``v.shape + (n_bits,)``.
    """
    with phase("kernel.decode"):
        v = np.asarray(v, dtype=float)
        t = np.asarray(thresholds, dtype=float)
        return (v[..., None] > t).astype(np.uint8)


def ones_count_grid(words: np.ndarray) -> np.ndarray:
    """Passing-stage count per word — the thermometer reading ``k``."""
    return np.sum(words, axis=-1, dtype=np.int64)


def bubble_grid(words: np.ndarray) -> np.ndarray:
    """True where a word is *not* a valid thermometer code.

    A valid code's pass bits form a prefix, i.e. the bit sequence is
    nonincreasing — an ``np.diff`` check, replacing the scalar
    ``is_valid_thermometer`` Python loop.
    """
    with phase("kernel.decode"):
        w = np.asarray(words)
        if w.shape[-1] < 2:
            return np.zeros(w.shape[:-1], dtype=bool)
        rising = np.diff(w.astype(np.int8), axis=-1) > 0
        return np.any(rising, axis=-1)


def decode_bounds(ladder: Sequence[float],
                  k: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Decoded supply interval ``(T_k, T_{k+1}]`` per ones count.

    The vectorized :func:`~repro.analysis.thermometer.decode_word`
    after bubble correction: ``lo = T_k`` (``-inf`` for ``k == 0``),
    ``hi = T_{k+1}`` (``+inf`` for ``k == n``).

    Args:
        ladder: Ascending thresholds, volts.
        k: Ones counts, any shape (0..len(ladder)).

    Raises:
        DecodingError: non-ascending ladder or out-of-range counts.
    """
    with phase("kernel.decode"):
        lad = np.asarray(ladder, dtype=float)
        if lad.size > 1 and not np.all(np.diff(lad) > 0):
            raise DecodingError("thresholds must be strictly ascending")
        k = np.asarray(k, dtype=np.int64)
        if k.size and (k.min() < 0 or k.max() > lad.size):
            raise DecodingError(
                f"ones count outside 0..{lad.size}"
            )
        padded = np.concatenate(([-np.inf], lad, [np.inf]))
        return padded[k], padded[k + 1]


def midpoint_grid(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Representative decoded voltage per bound pair — the vectorized
    :attr:`~repro.analysis.thermometer.VoltageRange.midpoint`: the
    interval midpoint where both ends are finite, else the finite
    endpoint (saturated readings collapse to the ladder edge).

    Raises:
        DecodingError: a pair with no finite endpoint.
    """
    with phase("kernel.decode"):
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        lo_fin = np.isfinite(lo)
        hi_fin = np.isfinite(hi)
        if not np.all(lo_fin | hi_fin):
            raise DecodingError("range has no finite endpoint")
        mid = np.where(lo_fin & hi_fin, 0.5 * (lo + hi),
                       np.where(lo_fin, lo, hi))
        return mid


def bracket_grid(v: np.ndarray, lo: np.ndarray,
                 hi: np.ndarray) -> np.ndarray:
    """True where the decoded interval brackets the truth:
    ``lo < v <= hi`` (the half-open convention of ``VoltageRange``)."""
    v = np.asarray(v, dtype=float)
    return (lo < v) & (v <= hi)
