"""Kernel precision policy: the opt-in float32 fast path.

Every kernel entry point computes in IEEE-754 float64 by default —
that is the precision the scalar oracles use, and the whole
agreement-before-timing story (|kernel - brentq| <= 2e-9 V) is a
float64 statement.  For throughput-bound campaigns (lot solves, MC
draw cubes) the kernels also accept ``dtype=np.float32``: half the
memory traffic, wider SIMD lanes, and a *documented, tested* accuracy
contract instead of a silent one:

* solved thresholds differ from the float64 oracle by at most
  :data:`FLOAT32_THRESHOLD_BOUND_V` (measured headroom is ~20x — see
  ``tests/test_kernels_dtype.py``, which asserts the bound across
  random designs, corners and masked-bit arrays with Hypothesis);
* decoded *words* are bit-identical to the float64 path wherever the
  supply clears every threshold by more than the bound — i.e. float32
  can only flip a comparison that float64 itself resolves by less
  than the documented error.

Selection: the ``dtype=`` keyword wins, then ``$REPRO_KERNEL_DTYPE``
(``float32``/``float64``), then float64.  The resolved dtype is folded
into :func:`repro.runtime.cache.design_fingerprint` via
:func:`dtype_token`, so float32 and float64 artifacts can never share
a cache entry.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigurationError

#: Environment variable selecting the default kernel dtype.
KERNEL_DTYPE_ENV = "REPRO_KERNEL_DTYPE"

#: Documented bound on |float32 threshold - float64 threshold|, volts.
#: The float32 solver converges its per-lane bracket to ~2 float32
#: ulps (~2.4e-7 V near 1 V); the dominant error is the float32
#: rounding of the ``g_target`` reduction, amplified by the local
#: conditioning |dV*/dG| = 1/|g'(V*)| of the delay-law inverse.  The
#: measured worst case across random designs/corners is < 5e-6 V;
#: 1e-4 V keeps ~20x headroom while still being far tighter than any
#: physical noise floor in the paper (mV-scale rail noise).
FLOAT32_THRESHOLD_BOUND_V = 1e-4

_DTYPES = {
    "float32": np.float32,
    "float64": np.float64,
}


def resolve_dtype(dtype: "np.dtype | type | str | None" = None) -> np.dtype:
    """Normalize a kernel ``dtype=`` argument to a concrete dtype.

    ``None`` falls back to ``$REPRO_KERNEL_DTYPE`` and then float64.
    Only float32 and float64 are meaningful for the delay-law
    arithmetic; anything else raises.
    """
    if dtype is None:
        raw = os.environ.get(KERNEL_DTYPE_ENV, "").strip()
        if not raw:
            return np.dtype(np.float64)
        if raw not in _DTYPES:
            raise ConfigurationError(
                f"${KERNEL_DTYPE_ENV}={raw!r} is not a kernel dtype "
                f"(use 'float32' or 'float64')"
            )
        return np.dtype(_DTYPES[raw])
    try:
        dt = np.dtype(dtype)
    except TypeError:
        raise ConfigurationError(
            f"{dtype!r} is not a kernel dtype "
            f"(use 'float32' or 'float64')"
        ) from None
    if dt.name not in _DTYPES:
        raise ConfigurationError(
            f"kernel dtype must be float32 or float64, got {dt.name!r}"
        )
    return dt


def dtype_token(dtype: "np.dtype | type | str | None" = None) -> str:
    """Cache-key token of the resolved kernel dtype, e.g.
    ``"dtype/float64"``.  Folded into design fingerprints so float32
    and float64 artifacts can never collide in a
    :class:`~repro.runtime.cache.ResultCache`."""
    return f"dtype/{resolve_dtype(dtype).name}"
