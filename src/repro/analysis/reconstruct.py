"""Iterated-measure waveform reconstruction.

The sensor takes one quantized reading per PREPARE/SENSE sequence.  The
paper notes that "measures should be iterated so that noise values can
be captured in different moments of the CUT transient behavior" — i.e.
the sensor is used as an equivalent-time sampler: repeat the transient,
slide the SENSE instant, and stitch the decoded ranges into a waveform
estimate.  :class:`WaveformReconstructor` implements that stitching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.thermometer import VoltageRange
from repro.errors import ConfigurationError, DecodingError


@dataclass(frozen=True)
class ReconstructionPoint:
    """One reconstructed sample: the decoded range at one instant."""

    time: float
    voltage_range: VoltageRange

    @property
    def estimate(self) -> float:
        return self.voltage_range.midpoint


@dataclass
class WaveformReconstructor:
    """Accumulates (time, decoded range) points into a waveform estimate.

    Points may arrive in any order (repeated transients interleave);
    queries sort by time.  Duplicate times are averaged by intersecting
    ranges when they overlap and keeping both midpoints otherwise.
    """

    _points: list[ReconstructionPoint] = field(default_factory=list)

    def add(self, time: float, rng: VoltageRange) -> None:
        """Record one measure."""
        self._points.append(ReconstructionPoint(time=time,
                                                voltage_range=rng))

    @property
    def n_points(self) -> int:
        return len(self._points)

    def points(self) -> list[ReconstructionPoint]:
        """All points, time-sorted."""
        return sorted(self._points, key=lambda p: p.time)

    def estimate_arrays(self) -> tuple[np.ndarray, np.ndarray,
                                       np.ndarray, np.ndarray]:
        """``(times, midpoints, lowers, uppers)`` arrays, time-sorted.

        Unbounded edges are reported as NaN in the lower/upper arrays.

        Raises:
            DecodingError: when no points have been added.
        """
        pts = self.points()
        if not pts:
            raise DecodingError("no measures recorded")
        times = np.array([p.time for p in pts])
        mids = np.array([p.estimate for p in pts])
        lows = np.array([
            p.voltage_range.lo if np.isfinite(p.voltage_range.lo)
            else np.nan for p in pts
        ])
        highs = np.array([
            p.voltage_range.hi if np.isfinite(p.voltage_range.hi)
            else np.nan for p in pts
        ])
        return times, mids, lows, highs

    def interpolate(self, ts: np.ndarray) -> np.ndarray:
        """Midpoint estimate interpolated onto an arbitrary time grid."""
        times, mids, _, _ = self.estimate_arrays()
        return np.interp(np.asarray(ts, dtype=float), times, mids)

    def rmse_against(self, waveform, *, at_times=None) -> float:
        """RMS error of the midpoint estimate vs. a true waveform.

        Args:
            waveform: Callable ``v(t)`` — the true rail.
            at_times: Times to score at; defaults to the measure times.
        """
        times, mids, _, _ = self.estimate_arrays()
        if at_times is None:
            at_times = times
            estimates = mids
        else:
            at_times = np.asarray(at_times, dtype=float)
            estimates = self.interpolate(at_times)
        truth = np.array([waveform(t) for t in at_times])
        return float(np.sqrt(np.mean((estimates - truth) ** 2)))

    def extremes(self) -> tuple[float, float]:
        """(min, max) of the midpoint estimates — droop depth summary.

        Raises:
            DecodingError: when no points have been added.
        """
        _, mids, _, _ = self.estimate_arrays()
        return float(np.min(mids)), float(np.max(mids))

    def clear(self) -> None:
        self._points.clear()
