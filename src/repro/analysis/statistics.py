"""Accuracy and quantization metrics for measurement evaluation.

Used by the comparison benches (sensor vs. ideal analog sampler, bit
count ablation) to score how well a sequence of decoded ranges tracks a
known supply waveform.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.analysis.thermometer import VoltageRange
from repro.errors import ConfigurationError


def quantization_step(thresholds: Sequence[float]) -> float:
    """Mean threshold spacing — the sensor's LSB, volts.

    Raises:
        ConfigurationError: for fewer than two thresholds.
    """
    t = np.asarray(thresholds, dtype=float)
    if t.size < 2:
        raise ConfigurationError("need at least two thresholds")
    return float(np.mean(np.diff(t)))


def range_error(rng: VoltageRange, true_v: float) -> float:
    """Distance from a true voltage to a decoded range, volts.

    Zero when the range brackets the truth; otherwise the distance to
    the nearest edge.  Unbounded edges never contribute error on their
    open side.
    """
    if rng.contains(true_v):
        return 0.0
    if math.isfinite(rng.lo) and true_v <= rng.lo:
        return rng.lo - true_v
    if math.isfinite(rng.hi) and true_v > rng.hi:
        return true_v - rng.hi
    return 0.0


def tracking_rmse(ranges: Sequence[VoltageRange],
                  truths: Sequence[float], *,
                  use_midpoint: bool = True) -> float:
    """RMS error of a sequence of decoded measures vs. ground truth.

    Args:
        ranges: Decoded measurement ranges, in time order.
        truths: True supply values at the same instants.
        use_midpoint: Score the range midpoint against truth (point
            estimate) rather than the bracket distance.

    Raises:
        ConfigurationError: on length mismatch or empty input.
    """
    if len(ranges) != len(truths) or not ranges:
        raise ConfigurationError(
            "ranges and truths must be equal-length and non-empty"
        )
    if use_midpoint:
        errors = []
        for rng, tv in zip(ranges, truths):
            mid = rng.midpoint
            errors.append(mid - tv)
        return float(np.sqrt(np.mean(np.square(errors))))
    errs = [range_error(r, tv) for r, tv in zip(ranges, truths)]
    return float(np.sqrt(np.mean(np.square(errs))))


def coverage_probability(ranges: Sequence[VoltageRange],
                         truths: Sequence[float]) -> float:
    """Fraction of measures whose decoded range brackets the truth.

    A perfectly calibrated sensor scores 1.0 regardless of bit count
    (quantization widens the ranges, it does not bias them) — the
    property test behind the decoded-range invariant.
    """
    if len(ranges) != len(truths) or not ranges:
        raise ConfigurationError(
            "ranges and truths must be equal-length and non-empty"
        )
    hits = sum(1 for r, tv in zip(ranges, truths) if r.contains(tv))
    return hits / len(ranges)


def worst_case_error(ranges: Sequence[VoltageRange],
                     truths: Sequence[float]) -> float:
    """Largest bracket miss across the sequence, volts."""
    if len(ranges) != len(truths) or not ranges:
        raise ConfigurationError(
            "ranges and truths must be equal-length and non-empty"
        )
    return max(range_error(r, tv) for r, tv in zip(ranges, truths))
