"""Converter linearity metrics: DNL and INL of the thermometer ladder.

The paper describes the array as "in principle similar to a flash A/D
converter", which invites the standard flash-ADC report card:

* **DNL** (differential nonlinearity): per-code deviation of each step
  from the ideal (mean) step, in LSB — how uniform the rungs are;
* **INL** (integral nonlinearity): per-threshold deviation from the
  best-fit (endpoint or least-squares) line, in LSB — how straight the
  transfer curve is.

Both come straight from a threshold ladder, so they apply equally to
the design ladder, a corner ladder, or an S-curve-extracted ladder from
:mod:`repro.analysis.repeatability`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LinearityReport:
    """DNL/INL of one threshold ladder.

    Attributes:
        lsb: The ideal step used for normalization, volts.
        dnl: Per-step DNL, LSB (length ``n_thresholds - 1``).
        inl: Per-threshold INL, LSB (length ``n_thresholds``).
        reference: Which reference line INL was taken against.
    """

    lsb: float
    dnl: tuple[float, ...]
    inl: tuple[float, ...]
    reference: str

    @property
    def max_dnl(self) -> float:
        """Worst |DNL|, LSB."""
        return max(abs(d) for d in self.dnl)

    @property
    def max_inl(self) -> float:
        """Worst |INL|, LSB."""
        return max(abs(i) for i in self.inl)

    @property
    def monotonic(self) -> bool:
        """True when no step is negative (DNL > -1 everywhere)."""
        return all(d > -1.0 for d in self.dnl)


def linearity(thresholds: Sequence[float], *,
              reference: Literal["endpoint", "best-fit"] = "endpoint"
              ) -> LinearityReport:
    """DNL/INL of a threshold ladder.

    Args:
        thresholds: The ladder, ascending, volts (>= 3 entries).
        reference: ``"endpoint"`` draws the INL reference line through
            the first and last thresholds (the production-test
            convention); ``"best-fit"`` uses the least-squares line.

    Raises:
        ConfigurationError: too few thresholds, non-ascending ladder,
            or unknown reference.
    """
    t = np.asarray(thresholds, dtype=float)
    if t.size < 3:
        raise ConfigurationError("need at least 3 thresholds")
    if np.any(np.diff(t) <= 0):
        raise ConfigurationError("thresholds must be strictly ascending")

    steps = np.diff(t)
    lsb = float((t[-1] - t[0]) / (t.size - 1))
    dnl = steps / lsb - 1.0

    idx = np.arange(t.size, dtype=float)
    if reference == "endpoint":
        line = t[0] + idx * lsb
    elif reference == "best-fit":
        slope, intercept = np.polyfit(idx, t, 1)
        line = intercept + slope * idx
    else:
        raise ConfigurationError(f"unknown reference {reference!r}")
    inl = (t - line) / lsb
    return LinearityReport(
        lsb=lsb,
        dnl=tuple(float(d) for d in dnl),
        inl=tuple(float(i) for i in inl),
        reference=reference,
    )


def effective_resolution_bits(thresholds: Sequence[float],
                              noise_rms: float) -> float:
    """Effective number of resolvable levels, expressed in bits.

    Quantization contributes ``lsb / sqrt(12)`` of RMS error; rail
    noise adds in quadrature.  The effective resolution over the
    ladder's full range is ``log2(range / (sqrt(12) * total_rms))`` —
    the flash-ADC ENOB formula applied to the thermometer.

    Raises:
        ConfigurationError: negative noise or a degenerate ladder.
    """
    if noise_rms < 0:
        raise ConfigurationError("noise_rms must be non-negative")
    t = np.asarray(thresholds, dtype=float)
    if t.size < 2 or t[-1] <= t[0]:
        raise ConfigurationError("degenerate ladder")
    lsb = (t[-1] - t[0]) / (t.size - 1)
    q_rms = lsb / np.sqrt(12.0)
    total_rms = float(np.hypot(q_rms, noise_rms))
    full_range = float(t[-1] - t[0])
    return float(np.log2(full_range / (np.sqrt(12.0) * total_rms)))
