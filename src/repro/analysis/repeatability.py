"""Measurement repeatability and S-curve threshold extraction.

A real rail is never static: broadband noise rides on any level the
sensor measures, so repeated measures at the same nominal level scatter
across adjacent codes.  Two standard converter-test techniques apply
directly to the thermometer:

* **code histograms** — the distribution of output words over repeated
  measures at one nominal level (how stable is a reading?);
* **S-curves** — per-stage pass *probability* vs. nominal level.  With
  Gaussian rail noise the hard threshold smears into a normal CDF whose
  50 % point is the threshold and whose width is the noise sigma —
  letting a tester extract both from purely digital pass/fail data.

Everything is seeded and deterministic.  Ladder extraction sweeps one
S-curve per stage with a per-bit child seed
(``SeedSequence(seed).spawn`` — see
:mod:`repro.kernels.montecarlo`), so the stages are independent tasks:
:func:`extract_ladder_via_s_curves` takes ``workers=`` (process-pool
fan-out across bits, bit-identical to the serial loop) and ``cache=``
(per-stage memoization) — see :mod:`repro.runtime`.

Both statistical flows run on the batched Monte-Carlo kernels by
default (``method="kernel"``, :mod:`repro.kernels.montecarlo`); the
original per-draw loops stay as the correctness oracle
(``method="scalar"``) and the two produce *identical* histograms and
trip probabilities — same Generator stream, same elementwise
arithmetic — which ``tests/test_kernels_montecarlo.py`` asserts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy import optimize, special

from repro.errors import ConfigurationError
from repro.runtime import (
    ResultCache,
    cached_map,
    design_fingerprint,
    resolve_cache,
    task_key,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.calibration import SensorDesign
    from repro.core.sensor import SenseRail


def _sense_rail():
    # Imported lazily: repro.core imports repro.analysis at package
    # load, so a module-level import here would be circular.
    from repro.core.sensor import SenseRail

    return SenseRail


def word_histogram(design: "SensorDesign", *, level: float,
                   noise_rms: float, n_measures: int = 200,
                   code: int = 3, seed: int = 7,
                   rail: "SenseRail | None" = None,
                   method: str = "kernel") -> dict[str, int]:
    """Distribution of output words at a noisy nominal level.

    Each measure draws an independent Gaussian rail sample
    ``level + N(0, noise_rms)`` (the sensor's per-measure aperture is
    far shorter than broadband noise correlation anyway).

    ``method="kernel"`` (default) draws all samples in one Generator
    call and counts words with
    :func:`repro.kernels.montecarlo.word_grid_mc`;
    ``method="scalar"`` is the original per-measure loop.  The two are
    identical — a batched ``normal(size=n)`` fills from the same
    stream as ``n`` scalar draws, and the kernel's pass/fail
    arithmetic matches the scalar measure float for float.

    Raises:
        ConfigurationError: non-positive measure count / negative rms,
            or an unknown method.
    """
    if n_measures < 1:
        raise ConfigurationError("n_measures must be positive")
    if noise_rms < 0:
        raise ConfigurationError("noise_rms must be non-negative")
    if method not in ("kernel", "scalar"):
        raise ConfigurationError(
            f"unknown method {method!r} (use 'kernel'/'scalar')"
        )
    if rail is None:
        rail = _sense_rail().VDD
    rng = np.random.default_rng(seed)
    is_vdd = rail is _sense_rail().VDD

    if method == "kernel":
        from repro.kernels.montecarlo import (
            effective_supply_grid,
            word_grid_mc,
            word_histogram_grid,
        )

        draws = level + rng.normal(0.0, noise_rms, size=n_measures)
        v_eff = effective_supply_grid(
            design, draws, rail="vdd" if is_vdd else "gnd"
        )
        words = word_grid_mc(design, v_eff, code=code)
        return word_histogram_grid(words)

    from repro.core.array import SensorArray

    array = SensorArray(design, rail)
    counts: Counter[str] = Counter()
    for _ in range(n_measures):
        v = level + rng.normal(0.0, noise_rms)
        kwargs = {"vdd_n": v} if is_vdd else {"gnd_n": v}
        counts[array.measure(code, **kwargs).word.to_string()] += 1
    return dict(counts)


@dataclass(frozen=True)
class SCurve:
    """Per-stage pass probability vs. nominal level.

    Attributes:
        bit: The characterized stage (1-based).
        levels: Nominal levels, volts (ascending).
        pass_probability: Estimated pass probability per level.
        n_per_level: Measures per level.
    """

    bit: int
    levels: tuple[float, ...]
    pass_probability: tuple[float, ...]
    n_per_level: int

    def fit(self) -> "SCurveFit":
        """Fit a normal CDF; returns threshold and noise estimates.

        Raises:
            ConfigurationError: when the curve never crosses 50 %
                inside the swept range (cannot be fit).
        """
        p = np.asarray(self.pass_probability)
        x = np.asarray(self.levels)
        if p.max() < 0.5 or p.min() > 0.5:
            raise ConfigurationError(
                f"bit {self.bit}: S-curve does not cross 50% in the "
                f"swept range"
            )

        def model(v, mu, sigma):
            return 0.5 * (1.0 + special.erf((v - mu)
                                            / (np.sqrt(2) * sigma)))

        mu0 = float(x[np.argmin(np.abs(p - 0.5))])
        sigma0 = max((x[-1] - x[0]) / 10.0, 1e-4)
        popt, _ = optimize.curve_fit(model, x, p, p0=(mu0, sigma0),
                                     maxfev=10_000)
        residuals = p - model(x, *popt)
        return SCurveFit(
            bit=self.bit,
            threshold=float(popt[0]),
            noise_sigma=float(abs(popt[1])),
            rms_residual=float(np.sqrt(np.mean(residuals ** 2))),
        )


@dataclass(frozen=True)
class SCurveFit:
    """Normal-CDF fit of one S-curve."""

    bit: int
    threshold: float
    noise_sigma: float
    rms_residual: float


def measure_s_curve(design: "SensorDesign", bit: int, *,
                    noise_rms: float, code: int = 3,
                    span_sigmas: float = 4.0,
                    n_levels: int = 15,
                    n_per_level: int = 200,
                    seed: "int | np.random.SeedSequence" = 11,
                    method: str = "kernel",
                    backend: "object | str | None" = None) -> SCurve:
    """Sweep nominal levels across one stage's threshold with noise.

    The sweep covers ``threshold ± span_sigmas * noise_rms``; each
    level takes ``n_per_level`` seeded noisy measures.
    ``method="kernel"`` (default) batches every draw of the sweep into
    one Generator call and one vectorized pass/fail evaluation
    (:func:`repro.kernels.montecarlo.s_curve_trip_probability`);
    ``method="scalar"`` is the original per-draw loop.  Both yield the
    same probabilities exactly for the same ``seed``.

    ``backend=`` (an instance or registry spec, see
    :mod:`repro.backends`) sweeps through a measurement driver's
    ``s_curve`` op instead — the kernel driver reproduces
    ``method="kernel"`` exactly; the event-sim driver answers every
    draw with a full PREPARE/SENSE run.  Mutually exclusive with a
    non-default ``method``.

    Raises:
        ConfigurationError: bad parameters.
    """
    if not 1 <= bit <= design.n_bits:
        raise ConfigurationError(f"bit {bit} outside 1..{design.n_bits}")
    if method not in ("kernel", "scalar"):
        raise ConfigurationError(
            f"unknown method {method!r} (use 'kernel'/'scalar')"
        )
    if backend is not None:
        if method != "kernel":
            raise ConfigurationError(
                "pass either method= or backend=, not both"
            )
        from repro.backends import resolve_backend

        bk = resolve_backend(backend)
        bk.configure(design)
        levels, probs = bk.s_curve(
            bit, code=code, noise_rms=noise_rms,
            n_per_level=n_per_level, seed=seed,
            span_sigmas=span_sigmas, n_levels=n_levels,
        )
        return SCurve(bit=bit, levels=tuple(levels),
                      pass_probability=tuple(probs),
                      n_per_level=n_per_level)
    if method == "kernel":
        from repro.kernels.montecarlo import s_curve_trip_probability

        levels, probs = s_curve_trip_probability(
            design, code=code, noise_rms=noise_rms,
            n_per_level=n_per_level, seeds=[seed],
            span_sigmas=span_sigmas, n_levels=n_levels, bits=[bit],
        )
        return SCurve(
            bit=bit,
            levels=tuple(float(v) for v in levels[0]),
            pass_probability=tuple(float(p) for p in probs[0]),
            n_per_level=n_per_level,
        )
    if noise_rms <= 0:
        raise ConfigurationError(
            "noise_rms must be positive (an S-curve needs noise)"
        )
    if n_levels < 5 or n_per_level < 10:
        raise ConfigurationError("need >= 5 levels and >= 10 measures")
    from repro.core.array import SensorArray

    center = design.bit_threshold(bit, code)
    half = span_sigmas * noise_rms
    levels = np.linspace(center - half, center + half, n_levels)
    rng = np.random.default_rng(seed)
    array = SensorArray(design)
    probs = []
    for level in levels:
        draws = level + rng.normal(0.0, noise_rms, size=n_per_level)
        passes = sum(
            1 for v in draws
            if array.bits[bit - 1].measure(code, vdd_n=float(v)).passed
        )
        probs.append(passes / n_per_level)
    return SCurve(
        bit=bit,
        levels=tuple(float(v) for v in levels),
        pass_probability=tuple(probs),
        n_per_level=n_per_level,
    )


def _s_curve_fit_task(spec: tuple) -> SCurveFit:
    """Picklable adapter: sweep and fit one stage's S-curve."""
    design, bit, noise_rms, code, seed, n_per_level, method = spec
    return measure_s_curve(design, bit, noise_rms=noise_rms, code=code,
                           seed=seed, n_per_level=n_per_level,
                           method=method).fit()


def extract_ladder_via_s_curves(design: "SensorDesign", *,
                                noise_rms: float = 5e-3,
                                code: int = 3,
                                seed: int = 13,
                                n_per_level: int = 150,
                                workers: int | None = None,
                                cache: "ResultCache | str | None" = None,
                                method: str = "kernel",
                                backend: "object | str | None" = None
                                ) -> list[SCurveFit]:
    """Tester-style ladder extraction: S-curve fit per stage.

    This is how a production tester would *measure* the decode ladder
    of a fabricated die (the paper's "careful characterization of the
    sensor"): purely digital pass/fail statistics under known applied
    levels, no analog probing.

    Each stage's measures are seeded with its child of
    ``SeedSequence(seed).spawn(n_bits)``
    (:func:`repro.kernels.montecarlo.spawn_bit_seeds`) — a pure
    function of ``(seed, bit)``, so fanning the stages across a
    process pool (``workers=``) returns the same fits in the same
    order as the serial loop and as the batched kernel, and
    per-stage memoization (``cache=``) keys on the design fingerprint,
    every sweep parameter, and the seed scheme tag.  (The earlier
    ``seed + bit`` derivation aliased adjacent root seeds: bit 2 of
    ``seed`` shared a stream with bit 1 of ``seed + 1``.)

    ``backend=`` extracts through a measurement driver instead: the
    stages sweep serially through its ``s_curve`` op (a stateful
    driver — replay, recording — cannot fan out across processes),
    memoized per stage when ``cache=`` is given, with the driver's
    fingerprint folded into every key.  Mutually exclusive with a
    non-default ``method``.
    """
    from repro.kernels.montecarlo import MC_SEED_SCHEME, spawn_bit_seeds

    bit_seeds = spawn_bit_seeds(seed, design.n_bits)
    if backend is not None:
        if method != "kernel":
            raise ConfigurationError(
                "pass either method= or backend=, not both"
            )
        from repro.backends import resolve_backend

        bk = resolve_backend(backend)
        store = resolve_cache(cache)
        fp = None if store is None \
            else design_fingerprint(design, backend=bk)
        fits: list[SCurveFit] = []
        for bit in range(1, design.n_bits + 1):
            key = None if store is None else task_key(
                "s-curve-fit", fp, bit, noise_rms, code,
                MC_SEED_SCHEME, seed, n_per_level, f"backend:{bk.id}",
            )
            if key is not None:
                hit, value = store.get(key)
                if hit:
                    fits.append(value)
                    continue
            fit = measure_s_curve(
                design, bit, noise_rms=noise_rms, code=code,
                seed=bit_seeds[bit - 1], n_per_level=n_per_level,
                backend=bk,
            ).fit()
            if key is not None:
                store.put(key, fit)
            fits.append(fit)
        return fits
    specs = [
        (design, bit, noise_rms, code, bit_seeds[bit - 1],
         n_per_level, method)
        for bit in range(1, design.n_bits + 1)
    ]
    store = resolve_cache(cache)
    keys = None
    if store is not None:
        fp = design_fingerprint(design)
        keys = [
            task_key("s-curve-fit", fp, bit, noise_rms, code,
                     MC_SEED_SCHEME, seed, n_per_level, method)
            for bit in range(1, design.n_bits + 1)
        ]
    return cached_map(_s_curve_fit_task, specs, keys=keys,
                      cache=store, workers=workers)
