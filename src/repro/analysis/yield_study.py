"""Monte-Carlo yield analysis of the thermometer under mismatch.

The paper's array argument assumes "INV-i and FF-i are identical";
real silicon adds per-instance mismatch on top of the die corner, which
can swap adjacent thresholds and produce bubbled output words — the
failure mode the encoder's ones-counting bubble suppression exists for.
This module quantifies it: sample a lot of dies from a
:class:`~repro.devices.variation.VariationModel`, derive each die's
per-bit thresholds (sensor inverters take the per-instance technology;
the shared window blocks take the die technology), and report threshold
spread, monotonicity violations, bubble rates and decode accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from repro.analysis.thermometer import ThermometerWord, decode_word
from repro.devices.variation import VariationModel, VariationSample
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at call sites: repro.core imports repro.analysis
    # at package load, so a module-level import would be circular.
    from repro.core.calibration import SensorDesign


@dataclass(frozen=True)
class DieCharacteristic:
    """One sampled die's array characteristic.

    Attributes:
        thresholds: Per-bit failure thresholds in bit order (NOT
            sorted), volts.
        monotone: True when the physical bit order is already the
            threshold order (no possible bubbles).
    """

    thresholds: tuple[float, ...]

    @property
    def monotone(self) -> bool:
        return all(b > a for a, b in
                   zip(self.thresholds, self.thresholds[1:]))

    def word_at(self, v: float) -> ThermometerWord:
        """The raw output word at a static supply (bubbles possible)."""
        return ThermometerWord(
            tuple(1 if v > t else 0 for t in self.thresholds)
        )

    def decode_at(self, v: float):
        """Bubble-corrected decode against the *sorted* ladder."""
        ladder = tuple(sorted(self.thresholds))
        return decode_word(self.word_at(v), ladder, strict=False)


@dataclass(frozen=True)
class YieldReport:
    """Lot-level statistics.

    Attributes:
        n_dies: Dies sampled.
        threshold_sigma: Per-bit threshold standard deviation across
            the lot, volts (bit order).
        monotone_fraction: Fraction of dies whose ladder needs no
            bubble correction at any supply.
        bubble_rate: Fraction of (die, supply) evaluations whose raw
            word was bubbled.
        bracket_rate: Fraction of (die, supply) evaluations whose
            bubble-corrected decode bracketed the true supply using the
            *nominal* (design) ladder — i.e. without per-die
            recalibration.
        bracket_rate_calibrated: Same, decoding against each die's own
            characterized ladder — the upper bound a per-die
            calibration ("careful characterization of the sensor",
            §III-A) recovers.
        mean_abs_error: Mean |decode midpoint - truth| with the nominal
            ladder, volts.
    """

    n_dies: int
    threshold_sigma: tuple[float, ...]
    monotone_fraction: float
    bubble_rate: float
    bracket_rate: float
    bracket_rate_calibrated: float
    mean_abs_error: float


def die_characteristic(design: "SensorDesign", sample: VariationSample, *,
                       code: int = 3) -> DieCharacteristic:
    """Per-bit thresholds of one sampled die.

    Sensor inverter *i* takes the instance-varied technology; the
    shared window (PG + route + FF) takes the die technology.
    """
    if sample.n_instances < design.n_bits:
        raise ConfigurationError(
            f"sample has {sample.n_instances} instances; need "
            f"{design.n_bits}"
        )
    die_tech = sample.die_technology(design.tech)
    thresholds = tuple(
        design.bit_threshold(
            b, code,
            sample.technology_for(design.tech, b - 1),
            window_tech=die_tech,
        )
        for b in range(1, design.n_bits + 1)
    )
    return DieCharacteristic(thresholds=thresholds)


def run_yield_study(design: "SensorDesign",
                    variation: VariationModel, *,
                    n_dies: int = 100,
                    code: int = 3,
                    supplies: np.ndarray | None = None,
                    seed: int = 2024) -> YieldReport:
    """Sample a lot and score the array under mismatch.

    Args:
        design: Calibrated design.
        variation: Mismatch model to sample from.
        n_dies: Lot size.
        code: Delay code under study.
        supplies: Evaluation supply grid, volts; defaults to 17 points
            across the code's nominal range.
        seed: Lot seed (deterministic studies).
    """
    if n_dies < 1:
        raise ConfigurationError("n_dies must be positive")
    if supplies is None:
        lo = design.bit_threshold(1, code)
        hi = design.bit_threshold(design.n_bits, code)
        supplies = np.linspace(lo + 0.005, hi - 0.005, 17)
    nominal_ladder = tuple(
        design.bit_threshold(b, code)
        for b in range(1, design.n_bits + 1)
    )

    lot = variation.sample_lot(n_dies, design.n_bits, seed=seed)
    per_bit = np.empty((n_dies, design.n_bits))
    monotone = 0
    bubbled = 0
    bracketed = 0
    bracketed_cal = 0
    errors: list[float] = []
    total_evals = 0
    for k, sample in enumerate(lot):
        die = die_characteristic(design, sample, code=code)
        per_bit[k] = die.thresholds
        if die.monotone:
            monotone += 1
        die_ladder = tuple(sorted(die.thresholds))
        for v in supplies:
            v = float(v)
            word = die.word_at(v)
            total_evals += 1
            if not word.is_valid_thermometer:
                bubbled += 1
            rng = decode_word(word, nominal_ladder, strict=False)
            if rng.contains(v):
                bracketed += 1
            if rng.bounded:
                errors.append(abs(rng.midpoint - v))
            rng_cal = decode_word(word, die_ladder, strict=False)
            if rng_cal.contains(v):
                bracketed_cal += 1
    return YieldReport(
        n_dies=n_dies,
        threshold_sigma=tuple(float(s) for s in np.std(per_bit, axis=0)),
        monotone_fraction=monotone / n_dies,
        bubble_rate=bubbled / total_evals,
        bracket_rate=bracketed / total_evals,
        bracket_rate_calibrated=bracketed_cal / total_evals,
        mean_abs_error=float(np.mean(errors)) if errors else 0.0,
    )
