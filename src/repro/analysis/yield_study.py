"""Monte-Carlo yield analysis of the thermometer under mismatch.

The paper's array argument assumes "INV-i and FF-i are identical";
real silicon adds per-instance mismatch on top of the die corner, which
can swap adjacent thresholds and produce bubbled output words — the
failure mode the encoder's ones-counting bubble suppression exists for.
This module quantifies it: sample a lot of dies from a
:class:`~repro.devices.variation.VariationModel`, derive each die's
per-bit thresholds (sensor inverters take the per-instance technology;
the shared window blocks take the die technology), and report threshold
spread, monotonicity violations, bubble rates and decode accuracy.

Dies are independent, and every die's randomness comes from its
:class:`~repro.devices.variation.VariationSample` (seeded at lot
creation, never from scheduling), so :func:`run_yield_study` takes
``workers=`` (process-pool fan-out across dies, bit-identical to the
serial loop) and ``cache=`` (per-die memoization keyed by the design
fingerprint, the sample, the code and the supply grid) — see
:mod:`repro.runtime`.  Both default to serial, uncached behavior.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from repro.analysis.thermometer import ThermometerWord, decode_word
from repro.devices.variation import VariationModel, VariationSample
from repro.errors import ConfigurationError
from repro.kernels import (
    bracket_grid,
    bubble_grid,
    decode_bounds,
    lot_threshold_grid,
    ones_count_grid,
    score_lot_grids,
    threshold_grid,
    word_grid,
)
from repro.runtime import (
    ResultCache,
    cached_map,
    design_fingerprint,
    resolve_cache,
    task_key,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at call sites: repro.core imports repro.analysis
    # at package load, so a module-level import would be circular.
    from repro.core.calibration import SensorDesign


@dataclass(frozen=True)
class DieCharacteristic:
    """One sampled die's array characteristic.

    Attributes:
        thresholds: Per-bit failure thresholds in bit order (NOT
            sorted), volts.
        monotone: True when the physical bit order is already the
            threshold order (no possible bubbles).
    """

    thresholds: tuple[float, ...]

    @property
    def monotone(self) -> bool:
        return bool(np.all(np.diff(self.thresholds) > 0))

    def word_at(self, v: float) -> ThermometerWord:
        """The raw output word at a static supply (bubbles possible)."""
        return ThermometerWord(
            tuple(1 if v > t else 0 for t in self.thresholds)
        )

    def decode_at(self, v: float):
        """Bubble-corrected decode against the *sorted* ladder."""
        ladder = tuple(sorted(self.thresholds))
        return decode_word(self.word_at(v), ladder, strict=False)


@dataclass(frozen=True)
class YieldReport:
    """Lot-level statistics.

    Attributes:
        n_dies: Dies sampled.
        threshold_sigma: Per-bit threshold standard deviation across
            the lot, volts (bit order).
        monotone_fraction: Fraction of dies whose ladder needs no
            bubble correction at any supply.
        bubble_rate: Fraction of (die, supply) evaluations whose raw
            word was bubbled.
        bracket_rate: Fraction of (die, supply) evaluations whose
            bubble-corrected decode bracketed the true supply using the
            *nominal* (design) ladder — i.e. without per-die
            recalibration.
        bracket_rate_calibrated: Same, decoding against each die's own
            characterized ladder — the upper bound a per-die
            calibration ("careful characterization of the sensor",
            §III-A) recovers.
        mean_abs_error: Mean |decode midpoint - truth| with the nominal
            ladder, volts.
    """

    n_dies: int
    threshold_sigma: tuple[float, ...]
    monotone_fraction: float
    bubble_rate: float
    bracket_rate: float
    bracket_rate_calibrated: float
    mean_abs_error: float


def die_characteristic(design: "SensorDesign", sample: VariationSample, *,
                       code: int = 3) -> DieCharacteristic:
    """Per-bit thresholds of one sampled die.

    Sensor inverter *i* takes the instance-varied technology; the
    shared window (PG + route + FF) takes the die technology.
    """
    if sample.n_instances < design.n_bits:
        raise ConfigurationError(
            f"sample has {sample.n_instances} instances; need "
            f"{design.n_bits}"
        )
    die_tech = sample.die_technology(design.tech)
    thresholds = tuple(
        design.bit_threshold(
            b, code,
            sample.technology_for(design.tech, b - 1),
            window_tech=die_tech,
        )
        for b in range(1, design.n_bits + 1)
    )
    return DieCharacteristic(thresholds=thresholds)


@dataclass(frozen=True)
class _DieScore:
    """One die's contribution to the lot reduction (cache payload)."""

    thresholds: tuple[float, ...]
    monotone: bool
    bubbled: int
    bracketed: int
    bracketed_cal: int
    errors: tuple[float, ...]


def _score_from_thresholds(thresholds: np.ndarray,
                           supplies: tuple[float, ...],
                           nominal_ladder: tuple[float, ...]) -> _DieScore:
    """Evaluate one die's solved thresholds across the supply grid.

    All-kernel: word/bubble/decode/bracket evaluation is pure compare
    arithmetic, bit-identical to the scalar loop it replaces.  Shared
    by the per-die (pool/cache) path and the batched serial path, so
    both produce identical :class:`_DieScore` payloads.
    """
    v = np.asarray(supplies, dtype=float)
    words = word_grid(v, thresholds)
    bubbled = int(np.count_nonzero(bubble_grid(words)))
    k = ones_count_grid(words)
    lo, hi = decode_bounds(nominal_ladder, k)
    bracketed = int(np.count_nonzero(bracket_grid(v, lo, hi)))
    bounded = np.isfinite(lo) & np.isfinite(hi)
    mids = 0.5 * (lo[bounded] + hi[bounded])
    errors = tuple(float(e) for e in np.abs(mids - v[bounded]))
    die_ladder = np.sort(thresholds)
    lo_c, hi_c = decode_bounds(die_ladder, k)
    bracketed_cal = int(np.count_nonzero(bracket_grid(v, lo_c, hi_c)))
    return _DieScore(
        thresholds=tuple(float(t) for t in thresholds),
        monotone=bool(np.all(np.diff(thresholds) > 0)),
        bubbled=bubbled,
        bracketed=bracketed,
        bracketed_cal=bracketed_cal,
        errors=errors,
    )


def _score_die(design: "SensorDesign", sample: VariationSample,
               code: int, supplies: tuple[float, ...],
               nominal_ladder: tuple[float, ...]) -> _DieScore:
    """Characterize one die and evaluate it across the supply grid."""
    thresholds = lot_threshold_grid(design, (sample,), code)[0]
    return _score_from_thresholds(thresholds, supplies, nominal_ladder)


def _score_die_scalar(design: "SensorDesign", sample: VariationSample,
                      code: int, supplies: tuple[float, ...],
                      nominal_ladder: tuple[float, ...]) -> _DieScore:
    """The pre-kernel scalar scoring loop, kept as the perf/property
    oracle: one ``brentq`` per bit, one Python decode per supply."""
    die = die_characteristic(design, sample, code=code)
    die_ladder = tuple(sorted(die.thresholds))
    bubbled = bracketed = bracketed_cal = 0
    errors: list[float] = []
    for v in supplies:
        word = die.word_at(v)
        if not word.is_valid_thermometer:
            bubbled += 1
        rng = decode_word(word, nominal_ladder, strict=False)
        if rng.contains(v):
            bracketed += 1
        if rng.bounded:
            errors.append(abs(rng.midpoint - v))
        rng_cal = decode_word(word, die_ladder, strict=False)
        if rng_cal.contains(v):
            bracketed_cal += 1
    return _DieScore(
        thresholds=die.thresholds,
        monotone=die.monotone,
        bubbled=bubbled,
        bracketed=bracketed,
        bracketed_cal=bracketed_cal,
        errors=tuple(errors),
    )


def _scores_from_lot_grid(lot_grid: np.ndarray,
                          supply_grid: tuple[float, ...],
                          nominal_ladder: tuple[float, ...]
                          ) -> list["_DieScore"]:
    """Fused lot scoring: one vectorized reduction across all dies.

    Replaces the per-die :func:`_score_from_thresholds` loop with
    :func:`repro.kernels.score_lot_grids` — no per-die word/diff grids
    — while producing bit-identical :class:`_DieScore` payloads (the
    fused kernel performs the same compares and gathers; enforced by
    ``tests/test_kernels_fused.py``).
    """
    g = score_lot_grids(np.asarray(lot_grid, dtype=float),
                        np.asarray(supply_grid, dtype=float),
                        np.asarray(nominal_ladder, dtype=float))
    scores: list[_DieScore] = []
    for i in range(len(lot_grid)):
        errs = g["abs_errors"][i][g["bounded"][i]]
        scores.append(_DieScore(
            thresholds=tuple(float(t) for t in lot_grid[i]),
            monotone=bool(g["monotone"][i]),
            bubbled=int(g["bubbled"][i]),
            bracketed=int(g["bracketed"][i]),
            bracketed_cal=int(g["bracketed_cal"][i]),
            errors=tuple(float(e) for e in errs),
        ))
    return scores


def _score_die_task(spec: tuple) -> _DieScore:
    """Picklable adapter: one die score from a task payload tuple."""
    return _score_die(*spec)


def _score_die_shm_task(spec: tuple, arrays: dict) -> _DieScore:
    """Pool adapter with the broadcast grids riding shared memory:
    the payload carries only (design, sample, code); the supply grid
    and nominal ladder arrive as zero-copy shared arrays (see
    :mod:`repro.runtime.shm`).  Bit-identical to
    :func:`_score_die_task` — same floats, different transport."""
    design, sample, code = spec
    supplies = tuple(float(v) for v in arrays["supplies"])
    ladder = tuple(float(v) for v in arrays["ladder"])
    return _score_die(design, sample, code, supplies, ladder)


def run_yield_study(design: "SensorDesign",
                    variation: VariationModel, *,
                    n_dies: int = 100,
                    code: int = 3,
                    supplies: np.ndarray | None = None,
                    seed: int = 2024,
                    backend: "object | str | None" = None,
                    workers: int | None = None,
                    cache: "ResultCache | str | None" = None,
                    retries: int = 0,
                    task_timeout: float | None = None,
                    failure_policy: str = "raise"
                    ) -> YieldReport:
    """Sample a lot and score the array under mismatch.

    Each die's randomness is fixed by its
    :class:`~repro.devices.variation.VariationSample` (derived from
    ``seed`` at lot creation), so the per-die scores are pure functions
    of their payload and the parallel path is bit-identical to serial.

    Args:
        design: Calibrated design.
        variation: Mismatch model to sample from.
        n_dies: Lot size.
        code: Delay code under study.
        supplies: Evaluation supply grid, volts; defaults to 17 points
            across the code's nominal range.
        seed: Lot seed (deterministic studies).
        backend: Measurement driver (instance or registry spec, see
            :mod:`repro.backends`) supplying the lot thresholds.  Must
            advertise the ``lot_thresholds`` capability (the kernel
            driver and replayed kernel traces do; the event-sim driver
            does not — :class:`~repro.errors.BackendError` otherwise).
            A named driver takes the serial protocol path and folds
            its fingerprint into any cache keys; ``None`` (and no
            ``REPRO_BACKEND``) keeps the classic batched/fan-out
            routes below.
        workers: Process-pool size for the per-die fan-out
            (<= 1: serial).
        cache: On-disk memoization of per-die scores — a
            :class:`~repro.runtime.ResultCache` or a cache directory;
            ``None`` disables caching.
        retries / task_timeout / failure_policy: Resilience options
            (see :func:`repro.runtime.map_tasks`).  Under ``"partial"``
            dies whose scoring failed through the retry budget are
            dropped from the lot statistics (``n_dies`` in the report
            reflects the *scored* dies); every-die failure raises
            :class:`ConfigurationError`.
    """
    if n_dies < 1:
        raise ConfigurationError("n_dies must be positive")
    nominal_grid = threshold_grid(design, (code,))[:, 0]
    if supplies is None:
        lo = float(nominal_grid[0])
        hi = float(nominal_grid[-1])
        supplies = np.linspace(lo + 0.005, hi - 0.005, 17)
    supply_grid = tuple(float(v) for v in supplies)
    nominal_ladder = tuple(float(v) for v in nominal_grid)

    lot = variation.sample_lot(n_dies, design.n_bits, seed=seed)
    store = resolve_cache(cache)
    # Imported lazily: repro.core imports repro.analysis at package
    # load, so a module-level backends import would be circular.
    from repro.backends import BACKEND_ENV, BackendError, resolve_backend

    bk = None
    if backend is not None or os.environ.get(BACKEND_ENV):
        bk = resolve_backend(backend)
        if not bk.capabilities().lot_thresholds:
            raise BackendError(
                f"backend {bk.id!r} does not characterize mismatch "
                f"lots (capabilities().lot_thresholds is False)"
            )
    if bk is not None:
        # Generic driver path: one lot_thresholds op (so a recorded
        # yield study is a single-record trace), scored with the same
        # kernel reduction as the classic branches.
        bk.configure(design)
        lot_grid = bk.lot_thresholds(lot, code)
        scores: list[_DieScore] = _scores_from_lot_grid(
            lot_grid, supply_grid, nominal_ladder
        )
    elif (store is None and (workers is None or workers <= 1)
            and failure_policy == "raise"):
        # Batched kernel path: one lot-wide root solve and one fused
        # lot-wide scoring reduction instead of a per-die fan-out.
        # Solver batch invariance plus the fused kernel's exact parity
        # make each die bit-identical to the per-die path used by the
        # pool/cache branch below, so the branches stay
        # interchangeable.
        lot_grid = lot_threshold_grid(design, lot, code)
        scores: list[_DieScore] = _scores_from_lot_grid(
            lot_grid, supply_grid, nominal_ladder
        )
    else:
        keys = None
        if store is not None:
            fp = design_fingerprint(design)
            keys = [
                task_key("die-score", fp, sample, code, supply_grid)
                for sample in lot
            ]
        # The per-task payload shrinks to (design, sample, code): the
        # broadcast supply grid and nominal ladder ride shared memory
        # (one copy-in per pool instead of one pickle per die).
        out = cached_map(
            _score_die_shm_task,
            [(design, sample, code) for sample in lot],
            keys=keys, cache=store, workers=workers, retries=retries,
            task_timeout=task_timeout, failure_policy=failure_policy,
            shared={
                "supplies": np.asarray(supply_grid, dtype=float),
                "ladder": np.asarray(nominal_ladder, dtype=float),
            },
        )
        scores = (
            [s for s in out.results if s is not None]
            if failure_policy == "partial" else out
        )
    if not scores:
        raise ConfigurationError(
            "every die failed scoring; nothing to report"
        )
    n_scored = len(scores)

    per_bit = np.array([s.thresholds for s in scores])
    total_evals = n_scored * len(supply_grid)
    errors = [e for s in scores for e in s.errors]
    return YieldReport(
        n_dies=n_scored,
        threshold_sigma=tuple(float(s) for s in np.std(per_bit, axis=0)),
        monotone_fraction=sum(s.monotone for s in scores) / n_scored,
        bubble_rate=sum(s.bubbled for s in scores) / total_evals,
        bracket_rate=sum(s.bracketed for s in scores) / total_evals,
        bracket_rate_calibrated=(
            sum(s.bracketed_cal for s in scores) / total_evals
        ),
        mean_abs_error=float(np.mean(errors)) if errors else 0.0,
    )
