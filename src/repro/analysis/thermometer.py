"""Thermometer output words and their decoding.

Conventions (matching the paper):

* bit *i* (1-based) is the stage with the *i*-th smallest load
  capacitance, hence the *i*-th lowest failure threshold ``T_i``;
* ``OUT-i = 1`` means stage *i* sampled correctly (supply above its
  threshold), ``0`` means it failed;
* printed words are MSB-first — the *highest*-threshold bit leftmost —
  so a mild droop reads ``0011111`` (two high-threshold stages failed),
  exactly the strings of the paper's Fig. 9;
* a word is a *valid thermometer code* when the pass bits are a prefix
  of the threshold ladder: every stage below a passing stage also
  passes.  Mismatch (intra-die variation, metastability) produces
  "bubbles", which :meth:`ThermometerWord.corrected` repairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError, DecodingError


@dataclass(frozen=True)
class VoltageRange:
    """A half-open voltage interval ``(lo, hi)`` decoded from a word.

    ``lo`` may be ``-inf`` (all stages failed: supply below the
    measurable range) and ``hi`` may be ``+inf`` (no stage failed).
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not self.lo < self.hi:
            raise ConfigurationError(
                f"empty voltage range [{self.lo}, {self.hi}]"
            )

    @property
    def bounded(self) -> bool:
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    @property
    def midpoint(self) -> float:
        """Range midpoint; for unbounded ranges, the finite endpoint.

        Raises:
            DecodingError: when neither endpoint is finite.
        """
        if self.bounded:
            return 0.5 * (self.lo + self.hi)
        if math.isfinite(self.lo):
            return self.lo
        if math.isfinite(self.hi):
            return self.hi
        raise DecodingError("range has no finite endpoint")

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def contains(self, v: float) -> bool:
        return self.lo < v <= self.hi


class ThermometerWord:
    """An N-bit sensor output word.

    Args:
        bits: Per-stage pass flags, **bit 1 first** (ascending
            threshold).  Values must be 0 or 1; use
            :meth:`from_samples` to map metastable/unknown samples.
    """

    def __init__(self, bits: Sequence[int]) -> None:
        if not bits:
            raise ConfigurationError("word must have at least one bit")
        for b in bits:
            if b not in (0, 1):
                raise ConfigurationError(
                    f"bit values must be 0 or 1, got {b!r}"
                )
        self._bits = tuple(int(b) for b in bits)

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_string(cls, word: str) -> "ThermometerWord":
        """Parse an MSB-first string like ``"0011111"`` (paper style)."""
        if not word or any(ch not in "01" for ch in word):
            raise ConfigurationError(f"invalid word string {word!r}")
        return cls(tuple(int(ch) for ch in reversed(word)))

    @classmethod
    def from_samples(cls, values: Sequence[int | None], *,
                     unknown_as: int = 0) -> "ThermometerWord":
        """Build from FF sample values; unresolved samples map to
        ``unknown_as`` (default 0 = treat metastable as failed, the
        conservative choice for a droop detector)."""
        if unknown_as not in (0, 1):
            raise ConfigurationError("unknown_as must be 0 or 1")
        return cls(tuple(unknown_as if v is None else int(v)
                         for v in values))

    # -- structure ---------------------------------------------------------

    @property
    def bits(self) -> tuple[int, ...]:
        """Per-stage bits, bit 1 (lowest threshold) first."""
        return self._bits

    @property
    def n_bits(self) -> int:
        return len(self._bits)

    @property
    def ones(self) -> int:
        """Number of passing stages — the thermometer reading."""
        return sum(self._bits)

    def to_string(self) -> str:
        """MSB-first rendering (paper's Fig. 9 style)."""
        return "".join(str(b) for b in reversed(self._bits))

    @property
    def is_valid_thermometer(self) -> bool:
        """True when pass bits form a prefix (no bubbles)."""
        seen_zero = False
        for b in self._bits:
            if b == 0:
                seen_zero = True
            elif seen_zero:
                return False
        return True

    @property
    def bubble_count(self) -> int:
        """Number of bits that must flip to make the code a prefix.

        0 for a valid code; equals the Hamming distance to the nearest
        valid thermometer code with the same number of ones rounded by
        the majority rule below.
        """
        corrected = self.corrected()
        return sum(
            1 for a, b in zip(self._bits, corrected.bits) if a != b
        )

    def corrected(self) -> "ThermometerWord":
        """Bubble-corrected word: keep the ones *count*, pack as prefix.

        Ones-counting is the standard flash-ADC bubble suppressor: the
        number of passing stages is preserved and repacked against the
        threshold ladder.  A valid code is returned unchanged.
        """
        k = self.ones
        return ThermometerWord(
            tuple(1 if i < k else 0 for i in range(self.n_bits))
        )

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ThermometerWord):
            return NotImplemented
        return self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def __repr__(self) -> str:
        return f"ThermometerWord({self.to_string()!r})"


def decode_word(word: ThermometerWord,
                thresholds: Sequence[float], *,
                strict: bool = True) -> VoltageRange:
    """Decode a word into the supply range it implies.

    With ``k`` passing stages against ascending thresholds ``T_1..T_N``:
    the supply exceeded ``T_k`` but not ``T_{k+1}`` — the interval
    ``(T_k, T_{k+1}]``, with ``-inf``/``+inf`` at the ladder ends.

    Args:
        word: The output word.
        thresholds: Ascending per-stage thresholds, volts (same length
            as the word).
        strict: When True, a bubbled word raises
            :class:`DecodingError`; when False it is bubble-corrected
            first.

    Raises:
        DecodingError: width mismatch, non-ascending thresholds, or a
            bubbled word under ``strict``.
    """
    if len(thresholds) != word.n_bits:
        raise DecodingError(
            f"word has {word.n_bits} bits but {len(thresholds)} "
            f"thresholds given"
        )
    ladder = list(thresholds)
    if any(b >= a for a, b in zip(ladder[1:], ladder)):
        raise DecodingError("thresholds must be strictly ascending")
    if not word.is_valid_thermometer:
        if strict:
            raise DecodingError(
                f"word {word.to_string()} is not a valid thermometer code"
            )
        word = word.corrected()
    k = word.ones
    lo = ladder[k - 1] if k >= 1 else float("-inf")
    hi = ladder[k] if k < len(ladder) else float("inf")
    return VoltageRange(lo=lo, hi=hi)


def decode_table(thresholds: Sequence[float]) -> list[tuple[str,
                                                            VoltageRange]]:
    """All valid words of an N-stage ladder with their decoded ranges.

    Ordered from all-fail (``0…0``) to all-pass (``1…1``) — the rows of
    the paper's Fig. 5 characteristic.
    """
    n = len(thresholds)
    out = []
    for k in range(n + 1):
        word = ThermometerWord(tuple(1 if i < k else 0 for i in range(n)))
        out.append((word.to_string(),
                    decode_word(word, thresholds)))
    return out
