"""Measurement decoding and statistics.

Turns raw thermometer output words into voltage ranges (the flash-ADC
reading the paper describes), checks/repairs code integrity, and
aggregates repeated measures into waveform estimates:

* :mod:`repro.analysis.thermometer` — output words, bubble detection
  and correction, word→voltage-range decoding;
* :mod:`repro.analysis.statistics` — quantization/accuracy metrics for
  the comparison benches;
* :mod:`repro.analysis.reconstruct` — iterated-measure waveform
  reconstruction (the paper's "measures should be iterated so that
  noise values can be captured in different moments").
"""

from repro.analysis.thermometer import (
    ThermometerWord,
    VoltageRange,
    decode_word,
    decode_table,
)
from repro.analysis.statistics import (
    quantization_step,
    range_error,
    tracking_rmse,
    coverage_probability,
)
from repro.analysis.reconstruct import WaveformReconstructor
from repro.analysis.yield_study import run_yield_study, YieldReport
from repro.analysis.repeatability import (
    measure_s_curve,
    extract_ladder_via_s_curves,
    word_histogram,
)
from repro.analysis.converter_metrics import (
    linearity,
    effective_resolution_bits,
)

__all__ = [
    "ThermometerWord",
    "VoltageRange",
    "decode_word",
    "decode_table",
    "quantization_step",
    "range_error",
    "tracking_rmse",
    "coverage_probability",
    "WaveformReconstructor",
    "run_yield_study",
    "YieldReport",
    "measure_s_curve",
    "extract_ladder_via_s_curves",
    "word_histogram",
    "linearity",
    "effective_resolution_bits",
]
