"""Stage executors: the campaign verbs, one per ``kind``.

Each executor is a pure function ``(ctx, stage) -> (payload,
volatile)``:

* ``payload`` — the stage's *answer*: JSON-safe, deterministic given
  the campaign fingerprint, persisted in the stage-result cache and
  written to ``results/<id>.json``.  Golden diffs compare payloads
  bit-for-bit (deterministic stages only).
* ``volatile`` — the *road taken*: runtime counters (crashes, pool
  rebuilds, retries, cache hits), subprocess stats, anything that
  legitimately differs between a clean run and a chaos/resumed run.
  Volatile data goes into the manifest for observability but is
  excluded from golden comparison.

The split is the campaign layer's core discipline: everything a
re-run must reproduce goes in the payload; everything it may not goes
in volatile.  A stage that leaks a timestamp or a hit counter into
its payload breaks resume-bit-identity — the test suite's crash/
resume drill exists to catch exactly that.

Registered kinds:

=================  ====================================================
``characterization``  Fig. 5 multibit ladders via
                      :func:`~repro.core.characterization.characterize_array`
``cap_sweep``         Fig. 4 threshold-vs-trim-cap sweep
``threshold_sweep``   per-bit sim-oracle bisections on
                      :func:`~repro.runtime.resilient.resilient_cached_map`
                      (the chaos-drill workhorse: honors worker-kill
                      injection)
``yield_study``       mismatch-lot scoring via
                      :func:`~repro.analysis.yield_study.run_yield_study`
``s_curve``           stochastic trip-probability ladders through the
                      driver's ``s_curve`` capability
``telemetry``         synthetic droop trace through the streaming
                      :class:`~repro.telemetry.pipeline.TelemetryPipeline`
``fault_screen``      stuck-at injection + production screen
``service_drill``     a real ``repro serve`` subprocess under client
                      load with seeded kills/poison (nondeterministic:
                      latencies and kill schedules vary)
``synthetic``         scheduler drill/bench probe: a deterministic
                      payload behind an emulated instrument dwell
                      (``dwell_ms``), with optional forced failure —
                      the workload the scheduler benchmarks and
                      random-DAG property tests are built from
=================  ====================================================
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.campaign.spec import CampaignSpec, StageSpec
from repro.errors import StageExecutionError
from repro.runtime.cache import (
    ResultCache,
    design_fingerprint,
    task_key,
)
from repro.runtime.chaos import ChaosMonkey, KillOnceTask, enumerate_for
from repro.runtime.resilient import resilient_cached_map

#: Stage kinds whose payloads may differ between runs (wall-clock
#: latencies, kill schedules).  The runner marks them in the manifest
#: and the golden diff skips their result trees.
NONDETERMINISTIC_KINDS = frozenset({"service_drill"})


@dataclass
class StageContext:
    """Everything an executor may touch, resolved once per run.

    Attributes:
        spec: The whole campaign (stage params ride on the stage).
        design: The calibrated design (nominal; corner applied via
            ``tech``).
        tech: Corner technology override, or None for nominal.
        backend: The resolved, shared measurement driver.
        cache: Task-level ResultCache (the resumability substrate).
        out_dir: The run's output directory (stage scratch space).
        monkey: Seeded chaos source when the spec has an active chaos
            block, else None.
        kill_tasks: Worker-kill budget from the chaos block (consumed
            by the first chaos-capable stage that runs tasks).
        vandalized: Cache entry paths (as strings) the runner's chaos
            pass corrupted — they exist on disk but will re-execute.
    """

    spec: CampaignSpec
    design: Any
    tech: Any
    backend: Any
    cache: ResultCache
    out_dir: Path
    monkey: ChaosMonkey | None = None
    kill_tasks: int = 0
    vandalized: tuple = ()
    _fingerprint: str | None = field(default=None, repr=False)

    def runtime_kwargs(self) -> dict[str, Any]:
        """The resilient-runtime knobs every sweep entry point takes."""
        spec = self.spec
        return {
            "workers": spec.workers or None,
            "retries": spec.retries,
            "task_timeout": spec.task_timeout,
            "failure_policy": spec.failure_policy,
        }

    def fingerprint(self) -> str:
        """Driverless design fingerprint (task-key ingredient)."""
        if self._fingerprint is None:
            self._fingerprint = design_fingerprint(self.design)
        return self._fingerprint

    def tech_token(self) -> str:
        return self.tech.name if self.tech is not None else "nominal"


def _stats_volatile(stats: Any) -> dict[str, Any]:
    """RunStats -> the manifest's volatile counter record."""
    return {
        "tasks": stats.tasks,
        "completed": stats.completed,
        "retries": stats.retries,
        "crashes": stats.crashes,
        "timeouts": stats.timeouts,
        "pool_rebuilds": stats.pool_rebuilds,
        "failures": stats.failures,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
    }


def _none_or_float(value: Any) -> float | None:
    return None if value is None else float(value)


# -- characterization ----------------------------------------------------------


def _run_characterization(ctx: StageContext,
                          stage: StageSpec) -> tuple[dict, dict]:
    from repro.core.characterization import characterize_array

    codes = [int(c) for c in stage.param("codes", [1, 2, 3])]
    tol = float(stage.param("tol", 0.5e-3))
    chars = characterize_array(
        ctx.design, codes, tech=ctx.tech, backend=ctx.backend,
        tol=tol, cache=ctx.cache, **ctx.runtime_kwargs(),
    )
    payload = {
        "codes": codes,
        "tol": tol,
        "per_code": {
            str(code): {
                "thresholds": [float(t) for t in ch.thresholds],
                "v_min": float(ch.v_min),
                "v_max": float(ch.v_max),
                "masked_bits": [int(b) for b in ch.masked_bits],
            }
            for code, ch in chars.items()
        },
    }
    return payload, {}


def _run_cap_sweep(ctx: StageContext,
                   stage: StageSpec) -> tuple[dict, dict]:
    from repro.core.characterization import threshold_vs_capacitance

    caps_ff = [float(c) for c in stage.param("caps_ff", [5, 10, 20])]
    code = int(stage.param("code", 3))
    tol = float(stage.param("tol", 0.5e-3))
    rows = threshold_vs_capacitance(
        ctx.design, [c * 1e-15 for c in caps_ff], code=code,
        tech=ctx.tech, backend=ctx.backend, tol=tol,
        cache=ctx.cache, **ctx.runtime_kwargs(),
    )
    payload = {
        "code": code,
        "caps_ff": caps_ff,
        "thresholds": [_none_or_float(thr) for _cap, thr in rows],
    }
    return payload, {}


def _run_threshold_sweep(ctx: StageContext,
                         stage: StageSpec) -> tuple[dict, dict]:
    from repro.core.characterization import (
        _sim_bracket,
        _sim_threshold_task,
    )
    from repro.core.sensor import SenseRail

    code = int(stage.param("code", 3))
    tol = float(stage.param("tol", 5e-3))
    bits = [int(b) for b in
            stage.param("bits", list(range(1, ctx.design.n_bits + 1)))]
    rail = SenseRail.VDD
    specs, keys = [], []
    for b in bits:
        est = ctx.design.bit_threshold(b, code)
        v_lo, v_hi = _sim_bracket(est, rail, 0.15)
        specs.append((ctx.design, b, code, rail, ctx.tech,
                      v_lo, v_hi, tol))
        keys.append(task_key("campaign-threshold", ctx.fingerprint(),
                             ctx.tech_token(), b, code, tol))

    kwargs = ctx.runtime_kwargs()
    fn: Callable = _sim_threshold_task
    items: list = specs
    kill_indices: list[int] = []
    if ctx.monkey is not None and ctx.kill_tasks > 0:
        # A killed task must actually reach the pool, so choose only
        # among tasks that will recompute: no cache entry yet, or an
        # entry this run's chaos pass vandalized (path probe, not
        # get(): the miss counters must stay honest).
        vandalized = set(ctx.vandalized)
        missing = [
            i for i, key in enumerate(keys)
            if not ctx.cache._path(key).exists()
            or str(ctx.cache._path(key)) in vandalized
        ]
        n_kills = min(ctx.kill_tasks, len(missing))
        if n_kills:
            chosen = ctx.monkey.pick(len(missing), n_kills)
            kill_indices = sorted(missing[i] for i in chosen)
            marker_dir = ctx.out_dir / f"{stage.id}-kill-markers"
            marker_dir.mkdir(parents=True, exist_ok=True)
            fn = KillOnceTask(fn=_sim_threshold_task,
                              kill_indices=frozenset(kill_indices),
                              marker_dir=str(marker_dir))
            items = enumerate_for(specs)
            ctx.kill_tasks -= n_kills
            # The runtime drops to in-process serial execution when
            # only one task misses the cache and no timeout is set —
            # which would let the kill SIGKILL the campaign itself.
            # A timeout forces the single-worker-pool path, so the
            # victim always dies in a disposable worker.
            if kwargs.get("task_timeout") is None:
                kwargs["task_timeout"] = 600.0

    outcome = resilient_cached_map(fn, items, keys=keys,
                                   cache=ctx.cache, **kwargs)
    payload = {
        "code": code,
        "tol": tol,
        "rail": rail.name,
        "bits": bits,
        "thresholds": [_none_or_float(t) for t in outcome.results],
        "n_failed": len(outcome.failures),
    }
    volatile = _stats_volatile(outcome.stats)
    volatile["killed_task_indices"] = kill_indices
    return payload, volatile


def _run_yield_study(ctx: StageContext,
                     stage: StageSpec) -> tuple[dict, dict]:
    from repro.analysis.yield_study import run_yield_study
    from repro.devices.variation import VariationModel

    n_dies = int(stage.param("n_dies", 50))
    code = int(stage.param("code", 3))
    seed = int(stage.param("seed", ctx.spec.seed))
    report = run_yield_study(
        ctx.design, VariationModel(), n_dies=n_dies, code=code,
        seed=seed, backend=ctx.backend, cache=ctx.cache,
        **ctx.runtime_kwargs(),
    )
    payload = {
        "n_dies": report.n_dies,
        "code": code,
        "seed": seed,
        "threshold_sigma": [float(s) for s in report.threshold_sigma],
        "monotone_fraction": float(report.monotone_fraction),
        "bubble_rate": float(report.bubble_rate),
        "bracket_rate": float(report.bracket_rate),
        "bracket_rate_calibrated":
            float(report.bracket_rate_calibrated),
        "mean_abs_error": float(report.mean_abs_error),
    }
    return payload, {}


def _run_s_curve(ctx: StageContext,
                 stage: StageSpec) -> tuple[dict, dict]:
    bits = [int(b) for b in stage.param("bits", [1])]
    code = int(stage.param("code", 3))
    noise_rms = float(stage.param("noise_rms", 0.02))
    n_per_level = int(stage.param("n_per_level", 2000))
    seed = int(stage.param("seed", ctx.spec.seed))
    ctx.backend.configure(ctx.design, tech=ctx.tech)
    per_bit = {}
    for bit in bits:
        levels, probs = ctx.backend.s_curve(
            bit, code=code, noise_rms=noise_rms,
            n_per_level=n_per_level, seed=seed,
        )
        per_bit[str(bit)] = {
            "levels": [float(v) for v in levels],
            "p_pass": [float(p) for p in probs],
        }
    payload = {
        "code": code,
        "noise_rms": noise_rms,
        "n_per_level": n_per_level,
        "seed": seed,
        "per_bit": per_bit,
    }
    return payload, {}


def _run_telemetry(ctx: StageContext,
                   stage: StageSpec) -> tuple[dict, dict]:
    from repro.telemetry.pipeline import TelemetryPipeline
    from repro.telemetry.sources import (
        array_source,
        synthetic_droop_trace,
    )

    n_samples = int(stage.param("n_samples", 20000))
    n_droops = int(stage.param("n_droops", 2))
    depth = float(stage.param("depth", 0.15))
    noise_rms = float(stage.param("noise_rms", 0.0))
    seed = int(stage.param("seed", ctx.spec.seed))
    code = int(stage.param("code", 3))
    chunk = int(stage.param("chunk", 1024))
    times, volts, true_starts = synthetic_droop_trace(
        n_samples=n_samples, n_droops=n_droops, depth=depth,
        noise_rms=noise_rms, seed=seed,
    )
    pipeline = TelemetryPipeline(ctx.design, code=code, tech=ctx.tech,
                                 chunk=chunk)
    snapshot = pipeline.run(array_source("site0", times, volts,
                                         block=chunk))
    events = pipeline.events
    payload = {
        "n_samples": n_samples,
        "n_droops_injected": n_droops,
        "seed": seed,
        "code": code,
        "droop_starts_injected": [float(t) for t in true_starts],
        "totals": snapshot["totals"],
        "events": [
            {"site": e.site, "start": float(e.start),
             "end": float(e.end), "n_samples": int(e.n_samples),
             "depth_v": float(e.depth_v),
             "worst_rung": int(e.worst_rung)}
            for e in events
        ],
    }
    return payload, {}


def _run_fault_screen(ctx: StageContext,
                      stage: StageSpec) -> tuple[dict, dict]:
    from repro.core.faults import (
        FaultInjector,
        FaultType,
        screen_suspects,
    )

    code = int(stage.param("code", 3))
    faults = stage.param("faults", [{"fault": "out_stuck_fail",
                                     "bit": 2}])
    results = []
    for entry in faults:
        name = str(entry["fault"]).upper()
        bit = int(entry["bit"])
        try:
            fault_type = FaultType[name]
        except KeyError as exc:
            raise StageExecutionError(
                f"stage {stage.id!r}: unknown fault type {name!r} "
                f"(known: {[f.name for f in FaultType]})"
            ) from exc
        injector = FaultInjector(ctx.design, tech=ctx.tech)
        injector.inject(fault_type, bit)
        suspects = screen_suspects(injector, code=code)
        results.append({
            "fault": name.lower(),
            "bit": bit,
            "suspect_bits": [int(b) for b in suspects],
            "detected": bit in suspects,
        })
    payload = {"code": code, "screens": results}
    return payload, {}


def _run_synthetic(ctx: StageContext,
                   stage: StageSpec) -> tuple[dict, dict]:
    """Scheduler probe: emulated instrument dwell + trivial compute.

    Deterministic given its params, so it supports golden diffing,
    stage-cache resume and chaos vandalism like any real stage, while
    costing nothing but the dwell — which is exactly what the campaign
    scheduler's benchmarks and random-DAG property tests need: stages
    whose wall-clock the scheduler can overlap without burning CPU.

    Params: ``value`` (folded into the payload), ``dwell_ms``
    (blocking wait, emulating an instrument's measurement dwell),
    ``fail`` (truthy: raise *after* the dwell — a seeded stage-error
    placement hook; dwelling first lets tests stage slow failures that
    race faster successes through the scheduler).
    """
    value = float(stage.param("value", float(ctx.spec.seed)))
    dwell_ms = float(stage.param("dwell_ms", 0.0))
    if dwell_ms > 0:
        time.sleep(dwell_ms * 1e-3)
    fail = stage.param("fail", None)
    if fail:
        raise StageExecutionError(
            f"stage {stage.id!r}: synthetic failure ({fail})"
        )
    key = task_key("campaign-synthetic", ctx.fingerprint(),
                   ctx.tech_token(), stage.id, value)
    result = ctx.cache.get_or_compute(
        key, lambda: {"value": value, "scaled": value * 2.0})
    payload = {
        "stage": stage.id,
        "value": float(result["value"]),
        "scaled": float(result["scaled"]),
        "dwell_ms": dwell_ms,
    }
    return payload, {}


def _run_service_drill(ctx: StageContext,
                       stage: StageSpec) -> tuple[dict, dict]:
    import asyncio

    from repro.service.chaos import build_load, run_load
    from repro.service.fleet import FleetConfig

    n_requests = int(stage.param("n_requests", 24))
    mix = tuple(stage.param(
        "mix", ["measure", "characterize", "measure", "window"]))
    kill_rate = float(stage.param("kill_rate", 0.0))
    poison_rate = float(stage.param("poison_rate", 0.0))
    dies = int(stage.param("dies", 16))
    shards = int(stage.param("shards", 2))
    pool_workers = int(stage.param("pool_workers", 1))
    n_clients = int(stage.param("n_clients", 3))
    depth = int(stage.param("depth", 3))
    seed = int(stage.param("seed", ctx.spec.seed))

    # Unix sockets cap at ~104 bytes of path; the run's out_dir can be
    # arbitrarily deep, so the socket lives in its own short tempdir.
    tmp = Path(tempfile.mkdtemp(prefix="campaign-svc-"))
    sock = tmp / "svc.sock"
    markers = tmp / "markers"
    markers.mkdir()
    stats_path = ctx.out_dir / f"{stage.id}-service-stats.json"
    service_cache = ctx.out_dir / f"{stage.id}-service-cache"

    # The load must target the fleet the server actually hosts, or
    # requests aimed at out-of-range dies surface as spurious errors.
    requests = build_load(
        ChaosMonkey(seed), n_requests,
        config=FleetConfig(n_dies=dies, n_shards=shards), mix=mix,
        kill_rate=kill_rate,
        marker_dir=str(markers) if kill_rate else None,
        poison_rate=poison_rate,
    )
    n_kills = sum(1 for r in requests
                  if "kill_marker" in r["params"].get("chaos", {}))
    n_poison = sum(1 for r in requests
                   if r["params"].get("chaos", {}).get("poison"))

    src_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ,
               PYTHONPATH=f"{src_root}:{os.environ.get('PYTHONPATH', '')}",
               REPRO_CACHE_DIR=str(service_cache))
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--unix", str(sock),
         "--backend", ctx.spec.backend, "--executor", "pool",
         "--pool-workers", str(pool_workers), "--dies", str(dies),
         "--shards", str(shards), "--max-requests", str(n_requests),
         "--stats-out", str(stats_path)],
        env=env,
    )
    try:
        for _ in range(600):
            if sock.exists():
                break
            if server.poll() is not None:
                raise StageExecutionError(
                    f"stage {stage.id!r}: server exited rc="
                    f"{server.returncode} before opening its socket"
                )
            time.sleep(0.1)
        else:
            raise StageExecutionError(
                f"stage {stage.id!r}: server socket never appeared"
            )
        report = asyncio.run(run_load(
            f"unix:{sock}", requests, n_clients=n_clients,
            depth=depth, timeout_s=300,
        ))
        server.wait(timeout=120)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    try:
        server_stats = json.loads(stats_path.read_text())
    except (OSError, json.JSONDecodeError):
        server_stats = {}
    counters = server_stats.get("counters", {})
    errors = sum(1 for r in report.responses.values()
                 if r.get("status") == "error")

    payload = {
        "n_requests": n_requests,
        "responses": len(report.responses),
        "exactly_once": report.problems() == [],
        "dropped_connections": counters.get("dropped_connections"),
        "errors": errors,
        "poison_injected": n_poison,
        "kills_injected": n_kills,
        "errors_match_poison": errors == n_poison,
        "kills_recovered": counters.get("crashes", 0) >= n_kills,
        "clean_exit": server.returncode == 0,
        "quality": dict(report.by_quality),
        "status": dict(report.by_status),
    }
    volatile = {
        "problems": report.problems(),
        "server_counters": counters,
        "server_cache": server_stats.get("cache", {}),
        "throughput_rps": report.throughput_rps,
        "p99_latency_s": report.latency_quantile(0.99),
    }
    return payload, volatile


#: ``kind`` -> executor.  Schema validation checks stage kinds against
#: this table, so registering a new verb here is the whole extension.
STAGE_KINDS: dict[str, Callable[[StageContext, StageSpec],
                                tuple[dict, dict]]] = {
    "characterization": _run_characterization,
    "cap_sweep": _run_cap_sweep,
    "threshold_sweep": _run_threshold_sweep,
    "yield_study": _run_yield_study,
    "s_curve": _run_s_curve,
    "telemetry": _run_telemetry,
    "fault_screen": _run_fault_screen,
    "service_drill": _run_service_drill,
    "synthetic": _run_synthetic,
}


def execute_stage(ctx: StageContext,
                  stage: StageSpec) -> tuple[dict, dict]:
    """Run one stage; every engine failure surfaces as
    :class:`~repro.errors.StageExecutionError` (original as cause)."""
    executor = STAGE_KINDS[stage.kind]
    try:
        return executor(ctx, stage)
    except StageExecutionError:
        raise
    except Exception as exc:
        raise StageExecutionError(
            f"stage {stage.id!r} ({stage.kind}) failed: {exc}"
        ) from exc
