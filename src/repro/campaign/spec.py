"""Parsed campaign specs: frozen dataclasses with a stable hash.

:func:`load_spec` reads TOML (stdlib ``tomllib``, Python >= 3.11) or
JSON, validates the raw mapping against ``campaign/v1``
(:mod:`repro.campaign.schema`) and freezes it into a
:class:`CampaignSpec` — the single object the runner, manifest and
diff layers share.

Identity rule: :meth:`CampaignSpec.spec_hash` folds everything that
changes *what the campaign computes* — stages, params, checks, seed,
corner, backend, runtime knobs — and deliberately **excludes the chaos
block**.  Chaos injection (cache vandalism, worker kills) must never
change the answers, only the road taken; a chaos drill therefore
shares its spec hash (and so its campaign fingerprint and cache
entries) with the clean run it is checked against.  That exclusion is
what makes "kill it, re-run it, diff against the clean golden" a
one-spec workflow.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.campaign.schema import CAMPAIGN_SCHEMA, validate_spec_mapping
from repro.errors import CampaignSpecError
from repro.runtime.cache import stable_hash


def _freeze(value: Any) -> Any:
    """Recursively convert parsed JSON/TOML values into hashable-by-
    :func:`~repro.runtime.cache.stable_hash` shapes (lists stay lists —
    stable_hash walks them — but mappings become sorted tuples so
    frozen dataclasses holding them stay hashable and order-free)."""
    if isinstance(value, Mapping):
        return tuple(sorted(
            (str(k), _freeze(v)) for k, v in value.items()
        ))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` for params access: tuple-of-pairs
    back to dicts, tuples back to lists."""
    if isinstance(value, tuple) and value \
            and all(isinstance(p, tuple) and len(p) == 2
                    and isinstance(p[0], str) for p in value):
        return {k: _thaw(v) for k, v in value}
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class CheckSpec:
    """One declarative pass/fail criterion attached to a stage."""

    kind: str
    options: tuple = ()

    def option(self, key: str, default: Any = None) -> Any:
        for k, v in self.options:
            if k == key:
                return _thaw(v)
        return default


@dataclass(frozen=True)
class StageSpec:
    """One node of the campaign DAG."""

    id: str
    kind: str
    needs: tuple = ()
    params: tuple = ()
    checks: tuple = ()

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return _thaw(v)
        return default

    def params_dict(self) -> dict[str, Any]:
        return {k: _thaw(v) for k, v in self.params}


@dataclass(frozen=True)
class ChaosSpec:
    """Fault-injection plan: excluded from the spec hash by
    construction (see module docstring)."""

    seed: int = 1337
    corrupt_cache: int = 0
    kill_worker_tasks: int = 0

    @property
    def active(self) -> bool:
        return self.corrupt_cache > 0 or self.kill_worker_tasks > 0


@dataclass(frozen=True)
class CampaignSpec:
    """A fully validated ``campaign/v1`` spec.

    Attributes mirror the schema tables (see
    :mod:`repro.campaign.schema`); ``stages`` is kept in declaration
    order, :meth:`topo_order` gives the execution order.
    """

    name: str
    description: str = ""
    seed: int = 2009
    corner: str | None = None
    backend: str = "kernel"
    workers: int = 0
    retries: int = 0
    task_timeout: float | None = None
    failure_policy: str = "raise"
    on_fail: str = "abort"
    execution: str = "threads"
    stage_workers: int = 0
    stages: tuple = ()
    chaos: ChaosSpec | None = None
    source: str = field(default="<spec>", compare=False)

    def spec_hash(self) -> str:
        """Stable identity of *what this campaign computes*.

        Chaos and the source path are excluded: neither changes the
        answers, and a drill must share cache entries with its clean
        counterpart.  The scheduling knobs (``execution``,
        ``stage_workers``) are normalized out for the same reason —
        a serial run and its parallel twin must share the spec hash,
        the campaign fingerprint, and every stage-cache key, or
        resume and golden diffing across modes would break.
        """
        return stable_hash((
            CAMPAIGN_SCHEMA,
            dataclasses.replace(self, chaos=None, source="<spec>",
                                execution="threads", stage_workers=0),
        ))

    def to_mapping(self) -> dict[str, Any]:
        """The raw ``campaign/v1`` mapping this spec freezes.

        Round-trips: ``spec_from_mapping(spec.to_mapping())`` yields an
        identical :meth:`spec_hash`.  The chaos block is deliberately
        dropped — this is the wire form for shipping stages to a job
        server (``execution = "service"``), and chaos drills stay
        confined to the submitting process.
        """
        runtime: dict[str, Any] = {
            "workers": self.workers,
            "retries": self.retries,
            "failure_policy": self.failure_policy,
            "on_fail": self.on_fail,
            "execution": self.execution,
            "stage_workers": self.stage_workers,
        }
        if self.task_timeout is not None:
            runtime["task_timeout"] = self.task_timeout
        raw: dict[str, Any] = {
            "schema": CAMPAIGN_SCHEMA,
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "backend": {"spec": self.backend},
            "runtime": runtime,
            "stages": [
                {
                    "id": s.id,
                    "kind": s.kind,
                    "needs": list(s.needs),
                    "params": s.params_dict(),
                    "checks": [
                        {"kind": c.kind,
                         **{k: _thaw(v) for k, v in c.options}}
                        for c in s.checks
                    ],
                }
                for s in self.stages
            ],
        }
        if self.corner is not None:
            raw["design"] = {"corner": self.corner}
        return raw

    def stage(self, stage_id: str) -> StageSpec:
        for stage in self.stages:
            if stage.id == stage_id:
                return stage
        raise CampaignSpecError(
            f"{self.source}: no stage {stage_id!r} in campaign "
            f"{self.name!r}"
        )

    def topo_order(self) -> tuple[str, ...]:
        """Dependency-respecting execution order (validated acyclic)."""
        raw = {"schema": CAMPAIGN_SCHEMA, "name": self.name,
               "stages": [{"id": s.id, "kind": s.kind,
                           "needs": list(s.needs)}
                          for s in self.stages]}
        return tuple(validate_spec_mapping(raw, source=self.source))


def spec_from_mapping(raw: Mapping[str, Any], *,
                      source: str = "<spec>") -> CampaignSpec:
    """Validate a raw mapping and freeze it into a
    :class:`CampaignSpec`.

    Raises:
        CampaignSpecError: on any schema violation (the message names
            the offending key path and the source file).
    """
    validate_spec_mapping(raw, source=source)
    runtime = raw.get("runtime", {})
    chaos_raw = raw.get("chaos")
    chaos = None
    if chaos_raw is not None:
        chaos = ChaosSpec(
            seed=int(chaos_raw.get("seed", 1337)),
            corrupt_cache=int(chaos_raw.get("corrupt_cache", 0)),
            kill_worker_tasks=int(chaos_raw.get("kill_worker_tasks", 0)),
        )
    stages = tuple(
        StageSpec(
            id=s["id"],
            kind=s["kind"],
            needs=tuple(s.get("needs", [])),
            params=_freeze(s.get("params", {})),
            checks=tuple(
                CheckSpec(
                    kind=c["kind"],
                    options=_freeze({k: v for k, v in c.items()
                                     if k != "kind"}),
                )
                for c in s.get("checks", [])
            ),
        )
        for s in raw["stages"]
    )
    timeout = raw.get("runtime", {}).get("task_timeout")
    return CampaignSpec(
        name=raw["name"],
        description=raw.get("description", ""),
        seed=int(raw.get("seed", 2009)),
        corner=raw.get("design", {}).get("corner"),
        backend=raw.get("backend", {}).get("spec", "kernel"),
        workers=int(runtime.get("workers", 0)),
        retries=int(runtime.get("retries", 0)),
        task_timeout=float(timeout) if timeout is not None else None,
        failure_policy=runtime.get("failure_policy", "raise"),
        on_fail=runtime.get("on_fail", "abort"),
        execution=runtime.get("execution", "threads"),
        stage_workers=int(runtime.get("stage_workers", 0)),
        stages=stages,
        chaos=chaos,
        source=source,
    )


def load_spec(path: str | Path) -> CampaignSpec:
    """Read, validate and freeze a spec file (``.toml`` or ``.json``).

    Raises:
        CampaignSpecError: unreadable file, unknown extension, parse
            error, or any schema violation.
    """
    path = Path(path)
    try:
        raw_bytes = path.read_bytes()
    except OSError as exc:
        raise CampaignSpecError(
            f"cannot read campaign spec {path}: {exc}"
        ) from exc
    if path.suffix == ".toml":
        try:
            import tomllib
        except ModuleNotFoundError as exc:  # pragma: no cover - py3.10
            raise CampaignSpecError(
                f"{path}: TOML specs need Python >= 3.11 (stdlib "
                f"tomllib); rewrite the spec as JSON"
            ) from exc
        try:
            raw = tomllib.loads(raw_bytes.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            raise CampaignSpecError(
                f"{path}: not valid TOML: {exc}"
            ) from exc
    elif path.suffix == ".json":
        try:
            raw = json.loads(raw_bytes)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CampaignSpecError(
                f"{path}: not valid JSON: {exc}"
            ) from exc
        if not isinstance(raw, Mapping):
            raise CampaignSpecError(
                f"{path}: top level must be an object"
            )
    else:
        raise CampaignSpecError(
            f"{path}: unknown spec extension {path.suffix!r} "
            f"(expected .toml or .json)"
        )
    return spec_from_mapping(raw, source=str(path))
