"""Declarative campaign orchestration with provenance and resume.

The paper's workflow is campaign-shaped — characterize an INV+FF
array, sweep supplies, trim, re-measure across corners and lots — and
production test practice scripts such flows declaratively: a spec
binds drivers, sweeps and pass/fail criteria, and a runner executes
it repeatably.  This package is that layer for the reproduction:

* :mod:`~repro.campaign.schema` — the versioned ``campaign/v1`` spec
  shape and its validation;
* :mod:`~repro.campaign.spec` — frozen :class:`CampaignSpec`
  dataclasses with a stable :meth:`~CampaignSpec.spec_hash`
  (chaos excluded: injection must never change the answers);
* :mod:`~repro.campaign.stages` — the stage verbs (characterization,
  cap/threshold sweeps, yield studies, s-curves, telemetry, fault
  screens, service load drills), each bound to a
  :class:`~repro.backends.SensorBackend`;
* :mod:`~repro.campaign.criteria` — declarative checks (bounds,
  monotonicity, parity-vs-oracle, quality-mix floors);
* :mod:`~repro.campaign.runner` — resumable DAG execution on the
  resilient runtime: stage results keyed by a campaign fingerprint
  (spec hash + design/backend fingerprint), so a SIGKILLed campaign
  re-invoked with the same spec finishes from cache bit-identically;
* :mod:`~repro.campaign.scheduler` — the ready-set stage executor
  that fans independent DAG stages across a bounded thread pool or a
  ``repro.service`` job server, with recording replayed in serial
  topo order so every mode's manifest is bit-identical;
* :mod:`~repro.campaign.manifest` — the provenance manifest (spec
  hash, engine versions, per-stage timings/counters/artifacts);
* :mod:`~repro.campaign.diff` — golden-result diffing separating
  regression (divergence) from numerics drift (provenance).

Quickstart::

    from repro.campaign import load_spec, run_campaign, diff_campaign

    spec = load_spec("examples/campaigns/corner_lot.toml")
    run = run_campaign(spec, out_dir="out/corner_lot")
    assert run.ok
    report = diff_campaign(run.out_dir, "golden/corner_lot")
    report.raise_on_divergence()

CLI: ``repro campaign validate|run|resume|diff``.
"""

from repro.campaign.diff import DiffReport, Divergence, diff_campaign
from repro.campaign.manifest import (
    MANIFEST_SCHEMA,
    provenance_info,
    read_manifest,
    read_stage_payload,
)
from repro.campaign.runner import (
    CampaignRun,
    StageRecord,
    campaign_fingerprint,
    run_campaign,
)
from repro.campaign.scheduler import (
    DEFAULT_STAGE_WORKERS,
    StageOutcome,
    execute_outcomes,
    finalize_records,
)
from repro.campaign.schema import CAMPAIGN_SCHEMA, EXECUTION_MODES, \
    validate_spec_mapping
from repro.campaign.spec import (
    CampaignSpec,
    ChaosSpec,
    CheckSpec,
    StageSpec,
    load_spec,
    spec_from_mapping,
)
from repro.campaign.stages import NONDETERMINISTIC_KINDS, STAGE_KINDS

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CampaignRun",
    "CampaignSpec",
    "ChaosSpec",
    "CheckSpec",
    "DEFAULT_STAGE_WORKERS",
    "DiffReport",
    "Divergence",
    "EXECUTION_MODES",
    "MANIFEST_SCHEMA",
    "NONDETERMINISTIC_KINDS",
    "STAGE_KINDS",
    "StageOutcome",
    "StageRecord",
    "StageSpec",
    "campaign_fingerprint",
    "diff_campaign",
    "execute_outcomes",
    "finalize_records",
    "load_spec",
    "provenance_info",
    "read_manifest",
    "read_stage_payload",
    "run_campaign",
    "spec_from_mapping",
    "validate_spec_mapping",
]
