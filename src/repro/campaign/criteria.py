"""Declarative pass/fail criteria evaluated over stage payloads.

A stage's ``checks`` array declares what its result must look like;
this module evaluates those declarations against the stage's JSON
payload after it runs.  Five kinds (schema-pinned in
:data:`repro.campaign.schema.CHECK_KINDS`):

``bounds``
    Every value of ``field`` lies in ``[min, max]`` (either bound may
    be omitted).  ``field`` may resolve to a scalar or a flat list.
``monotone``
    The values of ``field`` are non-decreasing (``strict = true``
    demands strictly increasing) — the thermometer-property check.
``equals``
    ``field`` equals ``value`` exactly (counters, booleans, statuses).
``parity``
    Max |a - b| between this stage's ``field`` and the same field of
    an oracle ``stage`` is ``<= tol`` — the kernel-vs-sim parity gate.
``quality_mix``
    The payload's ``quality`` (or ``status``) counter table meets
    per-key ``floors`` / ``ceilings`` — the service-drill floor.

Fields are dotted paths into the payload (``"report.bubble_rate"``);
list indices are plain numeric segments (``"thresholds.3"``).  A path
that does not resolve is a *failed* check, not an error — a missing
field is exactly the regression the criteria exist to catch.

Checks are evaluated fresh on every run — including resumed ones — so
a tightened criterion re-judges cached results without re-measuring.
"""

from __future__ import annotations

import math
from typing import Any

from repro.campaign.spec import CheckSpec, StageSpec


def resolve_field(payload: Any, path: str) -> tuple[bool, Any]:
    """Follow a dotted path; returns ``(found, value)``."""
    node = payload
    for part in path.split("."):
        if isinstance(node, dict):
            if part not in node:
                return False, None
            node = node[part]
        elif isinstance(node, (list, tuple)):
            try:
                node = node[int(part)]
            except (ValueError, IndexError):
                return False, None
        else:
            return False, None
    return True, node


def _as_values(value: Any) -> list | None:
    """Scalar -> [scalar]; flat list -> list; anything else -> None."""
    if isinstance(value, (list, tuple)):
        if any(isinstance(v, (list, tuple, dict)) for v in value):
            return None
        return list(value)
    if isinstance(value, (int, float)) or value is None:
        return [value]
    return None


def _numbers(values: list) -> list | None:
    out = []
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            return None
        if isinstance(v, float) and math.isnan(v):
            continue  # masked bits (degraded mode) don't break bounds
        out.append(v)
    return out


def _result(check: CheckSpec, ok: bool, detail: str) -> dict[str, Any]:
    return {"kind": check.kind,
            "field": check.option("field"),
            "ok": bool(ok),
            "detail": detail}


def _check_bounds(check: CheckSpec, payload: Any) -> dict[str, Any]:
    path = check.option("field")
    found, raw = resolve_field(payload, path)
    if not found:
        return _result(check, False, f"field {path!r} not in payload")
    values = _as_values(raw)
    numbers = _numbers(values) if values is not None else None
    if numbers is None:
        return _result(check, False,
                       f"field {path!r} is not numeric: {raw!r}")
    lo = check.option("min")
    hi = check.option("max")
    bad = [v for v in numbers
           if (lo is not None and v < lo)
           or (hi is not None and v > hi)]
    if bad:
        return _result(
            check, False,
            f"{len(bad)}/{len(numbers)} value(s) outside "
            f"[{lo if lo is not None else '-inf'}, "
            f"{hi if hi is not None else '+inf'}]; worst {bad[0]!r}")
    return _result(check, True,
                   f"{len(numbers)} value(s) within bounds")


def _check_monotone(check: CheckSpec, payload: Any) -> dict[str, Any]:
    path = check.option("field")
    strict = bool(check.option("strict", False))
    found, raw = resolve_field(payload, path)
    if not found:
        return _result(check, False, f"field {path!r} not in payload")
    values = _as_values(raw)
    numbers = _numbers(values) if values is not None else None
    if numbers is None:
        return _result(check, False,
                       f"field {path!r} is not a numeric sequence")
    for i in range(1, len(numbers)):
        a, b = numbers[i - 1], numbers[i]
        if (b < a) or (strict and b == a):
            word = "strictly increasing" if strict else "non-decreasing"
            return _result(check, False,
                           f"not {word} at index {i}: {a!r} -> {b!r}")
    return _result(check, True,
                   f"{len(numbers)} value(s) monotone"
                   + (" (strict)" if strict else ""))


def _check_equals(check: CheckSpec, payload: Any) -> dict[str, Any]:
    path = check.option("field")
    expected = check.option("value")
    found, actual = resolve_field(payload, path)
    if not found:
        return _result(check, False, f"field {path!r} not in payload")
    if actual == expected and isinstance(actual, bool) == \
            isinstance(expected, bool):
        return _result(check, True, f"{path} == {expected!r}")
    return _result(check, False,
                   f"expected {expected!r}, got {actual!r}")


def _check_parity(check: CheckSpec, payload: Any,
                  all_payloads: dict[str, Any]) -> dict[str, Any]:
    path = check.option("field")
    oracle_id = check.option("stage")
    tol = float(check.option("tol", 0.0))
    oracle = all_payloads.get(oracle_id)
    if oracle is None:
        return _result(check, False,
                       f"oracle stage {oracle_id!r} has no payload "
                       f"(failed or skipped?)")
    found_a, raw_a = resolve_field(payload, path)
    found_b, raw_b = resolve_field(oracle, path)
    if not found_a or not found_b:
        where = "this stage" if not found_a else f"stage {oracle_id!r}"
        return _result(check, False,
                       f"field {path!r} not in {where}'s payload")
    a = _numbers(_as_values(raw_a) or []) if _as_values(raw_a) else None
    b = _numbers(_as_values(raw_b) or []) if _as_values(raw_b) else None
    if a is None or b is None:
        return _result(check, False, f"field {path!r} is not numeric")
    if len(a) != len(b):
        return _result(check, False,
                       f"length mismatch: {len(a)} vs {len(b)}")
    worst = max((abs(x - y) for x, y in zip(a, b)), default=0.0)
    if worst <= tol:
        return _result(check, True,
                       f"max |delta| {worst:.3e} <= tol {tol:.3e} "
                       f"vs stage {oracle_id!r}")
    return _result(check, False,
                   f"max |delta| {worst:.3e} > tol {tol:.3e} "
                   f"vs stage {oracle_id!r}")


def _check_quality_mix(check: CheckSpec,
                       payload: Any) -> dict[str, Any]:
    floors = check.option("floors", {}) or {}
    ceilings = check.option("ceilings", {}) or {}
    counters: dict[str, int] = {}
    for table_name in ("quality", "status"):
        found, table = resolve_field(payload, table_name)
        if found and isinstance(table, dict):
            counters.update({str(k): v for k, v in table.items()})
    problems = []
    for key, floor in floors.items():
        have = counters.get(key, 0)
        if have < floor:
            problems.append(f"{key}: {have} < floor {floor}")
    for key, ceiling in ceilings.items():
        have = counters.get(key, 0)
        if have > ceiling:
            problems.append(f"{key}: {have} > ceiling {ceiling}")
    if problems:
        return _result(check, False, "; ".join(problems))
    return _result(check, True,
                   f"mix ok ({len(floors)} floor(s), "
                   f"{len(ceilings)} ceiling(s))")


def evaluate_checks(stage: StageSpec, payload: Any,
                    all_payloads: dict[str, Any]) -> list[dict[str, Any]]:
    """Evaluate every declared check of ``stage`` against its payload.

    Args:
        payload: The stage's JSON-safe result payload.
        all_payloads: ``stage id -> payload`` for every stage that has
            one so far (parity oracles; schema validation guarantees
            oracles are declared dependencies, hence already run).

    Returns:
        One ``{kind, field, ok, detail}`` record per declared check,
        in declaration order.
    """
    results = []
    for check in stage.checks:
        if check.kind == "bounds":
            results.append(_check_bounds(check, payload))
        elif check.kind == "monotone":
            results.append(_check_monotone(check, payload))
        elif check.kind == "equals":
            results.append(_check_equals(check, payload))
        elif check.kind == "parity":
            results.append(_check_parity(check, payload, all_payloads))
        elif check.kind == "quality_mix":
            results.append(_check_quality_mix(check, payload))
        else:  # pragma: no cover - schema validation forbids this
            results.append(_result(check, False,
                                   f"unknown check kind {check.kind!r}"))
    return results
