"""Golden-result diffing: did the campaign reproduce its frozen run?

:func:`diff_campaign` compares a run directory (manifest + per-stage
results) against a committed golden tree and classifies every
difference into three buckets:

**Divergences** (the regression signal) — differences in what the
campaign *computed*: campaign name/schema, spec hash, outcome, stage
ids/kinds/statuses/check verdicts, and — for deterministic stages —
the full ``results/<id>.json`` payload trees, compared exactly or
under a caller-supplied ``float_tol`` (numbers only; structure and
strings always compare exactly).  Any divergence fails the diff.

**Provenance drift** (reported separately) — differences in what
*produced* the numbers: the provenance tuple, backend fingerprints,
the campaign fingerprint, stage cache keys.  A golden recorded on
NumPy 1.26 diffed on 2.1 drifts here even when every number matches;
that is a signal to re-freeze the golden, not (necessarily) a bug.
``strict_provenance=True`` promotes drift to divergence.

**Volatile** (ignored) — wall/CPU times, cache counters, chaos
schedules, nondeterministic-stage payloads: legitimate run-to-run
noise, never compared.

The classification is what makes one golden fixture serve three
masters: the bit-identity crash/resume drill (``float_tol=0``), the
cross-environment CI gate (small ``float_tol``, provenance reported
but tolerated), and the numerics-migration audit (``--strict-
provenance``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.campaign.manifest import read_manifest, read_stage_payload
from repro.errors import GoldenDivergenceError

#: Manifest keys compared exactly (the computed identity).
_HARD_KEYS = ("name", "campaign_schema", "spec_hash", "corner",
              "seed", "outcome")

#: Manifest keys classified as provenance (reported, not failed).
_PROVENANCE_KEYS = ("campaign_fingerprint",)

#: Per-stage manifest keys compared exactly.
_STAGE_HARD_KEYS = ("kind", "status", "deterministic", "artifact")

#: Everything else in a stage record is volatile (wall_s, cpu_s,
#: volatile, resumed) or provenance (key).


@dataclass(frozen=True)
class Divergence:
    """One difference between run and golden.

    Attributes:
        path: Dotted location (``stages[s2].results.thresholds[3]``).
        kind: ``missing`` / ``extra`` / ``type`` / ``value`` /
            ``float``.
        a: The run's value (summarized).
        b: The golden's value (summarized).
    """

    path: str
    kind: str
    a: str
    b: str

    def __str__(self) -> str:
        return f"{self.path}: {self.kind}: run={self.a} golden={self.b}"


@dataclass
class DiffReport:
    """Outcome of one golden comparison."""

    run_dir: str
    golden_dir: str
    float_tol: float
    divergences: list = field(default_factory=list)
    provenance: list = field(default_factory=list)
    compared_stages: list = field(default_factory=list)
    skipped_stages: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def raise_on_divergence(self, *,
                            strict_provenance: bool = False) -> None:
        """Raise :class:`~repro.errors.GoldenDivergenceError` when the
        diff failed (with ``strict_provenance``, drift fails too)."""
        bad = list(self.divergences)
        if strict_provenance:
            bad += self.provenance
        if bad:
            lines = "\n  ".join(str(d) for d in bad[:20])
            more = f"\n  ... and {len(bad) - 20} more" \
                if len(bad) > 20 else ""
            raise GoldenDivergenceError(
                f"campaign diverged from golden "
                f"({len(bad)} difference(s)):\n  {lines}{more}"
            )


def _check_verdicts(stage_record: dict) -> list:
    """The comparable core of a stage's check results (no detail)."""
    return [{k: c.get(k) for k in ("kind", "field", "ok")}
            for c in stage_record.get("checks", [])]


def _summ(value: Any) -> str:
    text = repr(value)
    return text if len(text) <= 60 else text[:57] + "..."


def _compare(a: Any, b: Any, path: str, out: list,
             float_tol: float) -> None:
    """Structural compare; floats within ``float_tol`` are equal.

    int-vs-float type skew is tolerated for equal values (TOML/JSON
    round-trips legitimately produce ``1.0`` where Python had ``1``),
    everything else must match in type and shape exactly.
    """
    a_num = isinstance(a, (int, float)) and not isinstance(a, bool)
    b_num = isinstance(b, (int, float)) and not isinstance(b, bool)
    if a_num and b_num:
        if a == b:
            return
        if isinstance(a, float) or isinstance(b, float):
            fa, fb = float(a), float(b)
            if math.isfinite(fa) and math.isfinite(fb) \
                    and abs(fa - fb) <= float_tol:
                return
            out.append(Divergence(path, "float",
                                  f"{fa!r}", f"{fb!r}"))
        else:
            out.append(Divergence(path, "value", _summ(a), _summ(b)))
        return
    if type(a) is not type(b):
        out.append(Divergence(path, "type", type(a).__name__,
                              type(b).__name__))
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in b:
                out.append(Divergence(f"{path}.{key}", "extra",
                                      _summ(a[key]), "<absent>"))
            elif key not in a:
                out.append(Divergence(f"{path}.{key}", "missing",
                                      "<absent>", _summ(b[key])))
            else:
                _compare(a[key], b[key], f"{path}.{key}", out,
                         float_tol)
        return
    if isinstance(a, list):
        if len(a) != len(b):
            out.append(Divergence(path, "value",
                                  f"len {len(a)}", f"len {len(b)}"))
            return
        for i, (va, vb) in enumerate(zip(a, b)):
            _compare(va, vb, f"{path}[{i}]", out, float_tol)
        return
    if a != b:
        out.append(Divergence(path, "value", _summ(a), _summ(b)))


def diff_campaign(run_dir: str | Path, golden_dir: str | Path, *,
                  float_tol: float = 0.0) -> DiffReport:
    """Compare a run tree against a golden tree (see module
    docstring for the divergence/provenance/volatile taxonomy).

    Raises:
        CampaignError: either tree is missing or unreadable (a broken
            fixture is an error, not a divergence).
    """
    run_dir, golden_dir = Path(run_dir), Path(golden_dir)
    run = read_manifest(run_dir)
    gold = read_manifest(golden_dir)
    report = DiffReport(run_dir=str(run_dir),
                        golden_dir=str(golden_dir),
                        float_tol=float_tol)

    for key in _HARD_KEYS:
        _compare(run.get(key), gold.get(key), key,
                 report.divergences, 0.0)
    for key in _PROVENANCE_KEYS:
        _compare(run.get(key), gold.get(key), key,
                 report.provenance, 0.0)
    _compare(run.get("provenance"), gold.get("provenance"),
             "provenance", report.provenance, 0.0)
    _compare(run.get("backend"), gold.get("backend"), "backend",
             report.provenance, 0.0)

    run_stages = {s["id"]: s for s in run.get("stages", [])}
    gold_stages = {s["id"]: s for s in gold.get("stages", [])}
    for sid in sorted(set(run_stages) | set(gold_stages)):
        path = f"stages[{sid}]"
        if sid not in gold_stages:
            report.divergences.append(Divergence(
                path, "extra", run_stages[sid]["kind"], "<absent>"))
            continue
        if sid not in run_stages:
            report.divergences.append(Divergence(
                path, "missing", "<absent>", gold_stages[sid]["kind"]))
            continue
        rs, gs = run_stages[sid], gold_stages[sid]
        for key in _STAGE_HARD_KEYS:
            _compare(rs.get(key), gs.get(key), f"{path}.{key}",
                     report.divergences, 0.0)
        _compare(rs.get("key"), gs.get("key"), f"{path}.key",
                 report.provenance, 0.0)
        # Check verdicts are hard; their free-form ``detail`` strings
        # embed formatted floats (legitimate last-digit drift under
        # float_tol) and stay volatile.
        _compare(_check_verdicts(rs), _check_verdicts(gs),
                 f"{path}.checks", report.divergences, 0.0)
        if not (gs.get("deterministic", True)
                and rs.get("deterministic", True)):
            report.skipped_stages.append(sid)
            continue
        if gs.get("artifact") is None or rs.get("artifact") is None:
            # failed/skipped stage: status compare above covers it
            continue
        run_payload = read_stage_payload(run_dir, sid)
        gold_payload = read_stage_payload(golden_dir, sid)
        _compare(run_payload, gold_payload, f"{path}.results",
                 report.divergences, float_tol)
        report.compared_stages.append(sid)
    return report
