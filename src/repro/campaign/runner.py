"""The campaign runner: resumable DAG execution with a manifest.

Execution model
---------------

Stage execution is delegated to the campaign scheduler
(:mod:`repro.campaign.scheduler`): a ready-set executor over the
spec's DAG that dispatches every stage whose ``needs`` are satisfied
across a bounded stage-worker pool (``execution = "threads"``, the
default), one at a time (``"serial"``, the oracle), or as
``campaign_stage`` jobs on a ``repro.service`` job server
(``"service"``).  Recording is *not* delegated: the runner replays
the serial skip/abort walk over the scheduler's outcomes in topo
order (:func:`~repro.campaign.scheduler.finalize_records`), so the
manifest is bit-identical across execution modes — same records in
the same order, same stage-cache keys, same resume behaviour.

Every stage result is memoized in a dedicated *stage-result* cache
under the task cache root, keyed by::

    task_key("campaign-stage", campaign_fingerprint, stage_id)

where the **campaign fingerprint** folds

* the spec hash (what the campaign computes — chaos excluded),
* the design fingerprint *including the resolved backend's
  fingerprint* and the numeric environment (NumPy build, kernel
  layout/dtype/backend),
* the corner token.

Kill the process mid-run — power cut, SIGKILL, the
:class:`~repro.runtime.chaos.KillAfterPuts` drill — and re-invoking
the same spec replays completed stages from the stage cache (and
partially completed sweeps from the task cache) to a bit-identical
outcome.  Checks are *always* re-evaluated, so tightening a criterion
re-judges cached results without re-measuring.

Chaos interplay: when the spec carries an active ``[chaos]`` block the
runner vandalizes task-cache entries up front
(:meth:`~repro.runtime.chaos.ChaosMonkey.corrupt_cache`), hands a
seeded monkey to the stages for worker-kill injection, and *bypasses
stage-cache reads* — a drill must actually re-execute its sweeps to
prove the runtime heals; the task cache underneath still does the
heavy lifting, which is exactly the claim under test.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.campaign.manifest import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    RESULTS_DIR,
    dump_json,
    provenance_info,
)
from repro.campaign.scheduler import (
    execute_outcomes,
    finalize_records,
    hosted_service,
    resolve_stage_workers,
    service_stage_runner,
)
from repro.campaign.schema import CAMPAIGN_SCHEMA, EXECUTION_MODES
from repro.campaign.spec import CampaignSpec
from repro.campaign.stages import NONDETERMINISTIC_KINDS, StageContext
from repro.errors import CampaignError
from repro.runtime.cache import ResultCache, design_fingerprint, \
    stable_hash
from repro.runtime.chaos import ChaosMonkey, KillAfterPuts

#: Subdirectory of the output dir holding the task + stage caches when
#: the caller does not supply a cache root explicitly.
CACHE_DIR = "cache"

#: Stage-result namespace under the task-cache root — separate so
#: seeded cache vandalism (which samples *task* entries) can never
#: corrupt a finished stage's payload.
STAGE_STORE = "stages"


@dataclass
class StageRecord:
    """One stage's manifest row."""

    id: str
    kind: str
    status: str            # ok | failed | error | skipped
    key: str
    deterministic: bool
    resumed: bool
    payload: Any
    checks: list
    volatile: dict
    artifact: str | None
    wall_s: float
    cpu_s: float

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class CampaignRun:
    """What :func:`run_campaign` hands back (and wrote to disk)."""

    spec: CampaignSpec
    fingerprint: str
    out_dir: Path
    records: list
    manifest: dict

    @property
    def outcome(self) -> str:
        return self.manifest["outcome"]

    @property
    def ok(self) -> bool:
        return self.outcome == "passed"

    def record(self, stage_id: str) -> StageRecord:
        for record in self.records:
            if record.id == stage_id:
                return record
        raise CampaignError(f"no stage record {stage_id!r}")


def campaign_fingerprint(spec: CampaignSpec, design: Any,
                         backend: Any) -> str:
    """The identity every stage key hangs off (see module docstring)."""
    return stable_hash((
        "campaign-fingerprint",
        spec.spec_hash(),
        design_fingerprint(design, backend=backend),
        spec.corner or "nominal",
    ))


def _corner_tech(spec: CampaignSpec, design: Any):
    if spec.corner is None:
        return None
    from repro.devices.corners import corner_by_name

    return corner_by_name(spec.corner).apply(design.tech)


def run_campaign(spec: CampaignSpec, *, out_dir: str | Path,
                 cache: ResultCache | str | None = None,
                 kill_after_puts: int | None = None,
                 execution: str | None = None,
                 stage_workers: int | None = None,
                 service: str | None = None) -> CampaignRun:
    """Execute (or resume) a campaign; write results + manifest.

    Args:
        spec: A validated :class:`~repro.campaign.spec.CampaignSpec`.
        out_dir: Output directory; created if missing.  Holds
            ``results/<stage>.json``, ``manifest.json`` and (default)
            the cache root — point a re-invocation at the same
            directory and it resumes.
        cache: Task-cache root override (ResultCache or path).  The
            stage store lives under ``<root>/stages``.
        kill_after_puts: Crash-drill hook — SIGKILL this process after
            the Nth task-cache put (armed once via a marker file in
            ``out_dir``; see
            :class:`~repro.runtime.chaos.KillAfterPuts`).
        execution: Override the spec's ``runtime.execution`` mode
            (``serial`` / ``threads`` / ``service``); None keeps the
            spec's choice.  Chaos drills (an active ``[chaos]`` block
            or ``kill_after_puts``) force ``service`` down to
            ``threads`` — the armed cache and the seeded monkey live
            in *this* process, and shipping their stages elsewhere
            would defuse the drill.
        stage_workers: Override the spec's ``runtime.stage_workers``
            pool width (0/None = default).
        service: Address of a running job server for
            ``execution = "service"`` (e.g. ``unix:/run/repro.sock``);
            None self-hosts a ``repro serve`` subprocess for the
            duration of the run.

    Returns:
        The :class:`CampaignRun`; ``run.ok`` is the pass/fail verdict
        (stage errors and failed checks both fail a campaign).
    """
    from repro.backends import resolve_backend
    from repro.core.calibration import paper_design

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    if cache is None:
        cache_root = out_dir / CACHE_DIR
    elif isinstance(cache, ResultCache):
        cache_root = cache.root
    else:
        cache_root = Path(cache)
    if kill_after_puts is not None:
        task_cache: ResultCache = KillAfterPuts(
            cache_root, kill_after=kill_after_puts,
            marker=out_dir / "chaos-kill.marker",
        )
    else:
        task_cache = ResultCache(cache_root)
    stage_store = ResultCache(cache_root / STAGE_STORE)

    design = paper_design()
    tech = _corner_tech(spec, design)
    backend = resolve_backend(spec.backend)
    fingerprint = campaign_fingerprint(spec, design, backend)

    chaos = spec.chaos
    monkey = None
    vandalized: tuple = ()
    if chaos is not None and chaos.active:
        monkey = ChaosMonkey(chaos.seed)
        if chaos.corrupt_cache > 0:
            # Clamped: a cold cache has nothing to vandalize yet.
            n = min(chaos.corrupt_cache, len(task_cache.entries()))
            if n:
                vandalized = tuple(
                    str(p) for p in
                    monkey.corrupt_cache(task_cache, n_entries=n)
                )

    ctx = StageContext(
        spec=spec, design=design, tech=tech, backend=backend,
        cache=task_cache, out_dir=out_dir, monkey=monkey,
        kill_tasks=chaos.kill_worker_tasks if chaos else 0,
        vandalized=vandalized,
    )

    results_dir = out_dir / RESULTS_DIR
    records: list[StageRecord] = []
    started = time.time()

    mode = spec.execution if execution is None else execution
    if mode not in EXECUTION_MODES:
        raise CampaignError(
            f"unknown execution mode {mode!r} "
            f"(expected one of {EXECUTION_MODES})"
        )
    # Chaos drills pin execution to this process: the armed
    # KillAfterPuts budget and the seeded monkey's kill counters live
    # on the one shared StageContext, so stages must share it (and
    # must not be shipped to a job server).
    share_ctx = monkey is not None or kill_after_puts is not None
    if share_ctx and mode == "service":
        mode = "threads"

    if mode == "service":
        host = hosted_service(spec.backend) if service is None \
            else nullcontext(service)
        with host as address:
            outcomes = execute_outcomes(
                spec, ctx, stage_store=stage_store,
                fingerprint=fingerprint, execution="threads",
                stage_workers=resolve_stage_workers(spec, stage_workers),
                share_ctx=share_ctx,
                run_one=service_stage_runner(address),
            )
    else:
        outcomes = execute_outcomes(
            spec, ctx, stage_store=stage_store,
            fingerprint=fingerprint, execution=mode,
            stage_workers=resolve_stage_workers(spec, stage_workers),
            share_ctx=share_ctx,
        )

    # Recording replays the serial walk over the outcomes, so the
    # manifest below is bit-identical no matter which mode ran.
    for stage, status, outcome, key in finalize_records(
            spec, outcomes, fingerprint):
        deterministic = stage.kind not in NONDETERMINISTIC_KINDS
        if status == "skipped":
            records.append(StageRecord(
                id=stage.id, kind=stage.kind, status="skipped",
                key=key, deterministic=deterministic, resumed=False,
                payload=None, checks=[], volatile={}, artifact=None,
                wall_s=0.0, cpu_s=0.0,
            ))
            continue
        if status == "error":
            records.append(StageRecord(
                id=stage.id, kind=stage.kind, status="error",
                key=key, deterministic=deterministic, resumed=False,
                payload=None, checks=[], volatile=outcome.volatile,
                artifact=None, wall_s=outcome.wall_s,
                cpu_s=outcome.cpu_s,
            ))
            outcome.volatile["error"] = outcome.error
            continue
        dump_json(outcome.payload, results_dir / f"{stage.id}.json")
        records.append(StageRecord(
            id=stage.id, kind=stage.kind, status=status, key=key,
            deterministic=deterministic, resumed=outcome.resumed,
            payload=outcome.payload, checks=outcome.checks,
            volatile=outcome.volatile,
            artifact=f"{RESULTS_DIR}/{stage.id}.json",
            wall_s=outcome.wall_s, cpu_s=outcome.cpu_s,
        ))

    task_cache.flush_stats()
    n_ok = sum(1 for r in records if r.ok)
    outcome = "passed" if n_ok == len(records) else "failed"
    manifest = {
        "manifest_schema": MANIFEST_SCHEMA,
        "name": spec.name,
        "description": spec.description,
        "campaign_schema": CAMPAIGN_SCHEMA,
        "spec_source": spec.source,
        "spec_hash": spec.spec_hash(),
        "campaign_fingerprint": fingerprint,
        "backend": {
            "spec": spec.backend,
            "id": backend.id,
            "fingerprint": backend.fingerprint(),
        },
        "corner": spec.corner,
        "seed": spec.seed,
        "chaos_active": bool(monkey is not None),
        "provenance": provenance_info(),
        "outcome": outcome,
        "stages": [
            {
                "id": r.id,
                "kind": r.kind,
                "status": r.status,
                "key": r.key,
                "deterministic": r.deterministic,
                "resumed": r.resumed,
                "artifact": r.artifact,
                "checks": r.checks,
                "volatile": r.volatile,
                "wall_s": round(r.wall_s, 6),
                "cpu_s": round(r.cpu_s, 6),
            }
            for r in records
        ],
        "cache": {
            "root": str(task_cache.root),
            "lifetime": task_cache.lifetime_stats(),
        },
        "wall_s": round(time.time() - started, 6),
    }
    dump_json(manifest, out_dir / MANIFEST_NAME)
    return CampaignRun(spec=spec, fingerprint=fingerprint,
                       out_dir=out_dir, records=records,
                       manifest=manifest)
