"""The campaign-level stage scheduler: a ready-set executor over the
spec's DAG.

:func:`execute_outcomes` walks :meth:`~repro.campaign.spec.
CampaignSpec.topo_order` and dispatches every stage whose ``needs``
are all satisfied, in one of three execution modes:

* ``serial`` — the oracle: one stage at a time, in topo order, exactly
  the pre-scheduler runner loop;
* ``threads`` (default) — a bounded in-process stage-worker pool.
  Stage *threads* (not processes) so the chaos plumbing keeps its
  semantics: an armed :class:`~repro.runtime.chaos.KillAfterPuts`
  cache still SIGKILLs the campaign process from whichever stage
  thread trips it, and the worker-kill budget stays on the one shared
  :class:`~repro.campaign.stages.StageContext`.  Real overlap comes
  from what stages actually spend wall-clock on — process-pool IPC,
  subprocess waits, instrument dwell, NumPy releasing the GIL;
* ``service`` — each stage is submitted as a ``campaign_stage`` job
  to a ``repro.service`` job server (a running one via its address,
  or a self-hosted ``repro serve`` subprocess for the duration of the
  run), so campaign stages share the shard fleet, admission control
  and circuit breaker with every other tenant.

Bit-identity discipline
-----------------------

Execution and *recording* are decoupled.  Workers only read/write the
(shared, on-disk) task and stage caches and produce
:class:`StageOutcome` values; the runner then replays the serial
runner's exact skip/abort bookkeeping in topo order over those
outcomes (:func:`finalize_records`), so the manifest's stage records,
statuses, artifacts and check verdicts are byte-identical to a serial
run no matter what order stages completed in.

Failure semantics mirror the serial loop precisely:

* ``on_fail = "abort"``: once a stage at topo position *p* fails, no
  stage at a position after *p* is dispatched (in-flight stages drain;
  the finalization walk records them as ``skipped``, exactly as the
  serial runner — which never ran them — would have).  Stages *before*
  *p* still run: the serial loop would have completed them first.
* ``on_fail = "continue"``: only transitive dependents of a failure
  are skipped; independent stages keep dispatching.

Cache-counter hygiene: each clean stage gets its own
:class:`~repro.runtime.cache.ResultCache` *instance* over the same
root, so the per-stage ``task_cache_delta`` counters in the manifest
stay exact under concurrency (instances share the on-disk entries and
the per-root stats log).  Chaos/kill drills share the single armed
instance instead — the drill's counters are volatile by definition.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, Future, \
    ThreadPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.campaign.criteria import evaluate_checks
from repro.campaign.spec import CampaignSpec, StageSpec
from repro.campaign.stages import (
    NONDETERMINISTIC_KINDS,
    StageContext,
    execute_stage,
)
from repro.errors import CampaignError, StageExecutionError
from repro.runtime.cache import ResultCache, task_key
from repro.runtime.profiling import PROFILER, phase

#: Stage-worker pool size when the spec (and CLI) leave it at 0.
#: Bounded and fixed — campaign overlap is latency-shaped (stages
#: block on pools, subprocesses and instrument dwell), so the right
#: default does not scale with core count.
DEFAULT_STAGE_WORKERS = 4

#: How a stage body is run: ``(ctx, stage) -> (payload, volatile)``.
StageRunner = Callable[[StageContext, StageSpec], tuple[dict, dict]]


def resolve_stage_workers(spec: CampaignSpec,
                          override: int | None = None) -> int:
    """The effective stage-worker count (0 means the default)."""
    n = spec.stage_workers if override is None else int(override)
    return n if n > 0 else DEFAULT_STAGE_WORKERS


@dataclass
class StageOutcome:
    """What executing one stage produced — everything the serial
    runner knew right after the stage ran, *before* any skip/abort
    bookkeeping (which :func:`finalize_records` replays)."""

    stage_id: str
    payload: Any = None
    volatile: dict = field(default_factory=dict)
    checks: list = field(default_factory=list)
    error: str | None = None
    resumed: bool = False
    wall_s: float = 0.0
    cpu_s: float = 0.0

    @property
    def status(self) -> str:
        """ok | failed | error — before finalization's skip rules."""
        if self.error is not None:
            return "error"
        return "ok" if all(c["ok"] for c in self.checks) else "failed"


def _execute_stage_once(ctx: StageContext, stage: StageSpec, key: str,
                        stage_store: ResultCache, *,
                        bypass_stage_cache: bool,
                        run_one: StageRunner,
                        flush: bool) -> StageOutcome:
    """One stage's execution body — the serial loop's inner block.

    Identical bookkeeping in every mode: stage-cache read (unless the
    run is a chaos drill), execute, stage-cache write, wall/CPU/cache
    deltas into volatile.  Checks are *not* evaluated here — they need
    the dependency payloads, which the caller owns.
    """
    deterministic = stage.kind not in NONDETERMINISTIC_KINDS
    wall0, cpu0 = time.perf_counter(), time.process_time()
    stats0 = ctx.cache.stats()
    resumed = False
    error: str | None = None
    payload = None
    volatile: dict = {}

    with phase(f"campaign.stage.{stage.id}"):
        if deterministic and not bypass_stage_cache:
            hit, cached = stage_store.get(key)
            if hit:
                payload, resumed = cached, True
        if payload is None:
            try:
                payload, volatile = run_one(ctx, stage)
            except StageExecutionError as exc:
                error = str(exc)
            else:
                if deterministic:
                    stage_store.put(key, payload)

    wall = time.perf_counter() - wall0
    cpu = time.process_time() - cpu0
    stats1 = ctx.cache.stats()
    volatile = dict(volatile)
    volatile["task_cache_delta"] = {
        k: stats1[k] - stats0[k]
        for k in ("hits", "misses", "errors")
    }
    if flush:
        # Per-stage cache instances die with the stage; flush so the
        # manifest's lifetime counters (read from the on-disk stats
        # log) still see their deltas.
        ctx.cache.flush_stats()
    return StageOutcome(
        stage_id=stage.id, payload=payload, volatile=volatile,
        error=error, resumed=resumed, wall_s=wall, cpu_s=cpu,
    )


def _stage_ctx(ctx: StageContext, *, share: bool) -> StageContext:
    """The context a stage runs under: the one shared (armed) context
    during chaos/kill drills, else a clone with a private cache
    instance over the same root (exact per-stage counters)."""
    if share:
        return ctx
    return replace(ctx, cache=ResultCache(ctx.cache.root))


def execute_outcomes(spec: CampaignSpec, ctx: StageContext, *,
                     stage_store: ResultCache, fingerprint: str,
                     execution: str, stage_workers: int,
                     share_ctx: bool,
                     run_one: StageRunner = execute_stage,
                     ) -> dict[str, StageOutcome]:
    """Run the campaign DAG; returns ``{stage_id: StageOutcome}``.

    Only stages the serial runner would execute are guaranteed an
    outcome; under ``threads`` a stage dispatched before an abort
    barrier moved ahead of it may *also* carry an outcome — the
    finalization walk ignores it (its payload stays in the stage
    cache, ready for a later resume).
    """
    bypass = ctx.monkey is not None
    if execution == "serial":
        return _execute_serial(spec, ctx, stage_store=stage_store,
                               fingerprint=fingerprint,
                               bypass=bypass, share_ctx=share_ctx,
                               run_one=run_one)
    if execution == "threads":
        return _execute_threads(spec, ctx, stage_store=stage_store,
                                fingerprint=fingerprint,
                                workers=stage_workers, bypass=bypass,
                                share_ctx=share_ctx, run_one=run_one)
    raise CampaignError(
        f"unknown execution mode {execution!r} "
        f"(expected serial/threads/service)"
    )


def _execute_serial(spec: CampaignSpec, ctx: StageContext, *,
                    stage_store: ResultCache, fingerprint: str,
                    bypass: bool, share_ctx: bool,
                    run_one: StageRunner) -> dict[str, StageOutcome]:
    """The oracle loop: exactly the pre-scheduler runner semantics."""
    outcomes: dict[str, StageOutcome] = {}
    payloads: dict[str, Any] = {}
    failed_ids: set[str] = set()
    aborted = False
    for stage_id in spec.topo_order():
        stage = spec.stage(stage_id)
        if aborted or any(dep in failed_ids for dep in stage.needs):
            # No outcome: finalization records the skip itself.
            failed_ids.add(stage_id)
            continue
        key = task_key("campaign-stage", fingerprint, stage_id)
        outcome = _execute_stage_once(
            _stage_ctx(ctx, share=share_ctx), stage, key, stage_store,
            bypass_stage_cache=bypass, run_one=run_one,
            flush=not share_ctx,
        )
        if outcome.error is None:
            payloads[stage_id] = outcome.payload
            outcome.checks = evaluate_checks(stage, outcome.payload,
                                             payloads)
        outcomes[stage_id] = outcome
        if outcome.status != "ok":
            failed_ids.add(stage_id)
            if spec.on_fail == "abort":
                aborted = True
    return outcomes


def _execute_threads(spec: CampaignSpec, ctx: StageContext, *,
                     stage_store: ResultCache, fingerprint: str,
                     workers: int, bypass: bool, share_ctx: bool,
                     run_one: StageRunner) -> dict[str, StageOutcome]:
    """Ready-set dispatch across a bounded stage-thread pool.

    Invariants that make the later serial-semantics replay sound:

    * a stage is dispatched only when all its ``needs`` completed with
      status ``ok`` — so everything the serial loop would have run
      does run;
    * under ``on_fail = "abort"``, an observed failure at topo
      position *p* stops dispatch of stages positioned after
      ``min(p)`` (the serial loop would have aborted at or before the
      earliest failure), while earlier-positioned stages still
      dispatch — the serial loop reached them first;
    * a stage whose dependency failed/errored/was skipped is decided
      ``skipped`` without dispatching (both modes; under abort the
      barrier implies it).
    """
    order = spec.topo_order()
    pos = {sid: i for i, sid in enumerate(order)}
    stages = {sid: spec.stage(sid) for sid in order}
    outcomes: dict[str, StageOutcome] = {}
    statuses: dict[str, str] = {}
    payloads: dict[str, Any] = {}
    waiting = list(order)
    in_flight: dict[Future, str] = {}
    abort = spec.on_fail == "abort"
    abort_pos = len(order)

    def settle(sid: str, outcome: StageOutcome) -> None:
        nonlocal abort_pos
        if outcome.error is None:
            payloads[sid] = outcome.payload
            outcome.checks = evaluate_checks(
                stages[sid], outcome.payload, payloads)
        outcomes[sid] = outcome
        statuses[sid] = outcome.status
        if abort and outcome.status != "ok":
            abort_pos = min(abort_pos, pos[sid])

    with ThreadPoolExecutor(max_workers=workers) as pool:
        while waiting or in_flight:
            with phase("campaign.schedule"):
                progressed = True
                while progressed:
                    progressed = False
                    for sid in list(waiting):
                        stage = stages[sid]
                        dep_states = [statuses.get(d)
                                      for d in stage.needs]
                        doomed = any(
                            s is not None and s != "ok"
                            for s in dep_states
                        ) or (abort and pos[sid] > abort_pos)
                        if doomed:
                            # Fate already decided: the serial loop
                            # skips it too.  No outcome recorded.
                            statuses[sid] = "skipped"
                            waiting.remove(sid)
                            progressed = True
                        elif all(s == "ok" for s in dep_states):
                            key = task_key("campaign-stage",
                                           fingerprint, sid)
                            fut = pool.submit(
                                _execute_stage_once,
                                _stage_ctx(ctx, share=share_ctx),
                                stage, key, stage_store,
                                bypass_stage_cache=bypass,
                                run_one=run_one, flush=not share_ctx,
                            )
                            in_flight[fut] = sid
                            waiting.remove(sid)
                            progressed = True
            if not in_flight:
                if waiting:  # pragma: no cover - defensive
                    raise CampaignError(
                        f"scheduler wedged with stages waiting: "
                        f"{waiting}"
                    )
                continue
            done, _ = wait(list(in_flight),
                           return_when=FIRST_COMPLETED)
            with phase("campaign.schedule"):
                # Settle completions in topo order so check evaluation
                # and abort-barrier movement are deterministic even
                # when several futures land in the same wake-up.
                for fut in sorted(done, key=lambda f: pos[in_flight[f]]):
                    settle(in_flight.pop(fut), fut.result())
    return outcomes


def finalize_records(spec: CampaignSpec,
                     outcomes: dict[str, StageOutcome],
                     fingerprint: str) -> list[tuple[StageSpec, str,
                                                     StageOutcome | None,
                                                     str]]:
    """Replay the serial runner's skip/abort walk over the outcomes.

    Returns ``(stage, status, outcome_or_None, key)`` per stage in
    topo order — the single source of truth the runner turns into
    manifest records.  An outcome that exists but falls after the
    replay's abort point is dropped (recorded ``skipped``), which is
    exactly what a serial run — which never executed it — would have
    written; its payload stays in the stage cache for a later resume.
    """
    rows: list[tuple[StageSpec, str, StageOutcome | None, str]] = []
    failed_ids: set[str] = set()
    aborted = False
    for stage_id in spec.topo_order():
        stage = spec.stage(stage_id)
        key = task_key("campaign-stage", fingerprint, stage_id)
        if aborted or any(dep in failed_ids for dep in stage.needs):
            rows.append((stage, "skipped", None, key))
            failed_ids.add(stage_id)
            continue
        outcome = outcomes.get(stage_id)
        if outcome is None:  # pragma: no cover - defensive
            raise CampaignError(
                f"stage {stage_id!r} has no outcome but is not "
                f"skippable — scheduler invariant broken"
            )
        status = outcome.status
        rows.append((stage, status, outcome, key))
        if status != "ok":
            failed_ids.add(stage_id)
            if spec.on_fail == "abort":
                aborted = True
    return rows


# -- service execution ---------------------------------------------------------


def service_stage_runner(address: str, *,
                         timeout: float = 600.0) -> StageRunner:
    """A :data:`StageRunner` that ships each stage to a job server.

    The stage-cache get/put, check evaluation and all skip/abort
    bookkeeping stay client-side (identical resume semantics); only
    the stage *body* crosses the wire, as a ``campaign_stage`` job
    carrying the spec mapping.  Task caching happens server-side
    against the same on-disk root, so a resumed campaign still
    replays partial sweeps.
    """
    from repro.service.client import ServiceClient

    def run_one(ctx: StageContext, stage: StageSpec) -> tuple[dict, dict]:
        params = {
            "spec": ctx.spec.to_mapping(),
            "stage_id": stage.id,
            "corner": ctx.spec.corner,
            "out_dir": str(ctx.out_dir),
            "cache_root": str(ctx.cache.root),
        }
        try:
            with ServiceClient(address, timeout=timeout) as client:
                response = client.request("campaign_stage",
                                          params=params)
        except Exception as exc:
            raise StageExecutionError(
                f"stage {stage.id!r} via service {address}: {exc}"
            ) from exc
        if response.get("status") != "ok":
            detail = response.get("error") or response
            raise StageExecutionError(
                f"stage {stage.id!r} via service {address}: {detail}"
            )
        result = response.get("result") or {}
        volatile = dict(result.get("volatile") or {})
        volatile["service"] = {
            "address": address,
            "shard": response.get("shard"),
            "attempts": response.get("attempts"),
            "quality": response.get("quality"),
        }
        return result["payload"], volatile

    return run_one


@contextmanager
def hosted_service(backend_spec: str, *,
                   shards: int = 2,
                   startup_timeout_s: float = 60.0) -> Iterator[str]:
    """Self-host a ``repro serve`` subprocess for one campaign run.

    Yields the ``unix:<socket>`` address; the server is terminated on
    exit.  Used when ``execution = "service"`` without an explicit
    server address — the campaign brings its own fleet.
    """
    src_root = Path(__file__).resolve().parents[2]
    env = dict(
        os.environ,
        PYTHONPATH=f"{src_root}:{os.environ.get('PYTHONPATH', '')}",
    )
    # Unix socket paths cap at ~104 bytes; keep it in a short tempdir.
    tmp = Path(tempfile.mkdtemp(prefix="campaign-sched-"))
    sock = tmp / "svc.sock"
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--unix", str(sock),
         "--backend", backend_spec, "--executor", "inline",
         "--shards", str(shards)],
        env=env, stdout=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + startup_timeout_s
        while not sock.exists():
            if server.poll() is not None:
                raise CampaignError(
                    f"hosted job server exited rc={server.returncode} "
                    f"before opening its socket"
                )
            if time.monotonic() > deadline:
                raise CampaignError(
                    "hosted job server socket never appeared"
                )
            time.sleep(0.05)
        yield f"unix:{sock}"
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                server.kill()
                server.wait(timeout=30)
