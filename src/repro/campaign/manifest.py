"""Provenance manifests: what ran, under which numerics, from where.

A campaign run leaves two kinds of artifact under its output
directory:

* ``results/<stage-id>.json`` — one JSON payload per stage, written
  deterministically (sorted keys, fixed indentation, trailing
  newline) so *bit-identical results mean bit-identical files*;
* ``manifest.json`` — this module's summary: the spec hash, the
  campaign fingerprint, the full provenance tuple
  (:func:`provenance_info`), and one record per stage (cache key,
  status, checks, artifact path, wall/CPU time, cache-counter
  deltas).

The provenance tuple is the same one ``repro versions`` prints — a
manifest names every version tag that could change its numbers, so a
golden diff can tell *numerics drift* (provenance changed) from
*regression* (same provenance, different results).

JSON discipline: :func:`jsonify` converts NumPy scalars/arrays to
plain Python and **refuses non-finite floats** — JSON has no ±inf/NaN
and the silent ``Infinity`` extension would make manifests unreadable
to strict parsers.  Stage payloads must encode missing values
explicitly (``None``) before they reach a manifest.
"""

from __future__ import annotations

import json
import math
import platform
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import CampaignError

#: Version tag of the manifest layout itself.
MANIFEST_SCHEMA = "campaign-manifest/v1"

#: Deterministic artifact file name.
MANIFEST_NAME = "manifest.json"

#: Per-stage payload directory under the run's output directory.
RESULTS_DIR = "results"


def provenance_info() -> dict[str, str]:
    """The full engine-version tuple, as a flat string table.

    Everything that can change a campaign's numbers: package version,
    interpreter, NumPy build, optional numba, kernel layout/backend/
    dtype, the MC seed scheme, and every wire-format schema tag.
    ``repro versions`` prints exactly this table; manifests embed it.
    """
    import repro
    from repro.backends.base import BACKEND_PROTOCOL
    from repro.backends.trace import TRACE_SCHEMA
    from repro.campaign.schema import CAMPAIGN_SCHEMA
    from repro.kernels import KERNEL_LAYOUT_VERSION
    from repro.kernels.backend import backend_token
    from repro.kernels.dtype import dtype_token
    from repro.kernels.montecarlo import MC_SEED_SCHEME
    from repro.runtime.cache import CACHE_SCHEMA
    from repro.service.protocol import SERVICE_PROTOCOL

    try:
        import numba
        numba_version = numba.__version__
    except ImportError:
        numba_version = "absent"

    return {
        "repro": repro.__version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "numba": numba_version,
        "kernel_layout": KERNEL_LAYOUT_VERSION,
        "kernel_backend": backend_token(),
        "kernel_dtype": dtype_token(),
        "mc_seed_scheme": MC_SEED_SCHEME,
        "trace_schema": TRACE_SCHEMA,
        "service_protocol": SERVICE_PROTOCOL,
        "cache_schema": CACHE_SCHEMA,
        "campaign_schema": CAMPAIGN_SCHEMA,
        "manifest_schema": MANIFEST_SCHEMA,
    }


def jsonify(value: Any, *, path: str = "$") -> Any:
    """Convert a payload to strict-JSON-safe Python, loudly.

    NumPy scalars and arrays become Python numbers and lists; dict
    keys become strings; non-finite floats raise
    :class:`~repro.errors.CampaignError` naming the offending path
    (payloads must encode them as ``None`` explicitly).
    """
    if isinstance(value, np.generic):
        value = value.item()
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise CampaignError(
                f"non-finite float at {path} cannot enter a manifest; "
                f"encode it as null explicitly"
            )
        return value
    if isinstance(value, np.ndarray):
        return jsonify(value.tolist(), path=path)
    if isinstance(value, dict):
        return {str(k): jsonify(v, path=f"{path}.{k}")
                for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v, path=f"{path}[{i}]")
                for i, v in enumerate(value)]
    raise CampaignError(
        f"cannot encode {type(value).__name__} at {path} into a "
        f"manifest"
    )


def dump_json(payload: Any, path: Path) -> None:
    """Write deterministic JSON: sorted keys, 2-space indent,
    trailing newline — so equal payloads are equal *bytes*."""
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(jsonify(payload), sort_keys=True, indent=2,
                      allow_nan=False)
    path.write_text(text + "\n", encoding="utf-8")


def read_manifest(run_dir: str | Path) -> dict[str, Any]:
    """Load ``<run_dir>/manifest.json``; refuse unknown layouts.

    Raises:
        CampaignError: missing/unparseable manifest or a
            ``manifest_schema`` tag this library does not read.
    """
    path = Path(run_dir) / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise CampaignError(
            f"cannot read manifest {path}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise CampaignError(
            f"manifest {path} is not valid JSON: {exc}"
        ) from exc
    schema = manifest.get("manifest_schema")
    if schema != MANIFEST_SCHEMA:
        raise CampaignError(
            f"manifest {path} carries schema {schema!r}; this library "
            f"reads {MANIFEST_SCHEMA!r}"
        )
    return manifest


def read_stage_payload(run_dir: str | Path,
                       stage_id: str) -> dict[str, Any]:
    """Load one stage's ``results/<id>.json`` payload."""
    path = Path(run_dir) / RESULTS_DIR / f"{stage_id}.json"
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise CampaignError(
            f"cannot read stage payload {path}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise CampaignError(
            f"stage payload {path} is not valid JSON: {exc}"
        ) from exc
