"""The ``campaign/v1`` spec schema: shape validation with exact paths.

A campaign spec is a plain mapping (parsed from TOML or JSON — see
:mod:`repro.campaign.spec`) whose shape this module pins down *before*
any dataclass is built, so every authoring mistake surfaces as a
:class:`~repro.errors.CampaignSpecError` naming the offending key —
never as a downstream ``KeyError`` three layers into a sweep.

Versioning mirrors the trace layer: every spec carries a ``schema``
tag, and a tag this library does not know is refused outright
(``campaign/v2`` semantics silently reinterpreted under v1 rules could
run the wrong physics).

Top-level shape::

    schema = "campaign/v1"      # mandatory version tag
    name   = "corner-lot"       # campaign id (manifest + artifacts)
    seed   = 2024               # campaign-default seed

    [design]   corner = "SS"                    # optional corner
    [backend]  spec = "kernel"                  # driver registry spec
    [runtime]  workers / retries / task_timeout / failure_policy
               / on_fail / execution / stage_workers
    [chaos]    seed / corrupt_cache / kill_worker_tasks
               # fault injection; EXCLUDED from the spec hash --
               # chaos must never change what the campaign computes

    [[stages]] id / kind / needs / params / checks

Stage ``kind`` must name a registered executor
(:data:`repro.campaign.stages.STAGE_KINDS`); ``checks`` are the
declarative pass/fail criteria of :mod:`repro.campaign.criteria`.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import CampaignSpecError

#: The spec schema version this library reads and writes.
CAMPAIGN_SCHEMA = "campaign/v1"

#: Schema tags this library can run.
_KNOWN_SCHEMAS = (CAMPAIGN_SCHEMA,)

_TOP_KEYS = {"schema", "name", "description", "seed", "design",
             "backend", "runtime", "chaos", "stages"}
_DESIGN_KEYS = {"corner"}
_BACKEND_KEYS = {"spec"}
_RUNTIME_KEYS = {"workers", "retries", "task_timeout",
                 "failure_policy", "on_fail", "execution",
                 "stage_workers"}
_CHAOS_KEYS = {"seed", "corrupt_cache", "kill_worker_tasks"}
_STAGE_KEYS = {"id", "kind", "needs", "params", "checks"}

#: Declarative check kinds and their allowed option keys (beyond
#: ``kind``).  See :mod:`repro.campaign.criteria` for semantics.
CHECK_KINDS: dict[str, set[str]] = {
    "bounds": {"field", "min", "max"},
    "monotone": {"field", "strict"},
    "equals": {"field", "value"},
    "parity": {"field", "stage", "tol"},
    "quality_mix": {"floors", "ceilings"},
}

_FAILURE_POLICIES = ("raise", "partial")
_ON_FAIL = ("abort", "continue")

#: Stage-scheduler execution modes (see
#: :mod:`repro.campaign.scheduler`): ``serial`` is the oracle loop,
#: ``threads`` the bounded in-process stage-worker pool (default),
#: ``service`` ships stage execution to a ``repro.service`` job
#: server.  Excluded from the spec hash — scheduling never changes
#: what a campaign computes.
EXECUTION_MODES = ("serial", "threads", "service")


def _fail(path: str, message: str, *, source: str) -> None:
    raise CampaignSpecError(f"{source}: {path}: {message}")


def _require(mapping: Mapping[str, Any], key: str, path: str, *,
             source: str) -> Any:
    if key not in mapping:
        _fail(path, f"missing required key {key!r}", source=source)
    return mapping[key]


def _check_keys(mapping: Mapping[str, Any], allowed: set[str],
                path: str, *, source: str) -> None:
    if not isinstance(mapping, Mapping):
        _fail(path, f"expected a table, got {type(mapping).__name__}",
              source=source)
    unknown = sorted(set(mapping) - allowed)
    if unknown:
        _fail(path, f"unknown key(s) {unknown} "
                    f"(allowed: {sorted(allowed)})", source=source)


def _check_type(value: Any, types: tuple, path: str, label: str, *,
                source: str) -> None:
    # bool is an int subclass; reject it where a number is expected.
    if isinstance(value, bool) and bool not in types:
        _fail(path, f"{label} must not be a boolean", source=source)
    if not isinstance(value, types):
        names = "/".join(t.__name__ for t in types)
        _fail(path, f"{label} must be {names}, "
                    f"got {type(value).__name__}", source=source)


def _validate_check(raw: Mapping[str, Any], path: str, *,
                    stage_ids: list[str], source: str) -> None:
    if not isinstance(raw, Mapping):
        _fail(path, "each check must be a table", source=source)
    kind = _require(raw, "kind", path, source=source)
    if kind not in CHECK_KINDS:
        _fail(path, f"unknown check kind {kind!r} "
                    f"(known: {sorted(CHECK_KINDS)})", source=source)
    _check_keys(raw, CHECK_KINDS[kind] | {"kind"}, path, source=source)
    if kind in ("bounds", "monotone", "parity"):
        field = _require(raw, "field", path, source=source)
        _check_type(field, (str,), path, "field", source=source)
    if kind == "bounds" and "min" not in raw and "max" not in raw:
        _fail(path, "bounds check needs min and/or max", source=source)
    if kind == "equals" and "field" not in raw:
        _fail(path, "equals check needs a field", source=source)
    if kind == "parity":
        stage = _require(raw, "stage", path, source=source)
        if stage not in stage_ids:
            _fail(path, f"parity oracle stage {stage!r} is not a "
                        f"declared stage id", source=source)
        tol = raw.get("tol", 0.0)
        _check_type(tol, (int, float), path, "tol", source=source)
        if tol < 0:
            _fail(path, "tol must be >= 0", source=source)
    if kind == "quality_mix":
        if "floors" not in raw and "ceilings" not in raw:
            _fail(path, "quality_mix needs floors and/or ceilings",
                  source=source)
        for side in ("floors", "ceilings"):
            table = raw.get(side, {})
            if not isinstance(table, Mapping):
                _fail(f"{path}.{side}", "must be a table of counters",
                      source=source)
            for metric, bound in table.items():
                _check_type(bound, (int,), f"{path}.{side}.{metric}",
                            "bound", source=source)


def _validate_stage(raw: Mapping[str, Any], path: str, *,
                    stage_ids: list[str], source: str) -> None:
    _check_keys(raw, _STAGE_KEYS, path, source=source)
    sid = _require(raw, "id", path, source=source)
    _check_type(sid, (str,), path, "id", source=source)
    if not sid:
        _fail(path, "id must be non-empty", source=source)
    kind = _require(raw, "kind", path, source=source)
    from repro.campaign.stages import STAGE_KINDS

    if kind not in STAGE_KINDS:
        _fail(path, f"unknown stage kind {kind!r} "
                    f"(known: {sorted(STAGE_KINDS)})", source=source)
    needs = raw.get("needs", [])
    if not isinstance(needs, (list, tuple)):
        _fail(f"{path}.needs", "must be a list of stage ids",
              source=source)
    for dep in needs:
        if dep not in stage_ids:
            _fail(f"{path}.needs", f"unknown dependency {dep!r}",
                  source=source)
        if dep == sid:
            _fail(f"{path}.needs", "a stage cannot need itself",
                  source=source)
    params = raw.get("params", {})
    if not isinstance(params, Mapping):
        _fail(f"{path}.params", "must be a table", source=source)
    checks = raw.get("checks", [])
    if not isinstance(checks, (list, tuple)):
        _fail(f"{path}.checks", "must be an array of check tables",
              source=source)
    for i, check in enumerate(checks):
        _validate_check(check, f"{path}.checks[{i}]",
                        stage_ids=stage_ids, source=source)


def _topo_sort(ids: list[str], needs: dict[str, list[str]], *,
               source: str) -> list[str]:
    """Dependency-respecting stage order (declaration order among
    ready stages, so runs are stable); cycles are refused."""
    done: list[str] = []
    placed: set[str] = set()
    remaining = list(ids)
    while remaining:
        ready = [sid for sid in remaining
                 if all(d in placed for d in needs[sid])]
        if not ready:
            _fail("stages", f"dependency cycle among {remaining}",
                  source=source)
        for sid in ready:
            done.append(sid)
            placed.add(sid)
        remaining = [sid for sid in remaining if sid not in placed]
    return done


def validate_spec_mapping(raw: Mapping[str, Any], *,
                          source: str = "<spec>") -> list[str]:
    """Validate a raw spec mapping against ``campaign/v1``.

    Returns the topological stage order (the runner's execution
    order).

    Raises:
        CampaignSpecError: any structural problem, with the offending
            key path in the message.
    """
    _check_keys(raw, _TOP_KEYS, "spec", source=source)
    schema = _require(raw, "schema", "spec", source=source)
    if schema not in _KNOWN_SCHEMAS:
        _fail("schema", f"unknown campaign schema {schema!r} "
                        f"(this library reads {_KNOWN_SCHEMAS})",
              source=source)
    name = _require(raw, "name", "spec", source=source)
    _check_type(name, (str,), "name", "name", source=source)
    if not name:
        _fail("name", "must be non-empty", source=source)
    if "description" in raw:
        _check_type(raw["description"], (str,), "description",
                    "description", source=source)
    if "seed" in raw:
        _check_type(raw["seed"], (int,), "seed", "seed", source=source)

    design = raw.get("design", {})
    _check_keys(design, _DESIGN_KEYS, "design", source=source)
    if "corner" in design:
        from repro.devices.corners import CORNERS

        corner = design["corner"]
        if not isinstance(corner, str) \
                or corner.upper() not in CORNERS:
            _fail("design.corner", f"unknown corner {corner!r} "
                                   f"(known: {sorted(CORNERS)})",
                  source=source)

    backend = raw.get("backend", {})
    _check_keys(backend, _BACKEND_KEYS, "backend", source=source)
    if "spec" in backend:
        _check_type(backend["spec"], (str,), "backend.spec", "spec",
                    source=source)

    runtime = raw.get("runtime", {})
    _check_keys(runtime, _RUNTIME_KEYS, "runtime", source=source)
    for key in ("workers", "retries", "stage_workers"):
        if key in runtime:
            _check_type(runtime[key], (int,), f"runtime.{key}", key,
                        source=source)
            if runtime[key] < 0:
                _fail(f"runtime.{key}", "must be >= 0", source=source)
    if "task_timeout" in runtime:
        _check_type(runtime["task_timeout"], (int, float),
                    "runtime.task_timeout", "task_timeout",
                    source=source)
        if runtime["task_timeout"] <= 0:
            _fail("runtime.task_timeout",
                  "must be positive (omit to disable)", source=source)
    if runtime.get("failure_policy", "raise") not in _FAILURE_POLICIES:
        _fail("runtime.failure_policy",
              f"must be one of {_FAILURE_POLICIES}", source=source)
    if runtime.get("on_fail", "abort") not in _ON_FAIL:
        _fail("runtime.on_fail", f"must be one of {_ON_FAIL}",
              source=source)
    if runtime.get("execution", "threads") not in EXECUTION_MODES:
        _fail("runtime.execution",
              f"must be one of {EXECUTION_MODES}", source=source)

    chaos = raw.get("chaos")
    if chaos is not None:
        _check_keys(chaos, _CHAOS_KEYS, "chaos", source=source)
        for key in _CHAOS_KEYS:
            if key in chaos:
                _check_type(chaos[key], (int,), f"chaos.{key}", key,
                            source=source)
        for key in ("corrupt_cache", "kill_worker_tasks"):
            if chaos.get(key, 0) < 0:
                _fail(f"chaos.{key}", "must be >= 0", source=source)
        if chaos.get("kill_worker_tasks", 0) > 0:
            if runtime.get("workers", 0) < 2:
                _fail("chaos.kill_worker_tasks",
                      "worker-kill chaos needs runtime.workers >= 2 "
                      "(a serial sweep would kill the campaign "
                      "process itself)", source=source)
            if runtime.get("retries", 0) < 1:
                _fail("chaos.kill_worker_tasks",
                      "worker-kill chaos needs runtime.retries >= 1 "
                      "so the killed task can recover", source=source)

    stages = _require(raw, "stages", "spec", source=source)
    if not isinstance(stages, (list, tuple)) or not stages:
        _fail("stages", "must be a non-empty array of stage tables",
              source=source)
    ids: list[str] = []
    for i, stage in enumerate(stages):
        if not isinstance(stage, Mapping):
            _fail(f"stages[{i}]", "must be a table", source=source)
        sid = stage.get("id")
        if isinstance(sid, str):
            if sid in ids:
                _fail(f"stages[{i}].id", f"duplicate stage id {sid!r}",
                      source=source)
            ids.append(sid)
    for i, stage in enumerate(stages):
        label = stage.get("id", i)
        _validate_stage(stage, f"stages[{label}]", stage_ids=ids,
                        source=source)
        for check in stage.get("checks", []):
            if check.get("kind") == "parity" \
                    and check.get("stage") not in stage.get("needs", []):
                _fail(f"stages[{label}]",
                      f"parity check against {check.get('stage')!r} "
                      f"requires it in needs (ordering)", source=source)
    needs = {s["id"]: list(s.get("needs", [])) for s in stages}
    return _topo_sort(ids, needs, source=source)
