"""Seeded chaos injection for the resilient runtime.

*Who tests the tester?* — :mod:`repro.core.faults` asks it of the
sensor; this module asks it of the sweep runtime.  It supplies the
three fault injectors the end-to-end chaos campaign
(``benchmarks/bench_chaos_campaign.py``) composes:

* :class:`KillOnceTask` — a picklable task wrapper that SIGKILLs its
  own worker process the first time each selected task index runs
  (a marker file arms each kill exactly once, so bounded retries can
  prove recovery);
* :meth:`ChaosMonkey.corrupt_cache` — seeded vandalism of on-disk
  cache entries (truncation, garbling, zeroing — the disk-hiccup and
  killed-writer failure modes);
* :class:`SleepyTask` — a wrapper that makes selected tasks outsleep
  any deadline, for exercising the per-task timeout path.

Everything is deterministic given the seed: chaos runs are
*reproducible* failure drills, not flaky tests.  This module sits in
the runtime layer and imports only the standard library and
:mod:`repro.runtime.cache`, so any layer above can stage a drill.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError
from repro.runtime.cache import ResultCache


@dataclass(frozen=True)
class KillOnceTask:
    """Picklable wrapper: kill the worker once per selected index.

    Payloads must be ``(index, item)`` pairs (see :func:`enumerate_for`).
    When ``index`` is in ``kill_indices`` and its marker file does not
    exist yet, the marker is created *first* (so the retry survives)
    and the worker then SIGKILLs itself — indistinguishable from an
    OOM kill as far as the pool is concerned.

    Attributes:
        fn: The real task function (module-level, picklable).
        kill_indices: Task indices whose first attempt dies.
        marker_dir: Directory for the armed-once markers.
    """

    fn: Callable[[Any], Any]
    kill_indices: frozenset
    marker_dir: str

    def __call__(self, pair: tuple[int, Any]) -> Any:
        index, item = pair
        if index in self.kill_indices:
            marker = Path(self.marker_dir) / f"killed-{index}"
            if not marker.exists():
                marker.touch()
                os.kill(os.getpid(), signal.SIGKILL)
        return self.fn(item)


@dataclass(frozen=True)
class SleepyTask:
    """Picklable wrapper: selected indices sleep past any deadline.

    Like :class:`KillOnceTask`, the stall is armed once per index via
    a marker file, so a retried task completes normally.
    """

    fn: Callable[[Any], Any]
    stuck_indices: frozenset
    marker_dir: str
    sleep_s: float = 3600.0

    def __call__(self, pair: tuple[int, Any]) -> Any:
        index, item = pair
        if index in self.stuck_indices:
            marker = Path(self.marker_dir) / f"stalled-{index}"
            if not marker.exists():
                marker.touch()
                time.sleep(self.sleep_s)
        return self.fn(item)


def enumerate_for(items: Sequence[Any]) -> list[tuple[int, Any]]:
    """Wrap payloads as ``(index, item)`` pairs for the chaos tasks."""
    return list(enumerate(items))


class KillAfterPuts(ResultCache):
    """A :class:`ResultCache` that SIGKILLs its own process after the
    Nth successful :meth:`put` — the campaign crash-resume drill.

    Where :class:`KillOnceTask` kills a pool *worker* (the sweep
    engine recovers in-process), this injector kills the *campaign
    process itself* mid-stage, right after the Nth task result landed
    on disk.  A marker file arms the kill exactly once, so re-invoking
    the same campaign resumes from the persisted entries and runs to
    completion — the incremental-persistence claim of
    :func:`~repro.runtime.resilient.resilient_cached_map`, proven the
    hard way.

    Buffered cache-stats deltas are flushed before the kill so the
    per-root lifetime counters stay honest across the crash.
    """

    def __init__(self, root, *, kill_after: int,
                 marker: str | os.PathLike) -> None:
        if kill_after < 1:
            raise ConfigurationError(
                f"kill_after must be >= 1, got {kill_after}"
            )
        super().__init__(root)
        self.kill_after = int(kill_after)
        self.marker = Path(marker)
        self._puts = 0

    def put(self, key: str, value: Any) -> None:
        super().put(key, value)
        self._puts += 1
        if self._puts >= self.kill_after and not self.marker.exists():
            self.marker.parent.mkdir(parents=True, exist_ok=True)
            self.marker.touch()
            self.flush_stats()
            os.kill(os.getpid(), signal.SIGKILL)


class ChaosMonkey:
    """Deterministic fault selection and cache vandalism.

    Args:
        seed: Drives every random choice; a campaign replays
            identically under the same seed.
    """

    #: Supported cache-corruption modes.
    CORRUPTION_MODES = ("truncate", "garble", "zero")

    def __init__(self, seed: int = 1337) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def should(self, probability: float) -> bool:
        """One seeded Bernoulli draw (the shared injection decision).

        Every fault injector that fires "with probability p" — the
        :class:`~repro.backends.faults.FaultInjectingBackend` decorator,
        the service chaos drill — draws through this method, so a
        campaign's whole fault schedule replays identically under the
        same seed.
        """
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {probability}"
            )
        return self._rng.random() < probability

    def pick(self, n_tasks: int, n_faults: int) -> frozenset:
        """Choose ``n_faults`` distinct task indices out of ``n_tasks``."""
        if not 0 <= n_faults <= n_tasks:
            raise ConfigurationError(
                f"cannot pick {n_faults} faults from {n_tasks} tasks"
            )
        return frozenset(self._rng.sample(range(n_tasks), n_faults))

    def corrupt_cache(self, cache: ResultCache, *, n_entries: int = 1,
                      mode: str | None = None) -> list[Path]:
        """Damage ``n_entries`` random on-disk entries; returns them.

        Modes: ``"truncate"`` cuts the pickle mid-stream (killed
        writer), ``"garble"`` overwrites the head with noise (disk
        hiccup), ``"zero"`` empties the file.  ``None`` picks a mode
        per entry.  A correct cache treats every one as a miss and
        heals it.
        """
        if mode is not None and mode not in self.CORRUPTION_MODES:
            raise ConfigurationError(
                f"mode must be one of {self.CORRUPTION_MODES}"
            )
        entries = cache.entries()
        if n_entries > len(entries):
            raise ConfigurationError(
                f"cannot corrupt {n_entries} of {len(entries)} entries"
            )
        victims = self._rng.sample(entries, n_entries)
        for path in victims:
            pick = mode or self._rng.choice(self.CORRUPTION_MODES)
            raw = path.read_bytes()
            if pick == "truncate":
                path.write_bytes(raw[: max(1, len(raw) // 2)])
            elif pick == "garble":
                noise = bytes(self._rng.randrange(256)
                              for _ in range(min(16, max(1, len(raw)))))
                path.write_bytes(noise + raw[len(noise):])
            else:  # zero
                path.write_bytes(b"")
        return victims
