"""Fault-tolerant task execution: retries, timeouts, crash recovery.

:func:`map_tasks <repro.runtime.executor.map_tasks>` answers "run these
concurrently, bit-identically"; this module answers the reciprocal
robustness question — *what happens when a worker dies mid-sweep?*  The
paper pitches the sensor as infrastructure deployed "on a systematic
basis ... as scan chains are for fault verification"; an infrastructure
runtime has to survive the faults its own payload can detect:

* **Bounded retries with deterministic backoff.**  A failed attempt is
  retried up to ``retries`` times.  The backoff grows exponentially and
  carries *deterministic* jitter — a hash of (task index, attempt), so
  two runs of the same sweep sleep the same schedule and stay
  reproducible (no wall-clock or global RNG in the control path).
* **Worker-crash recovery.**  A killed worker (OOM, SIGKILL, segfault)
  breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`.
  The engine rebuilds the pool and resubmits only the unfinished tasks.
  Since the pool cannot attribute the crash, every in-flight task is
  charged one attempt — documented, bounded, and honest.
* **Per-task timeouts.**  A task past its deadline is presumed stuck;
  its pool is torn down (stuck workers are killed), innocent in-flight
  tasks are resubmitted *without* an attempt charge, and the stuck task
  is retried or failed.  Timeouts require the pool path: with
  ``workers<=1`` and a timeout set, a single-worker pool is used so the
  deadline is enforceable.
* **Failure policy.**  ``"raise"`` (default) propagates the first
  unrecoverable failure as a member of the
  :class:`~repro.errors.ReproError` hierarchy
  (:class:`~repro.errors.WorkerCrashError`,
  :class:`~repro.errors.TaskTimeoutError`,
  :class:`~repro.errors.RetryExhaustedError` — or the task's original
  exception when no retries were configured).  ``"partial"`` completes
  the sweep: failed slots are ``None`` in the results and every failure
  is recorded as a structured :class:`TaskFailure`.
* **Incremental persistence.**  :func:`resilient_cached_map` calls
  ``store.put()`` the moment each task completes, so a crash mid-sweep
  keeps all completed work on disk for the next run.

Task exceptions never break the pool: the worker-side guard returns
``("ok", value)`` or ``("err", exc, traceback)`` so only a genuine
process death produces ``BrokenProcessPool``.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import pickle
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Literal, Mapping, Sequence

from repro.errors import (
    ConfigurationError,
    RetryExhaustedError,
    TaskTimeoutError,
    WorkerCrashError,
)

FailurePolicy = Literal["raise", "partial"]

FAILURE_POLICIES = ("raise", "partial")


# -- policy --------------------------------------------------------------------


def _jitter_fraction(index: int, attempt: int) -> float:
    """Deterministic pseudo-random fraction in [0, 1) per (task, attempt)."""
    digest = hashlib.sha256(f"retry:{index}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout budget for one resilient run.

    Attributes:
        retries: Extra attempts allowed per task beyond the first.
        task_timeout: Per-task wall-clock budget, seconds (``None``
            disables deadlines).
        backoff_base: Sleep before the first retry, seconds.
        backoff_factor: Multiplier per subsequent retry (exponential).
        jitter: Max extra sleep as a fraction of the backoff, drawn
            deterministically from the (task index, attempt) hash.
    """

    retries: int = 0
    task_timeout: float | None = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigurationError("task_timeout must be positive")
        if self.backoff_base < 0 or self.backoff_factor < 1 \
                or self.jitter < 0:
            raise ConfigurationError(
                "backoff_base >= 0, backoff_factor >= 1 and jitter >= 0 "
                "required"
            )

    def delay(self, index: int, attempt: int) -> float:
        """Backoff before retrying task ``index`` after attempt
        ``attempt`` (1-based) failed.  Deterministic: same (index,
        attempt) always sleeps the same duration."""
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        return base * (1.0 + self.jitter * _jitter_fraction(index, attempt))


# -- outcome records -----------------------------------------------------------


@dataclass(frozen=True)
class TaskFailure:
    """One task that could not be completed.

    Attributes:
        index: Position of the task in the submitted batch.
        attempts: Attempts consumed (including the first).
        kind: ``"error"`` (task raised), ``"timeout"`` (deadline
            passed) or ``"crash"`` (worker process died).
        error_type: Exception class name of the final cause.
        message: Final cause rendered as text.
        key: The task's cache key, when the batch was memoized.
    """

    index: int
    attempts: int
    kind: str
    error_type: str
    message: str
    key: str | None = None


@dataclass
class RunStats:
    """Counters of one resilient run (the runtime's observability).

    Attributes:
        tasks: Tasks in the batch (cache hits excluded).
        completed: Tasks that produced a result.
        retries: Resubmissions due to failures.
        crashes: Pool-breaking worker deaths observed.
        timeouts: Deadline expiries observed.
        pool_rebuilds: Fresh pools built after a crash or timeout.
        failures: Tasks abandoned after exhausting their budget.
        cache_hits / cache_misses: Memoization counters of this call
            (only populated by :func:`resilient_cached_map`).
    """

    tasks: int = 0
    completed: int = 0
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    failures: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass(frozen=True)
class MapOutcome:
    """Results of a resilient map under ``failure_policy="partial"``.

    Attributes:
        results: One slot per input item, in input order; ``None``
            where the task failed (see ``failures``).
        failures: Structured records of the abandoned tasks.
        stats: The run's counters.
    """

    results: list
    failures: tuple[TaskFailure, ...]
    stats: RunStats

    @property
    def ok(self) -> bool:
        """True when every task completed (or was served from cache)."""
        return not self.failures


# -- worker-side guard ---------------------------------------------------------


def _guarded(payload: tuple[Callable[[Any], Any], Any]) -> tuple:
    """Run one task; return a tagged outcome instead of raising.

    Keeps task exceptions from being conflated with worker crashes:
    only a genuine process death can now break the pool.
    """
    fn, item = payload
    try:
        return ("ok", fn(item))
    except Exception as exc:
        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
        return ("err", exc, traceback.format_exc())


# -- the engine ----------------------------------------------------------------


@dataclass
class _Slot:
    """Mutable in-flight state of one task."""

    index: int
    item: Any
    attempts: int = 0
    deadline: float | None = field(default=None, compare=False)


_ERROR_BY_KIND = {
    "error": RetryExhaustedError,
    "timeout": TaskTimeoutError,
    "crash": WorkerCrashError,
}


class _Run:
    """One resilient execution over a batch of (index, item) slots."""

    def __init__(self, fn: Callable[[Any], Any], slots: list[_Slot], *,
                 workers: int, policy: RetryPolicy,
                 failure_policy: FailurePolicy,
                 keys: Sequence[str] | None,
                 on_ok: Callable[[int, Any], None],
                 stats: RunStats) -> None:
        if failure_policy not in FAILURE_POLICIES:
            raise ConfigurationError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {failure_policy!r}"
            )
        self.fn = fn
        self.slots = slots
        self.workers = workers
        self.policy = policy
        self.failure_policy = failure_policy
        self.keys = keys
        self.on_ok = on_ok
        self.stats = stats
        self.failures: list[TaskFailure] = []

    # -- shared failure accounting ----------------------------------------

    def _conclude_failure(self, slot: _Slot, kind: str,
                          cause: BaseException | None,
                          message: str) -> bool:
        """Charge one attempt; return True when the task must retry.

        When the budget is exhausted: record a :class:`TaskFailure`
        (partial) or raise the mapped :class:`ReproError` (raise).
        """
        slot.attempts += 1
        if kind == "timeout":
            self.stats.timeouts += 1
        if slot.attempts <= self.policy.retries:
            self.stats.retries += 1
            return True
        failure = TaskFailure(
            index=slot.index,
            attempts=slot.attempts,
            kind=kind,
            error_type=(type(cause).__name__ if cause is not None
                        else kind),
            message=message,
            key=(self.keys[slot.index] if self.keys is not None
                 else None),
        )
        self.failures.append(failure)
        self.stats.failures += 1
        if self.failure_policy == "raise":
            if kind == "error" and self.policy.retries == 0 \
                    and cause is not None:
                # No retries were configured: propagate the task's own
                # exception, exactly as the plain executor would.
                raise cause
            err = _ERROR_BY_KIND[kind](
                f"task {slot.index} abandoned after {slot.attempts} "
                f"attempt(s): {message}"
            )
            if cause is not None:
                raise err from cause
            raise err
        return False

    # -- serial path -------------------------------------------------------

    def run_serial(self) -> None:
        for slot in self.slots:
            while True:
                try:
                    value = self.fn(slot.item)
                except Exception as exc:
                    if self._conclude_failure(slot, "error", exc,
                                              f"{exc}"):
                        time.sleep(self.policy.delay(slot.index,
                                                     slot.attempts))
                        continue
                    break
                self.stats.completed += 1
                self.on_ok(slot.index, value)
                break

    # -- pool path ---------------------------------------------------------

    def run_pool(self) -> None:
        n = max(1, self.workers)
        pool = ProcessPoolExecutor(max_workers=n)
        ready: deque[_Slot] = deque(self.slots)
        delayed: list[tuple[float, int, _Slot]] = []
        tie = itertools.count()
        inflight: dict = {}
        try:
            while ready or delayed or inflight:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    ready.append(heapq.heappop(delayed)[2])
                # Window submission: at most one task per worker in
                # flight, so submit time approximates start time and
                # deadlines measure actual runtime.
                while ready and len(inflight) < n:
                    slot = ready.popleft()
                    fut = pool.submit(_guarded, (self.fn, slot.item))
                    slot.deadline = (
                        now + self.policy.task_timeout
                        if self.policy.task_timeout is not None else None
                    )
                    inflight[fut] = slot
                if not inflight:
                    if delayed:
                        time.sleep(max(0.0,
                                       delayed[0][0] - time.monotonic()))
                    continue

                horizon = [s.deadline for s in inflight.values()
                           if s.deadline is not None]
                if delayed:
                    horizon.append(delayed[0][0])
                timeout = (max(0.0, min(horizon) - time.monotonic())
                           if horizon else None)
                done, _ = wait(set(inflight), timeout=timeout,
                               return_when=FIRST_COMPLETED)

                crashed = False
                for fut in done:
                    slot = inflight.pop(fut)
                    try:
                        tag = fut.result()
                    except BrokenProcessPool:
                        crashed = True
                        self._retry_or_fail(
                            slot, delayed, tie, "crash", None,
                            "worker process died mid-task",
                        )
                        continue
                    except Exception as exc:
                        # Result transfer failed (e.g. unpicklable
                        # value): a task error, not a crash.
                        self._retry_or_fail(slot, delayed, tie, "error",
                                            exc, f"{exc}")
                        continue
                    if tag[0] == "ok":
                        self.stats.completed += 1
                        self.on_ok(slot.index, tag[1])
                    else:
                        _, exc, _tb = tag
                        self._retry_or_fail(slot, delayed, tie, "error",
                                            exc, f"{exc}")

                if crashed:
                    # Every sibling future is broken too; charge each
                    # in-flight task one attempt (the culprit cannot be
                    # identified) and rebuild the pool.
                    self.stats.crashes += 1
                    for fut in list(inflight):
                        slot = inflight.pop(fut)
                        self._retry_or_fail(
                            slot, delayed, tie, "crash", None,
                            "worker pool broke while task in flight",
                        )
                    pool = self._rebuild(pool, n)
                    continue

                now = time.monotonic()
                expired = [(fut, slot) for fut, slot in inflight.items()
                           if slot.deadline is not None
                           and slot.deadline <= now and not fut.done()]
                if expired:
                    for fut, slot in expired:
                        inflight.pop(fut)
                        self._retry_or_fail(
                            slot, delayed, tie, "timeout", None,
                            f"exceeded task_timeout="
                            f"{self.policy.task_timeout}s",
                        )
                    # The stuck workers must die with the pool; tasks
                    # that were merely sharing it are requeued with no
                    # attempt charge (their work is recomputed).
                    for fut in list(inflight):
                        ready.appendleft(inflight.pop(fut))
                    pool = self._rebuild(pool, n)
        except BaseException:
            _kill_pool(pool)
            raise
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _retry_or_fail(self, slot: _Slot, delayed: list, tie,
                       kind: str, cause: BaseException | None,
                       message: str) -> None:
        if self._conclude_failure(slot, kind, cause, message):
            not_before = (time.monotonic()
                          + self.policy.delay(slot.index, slot.attempts))
            heapq.heappush(delayed, (not_before, next(tie), slot))

    def _rebuild(self, pool: ProcessPoolExecutor,
                 n: int) -> ProcessPoolExecutor:
        self.stats.pool_rebuilds += 1
        _kill_pool(pool)
        return ProcessPoolExecutor(max_workers=n)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard: stuck workers are killed, not joined."""
    procs = list(getattr(pool, "_processes", None) or {})
    processes = getattr(pool, "_processes", None) or {}
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for pid in procs:
        proc = processes.get(pid)
        if proc is None:
            continue
        try:
            proc.kill()
        except Exception:
            pass


# -- public API ----------------------------------------------------------------


def _execute(run: _Run, fn: Callable[..., Any], n_slots: int,
             shared: "Mapping[str, Any] | None") -> None:
    """Drive one prepared :class:`_Run`, optionally with broadcast
    arrays riding shared memory (pool) or read-only views (serial).

    The shared blocks outlive pool rebuilds — they belong to the
    parent, so after a worker crash the rebuilt pool's fresh workers
    simply re-attach by name and the campaign continues.
    """
    n = min(run.workers, n_slots)
    use_pool = not (n <= 1 and run.policy.task_timeout is None)
    if shared is None:
        if use_pool:
            run.workers = n
            run.run_pool()
        else:
            run.run_serial()
        return
    from repro.runtime.shm import SharedArrayPool, SharedTask, \
        _readonly_views

    if use_pool:
        with SharedArrayPool(shared) as shm_pool:
            run.fn = SharedTask(fn, shm_pool.handles)
            shm_pool.charge_tasks(n_slots)
            run.workers = n
            run.run_pool()
    else:
        arrays = _readonly_views(shared)
        run.fn = lambda item: fn(item, arrays)
        run.run_serial()


def resilient_map(fn: Callable[[Any], Any], items: Iterable[Any], *,
                  workers: int | None = None,
                  retries: int = 0,
                  task_timeout: float | None = None,
                  policy: RetryPolicy | None = None,
                  failure_policy: FailurePolicy = "raise",
                  keys: Sequence[str] | None = None,
                  on_result: Callable[[int, Any], None] | None = None,
                  shared: "Mapping[str, Any] | None" = None
                  ) -> MapOutcome:
    """Fault-tolerant ``[fn(x) for x in items]``.

    Args:
        fn: Module-level pure function of one task payload (must be
            picklable for the pool path).
        items: Task payloads.
        workers: Pool size (<= 1: serial — unless a timeout forces a
            single-worker pool so the deadline is enforceable).
        retries / task_timeout: Shorthand for ``policy``.
        policy: Full :class:`RetryPolicy` (overrides the shorthands).
        failure_policy: ``"raise"`` (first unrecoverable failure
            aborts) or ``"partial"`` (failed slots are ``None`` and
            recorded in :attr:`MapOutcome.failures`).
        keys: Optional per-task labels copied into failure records.
        on_result: Streaming callback ``(index, value)`` invoked the
            moment each task completes (completion order).
        shared: Named read-only broadcast arrays (see
            :mod:`repro.runtime.shm`); tasks are then called as
            ``fn(payload, arrays)``.

    Returns:
        A :class:`MapOutcome` — under ``"raise"`` its ``failures`` is
        always empty (a failure would have raised instead).
    """
    from repro.runtime.executor import resolve_workers

    payloads = list(items)
    if policy is None:
        policy = RetryPolicy(retries=retries, task_timeout=task_timeout)
    if failure_policy not in FAILURE_POLICIES:
        raise ConfigurationError(
            f"failure_policy must be one of {FAILURE_POLICIES}, "
            f"got {failure_policy!r}"
        )
    if keys is not None and len(keys) != len(payloads):
        raise ConfigurationError(
            f"got {len(keys)} keys for {len(payloads)} items"
        )
    results: list[Any] = [None] * len(payloads)
    stats = RunStats(tasks=len(payloads))

    def on_ok(index: int, value: Any) -> None:
        results[index] = value
        if on_result is not None:
            on_result(index, value)

    slots = [_Slot(index=i, item=item)
             for i, item in enumerate(payloads)]
    run = _Run(fn, slots, workers=resolve_workers(workers),
               policy=policy, failure_policy=failure_policy, keys=keys,
               on_ok=on_ok, stats=stats)
    if slots:
        _execute(run, fn, len(slots), shared)
    return MapOutcome(results=results, failures=tuple(run.failures),
                      stats=stats)


def resilient_cached_map(fn: Callable[[Any], Any],
                         items: Iterable[Any], *,
                         keys: Sequence[str] | None = None,
                         cache: Any = None,
                         workers: int | None = None,
                         retries: int = 0,
                         task_timeout: float | None = None,
                         policy: RetryPolicy | None = None,
                         failure_policy: FailurePolicy = "raise",
                         shared: "Mapping[str, Any] | None" = None
                         ) -> MapOutcome:
    """:func:`resilient_map` with per-item memoization and
    *incremental* persistence: every completed task is ``store.put()``
    the moment it arrives, so a crash mid-sweep keeps all completed
    work on disk.

    Cache lookups happen up front in the parent process (hit/miss
    counters stay authoritative); only the misses enter the resilient
    engine.
    """
    from repro.runtime.cache import resolve_cache

    store = resolve_cache(cache)
    payloads = list(items)
    if store is None or keys is None:
        return resilient_map(fn, payloads, workers=workers,
                             retries=retries, task_timeout=task_timeout,
                             policy=policy,
                             failure_policy=failure_policy, keys=keys,
                             shared=shared)
    if len(keys) != len(payloads):
        raise ConfigurationError(
            f"got {len(keys)} cache keys for {len(payloads)} items"
        )
    results: list[Any] = [None] * len(payloads)
    pending: list[tuple[int, Any]] = []
    hits = 0
    for i, (item, key) in enumerate(zip(payloads, keys)):
        hit, value = store.get(key)
        if hit:
            results[i] = value
            hits += 1
        else:
            pending.append((i, item))
    if policy is None:
        policy = RetryPolicy(retries=retries, task_timeout=task_timeout)
    stats = RunStats(tasks=len(pending), cache_hits=hits,
                     cache_misses=len(pending))

    def on_ok(index: int, value: Any) -> None:
        results[index] = value
        store.put(keys[index], value)

    slots = [_Slot(index=i, item=item) for i, item in pending]
    from repro.runtime.executor import resolve_workers

    run = _Run(fn, slots, workers=resolve_workers(workers),
               policy=policy, failure_policy=failure_policy, keys=keys,
               on_ok=on_ok, stats=stats)
    if slots:
        _execute(run, fn, len(slots), shared)
    return MapOutcome(results=results, failures=tuple(run.failures),
                      stats=stats)
