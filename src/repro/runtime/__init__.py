"""repro.runtime — parallel execution and on-disk memoization.

Characterization is embarrassingly parallel: per-bit threshold
bisections are independent across (bit, delay code) pairs, Monte-Carlo
yield studies are independent across sampled dies, and tester-style
S-curve extraction is independent across stages.  This package supplies
the two pieces every such sweep needs:

* :mod:`repro.runtime.executor` — a process-pool fan-out
  (:func:`map_tasks`) that preserves submission order, so a parallel
  sweep reduces to *bit-identical* results vs. the serial loop;
* :mod:`repro.runtime.cache` — an on-disk memoization cache
  (:class:`ResultCache`) keyed by a stable content hash of the inputs
  (design, corner technology, delay code, bisection tolerances), with
  hit/miss/error counters and graceful recovery from corrupt entries.

* :mod:`repro.runtime.resilient` — the fault-tolerant execution
  engine: bounded retries with deterministic backoff, per-task
  timeouts, worker-crash recovery (pool rebuild + resubmission of
  unfinished tasks), incremental result persistence and a
  ``raise``/``partial`` failure policy with structured
  :class:`~repro.runtime.resilient.TaskFailure` records;
* :mod:`repro.runtime.chaos` — seeded fault injection (worker kills,
  cache corruption, stuck tasks) for end-to-end resilience drills;
* :mod:`repro.runtime.shm` — zero-copy broadcast of large read-only
  arrays (draw cubes, threshold grids, LTI operators) to pool workers
  via POSIX shared memory: registered once per pool, handles instead
  of pickles, with a per-array inline fallback that keeps the bytes
  identical when shared memory is unavailable (``$REPRO_SHM=0``).

Everything above it (``repro.core.characterization``,
``repro.analysis.yield_study``, ``repro.analysis.repeatability``, the
benches and the CLI) takes ``workers=`` / ``cache=`` keyword arguments
that default to today's serial, uncached behavior, plus ``retries=`` /
``task_timeout=`` / ``failure_policy=`` resilience options that
default to the historic fail-fast semantics.

This module sits *below* ``repro.core``/``repro.analysis`` in the layer
diagram: it may import only the error types and the standard library,
so any layer can use it without cycles.
"""

from repro.runtime.cache import (
    ResultCache,
    default_cache_dir,
    design_fingerprint,
    resolve_cache,
    stable_hash,
    task_key,
)
from repro.runtime.chaos import ChaosMonkey, KillOnceTask, SleepyTask
from repro.runtime.profiling import PROFILER, PhaseProfiler, PhaseStat, phase
from repro.runtime.executor import (
    cached_map,
    env_workers,
    map_tasks,
    resolve_workers,
)
from repro.runtime.resilient import (
    MapOutcome,
    RetryPolicy,
    RunStats,
    TaskFailure,
    resilient_cached_map,
    resilient_map,
)
from repro.runtime.shm import (
    SHM_ENV,
    SharedArrayHandle,
    SharedArrayPool,
    SharedTask,
    resolve_handle,
    shm_counters,
    shm_enabled,
)

__all__ = [
    "ChaosMonkey",
    "KillOnceTask",
    "MapOutcome",
    "PROFILER",
    "PhaseProfiler",
    "PhaseStat",
    "ResultCache",
    "SHM_ENV",
    "SharedArrayHandle",
    "SharedArrayPool",
    "SharedTask",
    "phase",
    "RetryPolicy",
    "RunStats",
    "SleepyTask",
    "TaskFailure",
    "cached_map",
    "default_cache_dir",
    "design_fingerprint",
    "env_workers",
    "map_tasks",
    "resilient_cached_map",
    "resilient_map",
    "resolve_cache",
    "resolve_handle",
    "resolve_workers",
    "shm_counters",
    "shm_enabled",
    "stable_hash",
    "task_key",
]
