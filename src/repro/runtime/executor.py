"""Process-pool fan-out with serial-identical semantics.

:func:`map_tasks` is the single primitive every sweep builds on.  Its
contract is deliberately stronger than "run these concurrently":

* **Order preservation** — results come back in submission order
  (``ProcessPoolExecutor.map``), so a reducer that folds them in a
  loop sees *exactly* the operand sequence of the serial code path,
  and floating-point reductions stay bit-identical.
* **Determinism** — tasks must be pure functions of their argument
  tuple.  Anything seeded derives its seed from the task payload
  (die index, bit number), never from pool scheduling.
* **Serial fallback** — ``workers=None``/``0``/``1`` runs the plain
  list comprehension in-process: no pool, no pickling, no behavior
  change for existing callers.

Worker callables must be module-level (picklable).  The wired sweeps
each define a tiny ``_*_task`` adapter next to the physics they call.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Sequence,
    TypeVar,
)

from repro.errors import ConfigurationError
from repro.runtime.cache import ResultCache, resolve_cache
from repro.runtime.profiling import PROFILER

#: Environment variable for sweeps without an explicit ``workers=``
#: (benches, examples): unset/empty means serial.
WORKERS_ENV = "REPRO_WORKERS"

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers=`` argument to a concrete pool size.

    ``None``, ``0`` and ``1`` mean serial; a negative count means "all
    cores" (``os.cpu_count()``); anything else is taken literally.
    """
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return max(os.cpu_count() or 1, 1)
    return int(workers)


def env_workers(default: int | None = None) -> int | None:
    """Worker count requested via ``$REPRO_WORKERS``, else ``default``.

    Benches and examples use this so ``REPRO_WORKERS=8 pytest
    benchmarks`` parallelizes without touching call sites.  Invalid
    values raise rather than silently running serial.
    """
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"${WORKERS_ENV}={raw!r} is not an integer worker count"
        ) from None


def _iter_map(fn: Callable[..., _R], payloads: Sequence[_T],
              workers: int | None, chunksize: int,
              shared: "Mapping[str, Any] | None" = None) -> Iterator[_R]:
    """Yield ``fn(x)`` per payload *in submission order, as computed*.

    The streaming core of :func:`map_tasks` and :func:`cached_map`:
    consumers that persist each result as it arrives (incremental
    ``store.put()``) survive a crash mid-sweep with all completed work
    intact, while the yielded order stays bit-identical to serial.

    With ``shared``, tasks are called as ``fn(payload, arrays)``: the
    named arrays ride POSIX shared memory to the pool (one copy-in
    total instead of one pickle per task — see
    :mod:`repro.runtime.shm`) and read-only views in the serial path,
    so the bytes each task sees are identical either way.
    """
    n = min(resolve_workers(workers), len(payloads))
    if shared is not None:
        from repro.runtime.shm import SharedArrayPool, SharedTask, \
            _readonly_views

        if n <= 1:
            arrays = _readonly_views(shared)
            for item in payloads:
                yield fn(item, arrays)
            return
        with SharedArrayPool(shared) as shm_pool:
            task = SharedTask(fn, shm_pool.handles)
            shm_pool.charge_tasks(len(payloads))
            with PROFILER.measure("runtime.pool"), \
                    ProcessPoolExecutor(max_workers=n) as pool:
                yield from pool.map(task, payloads,
                                    chunksize=max(1, chunksize))
        return
    if n <= 1:
        for item in payloads:
            yield fn(item)
        return
    with PROFILER.measure("runtime.pool"), \
            ProcessPoolExecutor(max_workers=n) as pool:
        yield from pool.map(fn, payloads, chunksize=max(1, chunksize))


def _wants_resilience(retries: int, task_timeout: float | None,
                      failure_policy: str) -> bool:
    return bool(retries) or task_timeout is not None \
        or failure_policy != "raise"


def map_tasks(fn: Callable[..., _R], items: Iterable[_T], *,
              workers: int | None = None,
              chunksize: int = 1,
              retries: int = 0,
              task_timeout: float | None = None,
              failure_policy: str = "raise",
              shared: "Mapping[str, Any] | None" = None) -> Any:
    """``[fn(x) for x in items]``, optionally across a process pool.

    Results are returned in input order regardless of completion
    order, which is what keeps parallel sweeps bit-identical to their
    serial counterparts (see module docstring).

    Args:
        fn: Module-level pure function of one task payload.
        items: Task payloads (materialized once, in order).
        workers: Pool size per :func:`resolve_workers`; <= 1 runs
            serial in-process.
        chunksize: Payload batching for the pool (latency knob only;
            ignored when resilience options are active).
        retries: Extra attempts per failed task (exponential backoff
            with deterministic jitter — see
            :class:`repro.runtime.resilient.RetryPolicy`).
        task_timeout: Per-task wall-clock budget, seconds.
        failure_policy: ``"raise"`` (default — a failure past its
            budget aborts the sweep, bit-identical to the historic
            behavior) or ``"partial"`` (the sweep completes; the
            return value becomes a
            :class:`~repro.runtime.resilient.MapOutcome` whose failed
            slots are ``None`` plus structured ``TaskFailure``
            records).
        shared: Named read-only arrays broadcast to every task via
            shared memory (:mod:`repro.runtime.shm`); tasks are then
            called as ``fn(payload, arrays)``.  Bit-identical to
            passing the arrays inside each payload — just without the
            per-task pickling.

    Returns:
        ``list`` of results under ``failure_policy="raise"``;
        a :class:`~repro.runtime.resilient.MapOutcome` under
        ``"partial"``.
    """
    payloads: Sequence[_T] = list(items)
    if _wants_resilience(retries, task_timeout, failure_policy):
        from repro.runtime.resilient import resilient_map

        outcome = resilient_map(
            fn, payloads, workers=workers, retries=retries,
            task_timeout=task_timeout, failure_policy=failure_policy,
            shared=shared,
        )
        return outcome if failure_policy == "partial" \
            else outcome.results
    return list(_iter_map(fn, payloads, workers, chunksize,
                          shared=shared))


def cached_map(fn: Callable[..., _R], items: Iterable[_T], *,
               keys: Sequence[str] | None = None,
               cache: "ResultCache | str | os.PathLike[str] | None" = None,
               workers: int | None = None,
               chunksize: int = 1,
               retries: int = 0,
               task_timeout: float | None = None,
               failure_policy: str = "raise",
               shared: "Mapping[str, Any] | None" = None) -> Any:
    """:func:`map_tasks` with per-item on-disk memoization.

    Every memoized sweep in the repo reduces to this: look each item's
    key up in the parent process (so the cache's hit/miss counters are
    authoritative), fan only the misses out to the pool, then stitch
    hits and fresh results back together in submission order — which
    keeps the cached/parallel result bit-identical to the direct serial
    one.

    Persistence is *incremental*: each computed result is
    ``store.put()`` as soon as it is available, so a crash mid-sweep
    keeps all completed work for the next run.

    Args:
        fn: Module-level pure function of one task payload.
        items: Task payloads.
        keys: One stable cache key per item (see
            :func:`repro.runtime.cache.task_key`); ``None`` disables
            memoization even when ``cache`` is given.
        cache: A :class:`ResultCache`, a cache directory, or ``None``
            (no memoization).
        workers: Pool size for the misses (<= 1: serial in-process).
        chunksize: Payload batching for the pool (ignored when
            resilience options are active).
        retries / task_timeout / failure_policy: Resilience options as
            in :func:`map_tasks` — under ``"partial"`` the return
            value is a :class:`~repro.runtime.resilient.MapOutcome`.
        shared: Broadcast arrays as in :func:`map_tasks` (tasks become
            ``fn(payload, arrays)``); cache keys must already account
            for the shared contents.
    """
    if _wants_resilience(retries, task_timeout, failure_policy):
        from repro.runtime.resilient import resilient_cached_map

        outcome = resilient_cached_map(
            fn, items, keys=keys, cache=cache, workers=workers,
            retries=retries, task_timeout=task_timeout,
            failure_policy=failure_policy, shared=shared,
        )
        return outcome if failure_policy == "partial" \
            else outcome.results
    store = resolve_cache(cache)
    payloads: Sequence[_T] = list(items)
    if store is None or keys is None:
        return map_tasks(fn, payloads, workers=workers,
                         chunksize=chunksize, shared=shared)
    if len(keys) != len(payloads):
        raise ConfigurationError(
            f"got {len(keys)} cache keys for {len(payloads)} items"
        )
    results: list[Any] = [None] * len(payloads)
    pending: list[tuple[int, _T]] = []
    for i, (item, key) in enumerate(zip(payloads, keys)):
        hit, value = store.get(key)
        if hit:
            results[i] = value
        else:
            pending.append((i, item))
    computed = _iter_map(fn, [item for _, item in pending],
                         workers, chunksize, shared=shared)
    for (i, _), value in zip(pending, computed):
        results[i] = value
        store.put(keys[i], value)
    return results
