"""Per-phase timing counters for sweep hot paths.

The runtime already proves *what* a sweep computed (cache counters,
``RunStats``); this module answers *where the wall-clock went*: kernel
math vs. cache IO vs. process-pool dispatch.  A single process-global
:class:`PhaseProfiler` accumulates ``(calls, seconds)`` per named phase;
instrumented code brackets its hot sections with :func:`phase`, which
costs two ``perf_counter()`` calls when profiling is enabled and almost
nothing (one attribute check) when it is not — sweeps never pay for
instrumentation they did not ask for.

Phase names are dotted, coarse and stable — they are a CLI contract:

* ``kernel.solve``  — vectorized delay-law root solves;
* ``kernel.decode`` — vectorized word/decode grid evaluation;
* ``kernel.mc``     — batched Monte-Carlo draw-cube evaluation;
* ``kernel.transient`` — exact-ZOH PDN transient stepping;
* ``runtime.pool``  — process-pool dispatch (workers > 1);
* ``runtime.shm``   — shared-memory block creation/copy-in for
  zero-copy broadcast arrays (see :mod:`repro.runtime.shm`);
* ``cache.get`` / ``cache.put`` — result-cache disk IO.

The CLI's ``--profile`` flag enables the profiler around a sweep and
prints :meth:`PhaseProfiler.report` afterwards.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class PhaseStat:
    """Accumulated cost of one phase."""

    calls: int = 0
    seconds: float = 0.0


@dataclass
class PhaseProfiler:
    """Named wall-time accumulators, disabled by default.

    Attributes:
        enabled: When False (default), :meth:`measure` is a no-op.
        phases: Phase name -> :class:`PhaseStat`.
    """

    enabled: bool = False
    phases: dict[str, PhaseStat] = field(default_factory=dict)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.phases.clear()

    def add(self, name: str, seconds: float) -> None:
        """Charge ``seconds`` to a phase (one call)."""
        stat = self.phases.setdefault(name, PhaseStat())
        stat.calls += 1
        stat.seconds += seconds

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Time a block under ``name`` when enabled; else no-op."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def snapshot(self) -> dict[str, tuple[int, float]]:
        """``{phase: (calls, seconds)}`` — a picklable copy."""
        return {k: (v.calls, v.seconds) for k, v in self.phases.items()}

    def report(self, *, total: float | None = None) -> str:
        """Human-readable breakdown, widest phase first.

        Args:
            total: Overall wall time to compute an "other" residual and
                percentages against; omitted, percentages are of the
                summed phase time.
        """
        if not self.phases:
            return "profile: no instrumented phases ran"
        items = sorted(self.phases.items(),
                       key=lambda kv: kv[1].seconds, reverse=True)
        denom = total if total and total > 0 \
            else sum(s.seconds for _, s in items) or 1.0
        width = max(len(name) for name, _ in items)
        lines = ["phase".ljust(width) + "  calls      time     share"]
        for name, stat in items:
            lines.append(
                f"{name.ljust(width)}  {stat.calls:>5}  "
                f"{stat.seconds * 1e3:>7.1f}ms  {stat.seconds / denom:>7.1%}"
            )
        if total is not None and total > 0:
            accounted = sum(s.seconds for _, s in items)
            other = max(total - accounted, 0.0)
            lines.append(
                f"{'(other)'.ljust(width)}  {'':>5}  "
                f"{other * 1e3:>7.1f}ms  {other / denom:>7.1%}"
            )
        return "\n".join(lines)


#: The process-global profiler instrumented code reports into.
PROFILER = PhaseProfiler()


def phase(name: str):
    """Module-level shortcut: ``with phase("kernel.solve"): ...``."""
    return PROFILER.measure(name)
