"""On-disk memoization for characterization sweeps.

Design goals, in order:

1. **Correct keys.**  A cache entry must never be served for different
   physics.  Keys are SHA-256 digests of a *canonical token tree* built
   from the inputs: every float is rendered with ``float.hex()`` (exact,
   locale-independent), dataclasses contribute their type name and every
   field, enums their class and member name.  Two designs that differ in
   any calibrated constant — or in the bisection tolerance — hash apart.
2. **Graceful degradation.**  A corrupt or truncated entry (killed
   process, disk hiccup, version skew) is treated as a miss: the value
   is recomputed, the bad file replaced, and the ``errors`` counter
   bumped.  The cache can only make a run faster, never wrong.
3. **Observable.**  Hit/miss/error counters live on the
   :class:`ResultCache` instance and are exposed through
   :meth:`ResultCache.stats` and the ``repro cache`` CLI subcommand —
   they are how the test suite proves a warm rerun did zero bisections.

Entries are one pickle file per key under the cache root, written
atomically (temp file + ``os.replace``) so concurrent writers at worst
waste a compute, never tear an entry.
"""

from __future__ import annotations

import atexit
import dataclasses
import enum
import hashlib
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Any, Callable, Iterator

try:
    import fcntl
except ModuleNotFoundError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from repro.errors import ConfigurationError
from repro.runtime.profiling import phase

#: Bump to invalidate every entry written by older layouts/semantics.
CACHE_SCHEMA = "repro-cache/v1"

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Per-root append-only counter log (see :meth:`ResultCache.flush_stats`):
#: every process that used the cache appends its hit/miss/error deltas,
#: so ``repro cache`` can report campaign-lifetime totals instead of the
#: zeros a freshly constructed instance would show.
STATS_LOG_NAME = "_stats.log"

#: Unflushed events buffered before an automatic flush.
_STATS_FLUSH_EVERY = 64

#: Stats-log line count past which :meth:`ResultCache.flush_stats`
#: folds the whole history into one summed baseline line — totals are
#: preserved exactly; only the per-process breakdown is forgotten.
_STATS_COMPACT_LINES = 256


# -- canonical hashing ---------------------------------------------------------


def _tokens(obj: Any) -> Iterator[str]:
    """Yield a canonical, order-stable token stream for ``obj``.

    Supported: None/bool/int/str/bytes, floats (exact via ``hex()``),
    enums, dataclasses, and mappings/sequences of the above.  Anything
    else is rejected loudly — silently falling back to ``repr`` would
    risk serving stale entries for objects whose repr elides state.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        yield f"{type(obj).__name__}:{obj!r}"
    elif isinstance(obj, float):
        yield f"float:{obj.hex()}"
    elif isinstance(obj, bytes):
        yield f"bytes:{obj.hex()}"
    elif isinstance(obj, enum.Enum):
        yield f"enum:{type(obj).__name__}.{obj.name}"
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        yield f"dataclass:{type(obj).__name__}("
        for field in dataclasses.fields(obj):
            yield f"{field.name}="
            yield from _tokens(getattr(obj, field.name))
        yield ")"
    elif isinstance(obj, dict):
        yield "dict("
        for key in sorted(obj, key=repr):
            yield from _tokens(key)
            yield "->"
            yield from _tokens(obj[key])
        yield ")"
    elif isinstance(obj, (tuple, list)):
        yield f"{type(obj).__name__}("
        for item in obj:
            yield from _tokens(item)
        yield ")"
    else:
        raise ConfigurationError(
            f"cannot build a stable cache key from {type(obj).__name__!r}"
        )


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical token stream of ``obj``."""
    digest = hashlib.sha256()
    for token in _tokens(obj):
        digest.update(token.encode())
        digest.update(b"\x1f")  # unit separator: no token-boundary aliasing
    return digest.hexdigest()


def _numeric_environment() -> tuple[str, ...]:
    """Numeric-environment tokens baked into fingerprints: (NumPy
    version, kernel layout version, working dtype, kernel backend).

    Kernel-evaluated results depend on the NumPy build's elementwise
    semantics and on the kernel layer's own numerics; folding both into
    :func:`design_fingerprint` guarantees vectorized results never
    alias entries written by a different kernel generation — or by the
    scalar-only era, whose fingerprints carried no version tokens.
    The dtype and backend tokens extend the same guarantee to the
    raw-speed tier: float32 results can never be served to a float64
    consumer, and compiled-backend artifacts never alias pure-NumPy
    ones (defense in depth — the backends are designed bit-identical,
    but a cache must not *depend* on that).  Imported lazily: the
    runtime layer must not depend on :mod:`repro.kernels` at import
    time.
    """
    import numpy

    from repro.kernels import KERNEL_LAYOUT_VERSION
    from repro.kernels.backend import backend_token
    from repro.kernels.dtype import dtype_token

    return (f"numpy/{numpy.__version__}", KERNEL_LAYOUT_VERSION,
            dtype_token(), backend_token())


def design_fingerprint(design: Any, *, backend: Any = None) -> str:
    """Stable fingerprint of a :class:`~repro.core.calibration.SensorDesign`.

    Covers every calibrated constant (the nested
    :class:`~repro.devices.technology.Technology` included), so any
    refit, corner, or ablation (``with_load_caps``) changes the
    fingerprint and misses the cache — plus the numeric environment
    (NumPy version, kernel layout version), so results computed by a
    different kernel generation miss it too.

    Args:
        backend: The measurement driver producing the results — any
            object with a ``fingerprint()`` method (a
            :class:`~repro.backends.SensorBackend`).  Its fingerprint
            (driver id + engine version tags + trace schema) is folded
            in, so artifacts measured through different drivers — a
            kernel-backed sweep, a sim-backed one, a replayed trace —
            can never share a cache entry.  ``None`` keeps the classic
            driverless fingerprint (the scalar/kernel-era keys).
    """
    tail: tuple[str, ...] = _numeric_environment()
    if backend is not None:
        tail = tail + (backend.fingerprint(),)
    return stable_hash((design,) + tail)


def task_key(kind: str, *parts: Any) -> str:
    """Cache key for one memoized task.

    Args:
        kind: Task family tag, e.g. ``"sim-threshold"``; versioned
            alongside :data:`CACHE_SCHEMA` so semantics changes can
            invalidate one family at a time.
        parts: Hashable-by-:func:`stable_hash` inputs of the task.
    """
    return stable_hash((CACHE_SCHEMA, kind, parts))


# -- the cache -----------------------------------------------------------------


def default_cache_dir() -> Path:
    """The default on-disk location: ``$REPRO_CACHE_DIR`` or
    ``~/.cache/repro-psn``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-psn"


class ResultCache:
    """A directory of pickled results, one file per key.

    Attributes:
        root: Cache directory (created on first use).
        hits: Lookups served from disk by this instance.
        misses: Lookups that fell through to compute.
        errors: Entries found corrupt and discarded.
    """

    def __init__(self, root: str | os.PathLike[str] | None = None) -> None:
        self.root = Path(root).expanduser() if root is not None \
            else default_cache_dir()
        if self.root.exists() and not self.root.is_dir():
            raise ConfigurationError(
                f"cache dir {str(self.root)!r} exists and is not a "
                f"directory"
            )
        self.hits = 0
        self.misses = 0
        self.errors = 0
        #: set when a put hit an OSError: further puts become no-ops
        #: (the sweep keeps running uncached rather than crashing).
        self.disabled = False
        # Deltas not yet appended to the on-disk stats log.
        self._unflushed = [0, 0, 0]  # hits, misses, errors
        self._flush_registered = False

    # -- persistent counters ----------------------------------------------

    def _count(self, hits: int = 0, misses: int = 0,
               errors: int = 0) -> None:
        """Bump instance counters and buffer the deltas for the
        per-root stats log (flushed every ~64 events and at exit)."""
        self.hits += hits
        self.misses += misses
        self.errors += errors
        self._unflushed[0] += hits
        self._unflushed[1] += misses
        self._unflushed[2] += errors
        if not self._flush_registered:
            self._flush_registered = True
            atexit.register(self.flush_stats)
        if sum(self._unflushed) >= _STATS_FLUSH_EVERY:
            self.flush_stats()

    def flush_stats(self) -> None:
        """Append buffered counter deltas to the root's stats log.

        One ``pid hits misses errors`` line per flush, written with
        ``O_APPEND`` (atomic for short writes on POSIX), so parent and
        pool-worker processes interleave without tearing.  Best-effort:
        an unwritable root loses observability, never the sweep.

        The log is self-compacting: once it grows past
        :data:`_STATS_COMPACT_LINES` lines the whole history is folded
        into a single summed baseline line (pid 0), under an exclusive
        ``flock`` so a concurrent flusher can neither tear the fold nor
        lose its own append.  Totals are invariant across compaction —
        :meth:`lifetime_stats` cannot tell it happened.  Without
        ``fcntl`` (non-POSIX) compaction is skipped; the log just
        grows, as before.
        """
        h, m, e = self._unflushed
        if h == 0 and m == 0 and e == 0:
            return
        self._unflushed = [0, 0, 0]
        line = f"{os.getpid()} {h} {m} {e}\n".encode()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.root / STATS_LOG_NAME,
                         os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                os.write(fd, line)
                # Cheap size gate first (every line is >= 8 bytes), so
                # the common flush never reads the log back.
                if fcntl is not None and os.fstat(fd).st_size \
                        > 8 * _STATS_COMPACT_LINES:
                    self._compact_locked(fd)
            finally:
                os.close(fd)  # releases the flock with it
        except OSError:
            pass

    @staticmethod
    def _compact_locked(fd: int) -> None:
        """Fold the stats log into one baseline line, in place.

        Caller holds ``LOCK_EX`` on ``fd``.  The fold reuses the same
        inode (truncate + ``O_APPEND`` rewrite) rather than a rename,
        so writers blocked on the flock — which hold fds to *this*
        inode — append after the baseline instead of resurrecting a
        replaced file.
        """
        os.lseek(fd, 0, os.SEEK_SET)
        chunks = []
        while True:
            chunk = os.read(fd, 1 << 16)
            if not chunk:
                break
            chunks.append(chunk)
        lines = b"".join(chunks).splitlines()
        if len(lines) <= _STATS_COMPACT_LINES:
            return
        totals = [0, 0, 0]
        for raw in lines:
            parts = raw.split()
            if len(parts) != 4:
                continue  # torn or foreign line: drop from the fold
            try:
                deltas = [int(p) for p in parts[1:]]
            except ValueError:
                continue
            for i in range(3):
                totals[i] += deltas[i]
        os.ftruncate(fd, 0)
        os.write(fd, f"0 {totals[0]} {totals[1]} {totals[2]}\n".encode())

    def lifetime_stats(self) -> dict[str, int]:
        """Aggregated counters across *every* process that used this
        cache root — the stats log totals plus this instance's
        unflushed deltas.  This is what survives process-pool workers:
        each worker's :class:`ResultCache` flushes its own deltas, so
        a later ``repro cache`` invocation (a fresh process with zeroed
        instance counters) still reports the campaign's true totals.
        """
        totals = [0, 0, 0]
        try:
            with (self.root / STATS_LOG_NAME).open("rb") as fh:
                if fcntl is not None:
                    # Shared lock: never observe a half-folded log.
                    fcntl.flock(fh.fileno(), fcntl.LOCK_SH)
                for raw in fh:
                    parts = raw.split()
                    if len(parts) != 4:
                        continue  # torn or foreign line: skip, not crash
                    try:
                        deltas = [int(p) for p in parts[1:]]
                    except ValueError:
                        continue
                    for i in range(3):
                        totals[i] += deltas[i]
        except OSError:
            pass
        for i in range(3):
            totals[i] += self._unflushed[i]
        return {"hits": totals[0], "misses": totals[1],
                "errors": totals[2]}

    def check_usable(self) -> None:
        """Probe that the cache directory can be created, listed and
        written.

        Raises:
            OSError: unwritable or unreadable cache directory.
            ConfigurationError: the path exists and is not a directory.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        next(iter(self.root.iterdir()), None)  # readable?
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".probe")
        os.close(fd)
        os.unlink(tmp)

    # -- storage ----------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> tuple[bool, Any]:
        """``(True, value)`` on a hit; ``(False, None)`` otherwise.

        A corrupt entry counts as a miss (plus ``errors``) and is
        deleted so the follow-up :meth:`put` starts clean.
        """
        path = self._path(key)
        try:
            with phase("cache.get"), path.open("rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self._count(misses=1)
            return False, None
        except Exception:
            # Truncated pickle, wrong protocol, unreadable file, a
            # class that no longer unpickles: recompute, don't crash.
            self._count(misses=1, errors=1)
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self._count(hits=1)
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` under ``key``.

        A filesystem failure (unwritable directory, disk full) does
        not crash the sweep: it warns once, bumps ``errors`` and
        disables further puts — the run degrades to uncached
        operation.  Non-filesystem failures (e.g. an unpicklable
        value) still raise: those are caller bugs, not disk weather.
        """
        if self.disabled:
            return
        with phase("cache.put"):
            self._put(key, value)

    def _put(self, key: str, value: Any) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        except OSError as exc:
            self._disable_puts(exc)
            return
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if isinstance(exc, OSError):
                self._disable_puts(exc)
                return
            raise

    def _disable_puts(self, exc: OSError) -> None:
        self._count(errors=1)
        self.disabled = True
        warnings.warn(
            f"result cache at {str(self.root)!r} is not writable "
            f"({exc}); continuing uncached",
            RuntimeWarning,
            stacklevel=3,
        )

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Serve ``key`` from disk, or compute, store, and return."""
        hit, value = self.get(key)
        if hit:
            return value
        value = compute()
        self.put(key, value)
        return value

    # -- maintenance ------------------------------------------------------

    def entries(self) -> list[Path]:
        """Entry files currently on disk (may be empty)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    @property
    def hit_rate(self) -> float | None:
        """Fraction of lookups served from disk (None before any)."""
        lookups = self.hits + self.misses
        if lookups == 0:
            return None
        return self.hits / lookups

    def stats(self) -> dict[str, Any]:
        """Counters plus on-disk footprint, for tests and the CLI.

        Instance counters (``hits``/``misses``/``errors``) cover this
        object's lookups only; ``lifetime`` aggregates across every
        process that ever used the root (see :meth:`lifetime_stats`).
        """
        entries = self.entries()
        return {
            "dir": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "hit_rate": self.hit_rate,
            "disabled": self.disabled,
            "lifetime": self.lifetime_stats(),
        }


def resolve_cache(cache: "ResultCache | str | os.PathLike[str] | None",
                  *, strict: bool = True) -> ResultCache | None:
    """Normalize a ``cache=`` argument.

    ``None`` stays ``None`` (caching off — the serial-era default);
    a path-like opens a :class:`ResultCache` there; an existing
    :class:`ResultCache` passes through so callers can share counters
    across calls.

    Args:
        strict: When ``False``, a cache directory that cannot be
            created, listed or written (not a directory, permission
            denied, read-only filesystem) produces a
            :class:`RuntimeWarning` and ``None`` — the sweep runs
            uncached instead of crashing.  The CLI uses this for
            ``--cache-dir``.
    """
    if cache is None or isinstance(cache, ResultCache):
        return cache
    try:
        store = ResultCache(cache)
        if not strict:
            store.check_usable()
        return store
    except (ConfigurationError, OSError) as exc:
        if strict:
            raise
        warnings.warn(
            f"cache dir {str(cache)!r} is unusable ({exc}); "
            f"running uncached",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
