"""Zero-copy shared-memory broadcast of read-only arrays to pools.

The process-pool fan-outs broadcast the same large arrays — mismatch
draw cubes, threshold/level grids, discretized LTI operators — to every
task by value: each pickled payload carries its own copy, so a
1000-task campaign serializes the same megabytes a thousand times.
This module registers such arrays in POSIX shared memory **once per
pool** and hands workers a tiny :class:`SharedArrayHandle` (name +
shape + dtype) instead; each worker attaches the block on first use
and maps a read-only NumPy view over it, so the broadcast cost is one
copy-in total, independent of task count.

Lifecycle (see the diagram in ``docs/ARCHITECTURE.md``):

* the parent opens a :class:`SharedArrayPool` over ``{name: array}``
  (one ``SharedMemory`` block per array, copied in under the
  ``runtime.shm`` profiler phase), wraps the task callable in a
  picklable :class:`SharedTask` carrying only the handles, and runs
  the normal pool map;
* each worker process resolves the handles lazily via
  :func:`resolve_handle` — attach once per (process, block), cache the
  read-only view for every subsequent task — and calls the wrapped
  function as ``fn(payload, arrays)``;
* on exit the parent closes **and unlinks** every block.  Workers'
  attachments are closed implicitly at worker exit; campaigns never
  leak segments because only the parent ever unlinks.

Degradation: if ``multiprocessing.shared_memory`` is unavailable or a
block fails to allocate, the affected array rides *inline* in the
handle (ordinary pickling — the tier-1 behavior, bit-identical since
the bytes are the same).  ``$REPRO_SHM=0`` forces that fallback
globally, which is also how the equivalence is tested.  Worker crashes
need no special handling: blocks live in the parent, a rebuilt pool's
fresh workers simply re-attach, and unlink still happens at context
exit.

Accounting: the pool counts blocks, bytes copied in, attaches, inline
fallbacks and — once told the task count via :meth:`SharedArrayPool.
charge_tasks` — the pickled bytes *avoided* (shared bytes that would
otherwise have been serialized per task).  :func:`shm_counters`
exposes process-lifetime totals for the CLI and benches.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.runtime.profiling import phase

#: Environment kill switch: ``0``/``off`` forces the inline (pickling)
#: fallback; anything else leaves shared memory enabled.
SHM_ENV = "REPRO_SHM"

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - exotic platforms only
    _shm = None


def shm_enabled() -> bool:
    """True when shared-memory broadcast is available and not disabled
    via ``$REPRO_SHM``."""
    if _shm is None:
        return False
    raw = os.environ.get(SHM_ENV, "").strip().lower()
    return raw not in ("0", "off", "false", "no")


@dataclass(frozen=True)
class SharedArrayHandle:
    """A picklable reference to one broadcast array.

    Either a shared-memory block reference (``name`` + layout) or —
    when shared memory was unavailable for this array — the array
    itself riding ``inline`` through ordinary pickling.
    """

    name: str | None
    shape: tuple[int, ...]
    dtype: str
    inline: np.ndarray | None = None


#: Worker-side attachment cache: block name -> (SharedMemory, view).
#: One attach per (process, block); entries live until process exit.
_ATTACHED: dict[str, tuple[Any, np.ndarray]] = {}

#: Process-lifetime counters (parent and worker sides both accumulate
#: into their own process's copy).
_COUNTERS = {
    "blocks": 0,
    "bytes_shared": 0,
    "bytes_avoided": 0,
    "fallbacks": 0,
    "attaches": 0,
}


def shm_counters() -> dict[str, int]:
    """Process-lifetime shared-memory accounting (a copy).

    ``blocks``/``bytes_shared`` count blocks created and bytes copied
    in; ``bytes_avoided`` is the pickled traffic saved (shared bytes x
    tasks charged); ``fallbacks`` counts arrays that rode inline;
    ``attaches`` counts worker-side first attachments.
    """
    return dict(_COUNTERS)


def _readonly_views(arrays: Mapping[str, np.ndarray]
                    ) -> dict[str, np.ndarray]:
    """Read-only views over the originals — the serial-path analogue of
    a worker's attached views (zero-copy, same bytes)."""
    out: dict[str, np.ndarray] = {}
    for key, arr in arrays.items():
        view = np.asarray(arr).view()
        view.flags.writeable = False
        out[key] = view
    return out


def resolve_handle(handle: SharedArrayHandle) -> np.ndarray:
    """A read-only NumPy view of the broadcast array (worker side).

    Inline handles return a read-only view of the pickled copy.
    Shared handles attach the named block once per process and cache
    the view; repeated tasks in the same worker pay one dict lookup.
    """
    if handle.inline is not None or handle.name is None:
        arr = np.asarray(handle.inline)
        view = arr.view()
        view.flags.writeable = False
        return view
    cached = _ATTACHED.get(handle.name)
    if cached is None:
        # On Python < 3.13 attaching registers the segment with the
        # resource tracker a second time (the parent already did at
        # creation); with forked workers both talk to the *same*
        # tracker process, so the duplicate registration — or
        # unregistering it — corrupts the parent's cleanup accounting.
        # Suppress registration for the attach instead: the parent
        # owns the block and unlinks it exactly once.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *a, **kw: None
        try:
            block = _shm.SharedMemory(name=handle.name)
        finally:
            resource_tracker.register = original
        _COUNTERS["attaches"] += 1
        view = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype),
                          buffer=block.buf)
        view.flags.writeable = False
        _ATTACHED[handle.name] = (block, view)
        cached = _ATTACHED[handle.name]
    return cached[1]


class SharedTask:
    """Picklable wrapper calling ``fn(payload, arrays)`` with resolved
    broadcast arrays.

    The pickle payload is the function plus the *handles* — a few
    hundred bytes — regardless of how large the broadcast arrays are.
    """

    def __init__(self, fn: Callable[..., Any],
                 handles: Mapping[str, SharedArrayHandle]):
        self.fn = fn
        self.handles = dict(handles)

    def __call__(self, payload: Any) -> Any:
        arrays = {k: resolve_handle(h) for k, h in self.handles.items()}
        return self.fn(payload, arrays)


@dataclass
class SharedArrayPool:
    """Context manager owning the shared blocks for one pool campaign.

    Usage::

        with SharedArrayPool({"cube": draws}) as pool:
            task = SharedTask(score_one, pool.handles)
            pool.charge_tasks(len(payloads))
            results = list(executor.map(task, payloads))

    Blocks are created (and the arrays copied in) at ``__enter__``
    under the ``runtime.shm`` profiler phase, and closed + unlinked at
    ``__exit__`` — also on error paths, so a crashed campaign cannot
    leak segments.  Arrays that fail to allocate ride inline instead
    (per-array fallback, not all-or-nothing).
    """

    arrays: Mapping[str, np.ndarray]
    handles: dict[str, SharedArrayHandle] = field(default_factory=dict)
    _blocks: list[Any] = field(default_factory=list)
    shared_bytes: int = 0

    def __enter__(self) -> "SharedArrayPool":
        with phase("runtime.shm"):
            enabled = shm_enabled()
            for key, arr in self.arrays.items():
                a = np.ascontiguousarray(arr)
                handle = None
                if enabled and a.nbytes > 0:
                    try:
                        block = _shm.SharedMemory(create=True,
                                                  size=a.nbytes)
                    except Exception:
                        _COUNTERS["fallbacks"] += 1
                    else:
                        self._blocks.append(block)
                        dst = np.ndarray(a.shape, dtype=a.dtype,
                                         buffer=block.buf)
                        dst[...] = a
                        handle = SharedArrayHandle(
                            name=block.name, shape=a.shape,
                            dtype=a.dtype.str,
                        )
                        _COUNTERS["blocks"] += 1
                        _COUNTERS["bytes_shared"] += a.nbytes
                        self.shared_bytes += a.nbytes
                elif not enabled:
                    _COUNTERS["fallbacks"] += 1
                if handle is None:
                    handle = SharedArrayHandle(
                        name=None, shape=a.shape, dtype=a.dtype.str,
                        inline=a,
                    )
                self.handles[key] = handle
        return self

    def charge_tasks(self, n_tasks: int) -> None:
        """Record that ``n_tasks`` payloads will ride this pool: the
        shared bytes would otherwise have been pickled once per task."""
        if n_tasks > 1:
            _COUNTERS["bytes_avoided"] += \
                self.shared_bytes * (n_tasks - 1)

    def __exit__(self, *exc: Any) -> None:
        for block in self._blocks:
            try:
                block.close()
                block.unlink()
            except Exception:  # pragma: no cover - cleanup best-effort
                pass
        self._blocks.clear()
