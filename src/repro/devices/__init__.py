"""Device-level models: the analytic stand-in for the paper's SPICE runs.

The paper characterizes its sensor with ELDO post-layout simulations of a
90 nm standard-cell implementation.  This package provides the behavioural
replacement: a Sakurai–Newton alpha-power-law MOSFET timing model
(:mod:`repro.devices.mosfet`), a 90 nm-class technology description
(:mod:`repro.devices.technology`), discrete process corners
(:mod:`repro.devices.corners`) and statistical process variation
(:mod:`repro.devices.variation`).
"""

from repro.devices.technology import Technology, TECH_90NM
from repro.devices.mosfet import AlphaPowerModel
from repro.devices.corners import ProcessCorner, CORNERS, corner_by_name
from repro.devices.variation import VariationModel, VariationSample

__all__ = [
    "Technology",
    "TECH_90NM",
    "AlphaPowerModel",
    "ProcessCorner",
    "CORNERS",
    "corner_by_name",
    "VariationModel",
    "VariationSample",
]
