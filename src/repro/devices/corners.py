"""Discrete process corners.

The paper claims the sensor can be made process-variation aware by
re-trimming the pulse-generator delay code per corner ("in slow
conditions the INV is slower and thus the VDD-n threshold value is
lower: the CP-P delay necessary to achieve the same characteristic
should be lower").  These corner models let that claim be exercised:
each corner derives a shifted/scaled :class:`Technology` from the
typical one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.technology import Technology
from repro.errors import ConfigurationError
from repro.units import MV


@dataclass(frozen=True)
class ProcessCorner:
    """A named process corner.

    Attributes:
        name: Conventional corner name (``"SS"``, ``"TT"``, ``"FF"``, …).
        vth_shift: Threshold-voltage shift applied to the typical
            technology, volts (positive = slower devices).
        drive_scale: Multiplier on the delay constant (``> 1`` = slower).
        description: One-line human description.
    """

    name: str
    vth_shift: float
    drive_scale: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.drive_scale <= 0:
            raise ConfigurationError("drive_scale must be positive")

    def apply(self, tech: Technology) -> Technology:
        """Derive this corner's technology from a typical one."""
        return tech.scaled(
            vth_shift=self.vth_shift,
            drive_scale=self.drive_scale,
            name=f"{tech.name}-{self.name}",
        )


#: The classic five digital corners.  Shifts are 90 nm-class magnitudes:
#: roughly +/-40 mV of Vth and +/-12 % of drive between typical and the
#: slow/fast extremes.
CORNERS: dict[str, ProcessCorner] = {
    "TT": ProcessCorner("TT", 0.0, 1.0, "typical NMOS / typical PMOS"),
    "SS": ProcessCorner("SS", +40 * MV, 1.12, "slow NMOS / slow PMOS"),
    "FF": ProcessCorner("FF", -40 * MV, 0.88, "fast NMOS / fast PMOS"),
    "SF": ProcessCorner("SF", +15 * MV, 1.04, "slow NMOS / fast PMOS"),
    "FS": ProcessCorner("FS", -15 * MV, 0.96, "fast NMOS / slow PMOS"),
}


def corner_by_name(name: str) -> ProcessCorner:
    """Look up a corner by (case-insensitive) name.

    Raises:
        ConfigurationError: for an unknown corner name.
    """
    key = name.upper()
    if key not in CORNERS:
        known = ", ".join(sorted(CORNERS))
        raise ConfigurationError(f"unknown corner {name!r}; known: {known}")
    return CORNERS[key]
