"""Technology description for the 90 nm-class process used by the paper.

The numbers here are *behavioural* 90 nm-class values: they are chosen to
be physically plausible for a 90 nm bulk CMOS standard-cell flow and are
then refined by :class:`repro.core.calibration.PaperCalibration`, which
fits the free constants (threshold voltage, velocity-saturation index,
drive constant) to the anchor measurements the paper publishes.  The
technology object itself is deliberately dumb: it is a bag of parameters
consumed by the MOSFET and cell models.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.units import FF, V


@dataclass(frozen=True)
class Technology:
    """Parameters of a CMOS process node as seen by the timing models.

    Attributes:
        name: Human-readable node name (e.g. ``"90nm-generic"``).
        vdd_nominal: Nominal supply voltage in volts.
        vth: Effective threshold voltage of the alpha-power model, volts.
            This is a *timing-effective* threshold (it absorbs DIBL and
            body effect averaged over a switching event), not the DC
            extraction value, which is why calibration may place it below
            a datasheet Vth.
        alpha: Velocity-saturation index of the alpha-power law.  2.0 is
            the long-channel square law; short-channel 90 nm devices sit
            near 1.2–1.4.
        drive_constant: ``k`` in ``t_d = k * C_load * V / (V - vth)**alpha``
            for a unit-strength inverter, in seconds per farad (scaled by
            the voltage factor).  Larger is slower.
        gate_cap_unit: Input capacitance of a unit-strength inverter, F.
        intrinsic_cap_unit: Parasitic output capacitance of a
            unit-strength inverter (drain junctions + local wiring), F.
        slew_fraction: Fraction of the propagation delay contributed per
            unit of normalized input slew (first-order slew degradation).
        temp_nominal_c: Characterization temperature, Celsius.
    """

    name: str
    vdd_nominal: float
    vth: float
    alpha: float
    drive_constant: float
    gate_cap_unit: float
    intrinsic_cap_unit: float
    slew_fraction: float = 0.25
    temp_nominal_c: float = 25.0

    def __post_init__(self) -> None:
        if self.vdd_nominal <= 0:
            raise ConfigurationError("vdd_nominal must be positive")
        if not 0.0 < self.vth < self.vdd_nominal:
            raise ConfigurationError(
                f"vth={self.vth} must lie in (0, vdd_nominal={self.vdd_nominal})"
            )
        if self.alpha < 1.0 or self.alpha > 2.0:
            raise ConfigurationError(
                f"alpha={self.alpha} outside the physical range [1, 2]"
            )
        if self.drive_constant <= 0:
            raise ConfigurationError("drive_constant must be positive")
        if self.gate_cap_unit <= 0 or self.intrinsic_cap_unit < 0:
            raise ConfigurationError("capacitances must be non-negative")

    def scaled(self, *, vth_shift: float = 0.0, drive_scale: float = 1.0,
               name: str | None = None) -> "Technology":
        """Return a copy with shifted threshold and scaled drive.

        This is the hook used by process corners and statistical
        variation: a slow device has a higher ``vth`` and a weaker drive
        (``drive_scale > 1`` since ``drive_constant`` is a *delay*
        constant).
        """
        new_vth = self.vth + vth_shift
        if not 0.0 < new_vth < self.vdd_nominal:
            raise ConfigurationError(
                f"shifted vth={new_vth:.4f} leaves the physical range"
            )
        if drive_scale <= 0:
            raise ConfigurationError("drive_scale must be positive")
        return replace(
            self,
            name=name if name is not None else self.name,
            vth=new_vth,
            drive_constant=self.drive_constant * drive_scale,
        )


#: Default 90 nm-class technology.  ``vth``, ``alpha`` and
#: ``drive_constant`` are starting points only; the paper calibration
#: (:mod:`repro.core.calibration`) produces the fitted instance actually
#: used to regenerate the paper's figures.
TECH_90NM = Technology(
    name="90nm-generic",
    vdd_nominal=1.0 * V,
    vth=0.18 * V,
    alpha=1.3,
    drive_constant=3.9e3,  # s/F: ~15 ps unit-inverter delay into 3 fF at 1.0 V
    gate_cap_unit=1.8 * FF,
    intrinsic_cap_unit=1.1 * FF,
)
