"""Sakurai–Newton alpha-power-law timing model.

This is the analytic replacement for the paper's transistor-level (ELDO)
simulations.  The alpha-power law models a short-channel MOSFET's
saturation current as ``I_d ∝ (V_gs - V_th)**alpha`` with
``1 <= alpha <= 2``; the propagation delay of a CMOS gate discharging a
load ``C`` through such a device is

    t_d = k * C * V / (V - V_th)**alpha

where ``V`` is the supply seen by the gate and ``k`` collapses channel
width, mobility and oxide capacitance into a single drive constant.  Two
properties of this model carry the entire paper:

* delay grows monotonically (and, over the 0.9–1.1 V window the paper
  uses, almost linearly) as the supply drops — the sensing mechanism of
  Fig. 2 and the linearity claim of Fig. 4;
* the sensitivity ``d t_d / d V`` grows with the load ``C`` — the
  capacitance-programmed threshold ladder of the multi-bit sensor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.devices.technology import Technology
from repro.errors import ConfigurationError


def voltage_factor(v: float | np.ndarray, vth: float, alpha: float):
    """The dimensionless supply factor ``g(V) = V / (V - vth)**alpha``.

    ``g`` is strictly decreasing for ``V > vth`` when ``alpha > 1``,
    which is what makes pass/fail thresholds unique: a gate gets
    monotonically slower as its supply droops.

    Accepts scalars or numpy arrays; values at or below ``vth`` map to
    ``+inf`` (the gate never switches).
    """
    v_arr = np.asarray(v, dtype=float)
    headroom = v_arr - vth
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(headroom > 0.0, v_arr / np.power(np.abs(headroom), alpha), np.inf)
    if np.isscalar(v) or v_arr.ndim == 0:
        return float(g)
    return g


@dataclass(frozen=True)
class AlphaPowerModel:
    """Gate-delay calculator bound to a :class:`Technology`.

    Attributes:
        tech: The technology parameter set.
        strength: Relative drive strength of the gate (an X4 cell has
            ``strength=4``): delay constant divides by it, intrinsic
            capacitance multiplies by it.
    """

    tech: Technology
    strength: float = 1.0

    def __post_init__(self) -> None:
        if self.strength <= 0:
            raise ConfigurationError("strength must be positive")

    @property
    def intrinsic_cap(self) -> float:
        """Parasitic output capacitance of this gate, farads."""
        return self.tech.intrinsic_cap_unit * self.strength

    @property
    def input_cap(self) -> float:
        """Input (gate) capacitance presented to the driving stage, F."""
        return self.tech.gate_cap_unit * self.strength

    def voltage_factor(self, v: float | np.ndarray):
        """``g(V)`` for this gate's technology (see module docstring)."""
        return voltage_factor(v, self.tech.vth, self.tech.alpha)

    def delay(self, supply_v: float, load_cap: float, *,
              input_slew: float = 0.0) -> float:
        """Propagation delay in seconds for a single switching event.

        Args:
            supply_v: Supply voltage seen by the gate at the moment it
                switches (the noisy ``VDD-n`` for sensor inverters).
            load_cap: External load capacitance on the output, farads.
                The gate's own intrinsic capacitance is added internally.
            input_slew: Input transition time in seconds; degrades the
                delay by ``slew_fraction`` of itself (first-order NLDM
                slew axis).

        Returns:
            Delay in seconds; ``math.inf`` when the supply is at or
            below threshold (the gate cannot switch).
        """
        if load_cap < 0:
            raise ConfigurationError("load_cap must be non-negative")
        g = voltage_factor(supply_v, self.tech.vth, self.tech.alpha)
        if np.isinf(g):
            return float("inf")
        c_total = self.intrinsic_cap + load_cap
        base = (self.tech.drive_constant / self.strength) * c_total * g
        return base + self.tech.slew_fraction * input_slew

    def output_slew(self, supply_v: float, load_cap: float) -> float:
        """Output transition time, modelled as twice the step delay.

        A crude but standard NLDM-style approximation: the 10–90 %
        transition takes about twice the 50 % propagation delay for a
        single-stage CMOS gate.
        """
        d = self.delay(supply_v, load_cap)
        return 2.0 * d

    def supply_for_delay(self, target_delay: float, load_cap: float,
                         *, v_lo: float | None = None,
                         v_hi: float = 2.0) -> float:
        """Invert the delay law: the supply at which delay equals target.

        This is the analytic form of the sensor threshold: the supply
        ``V*`` below which the delay-sense node arrives too late.

        Args:
            target_delay: Desired propagation delay, seconds.
            load_cap: External load, farads.
            v_lo: Lower bracket; defaults to just above ``vth``.
            v_hi: Upper bracket, volts.

        Raises:
            ConfigurationError: if the target delay is not achievable in
                the bracket (e.g. the gate is faster than the target even
                at ``v_lo``).
        """
        if target_delay <= 0:
            raise ConfigurationError("target_delay must be positive")
        lo = self.tech.vth + 1e-6 if v_lo is None else v_lo

        def f(v: float) -> float:
            return self.delay(v, load_cap) - target_delay

        f_lo, f_hi = f(lo), f(v_hi)
        if np.isinf(f_lo):
            # Nudge up from the threshold until the delay is finite.
            lo = self.tech.vth + 1e-4
            f_lo = f(lo)
        if f_lo < 0:
            raise ConfigurationError(
                "gate is faster than target_delay even at the lower bracket; "
                "no threshold exists in the interval"
            )
        if f_hi > 0:
            raise ConfigurationError(
                "gate is slower than target_delay even at the upper bracket; "
                "no threshold exists in the interval"
            )
        return float(brentq(f, lo, v_hi, xtol=1e-9))

    def with_strength(self, strength: float) -> "AlphaPowerModel":
        """Return a copy at a different drive strength."""
        return AlphaPowerModel(tech=self.tech, strength=strength)

    def with_tech(self, tech: Technology) -> "AlphaPowerModel":
        """Return a copy bound to a different technology (corner)."""
        return AlphaPowerModel(tech=tech, strength=self.strength)
