"""Statistical process variation.

Beyond the discrete corners of :mod:`repro.devices.corners`, real dies
show continuous variation: a die-wide (inter-die) component shared by
every gate on the chip, plus an independent per-gate (intra-die,
"mismatch") component.  The paper's trimming story only needs the
inter-die part — the delay code is a per-die knob — but the intra-die
part matters for the thermometer's monotonicity (adjacent stages with
mismatched thresholds can produce "bubbles" in the output code), which
is exactly what the encoder's bubble correction exists for.

All sampling is deterministic given a seed, so tests are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.devices.technology import Technology
from repro.errors import ConfigurationError
from repro.units import MV


@dataclass(frozen=True)
class VariationSample:
    """One sampled die: an inter-die shift plus per-instance mismatch.

    Attributes:
        die_vth_shift: Die-wide threshold shift, volts.
        die_drive_scale: Die-wide drive-constant multiplier.
        instance_vth_shifts: Per-gate threshold shifts, volts; one entry
            per requested instance.
        instance_drive_scales: Per-gate drive multipliers.
    """

    die_vth_shift: float
    die_drive_scale: float
    instance_vth_shifts: tuple[float, ...]
    instance_drive_scales: tuple[float, ...]

    @property
    def n_instances(self) -> int:
        return len(self.instance_vth_shifts)

    def technology_for(self, tech: Technology, instance: int) -> Technology:
        """Technology seen by one gate instance on this die."""
        if not 0 <= instance < self.n_instances:
            raise ConfigurationError(
                f"instance {instance} out of range [0, {self.n_instances})"
            )
        return tech.scaled(
            vth_shift=self.die_vth_shift + self.instance_vth_shifts[instance],
            drive_scale=self.die_drive_scale
            * self.instance_drive_scales[instance],
            name=f"{tech.name}-die",
        )

    def die_technology(self, tech: Technology) -> Technology:
        """Technology with only the inter-die component applied."""
        return tech.scaled(
            vth_shift=self.die_vth_shift,
            drive_scale=self.die_drive_scale,
            name=f"{tech.name}-die",
        )


@dataclass(frozen=True)
class VariationModel:
    """Gaussian process-variation generator.

    Attributes:
        sigma_vth_inter: Std-dev of the inter-die Vth shift, volts.
        sigma_vth_intra: Std-dev of the per-gate Vth mismatch, volts.
        sigma_drive_inter: Std-dev of the inter-die log-drive scale.
        sigma_drive_intra: Std-dev of the per-gate log-drive scale.
        clip_sigmas: Samples are clipped to this many sigmas to keep the
            shifted technologies physical.
    """

    sigma_vth_inter: float = 15 * MV
    sigma_vth_intra: float = 6 * MV
    sigma_drive_inter: float = 0.04
    sigma_drive_intra: float = 0.015
    clip_sigmas: float = 4.0

    def __post_init__(self) -> None:
        for name in ("sigma_vth_inter", "sigma_vth_intra",
                     "sigma_drive_inter", "sigma_drive_intra"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.clip_sigmas <= 0:
            raise ConfigurationError("clip_sigmas must be positive")

    def sample_die(self, n_instances: int, *, seed: int) -> VariationSample:
        """Sample one die with ``n_instances`` varied gate instances."""
        if n_instances < 0:
            raise ConfigurationError("n_instances must be non-negative")
        rng = np.random.default_rng(seed)

        def clipped_normal(sigma: float, size=None):
            raw = rng.normal(0.0, 1.0, size=size)
            clipped = np.clip(raw, -self.clip_sigmas, self.clip_sigmas)
            return clipped * sigma

        die_vth = float(clipped_normal(self.sigma_vth_inter))
        die_drive = float(np.exp(clipped_normal(self.sigma_drive_inter)))
        inst_vth = clipped_normal(self.sigma_vth_intra, size=n_instances)
        inst_drive = np.exp(
            clipped_normal(self.sigma_drive_intra, size=n_instances)
        )
        return VariationSample(
            die_vth_shift=die_vth,
            die_drive_scale=die_drive,
            instance_vth_shifts=tuple(float(x) for x in inst_vth),
            instance_drive_scales=tuple(float(x) for x in inst_drive),
        )

    def sample_lot(self, n_dies: int, n_instances: int, *,
                   seed: int) -> list[VariationSample]:
        """Sample a lot of dies with decorrelated per-die seeds."""
        if n_dies < 0:
            raise ConfigurationError("n_dies must be non-negative")
        seq = np.random.SeedSequence(seed)
        children = seq.spawn(n_dies)
        return [
            self.sample_die(
                n_instances,
                seed=int(child.generate_state(1)[0]),
            )
            for child in children
        ]
