"""repro — reproduction of "A Fully Digital Power Supply Noise
Thermometer" (Graziano & Vittori, IEEE SOCC 2009).

The package builds, from the transistor model up, the paper's fully
digital PSN sensor and everything it needs to be evaluated:

* :mod:`repro.devices` — alpha-power-law 90 nm device models, corners,
  statistical variation;
* :mod:`repro.cells` — the standard-cell library (INV/FF/MUX/delay
  elements) with NLDM characterization;
* :mod:`repro.sim` — a supply-aware event-driven simulator;
* :mod:`repro.psn` — RLC PDN models, activity generators, IR-drop grid;
* :mod:`repro.core` — the sensor itself: single bit, thermometer array,
  pulse generator, encoder, control FSM, full system, calibration to
  the paper's published anchors, trimming, scan chain;
* :mod:`repro.sta` — supply-aware static timing analysis;
* :mod:`repro.baselines` — RO sensor, Razor, ideal analog sampler;
* :mod:`repro.analysis` — word decoding, statistics, reconstruction.

Quickstart::

    from repro import paper_design, SensorSystem
    from repro.sim.waveform import StepWaveform

    design = paper_design()
    system = SensorSystem(design)
    run = system.run(2, vdd_n=StepWaveform(1.0, 0.9, 16e-9))
    for measure in run.hs:
        print(measure.word.to_string(), measure.decoded)
"""

from repro.core.calibration import (
    SensorDesign,
    fit_paper_design,
    paper_design,
)
from repro.core.sensor import SenseRail, SensorBit, SensorBitHarness
from repro.core.array import SensorArray, SensorArrayHarness
from repro.core.pulsegen import PulseGenerator, PulseGeneratorHarness
from repro.core.encoder import ThermometerEncoder
from repro.core.counter import MeasurementCounter
from repro.core.control import ControlFSM, ControlState
from repro.core.system import MeasurementResult, SensorSystem, SystemRun
from repro.core.trimming import TrimmingPolicy, retrim_for_corner
from repro.core.scanchain import PSNScanChain
from repro.core.autorange import AutoRangingMeter
from repro.core.monitor import NoiseMonitor
from repro.analysis.thermometer import (
    ThermometerWord,
    VoltageRange,
    decode_word,
)
from repro.analysis.yield_study import run_yield_study
from repro.devices.technology import TECH_90NM, Technology
from repro.devices.corners import CORNERS, corner_by_name
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "SensorDesign",
    "fit_paper_design",
    "paper_design",
    "SenseRail",
    "SensorBit",
    "SensorBitHarness",
    "SensorArray",
    "SensorArrayHarness",
    "PulseGenerator",
    "PulseGeneratorHarness",
    "ThermometerEncoder",
    "MeasurementCounter",
    "ControlFSM",
    "ControlState",
    "MeasurementResult",
    "SensorSystem",
    "SystemRun",
    "TrimmingPolicy",
    "retrim_for_corner",
    "PSNScanChain",
    "AutoRangingMeter",
    "NoiseMonitor",
    "run_yield_study",
    "ThermometerWord",
    "VoltageRange",
    "decode_word",
    "TECH_90NM",
    "Technology",
    "CORNERS",
    "corner_by_name",
    "ReproError",
    "__version__",
]
