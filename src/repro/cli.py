"""Command-line interface: ``python -m repro <command>``.

Exposes the headline reproductions and a general measurement command
without writing any Python:

* ``info`` — the calibrated design constants;
* ``table`` — the §III-B delay-code table (behavioural + structural);
* ``fig4`` — threshold-vs-capacitance characteristic;
* ``fig5`` — the multibit characteristic per delay code;
* ``fig9`` — the full-system two-measure sequence;
* ``critical-path`` — STA over the control netlist;
* ``measure`` — decode an arbitrary static rail level;
* ``telemetry`` — stream a synthetic PSN scenario through the
  bounded-memory online monitoring pipeline (droop events, quantiles,
  occupancy; ``--events-out`` exports JSONL);
* ``cache`` — inspect/clear the characterization result cache
  (``stats`` reports hit/miss/error counters and the hit rate);
* ``backends`` — list the registered measurement drivers
  (:mod:`repro.backends`) and what each can do;
* ``bench`` — run a perf bench from ``benchmarks/`` by name
  (``--list`` enumerates what is available);
* ``serve`` / ``submit`` — the sensing-as-a-service job server
  (:mod:`repro.service`) and its one-shot client: admission control,
  per-tenant rate limits, deadlines, circuit breakers and graceful
  degradation over the pluggable backends;
* ``campaign`` — declarative campaign orchestration
  (:mod:`repro.campaign`): ``validate`` a TOML/JSON spec, ``run`` /
  ``resume`` it on the resilient runtime (kill it mid-run, re-invoke,
  it finishes from cache bit-identically), ``diff`` a run against a
  committed golden tree;
* ``versions`` — the full provenance tuple (package, numpy/numba,
  kernel layout, MC seed scheme, wire-format schemas) that campaign
  manifests embed; ``repro --version`` prints the short form.

Error hygiene: any :class:`~repro.errors.ReproError` exits nonzero
with a one-line ``error: <Type>: <message>`` on stderr; ``repro
--traceback <command>`` restores the full stack for debugging.

Characterization sweeps (``fig4``, ``fig5``, ``yield``) accept
``--workers N`` (process-pool fan-out, bit-identical to serial) and
``--cache-dir PATH`` (on-disk memoization) via :mod:`repro.runtime`;
``$REPRO_WORKERS`` sets the default pool size.  The fault-tolerance
flags ``--retries``, ``--task-timeout`` and ``--failure-policy``
(see :mod:`repro.runtime.resilient`) let long sweeps survive worker
crashes, stuck tasks and flaky failures; an unusable ``--cache-dir``
degrades to an uncached run with a warning.  ``--profile`` prints a
per-phase wall-time breakdown (kernel solve/decode, pool dispatch,
cache IO — see :mod:`repro.runtime.profiling`) after the sweep.

Measurement routing: ``fig4``, ``fig5``, ``yield`` and ``measure``
accept ``--backend NAME`` (a :mod:`repro.backends` registry spec such
as ``kernel``, ``sim`` or ``replay:trace.jsonl``); without the flag,
``$REPRO_BACKEND`` sets the driver and the analytic kernel remains the
default.  ``measure`` additionally takes ``--record-trace PATH`` (wrap
the driver in a :class:`~repro.backends.RecordingBackend` and save a
``trace/v1`` file) and ``--replay-trace PATH`` (re-feed a recorded
trace bit-identically, no simulation at all).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.calibration import paper_design
from repro.units import to_ns, to_pf, to_ps


def _add_runtime_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size for the sweep "
                        "(default: $REPRO_WORKERS or serial)")
    p.add_argument("--cache-dir", default=None,
                   help="memoize sweep results in this directory")
    p.add_argument("--retries", type=int, default=0,
                   help="extra attempts per failed task (exponential "
                        "backoff with deterministic jitter)")
    p.add_argument("--task-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-task wall-clock budget; stuck workers "
                        "are killed and the task retried")
    p.add_argument("--failure-policy", choices=("raise", "partial"),
                   default="raise",
                   help="'raise' aborts on the first exhausted task "
                        "(default); 'partial' completes the sweep and "
                        "reports failed slots")
    p.add_argument("--profile", action="store_true",
                   help="print a per-phase wall-time breakdown "
                        "(kernel solves/decodes, pool dispatch, cache "
                        "IO) after the sweep")


def _runtime_kwargs(args: argparse.Namespace) -> dict:
    """Runtime keywords from parsed flags.

    An unusable ``--cache-dir`` (not a directory, unwritable,
    read-only filesystem) warns and runs the sweep uncached instead
    of crashing — caching is an accelerator, never a requirement.
    """
    from repro.runtime import env_workers, resolve_cache

    workers = args.workers if args.workers is not None else env_workers()
    cache = resolve_cache(args.cache_dir, strict=False) \
        if args.cache_dir else None
    return {
        "workers": workers,
        "cache": cache,
        "retries": args.retries,
        "task_timeout": args.task_timeout,
        "failure_policy": args.failure_policy,
    }


def _add_backend_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--backend", default=None, metavar="NAME",
                   help="measurement driver: a repro.backends registry "
                        "spec ('kernel', 'sim', 'replay:PATH'; see "
                        "'repro backends').  Default: $REPRO_BACKEND "
                        "or the analytic kernel")


def _char_route(args: argparse.Namespace) -> dict:
    """Routing keywords for a characterization sweep.

    ``--backend`` and the legacy ``--sim`` flag are mutually
    exclusive (``--sim`` is shorthand for the classic bisected
    event-simulation route; ``--backend sim`` reaches the same
    engine through the driver registry).  With neither flag the
    sweep passes no routing at all, so ``$REPRO_BACKEND`` applies
    and the analytic kernel stays the default.
    """
    if args.backend is not None:
        if args.sim:
            raise SystemExit(
                "error: --sim and --backend are mutually exclusive "
                "(use --backend sim for the event-simulation driver)")
        return {"backend": args.backend}
    if args.sim:
        return {"method": "sim"}
    return {}


def _cmd_info(args: argparse.Namespace) -> int:
    d = paper_design()
    print("Calibrated design (anchored to the paper's published data)")
    print(f"  technology       : {d.tech.name}")
    print(f"  fitted Vth       : {d.tech.vth:.4f} V (alpha="
          f"{d.tech.alpha})")
    print(f"  t0 (CP-P offset) : {to_ps(d.t0):.1f} ps")
    print(f"  sensor strength  : {d.sensor_strength:.1f}x")
    print(f"  FF setup time    : {to_ps(d.ff_setup_time):.1f} ps")
    print(f"  trim caps [pF]   : "
          f"{[round(to_pf(c), 3) for c in d.load_caps]}")
    print(f"  delay codes [ps] : "
          f"{[round(to_ps(x)) for x in d.delay_codes]}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.core.pulsegen import PulseGenerator, PulseGeneratorHarness

    d = paper_design()
    behavioural = PulseGenerator(d).delay_table()
    print("code  paper[ps]  behavioural[ps]", end="")
    structural = None
    if args.sim:
        structural = PulseGeneratorHarness(d).measure_table()
        print("  structural[ps]", end="")
    print()
    paper = (26, 40, 50, 65, 77, 92, 100, 107)
    for code in range(8):
        line = (f"{code:03b}   {paper[code]:>8}  "
                f"{to_ps(behavioural[code]):>14.2f}")
        if structural is not None:
            line += f"  {to_ps(structural[code]):>13.2f}"
        print(line)
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.core.characterization import threshold_vs_capacitance
    from repro.units import PF

    d = paper_design()
    caps = [(args.cap_min + k * args.cap_step) * PF
            for k in range(args.points)]
    points = threshold_vs_capacitance(
        d, caps, code=args.code,
        **_char_route(args),
        **_runtime_kwargs(args),
    )
    print("C [pF]   threshold [V]")
    for c, v in points:
        shown = "FAILED" if v is None else f"{v:.4f}"
        print(f"{to_pf(c):>6.2f}   {shown}")
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.core.characterization import characterize_array

    d = paper_design()
    chars = characterize_array(
        d, codes=tuple(args.codes),
        **_char_route(args),
        **_runtime_kwargs(args),
    )
    for code, ch in chars.items():
        print(f"delay code {code:03b}: dynamic {ch.v_min:.3f} .. "
              f"{ch.v_max:.3f} V")
        if ch.masked_bits:
            print(f"  DEGRADED: bits {ch.masked_bits} failed "
                  f"characterization and are masked")
        for word, rng in ch.table:
            lo = "-inf " if rng.lo == float("-inf") else f"{rng.lo:.4f}"
            hi = "+inf " if rng.hi == float("inf") else f"{rng.hi:.4f}"
            print(f"  {word}  ({lo}, {hi}]")
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    from repro.core.system import SensorSystem
    from repro.sim.waveform import StepWaveform
    from repro.units import NS

    d = paper_design()
    system = SensorSystem(d, include_ls=False)
    rail = StepWaveform(args.v1, args.v2, 16 * NS)
    run = system.run(2, code_hs=args.code, vdd_n=rail)
    for k, (v, m) in enumerate(zip((args.v1, args.v2), run.hs), 1):
        print(f"measure {k} (VDD-n={v:.2f} V): PREPARE "
              f"{m.prepare_word} -> SENSE {m.word.to_string()} "
              f"(OUTE={m.encoded.oute}) -> ({m.decoded.lo:.4f}, "
              f"{m.decoded.hi:.4f}] V")
    return 0


def _cmd_critical_path(args: argparse.Namespace) -> int:
    from repro.core.control import build_control_netlist
    from repro.sta.analysis import analyze
    from repro.sta.hold import analyze_hold
    from repro.sta.report import format_hold_report, format_setup_report

    d = paper_design()
    nl, _ = build_control_netlist(d)
    report = analyze(nl, clock_period=args.period * 1e-9)
    print(f"control-system critical path: "
          f"{to_ns(report.min_period):.4f} ns (paper: 1.22 ns)\n")
    print(format_setup_report(report))
    print()
    hold = analyze_hold(nl)
    print(format_hold_report(hold))
    print(f"\nworst hold slack: {to_ps(hold.whs):.1f} ps "
          f"({'clean' if hold.clean else 'VIOLATED'})")
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    import os

    from repro.backends import BACKEND_ENV, RecordingBackend, \
        ReplayBackend, resolve_backend
    from repro.core.autorange import AutoRangingMeter
    from repro.core.sensor import SenseRail

    recording = None
    if args.replay_trace is not None:
        if args.backend is not None or args.record_trace is not None:
            raise SystemExit(
                "error: --replay-trace replaces the driver; it cannot "
                "be combined with --backend or --record-trace")
        backend = ReplayBackend(args.replay_trace)
    else:
        spec = args.backend or os.environ.get(BACKEND_ENV) or None
        backend = resolve_backend(spec) \
            if spec is not None or args.record_trace is not None \
            else None
        if args.record_trace is not None:
            backend = recording = RecordingBackend(
                backend, args.record_trace, note="repro measure")

    d = paper_design()
    rail = SenseRail.GND if args.gnd is not None else SenseRail.VDD
    meter = AutoRangingMeter(d, rail, initial_code=args.code,
                             backend=backend)
    if rail is SenseRail.GND:
        result = meter.measure_level(gnd_n=args.gnd)
        label = "GND-n"
        level = args.gnd
    else:
        result = meter.measure_level(vdd_n=args.vdd)
        label = "VDD-n"
        level = args.vdd
    print(f"{label} = {level:.4f} V: word {result.word.to_string()} "
          f"at code {result.code:03b} "
          f"({result.attempts} attempt(s))")
    print(f"decoded: ({result.decoded.lo:.4f}, "
          f"{result.decoded.hi:.4f}] V"
          + ("  [saturated]" if result.saturated else ""))
    if recording is not None:
        recording.close()
        print(f"recorded {len(recording.trace.records)} trace "
              f"record(s) to {args.record_trace} "
              f"(replay with --replay-trace)")
    return 0 if not result.saturated else 2


def _cmd_scan(args: argparse.Namespace) -> int:
    from repro.core.scanchain import PSNScanChain
    from repro.psn.grid import IRDropGrid

    d = paper_design()
    grid = IRDropGrid(rows=args.rows, cols=args.cols,
                      r_segment=0.05, r_pad=0.01)
    step_r = max(1, (args.rows - 1) // 2)
    step_c = max(1, (args.cols - 1) // 2)
    sites = [(r, c) for r in range(1, args.rows, step_r)
             for c in range(1, args.cols, step_c)][:9]
    chain = PSNScanChain(d, grid, sites, code=args.code)
    hotspot = (args.rows // 2, args.cols // 2)
    currents = grid.hotspot_currents(
        total_current=args.current, hotspot=hotspot, hotspot_share=0.8,
    )
    measures = chain.measure_map(currents)
    for m in measures:
        mark = " <-- deepest" if m.site == chain.hotspot_site(measures) \
            else ""
        print(f"tile {m.site}: {m.word.to_string()} -> "
              f"({m.decoded.lo:.4f}, {m.decoded.hi:.4f}] V "
              f"[true {m.true_voltage:.4f}]{mark}")
    err = chain.map_error(measures)
    print(f"map RMSE {err['rmse'] * 1e3:.1f} mV, bracket rate "
          f"{err['bracket_rate']:.0%}; injected hotspot {hotspot}")
    return 0


def _cmd_yield(args: argparse.Namespace) -> int:
    from repro.analysis.yield_study import run_yield_study
    from repro.devices.variation import VariationModel

    d = paper_design()
    model = VariationModel(
        sigma_vth_inter=args.sigma_inter * 1e-3,
        sigma_vth_intra=args.sigma_intra * 1e-3,
    )
    rep = run_yield_study(d, model, n_dies=args.dies,
                          backend=args.backend,
                          **_runtime_kwargs(args))
    print(f"{args.dies} dies, mismatch sigma inter/intra = "
          f"{args.sigma_inter:.1f}/{args.sigma_intra:.1f} mV")
    print(f"  worst per-bit threshold sigma : "
          f"{max(rep.threshold_sigma) * 1e3:.1f} mV")
    print(f"  monotone (bubble-free) dies   : "
          f"{rep.monotone_fraction:.0%}")
    print(f"  raw bubble rate               : {rep.bubble_rate:.1%}")
    print(f"  bracket rate, nominal ladder  : {rep.bracket_rate:.0%}")
    print(f"  bracket rate, per-die ladder  : "
          f"{rep.bracket_rate_calibrated:.0%}")
    return 0


def _bench_names() -> list[str] | None:
    """Available bench names (``benchmarks/bench_*.py`` stems), or
    None when the ``benchmarks`` package is not importable (not run
    from a repo checkout)."""
    import importlib
    import pathlib

    try:
        pkg = importlib.import_module("benchmarks")
    except ModuleNotFoundError:
        return None
    bench_dir = pathlib.Path(pkg.__file__).parent
    return sorted(p.stem[len("bench_"):]
                  for p in bench_dir.glob("bench_*.py"))


def _bench_all(args: argparse.Namespace) -> int:
    """Run every perf bench exposing ``run()`` and merge one report.

    The perf-regression benches share the ``run(*, smoke, repeats)``
    contract (each gates agreement before timing and writes its own
    ``BENCH_*`` report); figure benches without ``run`` are skipped.
    The merged payload lands at ``benchmarks/reports/BENCH_all.json``.
    """
    import importlib

    names = _bench_names()
    if names is None:
        print("benchmarks/ not importable; run from the repository "
              "root, e.g. PYTHONPATH=src python -m repro bench --all")
        return 2
    from benchmarks._perf import write_bench_json

    merged: dict[str, object] = {}
    skipped: list[str] = []
    failures: list[str] = []
    for name in names:
        module = importlib.import_module(f"benchmarks.bench_{name}")
        runner = getattr(module, "run", None)
        if not callable(runner):
            skipped.append(name)
            continue
        print(f"== bench {name} ==", flush=True)
        try:
            merged[name] = runner(smoke=args.smoke,
                                  repeats=args.repeats)
        except Exception as exc:
            failures.append(name)
            merged[name] = {"error": f"{type(exc).__name__}: {exc}"}
            print(f"bench {name} FAILED: {exc}")
    path = write_bench_json("BENCH_all", {
        "bench": "all",
        "mode": "smoke" if args.smoke else "full",
        "benches": merged,
        "skipped": skipped,
    })
    print(f"ran {len(merged)} benches ({len(skipped)} without run() "
          f"skipped); merged report: {path}")
    if failures:
        print("FAILED: " + ", ".join(failures))
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run one perf bench by name: ``repro bench kernels --smoke``.

    Resolves ``benchmarks/bench_<name>.py`` (the ``benchmarks``
    package must be importable, i.e. run from a repo checkout).  A
    bench exposing ``main(argv)`` (the perf-regression benches) gets
    the remaining arguments; older figure benches without one are run
    through pytest.  ``repro bench --list`` enumerates what is
    available; ``repro bench --all`` runs every bench with a ``run()``
    entry point and merges one report.
    """
    import importlib

    if args.all:
        return _bench_all(args)
    if args.list or args.name is None:
        names = _bench_names()
        if names is None:
            print("benchmarks/ not importable; run from the repository "
                  "root, e.g. PYTHONPATH=src python -m repro bench --list")
            return 2
        print("available benches (repro bench <name>):")
        for name in names:
            print(f"  {name}")
        if args.name is None and not args.list:
            return 2  # asked to run, named nothing
        return 0
    try:
        module = importlib.import_module(f"benchmarks.bench_{args.name}")
    except ModuleNotFoundError as exc:
        names = _bench_names()
        print(f"bench {args.name!r} not found ({exc}); run from the "
              f"repository root, e.g. "
              f"PYTHONPATH=src python -m repro bench kernels --smoke")
        if names:
            print("available: " + ", ".join(names))
        return 2
    extra = list(args.bench_args)
    if extra and extra[0] == "--":
        extra = extra[1:]
    if hasattr(module, "main"):
        return int(module.main(extra))
    import pytest as _pytest

    return int(_pytest.main(["-q", module.__file__, *extra]))


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runtime import ResultCache

    cache = ResultCache(args.dir)
    if args.action == "stats":
        s = cache.stats()
        rate = ("n/a (no lookups)" if s["hit_rate"] is None
                else f"{s['hit_rate']:.1%}")
        print(f"cache dir : {s['dir']}")
        print(f"entries   : {s['entries']}")
        print(f"size      : {s['bytes']} bytes")
        print(f"hits      : {s['hits']}")
        print(f"misses    : {s['misses']}")
        print(f"errors    : {s['errors']}")
        print(f"hit rate  : {rate}")
        # Lifetime counters aggregate every process that ever touched
        # this cache dir — pool workers flush their tallies to the
        # stats log, so fan-out hits are not lost with the workers.
        lt = s.get("lifetime") or {}
        total = lt.get("hits", 0) + lt.get("misses", 0)
        lt_rate = (f"{lt['hits'] / total:.1%}" if total
                   else "n/a (no lookups)")
        print(f"lifetime  : {lt.get('hits', 0)} hits / "
              f"{lt.get('misses', 0)} misses / "
              f"{lt.get('errors', 0)} errors "
              f"(all processes; hit rate {lt_rate})")
    else:  # clear
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the sensing-as-a-service job server until interrupted.

    ``--max-requests N`` serves N requests and exits (smoke tests and
    CI drills); ``--stats-out`` dumps the final stats registry as
    JSON for post-run assertions.
    """
    import asyncio
    import json

    from repro.runtime import resolve_cache
    from repro.service import FleetConfig, JobServer

    config = FleetConfig(n_dies=args.dies, n_shards=args.shards,
                         seed=args.seed)
    cache = resolve_cache(args.cache_dir, strict=False) \
        if args.cache_dir else None
    server = JobServer(
        config=config,
        backend=args.backend or "kernel",
        executor=args.executor,
        pool_workers=args.pool_workers,
        queue_depth=args.queue_depth,
        queue_policy=args.queue_policy,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        cache=cache,
        default_deadline_s=args.deadline,
        degrade_margin_s=args.degrade_margin,
    )

    async def _run() -> None:
        address = await server.start(unix_path=args.unix,
                                     host=args.host, port=args.port)
        print(f"serving on {address} "
              f"({config.n_dies} dies / {config.n_shards} shards, "
              f"executor {server.executor})", flush=True)
        try:
            if args.max_requests:
                while server.counters["responses"] < args.max_requests:
                    await asyncio.sleep(0.02)
            else:
                await server.serve_forever()
        finally:
            await server.stop()
            stats = server.stats()
            if args.stats_out:
                with open(args.stats_out, "w") as fh:
                    json.dump(stats, fh, indent=2, sort_keys=True)
            c = stats["counters"]
            print(f"served {c['responses']} responses "
                  f"(full {c['full']}, cached {c['cached']}, "
                  f"degraded {c['degraded']}, rejected "
                  f"{c['rejected']}, errors {c['errors']})",
                  flush=True)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Send one request to a running job server and print the reply.

    Exit code: 0 for an ``ok`` response (any quality), 3 when the
    server shed the request (``rejected``), 4 when execution errored.
    """
    import json

    from repro.errors import ProtocolError
    from repro.service.client import ServiceClient

    try:
        params = json.loads(args.params) if args.params else {}
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"--params is not valid JSON: {exc}") \
            from None
    with ServiceClient(args.address, timeout=args.timeout) as client:
        response = client.request(
            args.kind, params=params, tenant=args.tenant,
            deadline_s=args.deadline,
        )
    print(json.dumps(response, indent=2, sort_keys=True))
    status = response.get("status")
    if status == "ok":
        return 0
    return 3 if status == "rejected" else 4


def _cmd_backends(args: argparse.Namespace) -> int:
    """List the registered measurement drivers and their features."""
    from repro.backends import available, get

    print("registered measurement drivers (--backend NAME):")
    for name in available():
        bk = get(name)
        caps = bk.capabilities()
        feats = ", ".join(
            feat for feat in
            ("thresholds", "lot_thresholds", "s_curve")
            if getattr(caps, feat)
        ) or "-"
        det = "deterministic" if caps.deterministic else "stochastic"
        print(f"  {name:<12} {det:<14} {feats}")
        if args.fingerprints:
            print(f"  {'':<12} fingerprint {bk.fingerprint()}")
    print("  replay:PATH  re-feeds a recorded trace/v1 file "
          "(.jsonl or .csv) bit-identically")
    print("record a campaign with 'repro measure --record-trace PATH'")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    """Stream a synthetic multi-site PSN scenario through the
    telemetry pipeline and print the metrics snapshot.

    Each site gets the same droop scenario with a per-site seed (so
    noise differs) — the paper's "sensor arrays ... replicated in
    different parts of the CUT" in miniature.  ``--events-out`` writes
    detected droop episodes as JSONL; ``--json`` dumps the full
    snapshot registry instead of the table.
    """
    import json

    from repro.telemetry import (
        TelemetryPipeline,
        array_source,
        synthetic_droop_trace,
    )

    d = paper_design()
    pipeline = TelemetryPipeline(
        d, code=args.code, chunk=args.chunk, capacity=args.capacity,
        policy=args.policy, min_duration=args.min_duration,
        refractory=args.refractory,
        alert_depth_v=args.alert_depth,
    )
    for s in range(args.sites):
        times, volts, _ = synthetic_droop_trace(
            n_samples=args.samples, dt=args.dt_ns * 1e-9,
            n_droops=args.droops, depth=args.depth,
            noise_rms=args.noise_mv * 1e-3, seed=args.seed + s,
        )
        pipeline.ingest_all(
            array_source(f"site{s}", times, volts, block=args.block)
        )
    pipeline.flush()
    snap = pipeline.snapshot()

    if args.events_out:
        n_events = pipeline.export_events_jsonl(args.events_out)
        print(f"wrote {n_events} event(s) to {args.events_out}")
    if args.json:
        print(json.dumps(snap, indent=2, sort_keys=True))
        return 0

    cfg = snap["config"]
    print(f"telemetry: code {cfg['code']:03b}, chunk {cfg['chunk']}, "
          f"capacity {cfg['capacity']}, policy {cfg['policy']}")
    print(f"  ladder [V]: "
          f"{[round(t, 4) for t in cfg['ladder_v']]}")
    print(f"  droop rungs: enter <= {cfg['enter_rung']}, "
          f"exit >= {cfg['exit_rung']}")
    for site, s in snap["sites"].items():
        st = s["stats"]
        q = s["quantiles"]
        print(f"site {site}: {s['decoded']} samples, "
              f"mean {st['mean']:.4f} V, min {st['min']:.4f} V, "
              f"p50 {q['0.5']:.4f} V, p99 {q['0.99']:.4f} V")
        ring = s["ring"]
        print(f"  buffer: peak {ring['high_watermark']}"
              f"/{ring['capacity']}, dropped {ring['dropped']}, "
              f"deferred {ring['deferred']}")
        ev = s["events"]
        depth = ("-" if ev["max_depth_v"] is None
                 else f"{ev['max_depth_v']:.3f} V")
        print(f"  events: {ev['count']} "
              f"(max depth {depth}, discarded {ev['discarded']})")
        if s["alerts"]:
            print(f"  ALERTS: {', '.join(s['alerts'])}")
    for e in pipeline.events:
        print(f"  droop @{e.site}: {e.start * 1e9:.1f}..{e.end * 1e9:.1f}"
              f" ns, depth {e.depth_v:.3f} V, worst word "
              f"{e.worst_word} ({e.n_samples} samples)")
    return 1 if snap["alerts"] and args.fail_on_alert else 0


def _cmd_versions(args: argparse.Namespace) -> int:
    """Print the full provenance tuple — the same table every
    campaign manifest embeds, so an operator can check whether a
    golden fixture was frozen under the numerics they are running."""
    import json

    from repro.campaign.manifest import provenance_info

    info = provenance_info()
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    width = max(len(k) for k in info)
    for key, value in info.items():
        print(f"  {key:<{width}} : {value}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Declarative campaign orchestration (see :mod:`repro.campaign`).

    ``validate`` parses and schema-checks a spec and prints its stage
    order and spec hash.  ``run`` executes the stage DAG resumably
    (``resume`` is the same verb, spelled for re-invocations of an
    interrupted run — both replay completed work from the cache under
    ``--out``).  ``diff`` compares a run tree against a golden tree.

    Exit codes: 0 — passed; 1 — campaign error (bad spec, missing
    tree, golden divergence); 2 — stages ran but checks failed.
    """
    import json

    from repro.campaign import (
        diff_campaign,
        load_spec,
        run_campaign,
    )

    if args.campaign_cmd == "validate":
        spec = load_spec(args.spec)
        order = spec.topo_order()
        print(f"{spec.source}: valid campaign/v1 spec")
        print(f"  name       : {spec.name}")
        print(f"  backend    : {spec.backend}")
        print(f"  corner     : {spec.corner or 'nominal'}")
        print(f"  chaos      : "
              f"{'active' if spec.chaos and spec.chaos.active else 'none'}")
        print(f"  stage order: {' -> '.join(order)}")
        print(f"  spec hash  : {spec.spec_hash()}")
        return 0

    if args.campaign_cmd == "diff":
        report = diff_campaign(args.run_dir, args.golden_dir,
                               float_tol=args.float_tol)
        print(f"compared {len(report.compared_stages)} deterministic "
              f"stage payload(s); skipped "
              f"{len(report.skipped_stages)} nondeterministic")
        for d in report.provenance:
            print(f"  provenance drift: {d}")
        for d in report.divergences:
            print(f"  DIVERGENCE: {d}")
        report.raise_on_divergence(
            strict_provenance=args.strict_provenance)
        print("zero divergences"
              + (f" ({len(report.provenance)} provenance drift(s) "
                 f"tolerated)" if report.provenance else ""))
        return 0

    # run / resume (one verb: the runner resumes from the out dir)
    spec = load_spec(args.spec)
    run = run_campaign(
        spec, out_dir=args.out, cache=args.cache_dir,
        kill_after_puts=args.chaos_kill_after,
        execution=args.execution, stage_workers=args.stage_workers,
        service=args.service,
    )
    for record in run.records:
        flags = []
        if record.resumed:
            flags.append("resumed")
        if not record.deterministic:
            flags.append("nondeterministic")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        print(f"  {record.id:<20} {record.kind:<18} "
              f"{record.status:<8} {record.wall_s:8.2f}s{suffix}")
        for check in record.checks:
            mark = "ok" if check["ok"] else "FAIL"
            print(f"    check {check['kind']:<12} {mark:<5} "
                  f"{check['detail']}")
    print(f"campaign {run.manifest['name']!r}: {run.outcome} "
          f"(manifest: {run.out_dir / 'manifest.json'})")
    if args.json:
        print(json.dumps(run.manifest, indent=2, sort_keys=True))
    if args.golden is not None:
        report = diff_campaign(run.out_dir, args.golden,
                               float_tol=args.float_tol)
        report.raise_on_divergence()
        print(f"golden diff vs {args.golden}: zero divergences")
    return 0 if run.ok else 2


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.core.faults import coverage_study

    d = paper_design()
    cov = coverage_study(d, code=args.code)
    for name, frac in cov.items():
        print(f"  {name:<18} {frac:.0%}")
    return 0 if cov["overall"] == 1.0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PSN-thermometer reproduction command line",
    )
    parser.add_argument("--traceback", action="store_true",
                        help="print full tracebacks for repro errors "
                             "instead of the one-line message")
    from repro import __version__

    parser.add_argument("--version", action="version",
                        version=f"repro {__version__} "
                                f"('repro versions' prints the full "
                                f"provenance tuple)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="calibrated design constants") \
        .set_defaults(func=_cmd_info)

    p = sub.add_parser("table", help="delay-code table")
    p.add_argument("--sim", action="store_true",
                   help="also measure the structural PG netlist")
    p.set_defaults(func=_cmd_table)

    p = sub.add_parser("fig4", help="threshold vs. capacitance")
    p.add_argument("--code", type=int, default=3)
    p.add_argument("--cap-min", type=float, default=1.80,
                   help="first capacitance, pF")
    p.add_argument("--cap-step", type=float, default=0.05)
    p.add_argument("--points", type=int, default=9)
    p.add_argument("--sim", action="store_true",
                   help="bisect the event simulation instead of the "
                        "analytic law")
    _add_backend_arg(p)
    _add_runtime_args(p)
    p.set_defaults(func=_cmd_fig4)

    p = sub.add_parser("fig5", help="multibit characteristic")
    p.add_argument("--codes", type=int, nargs="+", default=[1, 2, 3])
    p.add_argument("--sim", action="store_true",
                   help="bisect the event simulation instead of the "
                        "analytic law")
    _add_backend_arg(p)
    _add_runtime_args(p)
    p.set_defaults(func=_cmd_fig5)

    p = sub.add_parser("fig9", help="full-system two-measure run")
    p.add_argument("--v1", type=float, default=1.00)
    p.add_argument("--v2", type=float, default=0.90)
    p.add_argument("--code", type=int, default=3)
    p.set_defaults(func=_cmd_fig9)

    p = sub.add_parser("critical-path",
                       help="STA (setup + hold) over the control netlist")
    p.add_argument("--period", type=float, default=2.0,
                   help="clock-period constraint, ns")
    p.set_defaults(func=_cmd_critical_path)

    p = sub.add_parser("scan", help="scan-chain IR-drop map demo")
    p.add_argument("--rows", type=int, default=8)
    p.add_argument("--cols", type=int, default=8)
    p.add_argument("--current", type=float, default=5.0,
                   help="total CUT current, amperes")
    p.add_argument("--code", type=int, default=3)
    p.set_defaults(func=_cmd_scan)

    p = sub.add_parser("yield", help="Monte-Carlo mismatch study")
    p.add_argument("--dies", type=int, default=40)
    p.add_argument("--sigma-inter", type=float, default=15.0,
                   help="inter-die Vth sigma, mV")
    p.add_argument("--sigma-intra", type=float, default=6.0,
                   help="per-stage Vth mismatch sigma, mV")
    _add_backend_arg(p)
    _add_runtime_args(p)
    p.set_defaults(func=_cmd_yield)

    p = sub.add_parser("bench",
                       help="run a perf bench from benchmarks/ by name")
    p.add_argument("name", nargs="?", default=None,
                   help="bench name, e.g. 'kernels' for "
                        "benchmarks/bench_kernels.py")
    p.add_argument("--list", action="store_true",
                   help="list available bench names and exit")
    p.add_argument("--all", action="store_true",
                   help="run every perf bench exposing run() and merge "
                        "one report under benchmarks/reports/")
    p.add_argument("--smoke", action="store_true",
                   help="with --all: CI-sized grids")
    p.add_argument("--repeats", type=int, default=3,
                   help="with --all: timed repeats per workload")
    p.add_argument("bench_args", nargs=argparse.REMAINDER,
                   help="arguments passed through to the bench "
                        "(e.g. --smoke --assert-speedup 3)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "telemetry",
        help="stream a synthetic PSN scenario through the "
             "bounded-memory telemetry pipeline",
    )
    p.add_argument("--samples", type=int, default=100_000,
                   help="samples per site (default 100000)")
    p.add_argument("--sites", type=int, default=1,
                   help="replicated sensor sites")
    p.add_argument("--dt-ns", type=float, default=1.0,
                   help="sample spacing, ns")
    p.add_argument("--droops", type=int, default=2,
                   help="injected droop events per site")
    p.add_argument("--depth", type=float, default=0.15,
                   help="droop depth, volts")
    p.add_argument("--noise-mv", type=float, default=5.0,
                   help="rail noise RMS, millivolts")
    p.add_argument("--seed", type=int, default=2024)
    p.add_argument("--code", type=int, default=3,
                   help="delay code for the decode ladder")
    p.add_argument("--chunk", type=int, default=1024,
                   help="decode chunk size, samples")
    p.add_argument("--capacity", type=int, default=8192,
                   help="per-site ring capacity, samples")
    p.add_argument("--policy", default="drop_oldest",
                   choices=("drop_oldest", "block", "error"),
                   help="ring overflow policy")
    p.add_argument("--block", type=int, default=4096,
                   help="source block size, samples")
    p.add_argument("--min-duration", type=int, default=2,
                   help="min in-episode samples for a droop event")
    p.add_argument("--refractory", type=int, default=8,
                   help="hold-off samples after an event closes")
    p.add_argument("--alert-depth", type=float, default=None,
                   metavar="VOLTS",
                   help="fire the droop-depth alert at this depth")
    p.add_argument("--fail-on-alert", action="store_true",
                   help="exit 1 when any alert fires")
    p.add_argument("--events-out", default=None, metavar="PATH",
                   help="write detected droop events as JSONL")
    p.add_argument("--json", action="store_true",
                   help="print the full snapshot registry as JSON")
    p.add_argument("--profile", action="store_true",
                   help="print the per-phase wall-time breakdown "
                        "(telemetry.ingest/decode/aggregate)")
    p.set_defaults(func=_cmd_telemetry)

    p = sub.add_parser("cache",
                       help="characterization result cache")
    p.add_argument("action", choices=("stats", "clear"))
    p.add_argument("--dir", default=None,
                   help="cache directory (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro-psn)")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser(
        "versions",
        help="print the full provenance tuple (package, numpy/numba, "
             "kernel layout, seed scheme, wire schemas)",
    )
    p.add_argument("--json", action="store_true",
                   help="print the tuple as JSON")
    p.set_defaults(func=_cmd_versions)

    p = sub.add_parser(
        "campaign",
        help="declarative campaign orchestration: validate, run "
             "(resumable), diff against a golden",
    )
    csub = p.add_subparsers(dest="campaign_cmd", required=True)

    pv = csub.add_parser("validate",
                         help="schema-check a spec; print stage order "
                              "and spec hash")
    pv.add_argument("spec", help="campaign spec file (.toml or .json)")
    pv.set_defaults(func=_cmd_campaign)

    for verb, doc in (("run", "execute a campaign spec"),
                      ("resume", "re-invoke an interrupted run "
                                 "(same as run: completed stages "
                                 "replay from the cache)")):
        pr = csub.add_parser(verb, help=doc)
        pr.add_argument("spec",
                        help="campaign spec file (.toml or .json)")
        pr.add_argument("--out", required=True, metavar="DIR",
                        help="output directory (results/, "
                             "manifest.json, and — by default — the "
                             "resume cache)")
        pr.add_argument("--cache-dir", default=None,
                        help="task/stage cache root (default: "
                             "<out>/cache)")
        pr.add_argument("--golden", default=None, metavar="DIR",
                        help="after the run, diff against this golden "
                             "tree (nonzero exit on divergence)")
        pr.add_argument("--float-tol", type=float, default=0.0,
                        help="numeric tolerance for --golden payload "
                             "comparison (default: exact)")
        pr.add_argument("--json", action="store_true",
                        help="also print the manifest as JSON")
        pr.add_argument("--chaos-kill-after", type=int, default=None,
                        metavar="N",
                        help="crash drill: SIGKILL this process after "
                             "the Nth task-cache write (armed once "
                             "per out dir; re-invoke to resume)")
        pr.add_argument("--execution", default=None,
                        choices=("serial", "threads", "service"),
                        help="override runtime.execution: 'serial' "
                             "(the oracle loop), 'threads' (bounded "
                             "stage-worker pool, the default), or "
                             "'service' (stages as job-server jobs); "
                             "all three produce bit-identical "
                             "manifests")
        pr.add_argument("--stage-workers", type=int, default=None,
                        metavar="N",
                        help="override runtime.stage_workers (pool "
                             "width for concurrent stages; 0 = "
                             "default)")
        pr.add_argument("--service", default=None, metavar="ADDR",
                        help="job-server address for "
                             "--execution service (host:port or "
                             "unix:/path); omitted, the run "
                             "self-hosts a 'repro serve' subprocess")
        pr.add_argument("--profile", action="store_true",
                        help="print the per-phase wall-time breakdown "
                             "(campaign.stage.<id> per stage plus "
                             "campaign.schedule overhead) after the "
                             "run")
        pr.set_defaults(func=_cmd_campaign)

    pd = csub.add_parser("diff",
                         help="compare a run tree against a golden "
                              "tree")
    pd.add_argument("run_dir", help="the run to judge")
    pd.add_argument("golden_dir", help="the committed golden tree")
    pd.add_argument("--float-tol", type=float, default=0.0,
                    help="numeric tolerance for payload comparison "
                         "(default: exact)")
    pd.add_argument("--strict-provenance", action="store_true",
                    help="fail on provenance drift (engine versions, "
                         "fingerprints, cache keys) too")
    pd.set_defaults(func=_cmd_campaign)

    p = sub.add_parser("faults",
                       help="stuck-at screening coverage study")
    p.add_argument("--code", type=int, default=3)
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser("measure",
                       help="decode a static rail level (auto-ranged)")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--vdd", type=float, help="VDD-n level, volts")
    group.add_argument("--gnd", type=float, help="GND-n rise, volts")
    p.add_argument("--code", type=int, default=3,
                   help="starting delay code")
    _add_backend_arg(p)
    p.add_argument("--record-trace", default=None, metavar="PATH",
                   help="record the driver's measurements to a "
                        "trace/v1 file (.jsonl or .csv)")
    p.add_argument("--replay-trace", default=None, metavar="PATH",
                   help="re-feed a recorded trace instead of "
                        "measuring (bit-identical replay)")
    p.set_defaults(func=_cmd_measure)

    p = sub.add_parser("backends",
                       help="list the registered measurement drivers")
    p.add_argument("--fingerprints", action="store_true",
                   help="also print each driver's cache fingerprint")
    p.set_defaults(func=_cmd_backends)

    p = sub.add_parser(
        "serve",
        help="run the sensing-as-a-service job server",
    )
    p.add_argument("--unix", default=None, metavar="PATH",
                   help="serve on a unix socket instead of TCP")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0: pick a free one, printed at "
                        "startup)")
    p.add_argument("--dies", type=int, default=64,
                   help="virtual dies in the fleet")
    p.add_argument("--shards", type=int, default=4,
                   help="shards the fleet is hashed across")
    p.add_argument("--seed", type=int, default=2009,
                   help="fleet variation seed")
    p.add_argument("--executor", choices=("inline", "pool"),
                   default="inline",
                   help="'inline' worker threads (default) or one "
                        "process pool per shard (survives worker "
                        "kills)")
    p.add_argument("--pool-workers", type=int, default=2,
                   help="processes per shard pool")
    p.add_argument("--queue-depth", type=int, default=32,
                   help="admission queue depth per shard")
    p.add_argument("--queue-policy", default="block",
                   choices=("drop_oldest", "block", "error"),
                   help="admission overflow policy (the telemetry "
                        "ring semantics)")
    p.add_argument("--tenant-rate", type=float, default=None,
                   help="per-tenant token-bucket rate, requests/s")
    p.add_argument("--tenant-burst", type=float, default=None,
                   help="per-tenant burst capacity (default: rate)")
    p.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive failures that open a shard's "
                        "circuit breaker")
    p.add_argument("--breaker-cooldown", type=float, default=0.5,
                   metavar="SECONDS",
                   help="open dwell before a half-open probe")
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="default per-request deadline")
    p.add_argument("--degrade-margin", type=float, default=0.0,
                   metavar="SECONDS",
                   help="answer degraded when less than this budget "
                        "remains at execution time")
    p.add_argument("--cache-dir", default=None,
                   help="serve repeat requests from this result cache")
    p.add_argument("--max-requests", type=int, default=None,
                   help="serve this many responses, then exit "
                        "(smoke tests)")
    p.add_argument("--stats-out", default=None, metavar="PATH",
                   help="write the final stats registry as JSON")
    _add_backend_arg(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="send one request to a running job server",
    )
    p.add_argument("address",
                   help="'unix:<path>' or '<host>:<port>' (as printed "
                        "by 'repro serve')")
    p.add_argument("kind",
                   choices=("ping", "measure", "characterize",
                            "s_curve", "yield", "window",
                            "campaign_stage"),
                   help="request kind (campaign_stage wants the "
                        "params the campaign scheduler ships: spec, "
                        "stage_id, cache_root, out_dir)")
    p.add_argument("--params", default=None, metavar="JSON",
                   help="request parameters as a JSON object, e.g. "
                        "'{\"level\": 1.05, \"code\": 3}'")
    p.add_argument("--tenant", default="default")
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="per-request deadline")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="client socket timeout, seconds")
    p.set_defaults(func=_cmd_submit)
    return parser


def _dispatch(args: argparse.Namespace) -> int:
    if getattr(args, "profile", False):
        import time as _time

        from repro.runtime import PROFILER

        PROFILER.reset()
        PROFILER.enable()
        t0 = _time.perf_counter()
        try:
            code = args.func(args)
        finally:
            wall = _time.perf_counter() - t0
            PROFILER.disable()
            print(f"\n--profile ({wall * 1e3:.1f}ms wall)")
            print(PROFILER.report(total=wall))
        return code
    return args.func(args)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Any :class:`~repro.errors.ReproError` — a bad flag combination, an
    unreachable server, a driver capability miss — exits nonzero with
    a one-line message on stderr instead of a traceback; ``repro
    --traceback <command> ...`` opts back into the full stack for
    debugging.
    """
    from repro.errors import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        if getattr(args, "traceback", False):
            raise
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
