"""Adapters turning existing measurement objects into sample streams.

A telemetry *source* is any iterable of :class:`SampleBlock`s.  Blocks
carry numpy arrays, not Python scalars, so a million-sample trace moves
through the pipeline as a few hundred slice handoffs.  Two payload
kinds exist, matching where data enters the system:

* ``"voltage"`` — raw per-site rail samples (PDN transient solves,
  synthesized noise waveforms); the pipeline runs the full sensor
  quantization (word -> ones count -> decode bounds) in chunks;
* ``"word"`` — the sensor already quantized (scan-chain readout,
  :class:`~repro.core.monitor.NoiseMonitor` captures); payload columns
  are the 0/1 word bits, bit 1 first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SampleBlock:
    """One contiguous run of samples from a single site.

    Attributes:
        site: Site label (stable across blocks of the same stream).
        times: ``(n,)`` sample instants, seconds, ascending.
        values: ``(n,)`` rail voltages (kind ``"voltage"``) or
            ``(n, n_bits)`` 0/1 word bits, bit 1 first (``"word"``).
        kind: ``"voltage"`` or ``"word"``.
    """

    site: str
    times: np.ndarray
    values: np.ndarray
    kind: str = "voltage"

    def __post_init__(self) -> None:
        if self.kind not in ("voltage", "word"):
            raise ConfigurationError(f"unknown block kind {self.kind!r}")
        n = self.times.shape[0] if self.times.ndim == 1 else -1
        if n < 0 or self.values.shape[0] != n:
            raise ConfigurationError(
                f"block shape mismatch: times {self.times.shape}, "
                f"values {self.values.shape}"
            )

    @property
    def n_samples(self) -> int:
        return int(self.times.shape[0])


def _chunks(n: int, block: int) -> Iterator[slice]:
    if block < 1:
        raise ConfigurationError("block must be at least 1")
    for lo in range(0, n, block):
        yield slice(lo, min(lo + block, n))


def array_source(site: str, times: np.ndarray, voltages: np.ndarray,
                 *, block: int = 4096) -> Iterator[SampleBlock]:
    """Stream a precomputed voltage trace in ``block``-sized pieces."""
    times = np.asarray(times, dtype=float)
    voltages = np.asarray(voltages, dtype=float)
    if times.shape != voltages.shape or times.ndim != 1:
        raise ConfigurationError(
            f"trace shape mismatch: {times.shape} vs {voltages.shape}"
        )
    for sl in _chunks(times.size, block):
        yield SampleBlock(site=site, times=times[sl],
                          values=voltages[sl], kind="voltage")


def waveform_source(site: str, waveform, *, t_start: float,
                    t_stop: float, n_samples: int,
                    block: int = 4096) -> Iterator[SampleBlock]:
    """Sample a scalar :class:`~repro.sim.waveform.Waveform` uniformly.

    Waveforms are scalar callables, so sampling is a Python loop —
    fine for scenario-sized traces; synthesize big benchmark traces
    directly as arrays and use :func:`array_source` instead.
    """
    if n_samples < 2:
        raise ConfigurationError("n_samples must be at least 2")
    if t_stop <= t_start:
        raise ConfigurationError("t_stop must exceed t_start")
    times = np.linspace(t_start, t_stop, n_samples)
    for sl in _chunks(times.size, block):
        ts = times[sl]
        vs = np.fromiter((waveform(float(t)) for t in ts),
                         dtype=float, count=ts.size)
        yield SampleBlock(site=site, times=ts, values=vs,
                          kind="voltage")


def grid_transient_source(transient, sites: Sequence[tuple[int, int]],
                          *, block: int = 4096
                          ) -> Iterator[SampleBlock]:
    """Per-site voltage streams from a quasi-static PDN solve.

    Args:
        transient: A :class:`~repro.psn.transient_grid.GridTransient`.
        sites: Tile coordinates to stream (one stream per tile).
    """
    if not sites:
        raise ConfigurationError("need at least one site")
    times = np.asarray(transient.times, dtype=float)
    for (r, c) in sites:
        transient.grid.tile_index(r, c)  # bounds check
        trace = np.asarray(transient.voltages[:, r, c], dtype=float)
        for sl in _chunks(times.size, block):
            yield SampleBlock(site=f"tile({r},{c})", times=times[sl],
                              values=trace[sl], kind="voltage")


def pdn_source(params, i_load, *, t_end: float, dt: float,
               site: str = "pdn", v0: float | None = None,
               block: int = 4096) -> Iterator[SampleBlock]:
    """Stream a PDN transient solve without materializing the trace.

    Steps the rail with the chunk-invariant exact-ZOH kernel
    (:class:`repro.kernels.transient.TransientStepper`), one ``block``
    of samples per yield — a billion-sample solve flows through the
    pipeline in bounded memory, and the emitted voltages are
    bit-identical to a one-shot
    :meth:`~repro.psn.pdn.PDNModel.simulate` of the same trace.

    Args:
        params: :class:`~repro.psn.pdn.PDNParameters`.
        i_load: Load current — callable ``i(t)`` (array-aware callables
            are sampled per block in one call) or a full sample array
            of length ``round(t_end/dt) + 1``.
        t_end: Solve end, seconds.
        dt: Step, seconds (same resonance-resolution rule as
            ``PDNModel.simulate``).
    """
    from repro.kernels.transient import TransientStepper
    from repro.psn.pdn import _sample_current

    if t_end <= 0 or dt <= 0:
        raise ConfigurationError("t_end and dt must be positive")
    n = int(round(t_end / dt))
    if n < 2:
        raise ConfigurationError("t_end/dt must give at least 2 steps")
    if dt > 0.05 / params.resonant_frequency:
        raise ConfigurationError(
            f"dt={dt:g}s under-resolves the PDN resonance; use dt <= "
            f"{0.05 / params.resonant_frequency:.3g}s"
        )
    stepper = TransientStepper(params, dt, v0=v0)
    if not callable(i_load):
        i_all = np.asarray(i_load, dtype=float)
        if i_all.shape != (n + 1,):
            raise ConfigurationError(
                f"i_load array has {i_all.size} samples; expected {n + 1}"
            )
    for sl in _chunks(n + 1, block):
        times = np.arange(sl.start, sl.stop) * dt
        if callable(i_load):
            i_chunk = _sample_current(i_load, times, t_end=t_end, dt=dt)
        else:
            i_chunk = i_all[sl]
        yield SampleBlock(site=site, times=times,
                          values=stepper.step(i_chunk), kind="voltage")


def synthetic_droop_trace(*, n_samples: int, dt: float = 1e-9,
                          base: float = 1.0, n_droops: int = 2,
                          depth: float = 0.15, freq: float = 100e6,
                          decay: float = 20e-9,
                          noise_rms: float = 0.0, seed: int = 2024,
                          ) -> tuple[np.ndarray, np.ndarray,
                                     list[float]]:
    """Vectorized synthetic PSN rail: droop events riding on noise.

    The same resonant-droop model as
    :func:`repro.psn.noise.droop_event` (a damped sine whose first
    half-cycle is the dip), evaluated as one numpy expression so
    million-sample benchmark traces synthesize in milliseconds.  Event
    onsets are spaced evenly through the middle 80% of the trace.

    Returns:
        ``(times, voltages, droop_onsets)`` — onsets in seconds, the
        injection ground truth for detector tests.
    """
    if n_samples < 2:
        raise ConfigurationError("n_samples must be at least 2")
    if n_droops < 0 or depth < 0 or noise_rms < 0:
        raise ConfigurationError(
            "n_droops, depth and noise_rms must be non-negative"
        )
    times = np.arange(n_samples, dtype=float) * dt
    volts = np.full(n_samples, base, dtype=float)
    if noise_rms > 0:
        rng = np.random.default_rng(seed)
        volts += rng.normal(0.0, noise_rms, size=n_samples)
    onsets: list[float] = []
    t_end = times[-1]
    for k in range(n_droops):
        t0 = (0.1 + 0.8 * (k + 0.5) / n_droops) * t_end
        onsets.append(float(t0))
        rel = times - t0
        active = rel >= 0.0
        volts[active] -= (
            depth * np.exp(-rel[active] / decay)
            * np.sin(2.0 * np.pi * freq * rel[active])
        )
    return times, volts, onsets


def backend_source(backend, levels: np.ndarray, *, code: int,
                   times: np.ndarray | None = None, dt: float = 1e-9,
                   site: str | None = None,
                   block: int = 4096) -> Iterator[SampleBlock]:
    """Word stream measured through a :class:`~repro.backends.
    SensorBackend` at a trace of static rail levels.

    The driver must already be configured (design/rail/corner bound).
    Levels are measured in ``block``-sized batches — one
    ``measure_batch`` op per chunk, so a recording of the stream stays
    a handful of trace records and a replayed trace feeds the pipeline
    bit-identically in the same bounded memory.

    Args:
        backend: A configured measurement driver.
        levels: ``(n,)`` static rail levels, volts (the quasi-static
            sampling model: each telemetry sample is one
            PREPARE/SENSE at that instant's rail level).
        code: Delay code to measure under.
        times: ``(n,)`` sample instants, seconds; defaults to a
            uniform ``dt`` grid from 0.
        dt: Grid step when ``times`` is omitted.
        site: Site label; defaults to the driver's registry id.
    """
    levels = np.asarray(levels, dtype=float)
    if levels.ndim != 1 or levels.size == 0:
        raise ConfigurationError("levels must be a non-empty 1-D array")
    if times is None:
        times = np.arange(levels.size, dtype=float) * dt
    else:
        times = np.asarray(times, dtype=float)
    if times.shape != levels.shape:
        raise ConfigurationError(
            f"trace shape mismatch: {times.shape} vs {levels.shape}"
        )
    label = site if site is not None else backend.id
    for sl in _chunks(levels.size, block):
        words = backend.measure_batch(levels[sl], code=code)
        yield SampleBlock(site=label, times=times[sl],
                          values=np.asarray(words, dtype=np.float64),
                          kind="word")


def _word_bits(word) -> tuple[int, ...]:
    return word.bits  # ThermometerWord: bit 1 first


def monitor_source(capture, *, site: str = "monitor",
                   block: int = 4096) -> Iterator[SampleBlock]:
    """Word stream from a :class:`~repro.core.monitor.MonitorCapture`.

    Every equivalent-time point contributes its raw word at its
    equivalent time; the pipeline re-decodes against the configured
    code's ladder.
    """
    from repro.analysis.thermometer import ThermometerWord

    points = capture.points
    if not points:
        raise ConfigurationError("capture has no points")
    times = np.asarray([p.time for p in points], dtype=float)
    bits = np.asarray(
        [_word_bits(ThermometerWord.from_string(p.word))
         for p in points], dtype=np.float64,
    )
    for sl in _chunks(times.size, block):
        yield SampleBlock(site=site, times=times[sl], values=bits[sl],
                          kind="word")


def scan_chain_source(chain, shifts: Iterable[tuple[float,
                                                    Sequence[int]]],
                      *, block: int = 4096) -> Iterator[SampleBlock]:
    """Word streams from repeated scan-chain shift-outs.

    Args:
        chain: A :class:`~repro.core.scanchain.PSNScanChain`.
        shifts: ``(time, bit_stream)`` pairs, each stream exactly one
            full shift-out (:meth:`PSNScanChain.scan_out` format).

    Yields one word block per site, batched over all shifts (sites
    interleave in chain order per shift instant).
    """
    times: list[float] = []
    per_site: list[list[tuple[int, ...]]] | None = None
    for t, stream in shifts:
        words = chain.deserialize(list(stream))
        if per_site is None:
            per_site = [[] for _ in words]
        times.append(float(t))
        for k, w in enumerate(words):
            per_site[k].append(_word_bits(w))
    if per_site is None:
        raise ConfigurationError("no scan shifts provided")
    t_arr = np.asarray(times, dtype=float)
    for (r, c), rows in zip(chain.sites, per_site):
        bits = np.asarray(rows, dtype=np.float64)
        for sl in _chunks(t_arr.size, block):
            yield SampleBlock(site=f"site({r},{c})", times=t_arr[sl],
                              values=bits[sl], kind="word")
