"""The streaming telemetry orchestrator.

:class:`TelemetryPipeline` fans in sample streams from any number of
sensor sites, stages them in bounded per-site ring buffers, decodes
them chunk-at-a-time through the :mod:`repro.kernels` grids, and folds
every decoded chunk into O(1) online state (statistics, quantiles,
occupancy, EWMA baseline, droop episodes).  Nothing about a site ever
grows with trace length except its *event list* — and events are rare
by definition (that is what the hysteresis thresholds encode).

Chunked decode is **bit-identical** to a one-shot batch decode of the
same trace: every kernel involved (:func:`~repro.kernels.word_grid`,
:func:`~repro.kernels.ones_count_grid`,
:func:`~repro.kernels.decode_bounds`,
:func:`~repro.kernels.midpoint_grid`) is elementwise, so where the
chunk boundaries fall cannot change any output float.  The kernels'
batch invariance (see :mod:`repro.kernels`) is what makes this free;
:func:`batch_decode` is the one-shot reference the tests and the
telemetry bench compare against.

Dataflow, per site::

    source blocks --> RingBuffer --> [chunk] kernel decode --> aggregates
       (ingest)      (bounded)       words/ks/bounds/mids  |-> detector
                                                           '-> on_decoded tap

Wall-clock is instrumented with :func:`~repro.runtime.profiling.phase`
spans ``telemetry.ingest`` / ``telemetry.decode`` /
``telemetry.aggregate`` (the decode span additionally contains the
kernels' own ``kernel.decode`` sub-span), so ``--profile`` on the CLI
shows where a streaming run spends its time.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

from repro.core.calibration import SensorDesign
from repro.devices.technology import Technology
from repro.errors import ConfigurationError
from repro.kernels import (
    bubble_grid,
    decode_bounds,
    fused_decode,
    midpoint_grid,
    ones_count_grid,
    word_grid,
)
from repro.runtime.profiling import phase
from repro.telemetry.aggregate import (
    EwmaBaseline,
    P2Quantile,
    RungHistogram,
    RunningStats,
)
from repro.telemetry.events import DroopDetector, DroopEvent
from repro.telemetry.ring import OverflowPolicy, RingBuffer
from repro.telemetry.sources import SampleBlock

#: Tap signature: ``(site, times, ks, mids)`` per decoded chunk.
DecodeTap = Callable[[str, np.ndarray, np.ndarray, np.ndarray], None]

#: Alert predicate over one site's snapshot summary.
AlertRule = Callable[[dict[str, Any]], bool]


def batch_decode(ladder: np.ndarray, voltages: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One-shot reference decode of a whole voltage trace.

    Returns ``(words, ones_counts, midpoints)`` — exactly what the
    pipeline produces chunk-by-chunk, in one batch call.  Tests and
    the telemetry bench assert elementwise equality (``==``, not
    ``allclose``) between the two paths.
    """
    lad = np.asarray(ladder, dtype=float)
    words = word_grid(np.asarray(voltages, dtype=float), lad)
    ks = ones_count_grid(words)
    lo, hi = decode_bounds(lad, ks)
    return words, ks, midpoint_grid(lo, hi)


@dataclass
class _SiteState:
    """Everything the pipeline keeps per sensor site (O(1) + events)."""

    site: str
    kind: str
    ring: RingBuffer
    stats: RunningStats
    quantiles: dict[float, P2Quantile]
    histogram: RungHistogram
    baseline: EwmaBaseline
    detector: DroopDetector
    decoded: int = 0
    last_time: float = field(default=-math.inf)


class TelemetryPipeline:
    """Bounded-memory streaming monitor over one or many sensor sites.

    Args:
        design: Calibrated sensor design (fixes the ladder width).
        code: Delay code whose threshold ladder decodes the streams.
        tech: Corner technology override for the ladder solve.
        chunk: Decode granularity, samples; drained whenever a site's
            ring holds at least this many.
        capacity: Per-site ring capacity — the hard per-site memory
            bound.  With ``capacity >= chunk - 1 + max block size``
            no sample is ever dropped under ``drop_oldest``.
        policy: Ring overflow policy (see
            :class:`~repro.telemetry.ring.OverflowPolicy`).
        quantiles: Quantiles tracked per site via P².
        enter_rung / exit_rung / min_duration / refractory: Droop
            detector parameters (see
            :class:`~repro.telemetry.events.DroopDetector`); defaults
            scale with the ladder width.
        reference_v: Depth reference for events; defaults to the
            design's nominal supply.
        ewma_alpha: Baseline smoothing factor.
        alert_depth_v: When set, the built-in ``droop-depth`` alert
            fires for any event at least this deep.
        on_decoded: Optional tap called with every decoded chunk
            (testing / bit-identity audits / downstream export).
    """

    def __init__(self, design: SensorDesign, *, code: int = 3,
                 tech: Technology | None = None, chunk: int = 1024,
                 capacity: int = 8192,
                 policy: OverflowPolicy | str =
                 OverflowPolicy.DROP_OLDEST,
                 quantiles: tuple[float, ...] = (0.5, 0.99),
                 enter_rung: int | None = None,
                 exit_rung: int | None = None,
                 min_duration: int = 1, refractory: int = 0,
                 reference_v: float | None = None,
                 ewma_alpha: float = 0.01,
                 alert_depth_v: float | None = None,
                 on_decoded: DecodeTap | None = None) -> None:
        if not 0 <= code < 8:
            raise ConfigurationError("code outside 0..7")
        if chunk < 1:
            raise ConfigurationError("chunk must be at least 1")
        if capacity < chunk:
            raise ConfigurationError(
                f"capacity ({capacity}) must be at least chunk ({chunk})"
            )
        from repro.kernels import threshold_grid

        self.design = design
        self.code = code
        self.tech = tech
        self.chunk = int(chunk)
        self.capacity = int(capacity)
        self.policy = OverflowPolicy.parse(policy)
        self.quantile_qs = tuple(quantiles)
        n = design.n_bits
        self.ladder = np.asarray(
            threshold_grid(design, (code,), tech)[:, 0], dtype=float
        )
        self.enter_rung = (max(0, n // 3) if enter_rung is None
                           else int(enter_rung))
        self.exit_rung = (min(n, self.enter_rung + 2)
                          if exit_rung is None else int(exit_rung))
        self.min_duration = int(min_duration)
        self.refractory = int(refractory)
        self.reference_v = (design.tech.vdd_nominal
                            if reference_v is None else float(reference_v))
        self.ewma_alpha = float(ewma_alpha)
        self.alert_depth_v = alert_depth_v
        self.on_decoded = on_decoded
        self._sites: dict[str, _SiteState] = {}
        self._alerts: dict[str, AlertRule] = {}
        self.add_alert("sample-loss",
                       lambda s: s["ring"]["dropped"] > 0)
        if alert_depth_v is not None:
            self.add_alert(
                "droop-depth",
                lambda s: s["events"]["max_depth_v"] is not None
                and s["events"]["max_depth_v"] >= alert_depth_v,
            )

    # -- site management -------------------------------------------------

    def _site_state(self, site: str, kind: str) -> _SiteState:
        state = self._sites.get(site)
        if state is not None:
            if state.kind != kind:
                raise ConfigurationError(
                    f"site {site!r} switched payload kind "
                    f"{state.kind!r} -> {kind!r}"
                )
            return state
        width = 1 if kind == "voltage" else self.design.n_bits
        state = _SiteState(
            site=site,
            kind=kind,
            ring=RingBuffer(self.capacity, width, policy=self.policy),
            stats=RunningStats(),
            quantiles={q: P2Quantile(q) for q in self.quantile_qs},
            histogram=RungHistogram(self.design.n_bits),
            baseline=EwmaBaseline(self.ewma_alpha),
            detector=DroopDetector(
                site, enter_rung=self.enter_rung,
                exit_rung=self.exit_rung,
                reference_v=self.reference_v,
                min_duration=self.min_duration,
                refractory=self.refractory,
            ),
        )
        self._sites[site] = state
        return state

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(self._sites)

    # -- streaming -------------------------------------------------------

    def ingest(self, block: SampleBlock) -> None:
        """Stage one sample block and drain any complete chunks.

        Under the ``block`` policy a block larger than the free ring
        space exerts backpressure: the pipeline drains a chunk and
        re-offers the remainder until everything is staged (no loss).
        Under ``drop_oldest`` the ring evicts; under ``error`` it
        raises.
        """
        if block.n_samples == 0:
            return
        if block.times[0] < self._site_state(
                block.site, block.kind).last_time:
            raise ConfigurationError(
                f"site {block.site!r}: non-monotonic block times"
            )
        state = self._sites[block.site]
        state.last_time = float(block.times[-1])
        times = block.times
        values = (block.values if block.kind == "word"
                  else np.asarray(block.values, dtype=float))
        offset = 0
        n = block.n_samples
        while offset < n:
            with phase("telemetry.ingest"):
                taken = state.ring.push_block(times[offset:],
                                              values[offset:])
            offset += taken
            if offset < n:
                # block policy refused part of the offer: drain one
                # chunk to guarantee progress, then re-offer.
                self._drain_chunk(state, force=True)
        while len(state.ring) >= self.chunk:
            self._drain_chunk(state)

    def ingest_all(self, source: Iterable[SampleBlock]) -> None:
        """Ingest an entire source (any iterable of blocks)."""
        for block in source:
            self.ingest(block)

    def _drain_chunk(self, state: _SiteState,
                     force: bool = False) -> None:
        n = min(self.chunk, len(state.ring)) if force else self.chunk
        times, payload = state.ring.pop_block(n)
        if times.size == 0:
            return
        with phase("telemetry.decode"):
            if state.kind == "voltage":
                # Fused path: counts/bounds/mids via searchsorted, no
                # word or diff grid — bit-identical to the unfused
                # chain (:func:`batch_decode` remains the reference).
                # An ascending ladder cannot bubble, and the word cube
                # is synthesized (as the prefix code it provably is)
                # only when the droop detector could need a worst-word
                # payload from this chunk.
                volts = payload[:, 0]
                ks, lo, hi, mids = fused_decode(self.ladder, volts)
                bubbles = np.zeros(ks.shape, dtype=bool)
                words = None
                if state.detector.in_episode \
                        or bool(np.any(ks <= self.enter_rung)):
                    words = (
                        np.arange(self.design.n_bits)[None, :]
                        < ks[:, None]
                    ).astype(np.uint8)
            else:
                words = payload.astype(np.uint8)
                ks = ones_count_grid(words)
                bubbles = bubble_grid(words)
                lo, hi = decode_bounds(self.ladder, ks)
                mids = midpoint_grid(lo, hi)
        with phase("telemetry.aggregate"):
            state.stats.update_block(mids)
            for est in state.quantiles.values():
                est.update_block(mids)
            state.histogram.update_block(ks, bubbles)
            state.baseline.update_block(mids)
            state.detector.update_block(times, ks, mids, words)
            state.decoded += times.size
        if self.on_decoded is not None:
            self.on_decoded(state.site, times, ks, mids)

    def flush(self) -> None:
        """Drain every partial chunk and close open droop episodes."""
        for state in self._sites.values():
            while len(state.ring):
                self._drain_chunk(state, force=True)
            state.detector.finalize()

    def run(self, source: Iterable[SampleBlock]) -> dict[str, Any]:
        """Convenience: ingest a whole source, flush, snapshot."""
        self.ingest_all(source)
        self.flush()
        return self.snapshot()

    # -- observation -----------------------------------------------------

    @property
    def events(self) -> list[DroopEvent]:
        """All detected events across sites, ordered by start time."""
        out: list[DroopEvent] = []
        for state in self._sites.values():
            out.extend(state.detector.events)
        out.sort(key=lambda e: (e.start, e.site))
        return out

    def add_alert(self, name: str, rule: AlertRule) -> None:
        """Register (or replace) a per-site alert predicate."""
        self._alerts[name] = rule

    def _site_summary(self, state: _SiteState) -> dict[str, Any]:
        events = state.detector.events
        depths = [e.depth_v for e in events]
        return {
            "kind": state.kind,
            "decoded": state.decoded,
            "ring": state.ring.counters(),
            "stats": state.stats.as_dict(),
            "quantiles": {
                repr(q): (None if est.value != est.value else est.value)
                for q, est in state.quantiles.items()
            },
            "histogram": state.histogram.as_dict(),
            "baseline": (None if state.baseline.value
                         != state.baseline.value
                         else state.baseline.value),
            "events": {
                "count": len(events),
                "discarded": state.detector.discarded,
                "max_depth_v": max(depths) if depths else None,
            },
        }

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable metrics registry of the whole pipeline."""
        sites: dict[str, Any] = {}
        fired: dict[str, list[str]] = {}
        for site, state in self._sites.items():
            summary = self._site_summary(state)
            alarms = [name for name, rule in self._alerts.items()
                      if rule(summary)]
            summary["alerts"] = alarms
            sites[site] = summary
            for name in alarms:
                fired.setdefault(name, []).append(site)
        totals = {
            "sites": len(self._sites),
            "decoded": sum(s.decoded for s in self._sites.values()),
            "dropped": sum(s.ring.dropped
                           for s in self._sites.values()),
            "deferred": sum(s.ring.deferred
                            for s in self._sites.values()),
            "events": sum(len(s.detector.events)
                          for s in self._sites.values()),
        }
        return {
            "config": {
                "code": self.code,
                "chunk": self.chunk,
                "capacity": self.capacity,
                "policy": self.policy.value,
                "ladder_v": [float(t) for t in self.ladder],
                "enter_rung": self.enter_rung,
                "exit_rung": self.exit_rung,
                "min_duration": self.min_duration,
                "refractory": self.refractory,
                "reference_v": self.reference_v,
                "quantiles": list(self.quantile_qs),
            },
            "totals": totals,
            "alerts": fired,
            "sites": sites,
        }

    def export_events_jsonl(self, path: str | os.PathLike[str]) -> int:
        """Write every event as one JSON object per line.

        Returns the number of events written.
        """
        events = self.events
        with open(path, "w") as fh:
            for event in events:
                fh.write(json.dumps(event.as_dict(), sort_keys=True))
                fh.write("\n")
        return len(events)
