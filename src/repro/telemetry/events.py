"""Online droop-episode detection with hysteresis.

A droop *episode* is a contiguous run of samples whose thermometer
reading sits at or below an entry rung; the paper's droop waveforms
ring back through the rung boundary, so a naive single-threshold
detector chatters — one physical droop becomes many events.  The
detector therefore uses the classic hysteresis pair:

* **enter** when the ones count drops to ``enter_rung`` or below;
* **exit** only when it recovers to ``exit_rung`` or above
  (``exit_rung > enter_rung``), so rattling on the entry boundary
  never splits an episode;
* episodes shorter than ``min_duration`` samples are discarded as
  glitches;
* after an episode closes, ``refractory`` samples must elapse before a
  new one may open — ring-back below the entry rung inside that window
  extends nothing and creates nothing.

State per site is O(1); events are emitted as immutable
:class:`DroopEvent` records the pipeline collects and exports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DroopEvent:
    """One detected droop episode.

    Attributes:
        site: Originating sensor site label.
        start: Time of the first in-episode sample, seconds.
        end: Time of the last in-episode sample, seconds.
        n_samples: Samples spent inside the episode.
        depth_v: Reference level minus the deepest decoded voltage
            seen during the episode, volts (>= 0 for real droops).
        worst_v: The deepest decoded voltage itself, volts.
        worst_rung: Lowest ones count reached.
        worst_word: MSB-first word string of the deepest sample
            ("" when the stream carried no word payload).
        truncated: True when the stream ended mid-episode.
    """

    site: str
    start: float
    end: float
    n_samples: int
    depth_v: float
    worst_v: float
    worst_rung: int
    worst_word: str
    truncated: bool = False

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable record (JSONL export row)."""
        return {
            "site": self.site,
            "start": self.start,
            "end": self.end,
            "n_samples": self.n_samples,
            "depth_v": self.depth_v,
            "worst_v": self.worst_v,
            "worst_rung": self.worst_rung,
            "worst_word": self.worst_word,
            "truncated": self.truncated,
        }


class DroopDetector:
    """Per-site hysteresis droop detector.

    Args:
        site: Site label stamped on emitted events.
        enter_rung: Ones count at or below which an episode opens.
        exit_rung: Ones count at or above which it closes; must
            exceed ``enter_rung`` (that gap *is* the hysteresis).
        reference_v: Level droop depth is measured from (e.g. the
            nominal rail), volts.
        min_duration: Minimum in-episode samples for a real event.
        refractory: Samples to hold off after a close before a new
            episode may open.
    """

    def __init__(self, site: str, *, enter_rung: int, exit_rung: int,
                 reference_v: float, min_duration: int = 1,
                 refractory: int = 0) -> None:
        if enter_rung < 0:
            raise ConfigurationError("enter_rung must be >= 0")
        if exit_rung <= enter_rung:
            raise ConfigurationError(
                f"exit_rung ({exit_rung}) must exceed enter_rung "
                f"({enter_rung}) — the gap is the hysteresis"
            )
        if min_duration < 1:
            raise ConfigurationError("min_duration must be >= 1")
        if refractory < 0:
            raise ConfigurationError("refractory must be >= 0")
        self.site = site
        self.enter_rung = int(enter_rung)
        self.exit_rung = int(exit_rung)
        self.reference_v = float(reference_v)
        self.min_duration = int(min_duration)
        self.refractory = int(refractory)
        self.events: list[DroopEvent] = []
        self.discarded = 0  # sub-min_duration episodes dropped
        self._in_episode = False
        self._holdoff = 0
        self._start = math.nan
        self._end = math.nan
        self._n = 0
        self._worst_v = math.inf
        self._worst_rung = 0
        self._worst_word = ""

    @property
    def in_episode(self) -> bool:
        """True while an episode is currently open.  The pipeline's
        fused voltage decode uses this to skip synthesizing word
        payloads for chunks that cannot touch an episode."""
        return self._in_episode

    def _close(self, truncated: bool) -> None:
        if self._n >= self.min_duration:
            self.events.append(DroopEvent(
                site=self.site,
                start=self._start,
                end=self._end,
                n_samples=self._n,
                depth_v=self.reference_v - self._worst_v,
                worst_v=self._worst_v,
                worst_rung=self._worst_rung,
                worst_word=self._worst_word,
                truncated=truncated,
            ))
            self._holdoff = self.refractory
        else:
            self.discarded += 1
        self._in_episode = False
        self._n = 0
        self._worst_v = math.inf

    def update_block(self, times: np.ndarray, ks: np.ndarray,
                     mids: np.ndarray,
                     words: np.ndarray | None = None) -> None:
        """Feed a decoded chunk (times, ones counts, midpoints).

        ``words`` is an optional ``(n, n_bits)`` 0/1 array (bit 1
        first); only the deepest sample's word is ever stringified.
        """
        t_list = np.asarray(times, dtype=float).tolist()
        k_list = np.asarray(ks, dtype=np.int64).tolist()
        m_list = np.asarray(mids, dtype=float).tolist()
        for i, (t, k, v) in enumerate(zip(t_list, k_list, m_list)):
            if self._in_episode:
                if k >= self.exit_rung:
                    # The recovered sample is *not* part of the episode.
                    self._close(truncated=False)
                    continue
                self._end = t
                self._n += 1
                if v < self._worst_v:
                    self._worst_v = v
                    self._worst_rung = k
                    if words is not None:
                        self._worst_word = "".join(
                            str(int(b)) for b in words[i][::-1]
                        )
            else:
                if self._holdoff > 0:
                    self._holdoff -= 1
                    continue
                if k <= self.enter_rung:
                    self._in_episode = True
                    self._start = t
                    self._end = t
                    self._n = 1
                    self._worst_v = v
                    self._worst_rung = k
                    self._worst_word = ""
                    if words is not None:
                        self._worst_word = "".join(
                            str(int(b)) for b in words[i][::-1]
                        )

    def finalize(self) -> None:
        """Close an episode left open at end of stream (truncated)."""
        if self._in_episode:
            self._close(truncated=True)
